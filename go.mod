module syrep

go 1.22
