// Package-level benchmarks, one per table/figure of the SyRep paper's
// evaluation (Section V). Each benchmark regenerates the corresponding
// artefact on a laptop-scale slice of the topology suite; `cmd/syrep-bench`
// runs the full-size versions and renders the tables.
//
//	Figure 5      -> BenchmarkFig5ReductionEffect
//	Figure 7a     -> BenchmarkFig7aCactusK2
//	Figure 7b     -> BenchmarkFig7bRatioK2
//	Figure 7c     -> BenchmarkFig7cCactusK3
//	Figure 7d     -> BenchmarkFig7dRatioK3
//	Figure 8      -> BenchmarkFig8EdgesVsRuntime
//	Figure 9      -> BenchmarkFig9NodesVsRuntime
//	Fig. 1 repair -> BenchmarkRunningExampleRepair
//	Fig. 2 BDD    -> BenchmarkFigure2Symbolic
//
// Micro-benchmarks for the substrates (BDD operations, verification,
// heuristic generation) live at the bottom.
package syrep_test

import (
	"context"
	"io"
	"testing"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/benchmark"
	"syrep/internal/core"
	"syrep/internal/encode"
	"syrep/internal/heuristic"
	"syrep/internal/papernet"
	"syrep/internal/reduce"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/topozoo"
	"syrep/internal/verify"
)

// benchSuite is a small deterministic suite: two embedded topologies plus
// two generated ones, so that `go test -bench=.` stays laptop-friendly.
func benchSuite(maxNodes int) []topozoo.Instance {
	var out []topozoo.Instance
	for _, inst := range topozoo.Embedded() {
		if inst.Net.NumNodes() <= maxNodes {
			switch inst.Name {
			case "Abilene", "Cesnet", "Arpanet1970":
				out = append(out, inst)
			}
		}
	}
	out = append(out, topozoo.GeneratedSuite(topozoo.SuiteConfig{
		MinNodes: 8, MaxNodes: 12, Step: 4, SeedsPerSize: 1,
	})...)
	return out
}

func benchConfig(k int) benchmark.Config {
	return benchmark.Config{
		K:       k,
		Timeout: 5 * time.Second,
		Methods: []core.Strategy{core.Baseline, core.HeuristicOnly, core.ReductionOnly, core.Combined},
	}
}

func BenchmarkFig5ReductionEffect(b *testing.B) {
	suite := topozoo.Embedded()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchmark.WriteReductionEffects(context.Background(), io.Discard, suite); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig7(b *testing.B, k int, ratio bool) {
	suite := benchSuite(14)
	cfg := benchConfig(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := benchmark.Run(context.Background(), suite, cfg)
		var err error
		if ratio {
			err = benchmark.WriteRatios(io.Discard, results, core.Combined, core.Baseline)
		} else {
			err = benchmark.WriteCactus(io.Discard, results, cfg.Methods)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aCactusK2(b *testing.B) { benchFig7(b, 2, false) }
func BenchmarkFig7bRatioK2(b *testing.B)  { benchFig7(b, 2, true) }
func BenchmarkFig7cCactusK3(b *testing.B) { benchFig7(b, 3, false) }
func BenchmarkFig7dRatioK3(b *testing.B)  { benchFig7(b, 3, true) }

func benchScatter(b *testing.B, byEdges bool) {
	suite := benchSuite(14)
	cfg := benchmark.Config{K: 2, Timeout: 5 * time.Second, Methods: []core.Strategy{core.Combined}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := benchmark.Run(context.Background(), suite, cfg)
		if err := benchmark.WriteScatter(io.Discard, results, core.Combined, byEdges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8EdgesVsRuntime(b *testing.B) { benchScatter(b, true) }
func BenchmarkFig9NodesVsRuntime(b *testing.B) { benchScatter(b, false) }

// BenchmarkRunningExampleRepair measures the paper's Figure 1 repair: six
// suspicious entries replaced to reach perfect 2-resilience.
func BenchmarkRunningExampleRepair(b *testing.B) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repair.Repair(context.Background(), r, 2, repair.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Symbolic measures the literal symbolic-failure encoding on
// the paper's Figure 2 network.
func BenchmarkFigure2Symbolic(b *testing.B) {
	n := papernet.Figure2()
	d := n.NodeByName("d")
	v1 := n.NodeByName("v1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := routing.New(n, d)
		if err := r.PunchHole(n.Loopback(v1), v1, 3); err != nil {
			b.Fatal(err)
		}
		if _, err := encode.BuildSymbolic(context.Background(), r, 2, encode.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkBDDApply(b *testing.B) {
	m := bdd.New()
	vars := m.NewVars("x", 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := bdd.True
		for j := 0; j+1 < len(vars); j += 2 {
			f = m.Or(f, m.And(m.VarRef(vars[j]), m.VarRef(vars[j+1])))
		}
	}
}

func BenchmarkBDDParity16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := bdd.New()
		vars := m.NewVars("x", 16)
		f := bdd.False
		for _, v := range vars {
			f = m.Xor(f, m.VarRef(v))
		}
		if m.NodeCount(f) != 31 {
			b.Fatal("parity BDD wrong size")
		}
	}
}

func BenchmarkVerifyAbileneK2(b *testing.B) {
	var abilene topozoo.Instance
	for _, inst := range topozoo.Embedded() {
		if inst.Name == "Abilene" {
			abilene = inst
		}
	}
	r, err := heuristic.Generate(context.Background(), abilene.Net, abilene.Dest)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verify.Check(context.Background(), r, 2, verify.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicGenerate(b *testing.B) {
	net := topozoo.Generate(topozoo.GenConfig{Nodes: 60, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristic.Generate(context.Background(), net, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduceAggressive(b *testing.B) {
	net := topozoo.Generate(topozoo.GenConfig{Nodes: 80, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reduce.Apply(context.Background(), net, 0, reduce.Aggressive); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceAllSources(b *testing.B) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Check(context.Background(), r, 1, verify.Options{})
		if err != nil || !rep.Resilient {
			b.Fatal("verification failed")
		}
	}
}
