// Command syrep-bench regenerates the evaluation artefacts of the SyRep
// paper (Section V) on the built-in topology suite: the cactus plots of
// Figure 7a/7c, the runtime-ratio plots of Figure 7b/7d, the
// size-versus-runtime scatters of Figures 8 and 9, the reduction-effect
// table of Figure 5, and the per-method summary reported in the text.
//
// Usage:
//
//	syrep-bench -fig all                # everything (slow)
//	syrep-bench -fig 7a -timeout 5s    # one figure
//	syrep-bench -fig 7a -max-nodes 24  # smaller suite for laptops
//	syrep-bench -zoo-dir path/to/zoo   # use the real Topology Zoo dataset
//	syrep-bench -csv results.csv       # dump raw data for plotting
//	syrep-bench -metrics-json m.json   # observe runs; dump per-run metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"syrep/internal/benchmark"
	"syrep/internal/core"
	"syrep/internal/topozoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "syrep-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("syrep-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 5|7a|7b|7c|7d|8|9|warm|verify|alldests|all")
	timeout := fs.Duration("timeout", 10*time.Second, "per-instance timeout (paper: 20 min)")
	maxNodes := fs.Int("max-nodes", 28, "largest generated instance")
	seedsPerSize := fs.Int("seeds", 1, "generated instances per size")
	zooDir := fs.String("zoo-dir", "", "directory of real Topology Zoo .graphml files (optional)")
	csvPath := fs.String("csv", "", "also write raw results as CSV")
	metricsJSON := fs.String("metrics-json", "",
		"observe every run and write the results with per-run metrics as JSON to this file")
	coldwarmJSON := fs.String("coldwarm-json", "",
		"write the cold-vs-warm comparison rows as JSON to this file (fig warm/all)")
	verifyJSON := fs.String("verify-json", "",
		"write the brute-vs-poly verification comparison rows as JSON to this file (fig verify/all)")
	alldestsJSON := fs.String("alldests-json", "",
		"write the batch-vs-sequential all-destinations rows as JSON to this file (fig alldests/all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	suite, err := buildSuite(*zooDir, *maxNodes, *seedsPerSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "suite: %d instances, per-instance timeout %s\n\n", len(suite), *timeout)

	h := &harness{timeout: *timeout, csvPath: *csvPath, metricsJSON: *metricsJSON,
		coldwarmJSON: *coldwarmJSON, verifyJSON: *verifyJSON, alldestsJSON: *alldestsJSON}
	ctx := context.Background()
	if err := dispatch(ctx, w, h, suite, *fig); err != nil {
		return err
	}
	return h.flushMetrics()
}

func dispatch(ctx context.Context, w io.Writer, h *harness, suite []topozoo.Instance, fig string) error {
	switch fig {
	case "5":
		return fig5(ctx, w, suite)
	case "7a":
		return fig7(ctx, w, h, suite, 2, false)
	case "7b":
		return fig7(ctx, w, h, suite, 2, true)
	case "7c":
		return fig7(ctx, w, h, suite, 3, false)
	case "7d":
		return fig7(ctx, w, h, suite, 3, true)
	case "8", "9":
		return fig89(ctx, w, h, suite, fig == "8")
	case "warm":
		return figWarm(ctx, w, h, suite)
	case "verify":
		return figVerify(ctx, w, h)
	case "alldests":
		return figAllDests(ctx, w, h)
	case "all":
		if err := fig5(ctx, w, suite); err != nil {
			return err
		}
		if err := figWarm(ctx, w, h, suite); err != nil {
			return err
		}
		if err := figVerify(ctx, w, h); err != nil {
			return err
		}
		if err := figAllDests(ctx, w, h); err != nil {
			return err
		}
		for _, k := range []int{2, 3} {
			results, err := h.runAll(ctx, suite, k)
			if err != nil {
				return err
			}
			if err := renderAll(w, results, k); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// harness carries the output options shared by every figure run and
// accumulates results for the final metrics dump.
type harness struct {
	timeout      time.Duration
	csvPath      string
	metricsJSON  string
	coldwarmJSON string
	verifyJSON   string
	alldestsJSON string
	all          []benchmark.Result
}

func (h *harness) runAll(ctx context.Context, suite []topozoo.Instance, k int) ([]benchmark.Result, error) {
	results := benchmark.Run(ctx, suite, benchmark.Config{
		K:       k,
		Timeout: h.timeout,
		Observe: h.metricsJSON != "",
	})
	h.all = append(h.all, results...)
	if h.csvPath != "" {
		if err := appendCSV(h.csvPath, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// flushMetrics writes every accumulated result — with its per-run metrics
// snapshot — as one JSON array.
func (h *harness) flushMetrics() error {
	if h.metricsJSON == "" {
		return nil
	}
	f, err := os.Create(h.metricsJSON)
	if err != nil {
		return err
	}
	if err := benchmark.WriteJSONResults(f, h.all); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildSuite(zooDir string, maxNodes, seeds int) ([]topozoo.Instance, error) {
	if zooDir != "" {
		return topozoo.LoadGraphMLDir(zooDir)
	}
	all := topozoo.Suite(topozoo.SuiteConfig{
		MinNodes:     8,
		MaxNodes:     maxNodes,
		Step:         4,
		SeedsPerSize: seeds,
	})
	// -max-nodes caps the embedded networks too, so small runs stay small.
	out := all[:0]
	for _, inst := range all {
		if inst.Net.NumNodes() <= maxNodes {
			out = append(out, inst)
		}
	}
	return out, nil
}

func fig5(ctx context.Context, w io.Writer, suite []topozoo.Instance) error {
	fmt.Fprintln(w, "== Figure 5: effect of the structural reduction rules ==")
	if err := benchmark.WriteReductionEffects(ctx, w, suite); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func fig7(ctx context.Context, w io.Writer, h *harness, suite []topozoo.Instance, k int, ratio bool) error {
	results, err := h.runAll(ctx, suite, k)
	if err != nil {
		return err
	}
	if ratio {
		fmt.Fprintf(w, "== Figure 7%s: combined/baseline runtime ratios (k=%d) ==\n", figLetter(k, true), k)
		if err := benchmark.WriteRatios(w, results, core.Combined, core.Baseline); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "== Figure 7%s: cactus plot (k=%d) ==\n", figLetter(k, false), k)
		if err := benchmark.WriteCactus(w, results,
			[]core.Strategy{core.Baseline, core.HeuristicOnly, core.ReductionOnly, core.Combined}); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	return benchmark.WriteSummary(w, results)
}

func figLetter(k int, ratio bool) string {
	switch {
	case k == 2 && !ratio:
		return "a"
	case k == 2 && ratio:
		return "b"
	case k == 3 && !ratio:
		return "c"
	default:
		return "d"
	}
}

// figWarm renders the cold-vs-warm dynamic-repair comparison: each instance
// re-solved after 1–2 random edge failures, from scratch and warm-started
// from the cached base table.
func figWarm(ctx context.Context, w io.Writer, h *harness, suite []topozoo.Instance) error {
	fmt.Fprintln(w, "== Warm-start dynamic repair vs cold synthesis ==")
	rows, err := benchmark.WriteColdWarm(ctx, w, suite, benchmark.ColdWarmConfig{Timeout: h.timeout})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if h.coldwarmJSON == "" {
		return nil
	}
	f, err := os.Create(h.coldwarmJSON)
	if err != nil {
		return err
	}
	if err := benchmark.WriteColdWarmJSON(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// figVerify renders the brute-force-versus-polynomial verification backend
// comparison on generated corrupted instances across k = 1..4.
func figVerify(ctx context.Context, w io.Writer, h *harness) error {
	fmt.Fprintln(w, "== Verification backends: brute-force oracle vs poly checker ==")
	rows, err := benchmark.WriteVerifyBench(ctx, w, benchmark.VerifyBenchConfig{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if h.verifyJSON == "" {
		return nil
	}
	f, err := os.Create(h.verifyJSON)
	if err != nil {
		return err
	}
	if err := benchmark.WriteVerifyBenchJSON(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// figAllDests renders the all-destinations batch-versus-sequential
// comparison on embedded topologies, with the differential cross-check.
func figAllDests(ctx context.Context, w io.Writer, h *harness) error {
	fmt.Fprintln(w, "== All destinations: batch fan-out vs N sequential runs ==")
	rows, err := benchmark.WriteAllDestsBench(ctx, w, benchmark.AllDestsConfig{Timeout: h.timeout})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if h.alldestsJSON == "" {
		return nil
	}
	f, err := os.Create(h.alldestsJSON)
	if err != nil {
		return err
	}
	if err := benchmark.WriteAllDestsBenchJSON(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fig89(ctx context.Context, w io.Writer, h *harness, suite []topozoo.Instance, byEdges bool) error {
	figName, axis := "9", "nodes"
	if byEdges {
		figName, axis = "8", "edges"
	}
	for _, k := range []int{2, 3} {
		results, err := h.runAll(ctx, suite, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Figure %s: %s vs runtime (combined, k=%d) ==\n", figName, axis, k)
		if err := benchmark.WriteScatter(w, results, core.Combined, byEdges); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func renderAll(w io.Writer, results []benchmark.Result, k int) error {
	fmt.Fprintf(w, "== Figure 7 (k=%d): cactus ==\n", k)
	if err := benchmark.WriteCactus(w, results,
		[]core.Strategy{core.Baseline, core.HeuristicOnly, core.ReductionOnly, core.Combined}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Figure 7 (k=%d): combined/baseline ratios ==\n", k)
	if err := benchmark.WriteRatios(w, results, core.Combined, core.Baseline); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Figure 8 (k=%d): edges vs runtime (combined) ==\n", k)
	if err := benchmark.WriteScatter(w, results, core.Combined, true); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Figure 9 (k=%d): nodes vs runtime (combined) ==\n", k)
	if err := benchmark.WriteScatter(w, results, core.Combined, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Summary (k=%d) ==\n", k)
	if err := benchmark.WriteSummary(w, results); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func appendCSV(path string, results []benchmark.Result) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return benchmark.WriteCSV(f, results)
}
