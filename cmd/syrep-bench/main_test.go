package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

// tinyArgs keeps every invocation laptop-quick: the smallest generated
// ladder only (no embedded networks is not possible — Suite always includes
// them — so use a short timeout instead).
func tinyArgs(extra ...string) []string {
	base := []string{"-timeout", "2s", "-max-nodes", "8", "-seeds", "1"}
	return append(base, extra...)
}

func TestFig5(t *testing.T) {
	out, err := runBench(t, "-fig", "5", "-max-nodes", "16", "-seeds", "1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "BizNet", "aggN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig7a(t *testing.T) {
	out, err := runBench(t, tinyArgs("-fig", "7a")...)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 7a", "rank", "combined", "solved"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7dRatio(t *testing.T) {
	out, err := runBench(t, tinyArgs("-fig", "7d")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 7d") || !strings.Contains(out, "ratio") {
		t.Errorf("output:\n%s", out)
	}
}

func TestFig8WithCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	out, err := runBench(t, tinyArgs("-fig", "8", "-csv", csv)...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "edges vs runtime") {
		t.Errorf("output:\n%s", out)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "instance,") {
		t.Errorf("csv header: %q", string(data[:40]))
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := runBench(t, "-fig", "42"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestZooDirMissing(t *testing.T) {
	if _, err := runBench(t, "-fig", "5", "-zoo-dir", "/no/such/dir"); err == nil {
		t.Error("missing zoo dir accepted")
	}
}
