package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSimMode: a tiny simulation runs to completion, prints its
// accounting, and writes the artifact JSON.
func TestRunSimMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "churn.json")
	var buf bytes.Buffer
	err := run(context.Background(),
		[]string{"-sim", "-seed", "7", "-epochs", "10", "-nodes", "6", "-out", out},
		strings.NewReader(""), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "churn sim: seed=7") {
		t.Errorf("summary missing: %q", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Seed   int64 `json:"seed"`
		Result struct {
			Offered int            `json:"offered"`
			Settled map[string]int `json:"settled"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Seed != 7 || art.Result.Offered == 0 {
		t.Errorf("artifact = %+v, want seed 7 with events", art)
	}
}

// TestRunStreamMode: events from stdin drive the controller; deltas appear
// on stdout as JSON lines and the snapshot lands in -out.
func TestRunStreamMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.json")
	// Find a real link first.
	var linksBuf bytes.Buffer
	if err := run(context.Background(), []string{"-links", "-nodes", "6"},
		strings.NewReader(""), &linksBuf); err != nil {
		t.Fatal(err)
	}
	links := strings.Fields(linksBuf.String())
	if len(links) == 0 {
		t.Fatal("no links listed")
	}

	// Two distinct links fail: unlike a same-link flap (which may coalesce
	// to a no-op), each is a real state change and forces a delta.
	events := "# comment\ndown " + links[0] + "\ndown " + links[1] + "\n"
	var buf bytes.Buffer
	err := run(context.Background(),
		[]string{"-nodes", "6", "-dests", "s0", "-out", out},
		strings.NewReader(events), &buf)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	n := 0
	for dec.More() {
		var d struct {
			Dest  string `json:"dest"`
			Epoch uint64 `json:"epoch"`
		}
		if err := dec.Decode(&d); err != nil {
			t.Fatalf("delta %d is not valid JSON: %v", n, err)
		}
		if d.Dest != "s0" {
			t.Errorf("delta %d for %q, want s0", n, d.Dest)
		}
		n++
	}
	if n == 0 {
		t.Error("no deltas on stdout")
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("metrics snapshot not written: %v", err)
	}
}

// TestRunBadEvent: a malformed event line fails fast with a parse error.
func TestRunBadEvent(t *testing.T) {
	err := run(context.Background(), []string{"-nodes", "6"},
		strings.NewReader("sideways l1\n"), new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "bad event line") {
		t.Fatalf("err = %v, want bad event line", err)
	}
}

// TestRunUnknownTopology: a bogus -topology name lists the embedded suite.
func TestRunUnknownTopology(t *testing.T) {
	err := run(context.Background(), []string{"-topology", "nope", "-links"},
		strings.NewReader(""), new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("err = %v, want unknown topology", err)
	}
	if !strings.Contains(err.Error(), "Abilene") {
		t.Errorf("error does not list embedded topologies: %v", err)
	}
}
