package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSimMode: a tiny simulation runs to completion, prints its
// accounting, and writes the artifact JSON.
func TestRunSimMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "churn.json")
	var buf bytes.Buffer
	err := run(context.Background(),
		[]string{"-sim", "-seed", "7", "-epochs", "10", "-nodes", "6", "-out", out},
		strings.NewReader(""), &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "churn sim: seed=7") {
		t.Errorf("summary missing: %q", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Seed   int64 `json:"seed"`
		Result struct {
			Offered int            `json:"offered"`
			Settled map[string]int `json:"settled"`
		} `json:"result"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Seed != 7 || art.Result.Offered == 0 {
		t.Errorf("artifact = %+v, want seed 7 with events", art)
	}
}

// TestRunStreamMode: events from stdin drive the controller; deltas appear
// on stdout as JSON lines and the snapshot lands in -out.
func TestRunStreamMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.json")
	// Find a real link first.
	var linksBuf bytes.Buffer
	if err := run(context.Background(), []string{"-links", "-nodes", "6"},
		strings.NewReader(""), &linksBuf, io.Discard); err != nil {
		t.Fatal(err)
	}
	links := strings.Fields(linksBuf.String())
	if len(links) == 0 {
		t.Fatal("no links listed")
	}

	// Two distinct links fail: unlike a same-link flap (which may coalesce
	// to a no-op), each is a real state change and forces a delta.
	events := "# comment\ndown " + links[0] + "\ndown " + links[1] + "\n"
	var buf bytes.Buffer
	err := run(context.Background(),
		[]string{"-nodes", "6", "-dests", "s0", "-out", out},
		strings.NewReader(events), &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	n := 0
	for dec.More() {
		var d struct {
			Dest  string `json:"dest"`
			Epoch uint64 `json:"epoch"`
		}
		if err := dec.Decode(&d); err != nil {
			t.Fatalf("delta %d is not valid JSON: %v", n, err)
		}
		if d.Dest != "s0" {
			t.Errorf("delta %d for %q, want s0", n, d.Dest)
		}
		n++
	}
	if n == 0 {
		t.Error("no deltas on stdout")
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("metrics snapshot not written: %v", err)
	}
}

// TestRunBadEvent: a malformed event line fails fast with a parse error.
func TestRunBadEvent(t *testing.T) {
	err := run(context.Background(), []string{"-nodes", "6"},
		strings.NewReader("sideways l1\n"), new(bytes.Buffer), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "bad event line") {
		t.Fatalf("err = %v, want bad event line", err)
	}
}

// TestRunUnknownTopology: a bogus -topology name lists the embedded suite.
func TestRunUnknownTopology(t *testing.T) {
	err := run(context.Background(), []string{"-topology", "nope", "-links"},
		strings.NewReader(""), new(bytes.Buffer), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("err = %v, want unknown topology", err)
	}
	if !strings.Contains(err.Error(), "Abilene") {
		t.Errorf("error does not list embedded topologies: %v", err)
	}
}

// TestRunFlushesDeadLetters: deltas that dead-letter (here: an unreachable
// REST sink) are flushed to stderr as JSON lines on shutdown.
func TestRunFlushesDeadLetters(t *testing.T) {
	var linksBuf bytes.Buffer
	if err := run(context.Background(), []string{"-links", "-nodes", "6"},
		strings.NewReader(""), &linksBuf, io.Discard); err != nil {
		t.Fatal(err)
	}
	links := strings.Fields(linksBuf.String())

	var errBuf bytes.Buffer
	err := run(context.Background(),
		[]string{"-nodes", "6", "-dests", "s0", "-sink", "http://127.0.0.1:1/unreachable"},
		strings.NewReader("down "+links[0]+"\n"), io.Discard, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, raw := range strings.Split(errBuf.String(), "\n") {
		if !strings.HasPrefix(raw, "{") {
			continue // human-readable stderr lines interleave with the JSON
		}
		var line struct {
			DeadLetter struct {
				Dest string `json:"dest"`
			} `json:"deadLetter"`
			Err string `json:"err"`
		}
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("bad dead-letter line %q: %v", raw, err)
		}
		if line.DeadLetter.Dest == "s0" && line.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dead-letter JSON on stderr:\n%s", errBuf.String())
	}
}

// TestRunJournalRecoverDump: a journaled run survives a restart via
// -recover, and -journal-dump prints the surviving records.
func TestRunJournalRecoverDump(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	var linksBuf bytes.Buffer
	if err := run(context.Background(), []string{"-links", "-nodes", "6"},
		strings.NewReader(""), &linksBuf, io.Discard); err != nil {
		t.Fatal(err)
	}
	links := strings.Fields(linksBuf.String())

	if err := run(context.Background(),
		[]string{"-nodes", "6", "-dests", "s0", "-journal-dir", dir},
		strings.NewReader("down "+links[0]+"\n"), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}

	var errBuf bytes.Buffer
	if err := run(context.Background(),
		[]string{"-nodes", "6", "-dests", "s0", "-journal-dir", dir, "-recover"},
		strings.NewReader("up "+links[0]+"\n"), io.Discard, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "recovered epoch=1 down=1") {
		t.Fatalf("recovery banner missing:\n%s", errBuf.String())
	}

	var dump bytes.Buffer
	if err := run(context.Background(),
		[]string{"-journal-dir", dir, "-journal-dump"},
		strings.NewReader(""), &dump, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), `"record":"snapshot"`) {
		t.Fatalf("dump has no snapshot record:\n%s", dump.String())
	}
}

// TestRunRecoverRequiresJournalDir: the flag combination is validated.
func TestRunRecoverRequiresJournalDir(t *testing.T) {
	err := run(context.Background(), []string{"-recover"},
		strings.NewReader(""), new(bytes.Buffer), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-journal-dir") {
		t.Fatalf("err = %v, want -journal-dir requirement", err)
	}
}
