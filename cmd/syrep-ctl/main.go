// Command syrep-ctl runs the churn-driven repair controller: a long-running
// reconciliation loop that consumes link up/down events and keeps
// per-destination forwarding tables current, pushing table deltas to a
// southbound sink.
//
// Usage:
//
//	syrep-ctl -sim [-seed N] [-epochs N] [-nodes N] [-num-dests N] [-out file]
//	syrep-ctl [-topology name] [-dests a,b] [-k N] [-sink URL] [-out file]
//	syrep-ctl [-topology name] -links
//
// In -sim mode a seeded Poisson churn simulation drives the controller
// against an in-memory sink and prints its accounting (optionally writing
// the SLO artifact JSON to -out).
//
// Otherwise events are read from stdin, one per line:
//
//	down <link>
//	up <link>
//
// where <link> is a canonical edge key (list them with -links). Deltas go
// to the REST sink at -sink, or to stdout as JSON lines when -sink is
// empty. On EOF or SIGTERM the controller drains, any dead-lettered deltas
// are flushed to stderr as JSON lines, and a settlement summary is printed;
// -out receives the final metrics snapshot.
//
// With -journal-dir the controller journals every state transition to an
// append-only, checksummed write-ahead log before it takes effect; -recover
// replays that journal on startup so a restarted controller resumes exactly
// where the crashed one stopped, and -journal-dump prints the journal's
// records as JSON lines for inspection.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"syrep/internal/cache"
	"syrep/internal/controller"
	"syrep/internal/journal"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/server"
	"syrep/internal/topozoo"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "syrep-ctl:", err)
		os.Exit(1)
	}
}

// jsonSink writes each delta as one JSON line — the stdout sink for piping
// into other tools.
type jsonSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (s *jsonSink) Push(_ context.Context, d controller.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(d)
}

func run(ctx context.Context, args []string, in io.Reader, w, errW io.Writer) error {
	fs := flag.NewFlagSet("syrep-ctl", flag.ContinueOnError)
	sim := fs.Bool("sim", false, "run the seeded churn simulation instead of reading events")
	seed := fs.Int64("seed", 42, "simulation seed")
	epochs := fs.Int("epochs", 1000, "simulation target: distinct topology epochs to drive")
	nodes := fs.Int("nodes", 8, "simulation topology size (ring + skip-2 chords)")
	numDests := fs.Int("num-dests", 2, "simulation destination count")
	topology := fs.String("topology", "", "embedded topology name for stream mode (default: the sim ring)")
	destsFlag := fs.String("dests", "", "comma-separated destination node names (default: all nodes)")
	k := fs.Int("k", 1, "resilience level to synthesize and repair for")
	sinkURL := fs.String("sink", "", "REST sink URL (empty: deltas to stdout as JSON lines)")
	links := fs.Bool("links", false, "print the topology's canonical link keys and exit")
	out := fs.String("out", "", "write the final metrics snapshot (sim: SLO artifact) JSON here")
	journalDir := fs.String("journal-dir", "", "write-ahead journal directory for crash-safe controller state")
	doRecover := fs.Bool("recover", false, "replay -journal-dir on startup and resume where the last run stopped")
	journalDump := fs.Bool("journal-dump", false, "print the -journal-dir records as JSON lines and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *journalDump {
		if *journalDir == "" {
			return errors.New("-journal-dump requires -journal-dir")
		}
		fsys, err := journal.NewDirFS(*journalDir)
		if err != nil {
			return err
		}
		stats, err := controller.DumpJournal(fsys, w)
		if err != nil {
			return err
		}
		fmt.Fprintf(errW, "syrep-ctl: journal: snapshot=%v records=%d tornTail=%v\n",
			stats.Snapshot, stats.Records, stats.TornTail)
		return nil
	}
	if *doRecover && *journalDir == "" {
		return errors.New("-recover requires -journal-dir")
	}

	if *sim {
		return runSim(ctx, *seed, *epochs, *nodes, *numDests, *out, w)
	}

	base, err := pickTopology(*topology, *nodes)
	if err != nil {
		return err
	}
	if *links {
		keys := append([]string(nil), base.EdgeKeys()...)
		sort.Strings(keys)
		for _, key := range keys {
			fmt.Fprintln(w, key)
		}
		return nil
	}

	var dests []string
	if *destsFlag != "" {
		for _, d := range strings.Split(*destsFlag, ",") {
			dests = append(dests, strings.TrimSpace(d))
		}
	}
	var sink controller.Sink
	if *sinkURL != "" {
		sink = &controller.RESTSink{URL: *sinkURL}
	} else {
		sink = &jsonSink{enc: json.NewEncoder(w)}
	}

	ob := obs.New(nil)
	var jrn *journal.Journal
	if *journalDir != "" {
		fsys, err := journal.NewDirFS(*journalDir)
		if err != nil {
			return err
		}
		jrn, err = journal.Open(fsys, journal.Options{Obs: ob})
		if err != nil {
			return err
		}
		defer jrn.Close()
	}

	var mu sync.Mutex
	settled := map[string]int{}
	settledTotal := 0
	cfg := controller.Config{
		Base:    base,
		Dests:   dests,
		K:       *k,
		Sink:    sink,
		Cache:   cache.New(cache.Config{MaxEntries: 1024, Obs: ob}),
		Breaker: server.BreakerConfig{Threshold: 5, Cooldown: 5 * time.Second},
		Obs:     ob,
		Journal: jrn,
		OnSettle: func(s controller.Settlement) {
			mu.Lock()
			defer mu.Unlock()
			settled[s.Outcome.String()]++
			settledTotal++
			if s.Err != nil {
				fmt.Fprintf(errW, "syrep-ctl: %s: %v\n", s.Event, s.Err)
			}
		},
	}
	var ctl *controller.Controller
	var err2 error
	if *doRecover {
		var info controller.RecoveryInfo
		ctl, info, err2 = controller.Recover(cfg)
		if err2 == nil {
			fmt.Fprintf(errW, "syrep-ctl: recovered epoch=%d down=%d records=%d tornTail=%v poisoned=%d cacheSeeded=%d\n",
				info.Epoch, len(info.Down), info.Records, info.TornTail, len(info.Poisoned), info.CacheSeeded)
		}
	} else {
		ctl, err2 = controller.New(cfg)
	}
	if err2 != nil {
		return err2
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	exit := make(chan error, 1)
	go func() { exit <- ctl.Run(runCtx) }()

	accepted, err := feedEvents(runCtx, ctl, in)
	if err != nil {
		cancel()
		<-exit
		return err
	}
	// EOF: let the offered events settle (interrupt skips straight to the
	// drain), then shut down and report.
	for ctx.Err() == nil {
		mu.Lock()
		done := settledTotal >= accepted
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	runErr := <-exit
	flushDeadLetters(errW, ctl.DeadLetters())
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Fprintf(errW, "syrep-ctl: epochs=%d settled=%v dead-letters=%d\n",
		ctl.Epoch(), settled, len(ctl.DeadLetters()))
	if *out != "" {
		return writeSnapshot(ob, *out)
	}
	return nil
}

// flushDeadLetters writes every dead-lettered delta as one JSON line so an
// operator (or the process supervisor's log collector) can replay or triage
// them after shutdown — the queue is in-memory and would otherwise vanish
// with the process unless a journal was configured.
func flushDeadLetters(w io.Writer, dls []controller.DeadLetter) {
	enc := json.NewEncoder(w)
	for _, dl := range dls {
		_ = enc.Encode(struct {
			DeadLetter controller.Delta `json:"deadLetter"`
			Err        string           `json:"err"`
			Attempts   int              `json:"attempts"`
		}{dl.Delta, dl.Err.Error(), dl.Attempts})
	}
}

// feedEvents parses "down <link>" / "up <link>" lines into offers, with
// bounded re-offering on backpressure. It returns how many events the
// controller accepted.
func feedEvents(ctx context.Context, ctl *controller.Controller, in io.Reader) (int, error) {
	accepted := 0
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if ctx.Err() != nil {
			return accepted, nil // interrupted: stop reading, let the drain settle
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || (fields[0] != "down" && fields[0] != "up") {
			return accepted, fmt.Errorf("bad event line %q (want: down <link> | up <link>)", line)
		}
		ev := controller.Event{Link: fields[1], Up: fields[0] == "up"}
		for {
			err := ctl.Offer(ev)
			if err == nil {
				accepted++
				break
			}
			if !controller.Retryable(err) {
				return accepted, fmt.Errorf("offer %s: %w", ev, err)
			}
			// Backpressure: wait out the inbox, then re-offer.
			select {
			case <-ctx.Done():
				return accepted, nil
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	return accepted, sc.Err()
}

func runSim(ctx context.Context, seed int64, epochs, nodes, dests int, out string, w io.Writer) error {
	res, err := controller.RunSim(ctx, controller.SimConfig{
		Seed:         seed,
		Nodes:        nodes,
		Dests:        dests,
		TargetEpochs: epochs,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "churn sim: seed=%d epochs=%d offered=%d rejected=%d settled=%v\n",
		seed, res.Epochs, res.Offered, res.Rejected, res.Settled)
	fmt.Fprintf(w, "           coalesced=%d stale=%d warm=%d cold=%d degraded=%d dead-letters=%d\n",
		res.Coalesced, res.Stale, res.WarmRepairs, res.ColdSynths, res.Degraded, res.DeadLetters)
	fmt.Fprintf(w, "           latency: count=%d p50=%vs p99=%vs\n",
		res.Latency.Count, res.Latency.Quantile(0.5), res.Latency.Quantile(0.99))
	if out != "" {
		data, err := json.MarshalIndent(struct {
			Seed         int64                 `json:"seed"`
			TargetEpochs int                   `json:"targetEpochs"`
			Result       *controller.SimResult `json:"result"`
		}{seed, epochs, res}, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(out, append(data, '\n'), 0o644)
	}
	return nil
}

// pickTopology resolves the stream-mode base topology: an embedded zoo
// network by name, or the simulation ring when unnamed.
func pickTopology(name string, nodes int) (*network.Network, error) {
	if name == "" {
		return controller.SimNetwork(nodes)
	}
	var known []string
	for _, inst := range topozoo.Embedded() {
		if strings.EqualFold(inst.Name, name) {
			return inst.Net, nil
		}
		known = append(known, inst.Name)
	}
	return nil, fmt.Errorf("unknown topology %q (embedded: %s)", name, strings.Join(known, ", "))
}

func writeSnapshot(ob *obs.Observer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ob.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
