package main

import (
	"os"
	"path/filepath"
	"testing"

	"syrep/internal/analysis"
)

// lintClean runs the selected analyzers over patterns at the repo root,
// applies the reviewed lint.suppress file exactly like CI does, and fails
// the test on any unsuppressed finding. The tree locks below are the
// acceptance criterion in executable form: every analyzer finding has
// either been fixed or suppressed with a written rationale.
func lintClean(t *testing.T, selected []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	res, err := runLint("../..", patterns, selected, analysis.LoadConfig{}, nil)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	sups, err := readSuppressions(filepath.Join("../..", "lint.suppress"))
	if err != nil {
		if !os.IsNotExist(err) {
			t.Fatalf("reading lint.suppress: %v", err)
		}
		sups = nil
	}
	applySuppressions(res.findings, sups)
	for _, f := range res.findings {
		if f.Suppressed {
			continue
		}
		t.Errorf("%s", f.String())
	}
}

// TestTreeIsClean locks in the acceptance criterion that syrep-lint exits 0
// on the repository: every analyzer finding has either been fixed or
// suppressed — in source with a justified //syreplint:ignore, or in
// lint.suppress with a rationale comment. A failure here means a change
// introduced a new concurrency, determinism, or dropped-error bug.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list over the whole module")
	}
	lintClean(t, analyzers, "./...")
}

// TestObservabilityPackagesAreClean pins the observability layer and its
// instrumented call sites individually, so the lock keeps biting even when
// the whole-tree test is skipped under -short. The obs taps sit on the BDD
// and verify hot paths, exactly where the determinism (maporder), ref-safety
// (bddref), and atomic-discipline (atomicfield) analyzers matter most.
func TestObservabilityPackagesAreClean(t *testing.T) {
	lintClean(t, analyzers,
		"./internal/obs/...",
		"./internal/verify",
		"./internal/benchmark",
	)
}

// TestServerPackagesAreClean pins the synthesis service and its binary the
// same way: the server package is where the exactly-one-response invariant
// (chansafe), lock discipline across its worker pool and breaker (locksafe),
// and graceful-drain polling (ctxpoll) all live.
func TestServerPackagesAreClean(t *testing.T) {
	lintClean(t, analyzers,
		"./internal/server/...",
		"./cmd/syrep-serve",
	)
}

// TestCachePackageIsClean pins the synthesis cache: singleflight waiters
// hold its mutex near blocking channel ops (locksafe), block on in-flight
// leaders under cancellation (ctxpoll), and iterate routing-table maps whose
// order must never leak into cached results (maporder).
func TestCachePackageIsClean(t *testing.T) {
	lintClean(t, analyzers,
		"./internal/cache/...",
	)
}

// TestControllerPackageIsClean pins the churn controller and its binary:
// the reconcile and pusher loops must poll cancellation (ctxpoll), the
// wake/exit channels follow the one-send protocol (chansafe), the
// epoch/settlement mutex must not be held across blocking calls (locksafe),
// and its repair stage spans must end on every path (spanpair).
func TestControllerPackageIsClean(t *testing.T) {
	lintClean(t, analyzers,
		"./internal/controller/...",
		"./cmd/syrep-ctl",
	)
}

// TestVerifyPolyPackageIsClean pins the verification layer — the brute-force
// oracle, the polynomial checker, and the vgen corruption generator — under
// the full analyzer set. The poly checker's budgeted DFS must poll
// cancellation (ctxpoll), and the parallel brute-force merge must keep its
// deterministic report order (maporder) and end its spans on every path.
func TestVerifyPolyPackageIsClean(t *testing.T) {
	lintClean(t, analyzers,
		"./internal/verify/...",
	)
}

// TestJournalPackageIsClean pins the write-ahead journal and its crash
// harness under the full analyzer set: the journal mutex serializes the
// append path under the controller's own lock (locksafe), replay and
// compaction loops must stay bounded (ctxpoll), and the crashfs fault seam
// mixes atomics with the op counter (atomicfield).
func TestJournalPackageIsClean(t *testing.T) {
	lintClean(t, analyzers,
		"./internal/journal/...",
	)
}

// TestLocksafePackagesAreClean runs only the lock-discipline analyzer over
// every package in its scope (server, cache, bdd, obs), so a locksafe
// regression is named directly even when the combined locks are skipped.
func TestLocksafePackagesAreClean(t *testing.T) {
	lintClean(t, selectedByName(t, "locksafe"),
		"./internal/server/...",
		"./internal/cache/...",
		"./internal/bdd/...",
		"./internal/obs/...",
		"./internal/controller/...",
		"./internal/verify/...",
		"./internal/journal/...",
	)
}

// TestCtxpollPackagesAreClean runs only the cancellation-polling analyzer
// over the long-running loops: the brute-force scenario sweep and the poly
// checker's budgeted DFS, the supervisor ladder, the server drain, and the
// controller's reconcile/pusher loops.
func TestCtxpollPackagesAreClean(t *testing.T) {
	lintClean(t, selectedByName(t, "ctxpoll"),
		"./internal/verify/...",
		"./internal/resilience/...",
		"./internal/server/...",
		"./internal/cache/...",
		"./internal/controller/...",
		"./internal/journal/...",
	)
}

// TestAtomicfieldPackagesAreClean pins the packages that mix sync/atomic
// with mutexes: obs counters and gauges, and the server's breaker state.
func TestAtomicfieldPackagesAreClean(t *testing.T) {
	lintClean(t, selectedByName(t, "atomicfield"),
		"./internal/obs/...",
		"./internal/server/...",
	)
}

// TestChansafePackagesAreClean pins the server's exactly-one-response
// invariant: done channels buffered, at most one send per path, no
// select-free sends from worker goroutines.
func TestChansafePackagesAreClean(t *testing.T) {
	lintClean(t, selectedByName(t, "chansafe"),
		"./internal/server/...",
		"./internal/controller/...",
	)
}

// TestSpanpairPackagesAreClean pins span discipline where stage spans are
// actually opened: the supervisor ladder, the server worker loop, and the
// CLI driver.
func TestSpanpairPackagesAreClean(t *testing.T) {
	lintClean(t, selectedByName(t, "spanpair"),
		"./internal/resilience/...",
		"./internal/server/...",
		"./internal/controller/...",
		"./internal/verify/...",
		"./internal/journal/...",
		"./cmd/syrep",
	)
}

func selectedByName(t *testing.T, names string) []*analysis.Analyzer {
	t.Helper()
	sel, err := selectAnalyzers(names)
	if err != nil {
		t.Fatalf("selecting analyzers: %v", err)
	}
	return sel
}

// TestBatchPackagesAreClean pins every layer the all-destinations batch
// touches: the fan-out workers poll cancellation between destinations
// (ctxpoll), the batch lock serializes OnResult without wrapping blocking
// sends (locksafe), the NDJSON stream's lines channel follows the
// close-after-wait protocol (chansafe), the pooled-manager encode path must
// not leak map iteration order into results (maporder), and the shared
// reduce stage runs under the supervisor's spans (spanpair).
func TestBatchPackagesAreClean(t *testing.T) {
	lintClean(t, analyzers,
		"./internal/resilience",
		"./internal/reduce",
		"./internal/bdd",
		"./cmd/syrep",
		"./cmd/syrep-bench",
	)
}
