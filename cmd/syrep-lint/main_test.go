package main

import "testing"

// TestTreeIsClean locks in the acceptance criterion that syrep-lint exits 0
// on the repository: every analyzer finding has either been fixed or
// suppressed with a justified //syreplint:ignore. A failure here means a
// change reintroduced a ref-safety, determinism, or dropped-error bug.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list over the whole module")
	}
	diags, err := run("../..", []string{"./..."}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
	}
}

// TestObservabilityPackagesAreClean pins the observability layer and its
// instrumented call sites individually, so the lock keeps biting even when
// the whole-tree test is skipped under -short. The obs taps sit on the BDD
// and verify hot paths, exactly where the determinism (maporder) and
// ref-safety (bddref) analyzers matter most.
func TestObservabilityPackagesAreClean(t *testing.T) {
	diags, err := run("../..", []string{
		"./internal/obs/...",
		"./internal/verify",
		"./internal/benchmark",
	}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
	}
}

// TestServerPackagesAreClean pins the synthesis service and its binary the
// same way: the server package is a ctxpoll pipeline package (its workers
// run supervisor pipelines, and an unpolled loop there would stall graceful
// drain), and the HTTP/worker glue is exactly where dropped errors
// (protecterr) would silently eat a response.
func TestServerPackagesAreClean(t *testing.T) {
	diags, err := run("../..", []string{
		"./internal/server/...",
		"./cmd/syrep-serve",
	}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
	}
}

// TestCachePackageIsClean pins the synthesis cache: it is a ctxpoll pipeline
// package (singleflight waiters block on in-flight leaders and must observe
// cancellation) and holds routing tables whose map iteration order must
// never leak into cached results (maporder).
func TestCachePackageIsClean(t *testing.T) {
	diags, err := run("../..", []string{
		"./internal/cache/...",
	}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
	}
}
