// Command syrep-lint runs SyRep's custom static analyzers — bddref, ctxpoll,
// maporder, protecterr — alongside `go vet`, in the spirit of an x/tools
// multichecker but with zero dependencies outside the standard library and
// the go tool.
//
// Usage:
//
//	go run ./cmd/syrep-lint [flags] [packages]
//
// Packages default to ./... . The command exits non-zero when vet fails or
// any analyzer reports a finding, so it can gate CI directly. Individual
// findings are suppressed in source with
//
//	//syreplint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above it; the reason is mandatory by
// convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"syrep/internal/analysis"
	"syrep/internal/analysis/bddref"
	"syrep/internal/analysis/ctxpoll"
	"syrep/internal/analysis/maporder"
	"syrep/internal/analysis/protecterr"
)

var analyzers = []*analysis.Analyzer{
	bddref.Analyzer,
	ctxpoll.Analyzer,
	maporder.Analyzer,
	protecterr.Analyzer,
}

func main() {
	var (
		noVet = flag.Bool("no-vet", false, "skip the go vet pass")
		list  = flag.Bool("list", false, "list the custom analyzers and exit")
		only  = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: syrep-lint [flags] [packages]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syrep-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*noVet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			failed = true
		}
	}

	diags, err := run(".", patterns, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syrep-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// finding is a resolved diagnostic ready for printing.
type finding struct {
	Position string
	Analyzer string
	Message  string
}

// run loads the packages matched by patterns in dir and applies the selected
// analyzers, returning findings in package, then position, order.
func run(dir string, patterns []string, selected []*analysis.Analyzer) ([]finding, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []finding
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, selected)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, finding{
				Position: d.Position(pkg.Fset).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return out, nil
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
