// Command syrep-lint runs SyRep's custom static analyzers — the original
// per-function walkers (bddref, ctxpoll, maporder, protecterr) and the
// dataflow suite (locksafe, atomicfield, chansafe, spanpair) — alongside
// `go vet`, in the spirit of an x/tools multichecker but with zero
// dependencies outside the standard library and the go tool.
//
// Usage:
//
//	go run ./cmd/syrep-lint [flags] [packages]
//
// Packages default to ./... . The command exits non-zero when vet fails or
// any unsuppressed finding remains, so it can gate CI directly.
//
// Findings are suppressed two ways. In source, with
//
//	//syreplint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above it; the reason is mandatory by
// convention. Out of source, with a reviewed suppression file (see
// -suppress): tab-separated entries of analyzer, repo-relative file, and
// the exact message, with '#' rationale lines between them. Suppressed
// findings still appear in -json and -sarif output (marked), but do not
// fail the run — CI fails on new findings only.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"syrep/internal/analysis"
	"syrep/internal/analysis/atomicfield"
	"syrep/internal/analysis/bddref"
	"syrep/internal/analysis/chansafe"
	"syrep/internal/analysis/ctxpoll"
	"syrep/internal/analysis/locksafe"
	"syrep/internal/analysis/maporder"
	"syrep/internal/analysis/protecterr"
	"syrep/internal/analysis/spanpair"
	"syrep/internal/obs"
)

var analyzers = []*analysis.Analyzer{
	atomicfield.Analyzer,
	bddref.Analyzer,
	chansafe.Analyzer,
	ctxpoll.Analyzer,
	locksafe.Analyzer,
	maporder.Analyzer,
	protecterr.Analyzer,
	spanpair.Analyzer,
}

func main() {
	var (
		noVet       = flag.Bool("no-vet", false, "skip the go vet pass")
		list        = flag.Bool("list", false, "list the custom analyzers and exit")
		only        = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonOut     = flag.Bool("json", false, "emit findings as JSON on stdout instead of plain text")
		sarifOut    = flag.String("sarif", "", "write a SARIF 2.1.0 report to `file` (\"-\" for stdout)")
		suppress    = flag.String("suppress", "", "read reviewed suppressions from `file`; matching findings are reported but do not fail the run")
		fix         = flag.Bool("fix", false, "apply suggested fixes for unsuppressed findings to the source tree")
		metricsJSON = flag.String("metrics-json", "", "write run metrics (syrep_lint_* counters) as JSON to `file` (\"-\" for stdout)")
		tags        = flag.String("tags", "", "comma-separated build tags to pass to the package loader")
		race        = flag.Bool("race", false, "load race-instrumented package variants (matches what go test -race compiles)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: syrep-lint [flags] [packages]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	vetFailed := false
	if !*noVet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			vetFailed = true
		}
	}

	cfg := analysis.LoadConfig{Race: *race}
	if *tags != "" {
		cfg.Tags = strings.Split(*tags, ",")
	}
	ob := obs.New(nil)
	res, err := runLint(".", patterns, selected, cfg, ob)
	if err != nil {
		fatal(err)
	}

	unsuppressed := len(res.findings)
	if *suppress != "" {
		sups, err := readSuppressions(*suppress)
		if err != nil {
			fatal(err)
		}
		unsuppressed = applySuppressions(res.findings, sups)
		for _, s := range sups {
			if !s.used {
				fmt.Fprintf(os.Stderr, "syrep-lint: warning: unused suppression: %s\t%s\t%s\n", s.Analyzer, s.File, s.Message)
			}
		}
		ob.Counter(metricSuppressed).Add(int64(len(res.findings) - unsuppressed))
	}

	if *fix {
		var fixable []analysis.Diagnostic
		for i, d := range res.diags {
			if !res.findings[i].Suppressed && len(d.Fixes) > 0 {
				fixable = append(fixable, d)
			}
		}
		files, err := analysis.ApplyFixes(res.fset, fixable)
		if err != nil {
			fatal(err)
		}
		if err := analysis.WriteFixes(files); err != nil {
			fatal(err)
		}
		ob.Counter(metricFixedFiles).Add(int64(len(files)))
		fmt.Fprintf(os.Stderr, "syrep-lint: applied fixes in %d file(s)\n", len(files))
	}

	switch {
	case *jsonOut:
		if err := writeFindingsJSON(os.Stdout, res.findings); err != nil {
			fatal(err)
		}
	default:
		suppressedCount := 0
		for _, f := range res.findings {
			if f.Suppressed {
				suppressedCount++
				continue
			}
			fmt.Println(f.String())
		}
		if suppressedCount > 0 {
			fmt.Fprintf(os.Stderr, "syrep-lint: %d finding(s) suppressed by %s\n", suppressedCount, *suppress)
		}
	}

	if *sarifOut != "" {
		if err := writeToFileOrStdout(*sarifOut, func(w *os.File) error {
			return writeSARIF(w, selected, res.findings)
		}); err != nil {
			fatal(err)
		}
	}
	if *metricsJSON != "" {
		if err := writeToFileOrStdout(*metricsJSON, func(w *os.File) error {
			return ob.Snapshot().WriteJSON(w)
		}); err != nil {
			fatal(err)
		}
	}

	if vetFailed || unsuppressed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "syrep-lint:", err)
	os.Exit(2)
}

// writeToFileOrStdout runs emit against path, treating "-" as stdout.
func writeToFileOrStdout(path string, emit func(*os.File) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Metric names emitted under -metrics-json. Per-analyzer wall time and
// finding counts use the metricAnalyzer* prefixes plus the analyzer name.
const (
	metricLoadNanos     = "syrep_lint_load_nanos"
	metricPackages      = "syrep_lint_packages_loaded"
	metricFindings      = "syrep_lint_findings_total"
	metricSuppressed    = "syrep_lint_findings_suppressed"
	metricFixedFiles    = "syrep_lint_fixed_files"
	metricAnalyzerNanos = "syrep_lint_analyzer_nanos_"
	metricAnalyzerFound = "syrep_lint_analyzer_findings_"
)

// finding is a resolved diagnostic: position split into repo-relative file
// and line/column so suppression files and SARIF can match on them.
type finding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// lintRun is one sweep's output: findings for reporting, the raw
// diagnostics (index-aligned with findings) for -fix, and the fset that
// resolves their edit positions.
type lintRun struct {
	fset     *token.FileSet
	diags    []analysis.Diagnostic
	findings []finding
}

// runLint loads the packages matched by patterns in dir and applies the
// selected analyzers over the whole set with a shared fact store, timing
// each analyzer into ob (nil-safe). File paths are reported relative to dir
// when they fall under it.
func runLint(dir string, patterns []string, selected []*analysis.Analyzer, cfg analysis.LoadConfig, ob *obs.Observer) (*lintRun, error) {
	start := time.Now()
	pkgs, err := analysis.LoadWith(cfg, dir, patterns...)
	if err != nil {
		return nil, err
	}
	ob.Counter(metricLoadNanos).Add(time.Since(start).Nanoseconds())
	ob.Counter(metricPackages).Add(int64(len(pkgs)))

	res := &lintRun{}
	if len(pkgs) == 0 {
		return res, nil
	}
	res.fset = pkgs[0].Fset

	last := time.Now()
	diags, err := analysis.RunPackages(pkgs, selected, func(a *analysis.Analyzer, ds []analysis.Diagnostic) {
		now := time.Now()
		ob.Counter(metricAnalyzerNanos + a.Name).Add(now.Sub(last).Nanoseconds())
		ob.Counter(metricAnalyzerFound + a.Name).Add(int64(len(ds)))
		last = now
	})
	if err != nil {
		return nil, err
	}
	ob.Counter(metricFindings).Add(int64(len(diags)))

	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	res.diags = diags
	for _, d := range diags {
		p := d.Position(res.fset)
		file := p.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		res.findings = append(res.findings, finding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     p.Line,
			Col:      p.Column,
			Message:  d.Message,
		})
	}
	return res, nil
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
