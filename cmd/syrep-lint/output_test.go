package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"syrep/internal/analysis"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenFindings is a fixed finding set covering both analyzers' shapes,
// a suppressed entry, and an empty-column edge.
var goldenFindings = []finding{
	{
		Analyzer: "locksafe",
		File:     "internal/cache/cache.go",
		Line:     157,
		Col:      11,
		Message:  "c.mu is held across this call with a plain c.mu.Unlock(); a panic here leaves the lock held past the recover fence — use defer",
	},
	{
		Analyzer:   "chansafe",
		File:       "internal/server/server.go",
		Line:       685,
		Col:        10,
		Message:    "response channel done is unbuffered; a send with no waiting receiver blocks the responder forever — make it 1-buffered",
		Suppressed: true,
	},
	{
		Analyzer: "spanpair",
		File:     "cmd/syrep/main.go",
		Line:     301,
		Col:      2,
		Message:  "span closer end is called without defer; a panic between StartStage and this call leaks the span past the recover fence — defer it (or wrap the stage in a closure)",
	},
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestWriteFindingsJSON pins the -json rendering, including the suppressed
// marker and the empty-array shape for a clean run.
func TestWriteFindingsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFindingsJSON(&buf, goldenFindings); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.json", buf.Bytes())

	buf.Reset()
	if err := writeFindingsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "{\n  \"findings\": []\n}\n"; got != want {
		t.Errorf("empty run rendered %q, want %q", got, want)
	}
}

// TestWriteSARIF pins the -sarif rendering: rules from the analyzer
// registry, one result per finding, and the external-kind suppression on
// the reviewed entry.
func TestWriteSARIF(t *testing.T) {
	sel, err := selectAnalyzers("locksafe,chansafe,spanpair")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, sel, goldenFindings); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.sarif", buf.Bytes())
}

// TestWriteSARIFEmpty keeps the empty report well-formed: zero results must
// render as [], not null, for SARIF consumers.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, []*analysis.Analyzer{}, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Errorf("empty SARIF results must render as []:\n%s", buf.String())
	}
}
