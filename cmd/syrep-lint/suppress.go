package main

// suppress.go reads the reviewed suppression file (conventionally
// lint.suppress at the repo root) and marks matching findings. The file is
// line-oriented:
//
//	# rationale for the entry below (mandatory by convention)
//	<analyzer>\t<repo-relative file>\t<exact message>
//
// Entries deliberately carry no line numbers: unrelated edits move findings
// around, and a suppression reviewed for a message in a file should survive
// that churn. A finding is suppressed when analyzer, file, and message all
// match exactly; anything else is a new finding and fails the run.

import (
	"fmt"
	"os"
	"strings"
)

// suppression is one reviewed entry. used tracks whether any finding
// matched it this run, so stale entries can be reported.
type suppression struct {
	Analyzer string
	File     string
	Message  string
	used     bool
}

// readSuppressions parses path. Blank lines and '#' comments are skipped;
// every other line must have exactly three tab-separated fields.
func readSuppressions(path string) ([]*suppression, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []*suppression
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: want 3 tab-separated fields (analyzer, file, message), got %d", path, i+1, len(parts))
		}
		out = append(out, &suppression{
			Analyzer: strings.TrimSpace(parts[0]),
			File:     strings.TrimSpace(parts[1]),
			Message:  strings.TrimSpace(parts[2]),
		})
	}
	return out, nil
}

// applySuppressions marks findings covered by sups and returns how many
// remain unsuppressed. Matching entries are flagged used.
func applySuppressions(findings []finding, sups []*suppression) int {
	unsuppressed := 0
	for i := range findings {
		f := &findings[i]
		for _, s := range sups {
			if s.Analyzer == f.Analyzer && s.File == f.File && s.Message == f.Message {
				f.Suppressed = true
				s.used = true
			}
		}
		if !f.Suppressed {
			unsuppressed++
		}
	}
	return unsuppressed
}
