// Package cache is the locksafe -fix fixture: bump acquires the mutex and
// returns without any release, the shape whose suggested fix inserts a
// defer right after the acquire.
package cache

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) bump() {
	s.mu.Lock()
	s.n++
}
