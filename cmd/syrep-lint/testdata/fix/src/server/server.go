// Package server is the chansafe -fix fixture: the done field is made
// unbuffered but sent to by complete, the shape whose suggested fix grows
// the make call's capacity to 1.
package server

type job struct {
	done chan int
}

func enqueue(jobs chan *job) *job {
	j := &job{done: make(chan int)}
	jobs <- j
	return j
}

func complete(j *job) {
	j.done <- 1
}
