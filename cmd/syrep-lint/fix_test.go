package main

import (
	"os"
	"path/filepath"
	"testing"

	"syrep/internal/analysis"
)

// TestFixGolden drives the two -fix classes end to end against the fixture
// module under testdata/fix: locksafe's missing-release defer insertion and
// chansafe's channel-buffer growth. Fixes are applied in memory
// (analysis.ApplyFixes, exactly what -fix writes out) and compared against
// the want tree, so the fixture sources stay pristine.
func TestFixGolden(t *testing.T) {
	res, err := runLint(filepath.Join("testdata", "fix", "src"), []string{"./..."}, analyzers, analysis.LoadConfig{}, nil)
	if err != nil {
		t.Fatalf("running analyzers over fixture: %v", err)
	}
	var fixable []analysis.Diagnostic
	for _, d := range res.diags {
		if len(d.Fixes) > 0 {
			fixable = append(fixable, d)
		}
	}
	if len(fixable) != 2 {
		for _, f := range res.findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatalf("got %d fixable diagnostics, want 2 (one per fix class)", len(fixable))
	}

	fixed, err := analysis.ApplyFixes(res.fset, fixable)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	wantFiles := map[string]string{
		"cache/cache.go":   filepath.Join("testdata", "fix", "want", "cache", "cache.go"),
		"server/server.go": filepath.Join("testdata", "fix", "want", "server", "server.go"),
	}
	if len(fixed) != len(wantFiles) {
		t.Fatalf("fixes touched %d files, want %d", len(fixed), len(wantFiles))
	}
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "fix", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range fixed {
		rel, err := filepath.Rel(srcRoot, name)
		if err != nil {
			t.Fatalf("fix outside the fixture tree: %s", name)
		}
		wantPath, ok := wantFiles[filepath.ToSlash(rel)]
		if !ok {
			t.Errorf("unexpected fixed file %s", rel)
			continue
		}
		want, err := os.ReadFile(wantPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s after fix:\n--- got ---\n%s\n--- want ---\n%s", rel, got, want)
		}
	}
}
