package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSuppressFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lint.suppress")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadSuppressions parses entries, skips comments and blanks, and
// rejects malformed lines with their line number.
func TestReadSuppressions(t *testing.T) {
	path := writeSuppressFile(t, strings.Join([]string{
		"# the breaker probe intentionally holds no lock here",
		"locksafe\tinternal/server/breaker.go\tsome exact message",
		"",
		"chansafe\tinternal/server/server.go\tanother message\twith a tab inside",
	}, "\n"))
	sups, err := readSuppressions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(sups))
	}
	if sups[0].Analyzer != "locksafe" || sups[0].File != "internal/server/breaker.go" || sups[0].Message != "some exact message" {
		t.Errorf("entry 0 = %+v", *sups[0])
	}
	// The message field is the rest of the line: embedded tabs stay.
	if want := "another message\twith a tab inside"; sups[1].Message != want {
		t.Errorf("entry 1 message = %q, want %q", sups[1].Message, want)
	}
}

func TestReadSuppressionsMalformed(t *testing.T) {
	path := writeSuppressFile(t, "locksafe only-two-fields\n")
	_, err := readSuppressions(path)
	if err == nil || !strings.Contains(err.Error(), ":1:") {
		t.Fatalf("want a line-numbered parse error, got %v", err)
	}
}

// TestApplySuppressions: matching findings are marked (and only they), the
// unsuppressed count is exact, and matched entries are flagged used so the
// CLI can warn about stale ones.
func TestApplySuppressions(t *testing.T) {
	findings := []finding{
		{Analyzer: "locksafe", File: "a.go", Line: 10, Message: "msg A"},
		{Analyzer: "locksafe", File: "a.go", Line: 99, Message: "msg A"}, // same entry, moved line: still covered
		{Analyzer: "locksafe", File: "b.go", Line: 10, Message: "msg A"}, // different file: not covered
		{Analyzer: "chansafe", File: "a.go", Line: 10, Message: "msg A"}, // different analyzer: not covered
	}
	sups := []*suppression{
		{Analyzer: "locksafe", File: "a.go", Message: "msg A"},
		{Analyzer: "spanpair", File: "z.go", Message: "gone"},
	}
	got := applySuppressions(findings, sups)
	if got != 2 {
		t.Errorf("unsuppressed = %d, want 2", got)
	}
	wantSuppressed := []bool{true, true, false, false}
	for i, f := range findings {
		if f.Suppressed != wantSuppressed[i] {
			t.Errorf("finding %d suppressed = %v, want %v", i, f.Suppressed, wantSuppressed[i])
		}
	}
	if !sups[0].used {
		t.Error("matching entry not marked used")
	}
	if sups[1].used {
		t.Error("stale entry marked used")
	}
}
