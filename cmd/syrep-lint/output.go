package main

// output.go renders findings machine-readably: a plain JSON array for
// scripting, and SARIF 2.1.0 for code-scanning UIs. Suppressed findings are
// included in both — JSON marks them with "suppressed": true, SARIF with a
// suppressions entry of kind "external" — so a report always shows the full
// picture even when the exit code only reflects new findings.

import (
	"encoding/json"
	"io"

	"syrep/internal/analysis"
)

// writeFindingsJSON emits {"findings": [...]} with stable field order and
// two-space indentation. A run with no findings emits an empty array, not
// null, so consumers can range without nil checks.
func writeFindingsJSON(w io.Writer, findings []finding) error {
	if findings == nil {
		findings = []finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings []finding `json:"findings"`
	}{findings})
}

// SARIF 2.1.0 subset. Only the properties code-scanning consumers actually
// read are modelled; the schema reference pins the version.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// writeSARIF emits one run containing every selected analyzer as a rule and
// every finding as a warning-level result.
func writeSARIF(w io.Writer, selected []*analysis.Analyzer, findings []finding) error {
	rules := make([]sarifRule, 0, len(selected))
	for _, a := range selected {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		if f.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "external"}}
		}
		results = append(results, r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "syrep-lint", Rules: rules}}, Results: results}},
	})
}
