package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"syrep/internal/obs"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestList(t *testing.T) {
	out, err := runCmd(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Abilene", "BizNet", "nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestShow(t *testing.T) {
	out, err := runCmd(t, "show", "-topo", "Abilene")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Denver") || !strings.Contains(out, "--") {
		t.Errorf("show output unexpected:\n%s", out)
	}
}

func TestReduceCommand(t *testing.T) {
	out, err := runCmd(t, "reduce", "-topo", "BizNet", "-rule", "aggressive")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "removed, rule aggressive") {
		t.Errorf("reduce output unexpected:\n%s", out)
	}
	if _, err := runCmd(t, "reduce", "-topo", "BizNet", "-rule", "nope"); err == nil {
		t.Error("bad rule accepted")
	}
}

func TestSynthesizeVerifyRepairRoundTrip(t *testing.T) {
	dir := t.TempDir()
	table := filepath.Join(dir, "table.json")

	out, err := runCmd(t, "synthesize", "-topo", "Arpanet1970", "-k", "1",
		"-strategy", "combined", "-o", table)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if !strings.Contains(out, "perfectly 1-resilient") {
		t.Errorf("synthesize output:\n%s", out)
	}
	if _, err := os.Stat(table); err != nil {
		t.Fatalf("table not written: %v", err)
	}

	out, err = runCmd(t, "verify", "-topo", "Arpanet1970", "-routing", table, "-k", "1")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out, "is perfectly 1-resilient") {
		t.Errorf("verify output:\n%s", out)
	}

	// Repairing an already-resilient table is a no-op.
	out, err = runCmd(t, "repair", "-topo", "Arpanet1970", "-routing", table, "-k", "1")
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !strings.Contains(out, "already perfectly 1-resilient") {
		t.Errorf("repair output:\n%s", out)
	}
}

func TestVerifyDetectsNonResilience(t *testing.T) {
	dir := t.TempDir()
	table := filepath.Join(dir, "t.json")
	if _, err := runCmd(t, "synthesize", "-topo", "Arpanet1970", "-k", "0",
		"-strategy", "heuristic", "-o", table); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "verify", "-topo", "Arpanet1970", "-routing", table, "-k", "3")
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic table may or may not be 3-resilient; the command must
	// report one of the two verdicts cleanly.
	if !strings.Contains(out, "resilient") {
		t.Errorf("verify output lacks verdict:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	tests := [][]string{
		{},
		{"frobnicate"},
		{"show", "-topo", "NoSuchTopology"},
		{"synthesize", "-topo", "Abilene", "-strategy", "warp"},
		{"synthesize", "-topo", "Abilene", "-dest", "Atlantis"},
		{"verify", "-topo", "Abilene"},
		{"verify", "-topo", "Abilene", "-routing", "/nonexistent.json"},
	}
	for _, args := range tests {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestMetricsOutConsistency: -metrics-out / -trace-out leave files that agree
// with the run they describe — the stage spans cover the pipeline, the verify
// counters are non-zero for a run that verified, and the trace parses.
func TestMetricsOutConsistency(t *testing.T) {
	dir := t.TempDir()
	table := filepath.Join(dir, "table.json")
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")

	out, err := runCmd(t, "synthesize", "-topo", "Arpanet1970", "-k", "1",
		"-strategy", "combined", "-o", table,
		"-metrics-out", metrics, "-trace-out", trace)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	for _, want := range []string{"metrics written to", "trace written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not a Snapshot: %v", err)
	}
	if snap.Counter(obs.VerifyScenarios) == 0 {
		t.Error("metrics show no verify scenarios for a run that verified")
	}
	if snap.StageDuration(obs.SpanTotal) <= 0 {
		t.Error("metrics carry no total span")
	}
	var stageSum int64
	for name, st := range snap.Stages {
		if name != obs.SpanTotal {
			stageSum += st.Nanos
		}
	}
	if stageSum > snap.Stages[obs.SpanTotal].Nanos {
		t.Errorf("stage time %d exceeds total %d", stageSum, snap.Stages[obs.SpanTotal].Nanos)
	}

	rawTrace, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		Name       string `json:"name"`
		DurationNS int64  `json:"duration_ns"`
	}
	if err := json.Unmarshal(rawTrace, &spans); err != nil {
		t.Fatalf("trace file is not a span list: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("trace is empty")
	}
	// Every span in the trace aggregates into the snapshot's stage table.
	for _, s := range spans {
		if _, ok := snap.Stages[s.Name]; !ok {
			t.Errorf("trace span %q missing from metrics stage table", s.Name)
		}
	}

	// Prometheus flavor: a .prom suffix switches renderers.
	prom := filepath.Join(dir, "metrics.prom")
	if _, err := runCmd(t, "verify", "-topo", "Arpanet1970", "-routing", table,
		"-k", "1", "-metrics-out", prom); err != nil {
		t.Fatalf("verify: %v", err)
	}
	promRaw, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(promRaw), "# TYPE "+obs.VerifyScenarios+" counter") {
		t.Errorf("prometheus export missing verify scenarios metric:\n%s", promRaw)
	}
}

func TestLoadTopologyGraphML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.graphml")
	doc := `<graphml><graph>
	  <node id="0"/><node id="1"/><node id="2"/>
	  <edge source="0" target="1"/><edge source="1" target="2"/>
	  <edge source="2" target="0"/>
	</graph></graphml>`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "show", "-topo", path)
	if err != nil {
		t.Fatalf("show graphml: %v", err)
	}
	if !strings.Contains(out, "3 nodes") {
		t.Errorf("graphml show output:\n%s", out)
	}
}

func TestAnalyze(t *testing.T) {
	dir := t.TempDir()
	table := filepath.Join(dir, "t.json")
	if _, err := runCmd(t, "synthesize", "-topo", "Arpanet1970", "-k", "1",
		"-o", table); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "analyze", "-topo", "Arpanet1970", "-routing", table, "-max-k", "2")
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for _, want := range []string{"resilience:", "worst-case stretch", "link load"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	if _, err := runCmd(t, "analyze", "-topo", "Arpanet1970"); err == nil {
		t.Error("analyze without routing accepted")
	}
}

// TestSynthesizeAllCommand: the batch CLI writes every destination's table
// into one JSON object and reports the per-destination stream.
func TestSynthesizeAllCommand(t *testing.T) {
	dir := t.TempDir()
	tables := filepath.Join(dir, "tables.json")

	out, err := runCmd(t, "synthesize-all", "-topo", "Abilene", "-k", "1",
		"-strategy", "combined", "-workers", "2", "-o", tables)
	if err != nil {
		t.Fatalf("synthesize-all: %v\n%s", err, out)
	}
	if !strings.Contains(out, "11/11 destinations") {
		t.Errorf("synthesize-all output:\n%s", out)
	}
	data, err := os.ReadFile(tables)
	if err != nil {
		t.Fatalf("tables not written: %v", err)
	}
	var byDest map[string]json.RawMessage
	if err := json.Unmarshal(data, &byDest); err != nil {
		t.Fatalf("tables file does not parse: %v", err)
	}
	if len(byDest) != 11 {
		t.Errorf("tables file holds %d destinations, want 11", len(byDest))
	}

	// A destination subset, verified against the single-destination path.
	single := filepath.Join(dir, "one.json")
	if _, err := runCmd(t, "synthesize-all", "-topo", "Abilene", "-k", "1",
		"-dests", "Denver,Seattle", "-o", single); err != nil {
		t.Fatalf("synthesize-all -dests: %v", err)
	}
	data, err = os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	byDest = nil
	if err := json.Unmarshal(data, &byDest); err != nil {
		t.Fatal(err)
	}
	if len(byDest) != 2 {
		t.Errorf("subset file holds %d destinations, want 2", len(byDest))
	}

	// Unknown destinations and strategies fail cleanly.
	if _, err := runCmd(t, "synthesize-all", "-topo", "Abilene", "-dests", "Atlantis"); err == nil {
		t.Error("unknown -dests accepted")
	}
}
