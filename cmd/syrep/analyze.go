package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"syrep/internal/network"
	"syrep/internal/quality"
	"syrep/internal/verify"
)

// cmdAnalyze reports the quantitative profile of a routing table: maximum
// achieved resilience, worst-case path stretch over all scenarios, and
// failure-free link load.
func cmdAnalyze(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	topo := fs.String("topo", "", "topology name or .graphml file")
	routingPath := fs.String("routing", "", "routing table JSON")
	maxK := fs.Int("max-k", 3, "largest resilience level to probe")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := loadTopology(*topo)
	if err != nil {
		return err
	}
	r, err := loadRouting(net, *routingPath)
	if err != nil {
		return err
	}
	ctx := context.Background()

	k, err := verify.MaxResilience(ctx, r, *maxK)
	if err != nil {
		return err
	}
	switch {
	case k < 0:
		fmt.Fprintln(w, "resilience: routing fails even without failures")
	case k == *maxK:
		fmt.Fprintf(w, "resilience: perfectly %d-resilient (probe limit)\n", k)
	default:
		fmt.Fprintf(w, "resilience: perfectly %d-resilient (fails at k=%d)\n", k, k+1)
	}

	probe := k
	if probe < 0 {
		probe = 0
	}
	worst, at, allDelivered, err := quality.WorstStretch(ctx, r, probe)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "worst-case stretch over |F| <= %d: %.2f", probe, worst)
	if worst > 1 && !at.Empty() {
		fmt.Fprintf(w, " (under %v)", at)
	}
	fmt.Fprintln(w)
	if !allDelivered {
		fmt.Fprintln(w, "warning: some connected sources were undelivered during the stretch sweep")
	}

	load := quality.Load(r, network.NewEdgeSet(net.NumRealEdges()))
	fmt.Fprintf(w, "failure-free link load (every node sends 1 unit to %s):\n",
		net.NodeName(r.Dest()))
	for e, l := range load.PerEdge {
		if l == 0 {
			continue
		}
		marker := ""
		if network.EdgeID(e) == load.MaxEdge {
			marker = "  <- max"
		}
		fmt.Fprintf(w, "  %-10s %3d%s\n", net.EdgeName(network.EdgeID(e)), l, marker)
	}
	return nil
}
