// Command syrep synthesises, verifies, repairs and reduces fast re-route
// forwarding tables, mirroring the SyRep prototype's command-line workflow.
//
// Usage:
//
//	syrep list
//	syrep show       -topo <name|file.graphml>
//	syrep reduce     -topo <...> [-dest <node>] [-rule sound|aggressive]
//	syrep synthesize -topo <...> [-dest <node>] [-k N] [-strategy S] [-o table.json]
//	syrep synthesize-all -topo <...> [-dests a,b,...] [-k N] [-strategy S] [-workers N] [-o tables.json]
//	syrep verify     -topo <...> -routing table.json [-k N] [-backend auto|brute|poly]
//	syrep repair     -topo <...> -routing table.json [-k N] [-o repaired.json]
//	syrep analyze    -topo <...> -routing table.json [-max-k N]
//
// The synthesize, verify, and repair subcommands accept -metrics-out (per-run
// counters and per-stage wall times, JSON or Prometheus text by extension)
// and -trace-out (the stage span stream as JSON).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"syrep/internal/core"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/reduce"
	"syrep/internal/routing"
	"syrep/internal/topozoo"
	"syrep/internal/verify"
	"syrep/internal/verify/poly"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "syrep:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "list":
		return cmdList(w)
	case "show":
		return cmdShow(args[1:], w)
	case "reduce":
		return cmdReduce(args[1:], w)
	case "synthesize":
		return cmdSynthesize(args[1:], w)
	case "synthesize-all":
		return cmdSynthesizeAll(args[1:], w)
	case "verify":
		return cmdVerify(args[1:], w)
	case "repair":
		return cmdRepair(args[1:], w)
	case "analyze":
		return cmdAnalyze(args[1:], w)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: syrep <list|show|reduce|synthesize|synthesize-all|verify|repair|analyze> [flags]")
}

// obsFlags carries the shared observability flags of the synthesize, verify,
// and repair subcommands.
type obsFlags struct {
	metricsOut *string
	traceOut   *string
	recorder   *obs.Recorder
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		metricsOut: fs.String("metrics-out", "",
			"write run metrics to this file (JSON when it ends in .json, Prometheus text otherwise)"),
		traceOut: fs.String("trace-out", "", "write the stage span trace to this file as JSON"),
	}
}

// observer builds the run's observer, or returns nil when no output was
// requested (the pipeline then runs fully unobserved).
func (o *obsFlags) observer() *obs.Observer {
	if *o.metricsOut == "" && *o.traceOut == "" {
		return nil
	}
	if *o.traceOut != "" {
		o.recorder = &obs.Recorder{}
		return obs.New(o.recorder)
	}
	return obs.New(nil)
}

// flush writes the requested metrics and trace files. It runs even when the
// run itself failed, so a timed-out run still leaves its measurements behind.
func (o *obsFlags) flush(ob *obs.Observer, w io.Writer) error {
	if ob == nil {
		return nil
	}
	if *o.metricsOut != "" {
		if err := writeFileWith(*o.metricsOut, func(f io.Writer) error {
			return ob.Snapshot().WriteMetrics(f, *o.metricsOut)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "metrics written to %s\n", *o.metricsOut)
	}
	if *o.traceOut != "" {
		if err := writeFileWith(*o.traceOut, o.recorder.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s\n", *o.traceOut)
	}
	return nil
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadTopology resolves -topo: an embedded instance name or a GraphML file.
func loadTopology(name string) (*network.Network, error) {
	if strings.HasSuffix(name, ".graphml") {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		base := strings.TrimSuffix(name[strings.LastIndex(name, "/")+1:], ".graphml")
		return topozoo.ParseGraphML(f, base)
	}
	for _, inst := range topozoo.Embedded() {
		if strings.EqualFold(inst.Name, name) {
			return inst.Net, nil
		}
	}
	return nil, fmt.Errorf("unknown topology %q (run 'syrep list')", name)
}

func resolveDest(net *network.Network, destName string) (network.NodeID, error) {
	if destName == "" {
		return 0, nil
	}
	d := net.NodeByName(destName)
	if d == network.NoNode {
		return 0, fmt.Errorf("unknown destination node %q", destName)
	}
	return d, nil
}

func cmdList(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %6s %6s %6s\n", "name", "nodes", "edges", "conn")
	for _, inst := range topozoo.Embedded() {
		fmt.Fprintf(w, "%-12s %6d %6d %6d\n",
			inst.Name, inst.Net.NumNodes(), inst.Net.NumRealEdges(), inst.Net.EdgeConnectivity())
	}
	return nil
}

func cmdShow(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	topo := fs.String("topo", "", "topology name or .graphml file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := loadTopology(*topo)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, net)
	for _, e := range net.RealEdges() {
		u, v := net.Endpoints(e)
		fmt.Fprintf(w, "  %-8s %s -- %s\n", net.EdgeName(e), net.NodeName(u), net.NodeName(v))
	}
	return nil
}

func cmdReduce(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("reduce", flag.ContinueOnError)
	topo := fs.String("topo", "", "topology name or .graphml file")
	dest := fs.String("dest", "", "destination node (default: first node)")
	rule := fs.String("rule", "aggressive", "reduction rule: sound|aggressive")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := loadTopology(*topo)
	if err != nil {
		return err
	}
	d, err := resolveDest(net, *dest)
	if err != nil {
		return err
	}
	var r reduce.Rule
	switch *rule {
	case "sound":
		r = reduce.Sound
	case "aggressive":
		r = reduce.Aggressive
	default:
		return fmt.Errorf("unknown rule %q", *rule)
	}
	rd, err := reduce.Apply(context.Background(), net, d, r)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d nodes / %d edges -> %d nodes / %d edges (%d removed, rule %s)\n",
		net.Name(), net.NumNodes(), net.NumRealEdges(),
		rd.Reduced.NumNodes(), rd.Reduced.NumRealEdges(), rd.NumRemoved(), r)
	return nil
}

func cmdSynthesize(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("synthesize", flag.ContinueOnError)
	topo := fs.String("topo", "", "topology name or .graphml file")
	dest := fs.String("dest", "", "destination node (default: first node)")
	k := fs.Int("k", 2, "resilience level")
	strategy := fs.String("strategy", "combined", "baseline|heuristic|reduction|combined")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-run timeout")
	out := fs.String("o", "", "write the routing table as JSON to this file")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := loadTopology(*topo)
	if err != nil {
		return err
	}
	d, err := resolveDest(net, *dest)
	if err != nil {
		return err
	}
	s, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	ob := of.observer()
	r, rep, err := core.Synthesize(context.Background(), net, d, *k, core.Options{
		Strategy: s,
		Timeout:  *timeout,
		Obs:      ob,
	})
	if ferr := of.flush(ob, w); ferr != nil {
		return ferr
	}
	if err != nil {
		if p, ok := core.AsPartial(err); ok {
			printPartial(w, p)
			if werr := emitRouting(w, p.Routing, *out); werr != nil {
				return werr
			}
		}
		return err
	}
	fmt.Fprintf(w, "synthesised perfectly %d-resilient routing to %s in %s (strategy %s)\n",
		*k, net.NodeName(d), rep.Elapsed.Round(time.Millisecond), rep.Strategy)
	if rep.Reduced {
		fmt.Fprintf(w, "  reduction removed %d nodes; repair used: reduced=%v expanded=%v\n",
			rep.NodesRemoved, rep.ReducedRepairUsed, rep.ExpansionRepairUsed)
	}
	return emitRouting(w, r, *out)
}

func cmdSynthesizeAll(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("synthesize-all", flag.ContinueOnError)
	topo := fs.String("topo", "", "topology name or .graphml file")
	k := fs.Int("k", 2, "resilience level")
	strategy := fs.String("strategy", "combined", "baseline|heuristic|reduction|combined")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-destination timeout")
	workers := fs.Int("workers", 0, "concurrently synthesized destinations (default: GOMAXPROCS)")
	destsFlag := fs.String("dests", "", "comma-separated destination nodes (default: every node)")
	out := fs.String("o", "", "write all tables to this file as a destination→routing JSON object")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := loadTopology(*topo)
	if err != nil {
		return err
	}
	s, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	var dests []network.NodeID
	if *destsFlag != "" {
		for _, name := range strings.Split(*destsFlag, ",") {
			d, err := resolveDest(net, strings.TrimSpace(name))
			if err != nil {
				return err
			}
			dests = append(dests, d)
		}
	}
	ob := of.observer()
	results, rep, err := core.SynthesizeAll(context.Background(), net, *k, core.BatchOptions{
		Run:     core.Options{Strategy: s, Timeout: *timeout, Obs: ob},
		Dests:   dests,
		Workers: *workers,
		Obs:     ob,
		OnResult: func(res core.DestResult) {
			switch {
			case res.Err != nil:
				fmt.Fprintf(w, "  %-12s FAILED: %v\n", res.Name, res.Err)
			case res.Report != nil && res.Report.Degraded():
				fmt.Fprintf(w, "  %-12s ok (degraded)\n", res.Name)
			default:
				fmt.Fprintf(w, "  %-12s ok\n", res.Name)
			}
		},
	})
	if ferr := of.flush(ob, w); ferr != nil {
		return ferr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "synthesised %d-resilient routings for %d/%d destinations in %s (strategy %s; %d cache hits, %d manager reuses)\n",
		*k, rep.Resilient+rep.Degraded, rep.Dests, rep.Elapsed.Round(time.Millisecond), s,
		rep.CacheHits, rep.Pool.Reuses)
	if *out != "" {
		tables := make(map[string]*routing.Routing, len(results))
		for _, res := range results {
			if res.Routing != nil {
				tables[res.Name] = res.Routing
			}
		}
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "routings written to %s\n", *out)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d destinations failed", rep.Failed, rep.Dests)
	}
	return nil
}

func cmdVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	topo := fs.String("topo", "", "topology name or .graphml file")
	routingPath := fs.String("routing", "", "routing table JSON")
	k := fs.Int("k", 2, "resilience level")
	backendName := fs.String("backend", "auto",
		"verification backend: auto (poly fast path, brute-force oracle fallback), brute, or poly")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := poly.Select(*backendName)
	if err != nil {
		return err
	}
	net, err := loadTopology(*topo)
	if err != nil {
		return err
	}
	r, err := loadRouting(net, *routingPath)
	if err != nil {
		return err
	}
	ob := of.observer()
	var rep *verify.Report
	// The closure scopes the span: its deferred end runs before the flush
	// below, and survives a panicking checker.
	err = func() (e error) {
		_, end := ob.StartStage(context.Background(), "verify")
		defer end()
		rep, e = backend.Check(context.Background(), r, *k,
			verify.Options{Counters: ob.Verify()})
		return
	}()
	if ferr := of.flush(ob, w); ferr != nil {
		return ferr
	}
	if err != nil {
		return err
	}
	if rep.Resilient {
		fmt.Fprintf(w, "routing is perfectly %d-resilient (%d scenarios, %d traces)\n",
			*k, rep.Scenarios, rep.Traces)
		return nil
	}
	fmt.Fprintf(w, "routing is NOT perfectly %d-resilient: %d failing deliveries\n",
		*k, len(rep.Failing))
	for i, f := range rep.Failing {
		if i >= 10 {
			fmt.Fprintf(w, "  ... and %d more\n", len(rep.Failing)-10)
			break
		}
		fmt.Fprintf(w, "  from %s under %v: %s\n",
			net.NodeName(f.Source), f.Failed, f.Outcome)
	}
	fmt.Fprintf(w, "suspicious entries: %d\n", len(rep.Suspicious()))
	return nil
}

func cmdRepair(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	topo := fs.String("topo", "", "topology name or .graphml file")
	routingPath := fs.String("routing", "", "routing table JSON")
	k := fs.Int("k", 2, "resilience level")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-run timeout")
	out := fs.String("o", "", "write the repaired table as JSON to this file")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := loadTopology(*topo)
	if err != nil {
		return err
	}
	r, err := loadRouting(net, *routingPath)
	if err != nil {
		return err
	}
	ob := of.observer()
	outcome, err := core.Repair(context.Background(), r, *k,
		core.Options{Timeout: *timeout, Obs: ob})
	if ferr := of.flush(ob, w); ferr != nil {
		return ferr
	}
	if err != nil {
		if p, ok := core.AsPartial(err); ok {
			printPartial(w, p)
			if werr := emitRouting(w, p.Routing, *out); werr != nil {
				return werr
			}
		}
		return err
	}
	if outcome.AlreadyResilient {
		fmt.Fprintf(w, "routing is already perfectly %d-resilient; nothing to repair\n", *k)
	} else {
		fmt.Fprintf(w, "repaired: %d suspicious entries removed, %d entries changed\n",
			outcome.Removed, len(outcome.Changed))
	}
	return emitRouting(w, outcome.Routing, *out)
}

// printPartial summarises an anytime-supervisor partial result: the run ran
// out of budget or hit a fault, but still salvaged a complete (if not fully
// resilient) routing that the caller may deploy or re-repair later.
func printPartial(w io.Writer, p *core.Partial) {
	fmt.Fprintf(w, "degraded: run cut short in stage %q (%v)\n",
		p.Degradation.Stage, p.Degradation.Cause)
	if p.ResidualUnknown {
		fmt.Fprintln(w, "  salvaged routing with unknown residual (certification also cut short)")
	} else {
		fmt.Fprintf(w, "  salvaged routing with %d residual failing deliveries\n", len(p.Residual))
	}
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "baseline":
		return core.Baseline, nil
	case "heuristic":
		return core.HeuristicOnly, nil
	case "reduction":
		return core.ReductionOnly, nil
	case "combined":
		return core.Combined, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func loadRouting(net *network.Network, path string) (*routing.Routing, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -routing table.json")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return routing.Unmarshal(data, net)
}

func emitRouting(w io.Writer, r *routing.Routing, path string) error {
	if path == "" {
		fmt.Fprint(w, r)
		return nil
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "routing written to %s\n", path)
	return nil
}
