package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s output while run() is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestServeLifecycle boots the binary's run loop on an ephemeral port,
// serves a synthesis request over the wire, then shuts it down via context
// cancellation (the signal path) and checks the drain and the metrics flush.
func TestServeLifecycle(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "final-metrics.prom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-drain-timeout", "2s",
			"-metrics-out", metricsPath,
		}, &out)
	}()

	// The listen address appears on the first output line.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen address announced; output so far:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}

	body := `{"links":[["a","b"],["b","d"],["a","c"],["c","d"],["a","d"]],"dest":"d","k":1}`
	resp, err = http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/synthesize: %v", err)
	}
	var api struct {
		Status    string          `json:"status"`
		Resilient bool            `json:"resilient"`
		Routing   json.RawMessage `json:"routing"`
	}
	err = json.NewDecoder(resp.Body).Decode(&api)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.StatusCode != http.StatusOK || api.Status != "ok" || !api.Resilient || len(api.Routing) == 0 {
		t.Fatalf("synthesize over the wire: status %d, body %+v", resp.StatusCode, api)
	}

	// SIGTERM equivalent: cancel the run context and expect a clean drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("no drain confirmation in output:\n%s", out.String())
	}

	// The shutdown flush left the final snapshot behind.
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics flush: %v", err)
	}
	if !strings.Contains(string(data), "syrep_server_accepted_total") {
		t.Errorf("flushed metrics missing server counters:\n%s", data)
	}
}

// TestServeFlagErrors: bad flags fail fast without binding a port.
func TestServeFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run(context.Background(), []string{"-addr", "definitely:not:an:addr:0"}, &out); err == nil {
		t.Fatal("run accepted an unusable listen address")
	}
}

// TestServeBannerReflectsDefaults: the startup banner resolves the same
// defaults the server itself applies.
func TestServeBannerReflectsDefaults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "3", "-queue", "7"}, &out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "listening on") {
		if time.Now().After(deadline) {
			t.Fatalf("no banner; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("(%d workers, queue %d)", 3, 7)) {
		t.Errorf("banner does not reflect flags:\n%s", out.String())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestServeCachePersistence: a synthesis cached during one run is saved on
// shutdown and warms the cache of the next run.
func TestServeCachePersistence(t *testing.T) {
	snapshot := filepath.Join(t.TempDir(), "cache.json")

	boot := func(out *syncBuffer) (context.CancelFunc, chan error, string) {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{
				"-addr", "127.0.0.1:0",
				"-workers", "2",
				"-drain-timeout", "2s",
				"-cache-persist", snapshot,
			}, out)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if m := listenRE.FindStringSubmatch(out.String()); m != nil {
				return cancel, done, m[1]
			}
			if time.Now().After(deadline) {
				cancel()
				t.Fatalf("no listen address announced; output so far:\n%s", out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	var first syncBuffer
	cancel, done, addr := boot(&first)
	body := `{"topology":"Abilene","dest":"NewYork","k":1}`
	resp, err := http.Post("http://"+addr+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/synthesize: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize = %d, want 200", resp.StatusCode)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	if !strings.Contains(first.String(), "cache: saved 1 entries") {
		t.Fatalf("no cache save confirmation:\n%s", first.String())
	}
	if _, err := os.Stat(snapshot); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	var second syncBuffer
	cancel, done, _ = boot(&second)
	if !strings.Contains(second.String(), "cache: restored 1 entries") {
		cancel()
		t.Fatalf("no cache restore confirmation:\n%s", second.String())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestServeCachePersistRequiresCache: persistence without a cache is a
// configuration error, caught before binding a port.
func TestServeCachePersistRequiresCache(t *testing.T) {
	var out syncBuffer
	err := run(context.Background(),
		[]string{"-cache-entries", "0", "-cache-persist", "x.json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-cache-entries") {
		t.Fatalf("err = %v, want -cache-entries requirement", err)
	}
}
