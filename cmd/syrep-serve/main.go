// Command syrep-serve runs the resilient synthesis/repair service: a
// bounded-queue worker pool around the anytime supervisor, with retrying,
// circuit-broken degradation, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	syrep-serve [-addr host:port] [-workers N] [-queue N] [-retries N]
//	            [-breaker-threshold N] [-breaker-cooldown D]
//	            [-drain-timeout D] [-mem-limit MB] [-metrics-out file]
//	            [-cache-entries N] [-cache-ttl D] [-cache-persist file]
//	            [-verify-backend auto|brute|poly]
//
// Endpoints:
//
//	POST /v1/synthesize  {"topology":"abilene","dest":"n0","k":2}
//	POST /v1/repair      {"links":[["a","b"],...],"routing":{...},"k":2}
//	                     (omit "routing" for warm-start dynamic repair)
//	GET  /v1/topologies  embedded topology catalogue
//	GET  /v1/cache       synthesis cache stats (hits, misses, warm starts)
//	GET  /healthz        liveness
//	GET  /readyz         readiness (breaker closed, queue below high water)
//	GET  /metrics        Prometheus exposition
//
// On shutdown the server stops admitting, drains in-flight work under
// -drain-timeout, and writes the final metrics snapshot to -metrics-out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"syrep/internal/cache"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/server"
	"syrep/internal/topozoo"
	"syrep/internal/verify/poly"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "syrep-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("syrep-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7077", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	retries := fs.Int("retries", 3, "max retries for transient failures (negative disables)")
	breakerThreshold := fs.Int("breaker-threshold", 5,
		"consecutive transient failures that trip the circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second,
		"how long the breaker stays open before half-open probes")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight work before force-cancelling")
	memLimit := fs.Int("mem-limit", 0,
		"heap size in MiB above which the breaker trips into degraded mode (0 disables)")
	cacheEntries := fs.Int("cache-entries", 256,
		"synthesis cache capacity in entries (0 disables the cache and the warm-start repair path)")
	cacheTTL := fs.Duration("cache-ttl", 15*time.Minute,
		"synthesis cache entry time-to-live")
	cachePersist := fs.String("cache-persist", "",
		"warm the synthesis cache from this file at startup and save it back on shutdown (requires -cache-entries > 0)")
	metricsOut := fs.String("metrics-out", "",
		"write the final metrics snapshot here on shutdown (JSON when it ends in .json, Prometheus text otherwise)")
	verifyBackend := fs.String("verify-backend", "auto",
		"verification backend: auto (poly fast path with brute-force oracle fallback), brute, or poly")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := poly.Select(*verifyBackend)
	if err != nil {
		return err
	}

	ob := obs.New(nil)
	cfg := server.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		RetryMax:      *retries,
		Breaker:       server.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		DrainTimeout:  *drainTimeout,
		Obs:           ob,
		VerifyBackend: backend,
	}
	if *retries == 0 {
		cfg.RetryMax = -1
	}
	if *cacheEntries > 0 {
		cfg.Cache = cache.New(cache.Config{
			MaxEntries: *cacheEntries,
			TTL:        *cacheTTL,
			Obs:        ob,
		})
	}
	if *cachePersist != "" {
		if cfg.Cache == nil {
			return errors.New("-cache-persist requires -cache-entries > 0")
		}
		if err := loadCache(w, *cachePersist, cfg.Cache); err != nil {
			return err
		}
	}
	if *memLimit > 0 {
		limit := uint64(*memLimit) << 20
		cfg.MemoryPressure = func() bool {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc > limit
		}
	}
	if *metricsOut != "" {
		cfg.OnFlush = func(snap obs.Snapshot) {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(w, "metrics flush:", err)
				return
			}
			if err := snap.WriteMetrics(f, *metricsOut); err != nil {
				fmt.Fprintln(w, "metrics flush:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(w, "metrics flush:", err)
				return
			}
			fmt.Fprintf(w, "metrics written to %s\n", *metricsOut)
		}
	}

	s := server.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "syrep-serve listening on %s (%d workers, queue %d)\n",
		ln.Addr(), cfgWorkers(cfg), cfgQueue(cfg))

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; still drain the pool.
		derr := s.Shutdown(context.Background())
		perr := saveCache(w, *cachePersist, cfg.Cache)
		return errors.Join(err, derr, perr)
	case <-ctx.Done():
	}

	fmt.Fprintln(w, "shutting down: draining in-flight work")
	// The HTTP drain and the pool drain share one deadline with headroom for
	// the force-cancel path to unwind.
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	herr := hs.Shutdown(sctx)
	if errors.Is(herr, context.DeadlineExceeded) {
		herr = nil // stragglers were cut off; the pool drain below reports real trouble
	}
	derr := s.Shutdown(sctx)
	if derr == nil {
		fmt.Fprintln(w, "drained")
	}
	perr := saveCache(w, *cachePersist, cfg.Cache)
	return errors.Join(herr, derr, perr)
}

// loadCache warms c from a prior Save snapshot. Entries are resolved against
// the embedded topology suite; a missing file is a clean first boot, not an
// error.
func loadCache(w io.Writer, path string, c *cache.Cache) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	known := make(map[network.Fingerprint]*network.Network)
	for _, inst := range topozoo.Embedded() {
		known[inst.Net.Fingerprint()] = inst.Net
	}
	n, err := c.Load(f, func(fp network.Fingerprint) *network.Network { return known[fp] })
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cache: restored %d entries from %s\n", n, path)
	return nil
}

// saveCache writes the cache snapshot atomically (tmp + rename) so a crash
// mid-save never clobbers the previous snapshot.
func saveCache(w io.Writer, path string, c *cache.Cache) error {
	if path == "" || c == nil {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	n, err := c.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache persist: %w", err)
	}
	fmt.Fprintf(w, "cache: saved %d entries to %s\n", n, path)
	return nil
}

// cfgWorkers and cfgQueue mirror Config.withDefaults for the startup banner
// (the resolved values live inside the server).
func cfgWorkers(cfg server.Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func cfgQueue(cfg server.Config) int {
	if cfg.QueueDepth > 0 {
		return cfg.QueueDepth
	}
	return 4 * cfgWorkers(cfg)
}
