// Integration sweep: the full SyRep pipeline over a deterministic slice of
// the topology suite, with every produced routing re-verified by the
// independent brute-force verifier and spot-checked for stretch sanity.
package syrep_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"syrep/internal/combinatorial"
	"syrep/internal/core"
	"syrep/internal/network"
	"syrep/internal/quality"
	"syrep/internal/topozoo"
	"syrep/internal/verify"
)

func TestIntegrationPipelineSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	ctx := context.Background()
	suite := topozoo.GeneratedSuite(topozoo.SuiteConfig{
		MinNodes: 8, MaxNodes: 16, Step: 4, SeedsPerSize: 1,
	})
	for _, inst := range topozoo.Embedded() {
		if inst.Net.NumNodes() <= 11 {
			suite = append(suite, inst)
		}
	}
	for _, inst := range suite {
		for k := 1; k <= 2; k++ {
			r, rep, err := core.Synthesize(ctx, inst.Net, inst.Dest, k, core.Options{
				Strategy: core.Combined,
				Timeout:  30 * time.Second,
			})
			if err != nil {
				if errors.Is(err, core.ErrUnsolvable) || errors.Is(err, context.DeadlineExceeded) {
					t.Logf("%s k=%d: %v (accepted)", inst.Name, k, err)
					continue
				}
				t.Fatalf("%s k=%d: %v", inst.Name, k, err)
			}
			check, err := verify.Check(ctx, r, k, verify.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !check.Resilient {
				t.Fatalf("%s k=%d: pipeline output not resilient: %v",
					inst.Name, k, check.Failing)
			}
			if !r.Complete() {
				t.Errorf("%s k=%d: incomplete routing", inst.Name, k)
			}
			if rep.Elapsed <= 0 {
				t.Errorf("%s k=%d: missing timing", inst.Name, k)
			}
			// Failure-free stretch of a synthesised routing is finite and
			// at least 1 for every source.
			sr, err := quality.Stretch(r, network.NewEdgeSet(inst.Net.NumRealEdges()))
			if err != nil {
				t.Fatal(err)
			}
			if len(sr.Undelivered) != 0 {
				t.Errorf("%s k=%d: undelivered sources on intact network", inst.Name, k)
			}
			if sr.Max < 1 && len(sr.PerSource) > 0 {
				t.Errorf("%s k=%d: stretch below 1", inst.Name, k)
			}
		}
	}
}

// TestIntegrationCombinatorialEquivalence compiles a synthesised routing to
// a combinatorial table and checks the resilience verdict transfers.
func TestIntegrationCombinatorialEquivalence(t *testing.T) {
	ctx := context.Background()
	inst := topozoo.Instance{
		Net:  topozoo.Generate(topozoo.GenConfig{Nodes: 10, Seed: 4}),
		Dest: 0,
		Name: "zoo10",
	}
	r, _, err := core.Synthesize(ctx, inst.Net, inst.Dest, 2, core.Options{
		Strategy: core.Combined,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Skipf("instance unsolved: %v", err)
	}
	tab, err := combinatorial.FromSkipping(r)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Resilient(2) {
		t.Error("combinatorial compilation lost 2-resilience")
	}
	if tab.NumEntries() <= r.NumEntries() {
		t.Errorf("combinatorial entries %d <= skipping %d", tab.NumEntries(), r.NumEntries())
	}
}
