package syrep_test

import (
	"context"
	"errors"
	"testing"

	"syrep"
	"syrep/internal/papernet"
)

var ctx = context.Background()

// buildTriangleWithChord builds a small 2-edge-connected network through the
// public API only.
func buildPublicNet(t *testing.T) (*syrep.Network, syrep.NodeID) {
	t.Helper()
	b := syrep.NewBuilder("pub")
	d := b.AddNode("d")
	a := b.AddNode("a")
	c := b.AddNode("c")
	e := b.AddNode("e")
	b.AddEdge(d, a)
	b.AddEdge(a, c)
	b.AddEdge(c, d)
	b.AddEdge(c, e)
	b.AddEdge(e, d)
	net, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return net, d
}

func TestPublicSynthesize(t *testing.T) {
	net, d := buildPublicNet(t)
	r, rep, err := syrep.Synthesize(ctx, net, d, 2, syrep.Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !syrep.Resilient(r, 2) {
		t.Error("routing not 2-resilient")
	}
	if rep.Strategy != syrep.Combined {
		t.Errorf("default strategy = %v, want Combined", rep.Strategy)
	}
}

func TestPublicStrategies(t *testing.T) {
	net, d := buildPublicNet(t)
	for _, s := range []syrep.Strategy{syrep.Baseline, syrep.HeuristicOnly, syrep.ReductionOnly, syrep.Combined} {
		r, _, err := syrep.Synthesize(ctx, net, d, 1, syrep.Options{Strategy: s})
		if err != nil {
			t.Errorf("%v: %v", s, err)
			continue
		}
		if !syrep.Resilient(r, 1) {
			t.Errorf("%v: routing not 1-resilient", s)
		}
	}
}

func TestPublicRepairRunningExample(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	out, err := syrep.Repair(ctx, r, 2, syrep.Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !syrep.Resilient(out.Routing, 2) {
		t.Error("repaired routing not 2-resilient")
	}
	if len(out.Changed) == 0 {
		t.Error("repair reported no changed entries")
	}
}

func TestPublicVerify(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	rep, err := syrep.Verify(ctx, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilient {
		t.Error("Figure 1b reported 2-resilient")
	}
	if len(rep.Suspicious()) != 6 {
		t.Errorf("suspicious entries = %d, want 6", len(rep.Suspicious()))
	}
}

func TestPublicMaxResilience(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	got, err := syrep.MaxResilience(ctx, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MaxResilience = %d, want 1", got)
	}
}

func TestPublicNewRouting(t *testing.T) {
	net, d := buildPublicNet(t)
	r := syrep.NewRouting(net, d)
	if r.NumEntries() != 0 {
		t.Error("new routing not empty")
	}
	// Empty routing is not even 0-resilient; Repair escalates... the
	// standalone Repair (paper semantics, no escalation) reports
	// ErrUnsolvable because the packet is dropped with no firing entries.
	_, err := syrep.Repair(ctx, r, 0, syrep.Options{})
	if err == nil {
		t.Error("Repair of empty routing succeeded without entries")
	} else if !errors.Is(err, syrep.ErrUnsolvable) {
		t.Errorf("err = %v, want ErrUnsolvable", err)
	}
}
