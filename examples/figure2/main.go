// Figure2 reproduces the paper's Figure 2: the two-node network with three
// parallel links, whose only synthesis problem is the priority list
// R(lb_v1, v1). The literal symbolic-failure BDD encoding computes the
// formula 𝒫 of all perfectly 2-resilient routings — exactly the six
// permutations of (e0, e1, e2) — and renders the BDD as Graphviz DOT.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"syrep/internal/encode"
	"syrep/internal/network"
	"syrep/internal/routing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Figure 2a: d and v1 joined by the parallel links e0, e1, e2.
	b := network.NewBuilder("fig2")
	d := b.AddNode("d")
	v1 := b.AddNode("v1")
	b.AddNamedEdge("e0", v1, d)
	b.AddNamedEdge("e1", v1, d)
	b.AddNamedEdge("e2", v1, d)
	net, err := b.Build()
	if err != nil {
		return err
	}

	// The single hole: R(lb_v1, v1), a priority list of k+1 = 3 edges.
	r := routing.New(net, d)
	if err := r.PunchHole(net.Loopback(v1), v1, 3); err != nil {
		return err
	}

	sym, err := encode.BuildSymbolic(context.Background(), r, 2, encode.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("BDD variables: %d, fixpoint iterations: %d\n",
		sym.M.NumVars(), sym.Iterations)
	fmt.Printf("perfectly 2-resilient routings encoded in 𝒫: %.0f\n", sym.NumSolutions())

	key := routing.Key{In: net.Loopback(v1), At: v1}
	fmt.Println("\nall solutions (paper: the six permutations):")
	for _, f := range sym.Enumerate(0) {
		var names []string
		for _, e := range f[key] {
			names = append(names, net.EdgeName(e))
		}
		fmt.Printf("  R(lb_v1, v1) = (%s)\n", strings.Join(names, ", "))
	}

	// Figure 2b: the BDD itself, as Graphviz DOT on stdout.
	fmt.Println("\nBDD of 𝒫 (render with: dot -Tpng):")
	return sym.M.WriteDOT(os.Stdout, sym.P, "P_fig2")
}
