// Churn-controller demonstrates the churn-driven repair controller: a
// reconciliation loop that keeps forwarding tables warm while links flap.
//
// It walks the event lifecycle end to end against an in-memory sink:
//
//  1. a link fails — the table is repaired and a snapshot delta is pushed;
//  2. a second link flaps down/up/down in one burst — the inbox coalesces
//     it to a single state change and a single patch delta;
//  3. the link recovers — the warm-start cache makes the repair cheap;
//  4. another link fails and then the controller "dies" mid-deployment;
//  5. a new controller recovers from the write-ahead journal — it knows
//     the epoch, the down link, and what the sink already holds, so it
//     re-pushes nothing;
//  6. the recovered controller handles the link's repair like nothing
//     happened;
//
// and prints every settlement (the trichotomy: pushed / degraded / error)
// with its arrival-to-settlement latency.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"syrep/internal/cache"
	"syrep/internal/controller"
	"syrep/internal/journal"
	"syrep/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base, err := controller.SimNetwork(8)
	if err != nil {
		return err
	}
	links := base.EdgeKeys()
	sink := controller.NewMemSink()
	ob := obs.New(nil)

	// The journal makes the controller crash-safe: every accepted event,
	// delta, and ack is logged here before it takes effect.
	walDir, err := os.MkdirTemp("", "churn-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	fsys, err := journal.NewDirFS(walDir)
	if err != nil {
		return err
	}
	jrn, err := journal.Open(fsys, journal.Options{Obs: ob})
	if err != nil {
		return err
	}

	settle := make(chan controller.Settlement, 64)
	cfg := controller.Config{
		Base:     base,
		Dests:    []string{"s0"},
		K:        1,
		Sink:     sink,
		Cache:    cache.New(cache.Config{MaxEntries: 64, Obs: ob}),
		Obs:      ob,
		Journal:  jrn,
		OnSettle: func(s controller.Settlement) { settle <- s },
	}
	ctl, err := controller.New(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	exit := make(chan error, 1)
	go func() { exit <- ctl.Run(ctx) }()

	await := func(n int) {
		for i := 0; i < n; i++ {
			s := <-settle
			fmt.Printf("  settled %-12s outcome=%-8s epoch=%d latency=%v\n",
				s.Event, s.Outcome, s.Epoch, s.Latency.Round(time.Microsecond))
		}
	}
	offer := func(link string, up bool) {
		if err := ctl.Offer(controller.Event{Link: link, Up: up}); err != nil {
			log.Fatalf("offer: %v", err)
		}
	}

	fmt.Printf("1) link %s fails:\n", links[0])
	offer(links[0], false)
	await(1)
	fmt.Printf("   sink now holds %d rules for s0 (epoch %d, %d pushes)\n\n",
		len(sink.Table("s0")), sink.Epoch("s0"), len(sink.Pushes()))

	fmt.Printf("2) link %s flaps down/up/down in one burst:\n", links[5])
	before := len(sink.Pushes())
	offer(links[5], false)
	offer(links[5], true)
	offer(links[5], false)
	await(3) // all three events settle, sharing the coalesced outcome
	fmt.Printf("   the 3-event flap produced %d delta push(es)\n\n", len(sink.Pushes())-before)

	fmt.Printf("3) link %s recovers:\n", links[0])
	offer(links[0], true)
	await(1)

	fmt.Printf("\n4) link %s fails, then the controller process dies:\n", links[3])
	offer(links[3], false)
	await(1)
	cancel()
	if err := <-exit; err != nil && err != context.Canceled {
		return err
	}
	jrn.Close()
	pushesBefore := len(sink.Pushes())

	fmt.Println("\n5) a new controller recovers from the journal:")
	if jrn, err = journal.Open(fsys, journal.Options{Obs: ob}); err != nil {
		return err
	}
	cfg.Journal = jrn
	ctl, info, err := controller.Recover(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("   recovered epoch=%d down=[%s] records=%d cacheSeeded=%d tornTail=%v\n",
		info.Epoch, strings.Join(info.Down, " "), info.Records,
		info.CacheSeeded, info.TornTail)
	ctx, cancel = context.WithCancel(context.Background())
	go func() { exit <- ctl.Run(ctx) }()

	fmt.Printf("\n6) link %s recovers under the recovered controller:\n", links[3])
	offer(links[3], true)
	await(1)
	newPushes := len(sink.Pushes()) - pushesBefore
	fmt.Printf("   the sink already held the crash-time table, so recovery plus\n"+
		"   this repair cost %d push(es) total — nothing acked was re-sent\n",
		newPushes)

	cancel()
	if err := <-exit; err != nil && err != context.Canceled {
		return err
	}

	snap := ob.Snapshot()
	fmt.Printf("\ncontroller totals: events=%d coalesced=%d repairs=%d warm=%d cold=%d pushes=%d\n",
		snap.Counter(obs.CtlEvents), snap.Counter(obs.CtlCoalesced),
		snap.Counter(obs.CtlRepairs), snap.Counter(obs.CtlWarmRepairs),
		snap.Counter(obs.CtlColdSynths), snap.Counter(obs.CtlPushes))
	return nil
}
