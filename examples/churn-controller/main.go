// Churn-controller demonstrates the churn-driven repair controller: a
// reconciliation loop that keeps forwarding tables warm while links flap.
//
// It walks the event lifecycle end to end against an in-memory sink:
//
//  1. a link fails — the table is repaired and a snapshot delta is pushed;
//  2. a second link flaps down/up/down in one burst — the inbox coalesces
//     it to a single state change and a single patch delta;
//  3. the link recovers — the warm-start cache makes the repair cheap;
//
// and prints every settlement (the trichotomy: pushed / degraded / error)
// with its arrival-to-settlement latency.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"syrep/internal/cache"
	"syrep/internal/controller"
	"syrep/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base, err := controller.SimNetwork(8)
	if err != nil {
		return err
	}
	links := base.EdgeKeys()
	sink := controller.NewMemSink()
	ob := obs.New(nil)

	settle := make(chan controller.Settlement, 64)
	ctl, err := controller.New(controller.Config{
		Base:     base,
		Dests:    []string{"s0"},
		K:        1,
		Sink:     sink,
		Cache:    cache.New(cache.Config{MaxEntries: 64, Obs: ob}),
		Obs:      ob,
		OnSettle: func(s controller.Settlement) { settle <- s },
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	exit := make(chan error, 1)
	go func() { exit <- ctl.Run(ctx) }()

	await := func(n int) {
		for i := 0; i < n; i++ {
			s := <-settle
			fmt.Printf("  settled %-12s outcome=%-8s epoch=%d latency=%v\n",
				s.Event, s.Outcome, s.Epoch, s.Latency.Round(time.Microsecond))
		}
	}
	offer := func(link string, up bool) {
		if err := ctl.Offer(controller.Event{Link: link, Up: up}); err != nil {
			log.Fatalf("offer: %v", err)
		}
	}

	fmt.Printf("1) link %s fails:\n", links[0])
	offer(links[0], false)
	await(1)
	fmt.Printf("   sink now holds %d rules for s0 (epoch %d, %d pushes)\n\n",
		len(sink.Table("s0")), sink.Epoch("s0"), len(sink.Pushes()))

	fmt.Printf("2) link %s flaps down/up/down in one burst:\n", links[5])
	before := len(sink.Pushes())
	offer(links[5], false)
	offer(links[5], true)
	offer(links[5], false)
	await(3) // all three events settle, sharing the coalesced outcome
	fmt.Printf("   the 3-event flap produced %d delta push(es)\n\n", len(sink.Pushes())-before)

	fmt.Printf("3) link %s recovers:\n", links[0])
	offer(links[0], true)
	await(1)

	cancel()
	if err := <-exit; err != nil && err != context.Canceled {
		return err
	}

	snap := ob.Snapshot()
	fmt.Printf("\ncontroller totals: events=%d coalesced=%d repairs=%d warm=%d cold=%d pushes=%d\n",
		snap.Counter(obs.CtlEvents), snap.Counter(obs.CtlCoalesced),
		snap.Counter(obs.CtlRepairs), snap.Counter(obs.CtlWarmRepairs),
		snap.Counter(obs.CtlColdSynths), snap.Counter(obs.CtlPushes))
	return nil
}
