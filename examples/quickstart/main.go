// Quickstart walks through the SyRep paper's running example (Figures 1
// and 3): build the 5-node network, generate the heuristic skipping table,
// demonstrate the forwarding loop under the double failure {e1, e2}, repair
// the table with the BDD engine, and verify perfect 2-resilience.
package main

import (
	"context"
	"fmt"
	"log"

	"syrep"
	"syrep/internal/network"
	"syrep/internal/trace"
	"syrep/internal/verify"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Figure 1a: five nodes, seven bidirectional links.
	b := syrep.NewBuilder("fig1")
	d := b.AddNode("d")
	v1 := b.AddNode("v1")
	v2 := b.AddNode("v2")
	v3 := b.AddNode("v3")
	v4 := b.AddNode("v4")
	b.AddNamedEdge("e0", v2, d)
	b.AddNamedEdge("e1", v3, d)
	b.AddNamedEdge("e2", v4, d)
	b.AddNamedEdge("e3", v1, v3)
	b.AddNamedEdge("e4", v1, v4)
	b.AddNamedEdge("e5", v2, v4)
	b.AddNamedEdge("e6", v3, v4)
	net, err := b.Build()
	if err != nil {
		return err
	}

	// The heuristic generator of Section IV-A reproduces Figure 1b.
	r, _, err := syrep.Synthesize(ctx, net, d, 1, syrep.Options{Strategy: syrep.HeuristicOnly})
	if err != nil {
		return err
	}
	fmt.Println("heuristic routing table (paper Figure 1b):")
	fmt.Print(r)

	fmt.Println("\nperfectly 1-resilient?", syrep.Resilient(r, 1))
	fmt.Println("perfectly 2-resilient?", syrep.Resilient(r, 2))

	// Figure 1c: the forwarding loop when e1 and e2 fail simultaneously.
	F := network.EdgeSetOf(net.NumRealEdges(), 1, 2)
	res := trace.Run(r, F, v3)
	fmt.Printf("\ntrace from v3 under {e1,e2}: %s\n", res.Format(net))

	// Verification marks the suspicious entries (six, per the paper).
	rep, err := syrep.Verify(ctx, r, 2)
	if err != nil {
		return err
	}
	fmt.Printf("failing deliveries: %d, suspicious entries: %d\n",
		len(rep.Failing), len(rep.Suspicious()))

	// Repair: remove the suspicious entries, let the BDD engine fill them.
	out, err := syrep.Repair(ctx, r, 2, syrep.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nrepaired (%d entries changed):\n", len(out.Changed))
	fmt.Print(out.Routing)
	fmt.Println("\nperfectly 2-resilient now?", syrep.Resilient(out.Routing, 2))

	// Independent cross-check with the exhaustive verifier.
	check, err := verify.Check(ctx, out.Routing, 2, verify.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("exhaustive check: %d scenarios, %d traces, resilient=%v\n",
		check.Scenarios, check.Traces, check.Resilient)
	return nil
}
