// Traffic-profile demonstrates the quality analyses the paper motivates
// (Section IV-A: default paths can be chosen to minimise "stretch or
// congestion"; Section VII: utilisation-aware synthesis as future work):
// synthesise a 2-resilient table for Abilene, then profile worst-case path
// stretch and failure-free link load, and show how load shifts when the
// busiest link fails.
package main

import (
	"context"
	"fmt"
	"log"

	"syrep"
	"syrep/internal/network"
	"syrep/internal/quality"
	"syrep/internal/topozoo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	var abilene topozoo.Instance
	for _, inst := range topozoo.Embedded() {
		if inst.Name == "Abilene" {
			abilene = inst
		}
	}
	net := abilene.Net
	dest := net.NodeByName("NewYork")

	r, rep, err := syrep.Synthesize(ctx, net, dest, 2, syrep.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("Abilene: perfectly 2-resilient routing to NewYork in %s\n\n",
		rep.Elapsed.Round(1000))

	// Worst-case stretch across every <=2-failure scenario.
	worst, at, allDelivered, err := quality.WorstStretch(ctx, r, 2)
	if err != nil {
		return err
	}
	fmt.Printf("worst-case stretch over all |F| <= 2: %.2f (under %v, allDelivered=%v)\n\n",
		worst, at, allDelivered)

	// Failure-free load profile.
	none := network.NewEdgeSet(net.NumRealEdges())
	base := quality.Load(r, none)
	fmt.Println("failure-free link load (1 unit per source):")
	printLoad(net, base)

	// Fail the busiest link and watch the traffic shift.
	F := network.EdgeSetOf(net.NumRealEdges(), base.MaxEdge)
	shifted := quality.Load(r, F)
	fmt.Printf("\nafter failing the busiest link %s:\n", net.EdgeName(base.MaxEdge))
	printLoad(net, shifted)
	fmt.Printf("\nundelivered sources after the failure: %d (0 = the table re-routes everyone)\n",
		shifted.Undelivered)
	return nil
}

func printLoad(net *syrep.Network, rep *quality.LoadReport) {
	for e, l := range rep.PerEdge {
		if l == 0 {
			continue
		}
		u, v := net.Endpoints(network.EdgeID(e))
		marker := ""
		if network.EdgeID(e) == rep.MaxEdge {
			marker = "  <- max"
		}
		fmt.Printf("  %-24s %2d%s\n",
			net.NodeName(u)+" - "+net.NodeName(v), l, marker)
	}
}
