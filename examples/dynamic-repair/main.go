// Dynamic-repair demonstrates the paper's Section VII outlook: when the
// network changes (a link is added), the repair method fills in the routing
// entries around the change while preserving the rest of the data plane —
// instead of re-synthesising everything from scratch.
//
// It also shows the anytime path: an update cut short by its budget does not
// leave the operator empty-handed — the supervisor returns a typed
// *syrep.Partial carrying the best table it had, ready to deploy while a
// bigger budget is scheduled.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"syrep"
	"syrep/internal/encode"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
	"syrep/internal/routing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const k = 2

	// The original network: a 6-node ring with one chord.
	build := func(withNewLink bool) (*syrep.Network, error) {
		b := syrep.NewBuilder("dyn")
		names := []string{"d", "a", "b", "c", "e", "f"}
		ids := make([]syrep.NodeID, len(names))
		for i, n := range names {
			ids[i] = b.AddNode(n)
		}
		for i := range ids {
			b.AddNamedEdge(fmt.Sprintf("ring%d", i), ids[i], ids[(i+1)%len(ids)])
		}
		b.AddNamedEdge("chord0", ids[1], ids[4]) // a - e
		if withNewLink {
			b.AddNamedEdge("newlink", ids[2], ids[5]) // b - f
		}
		net, err := b.Build()
		return net, err
	}

	oldNet, err := build(false)
	if err != nil {
		return err
	}
	dest := oldNet.NodeByName("d")

	oldRouting, _, err := syrep.Synthesize(ctx, oldNet, dest, k, syrep.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("original network: %d nodes, %d edges; 2-resilient table with %d entries\n",
		oldNet.NumNodes(), oldNet.NumRealEdges(), oldRouting.NumEntries())

	// The network gains the link b-f. Port the table by name (edge names
	// are stable), then punch holes only where the change matters: the new
	// link's own in-edge entries and every entry at its two endpoints.
	newNet, err := build(true)
	if err != nil {
		return err
	}
	data, err := json.Marshal(oldRouting)
	if err != nil {
		return err
	}
	ported, err := routing.Unmarshal(data, newNet)
	if err != nil {
		return err
	}

	nb := newNet.NodeByName("b")
	nf := newNet.NodeByName("f")
	var punched int
	for _, key := range ported.AllKeys() {
		if key.At != nb && key.At != nf {
			continue
		}
		if err := ported.PunchHole(key.In, key.At, k+1); err != nil {
			return err
		}
		punched++
	}
	fmt.Printf("after adding link b-f: re-synthesising %d entries at the endpoints, keeping %d\n",
		punched, ported.NumEntries())

	sol, err := encode.Solve(ctx, ported, k, encode.Options{})
	if err != nil {
		return err
	}
	fmt.Println("updated table perfectly 2-resilient?", syrep.Resilient(sol.Routing, k))

	// How invasive was the update? Count entries that differ from the
	// ported original (holes excluded — they had to change).
	changed := 0
	for _, key := range sol.Routing.Keys() {
		newPrio, _ := sol.Routing.Get(key.In, key.At)
		oldPrio, ok := oldPortedEntry(data, newNet, key)
		if !ok || !equal(newPrio, oldPrio) {
			changed++
		}
	}
	fmt.Printf("entries differing from the pre-change table: %d of %d\n",
		changed, sol.Routing.NumEntries())

	return anytimeUpdate(ctx, newNet, dest, k)
}

// anytimeUpdate re-runs the update under a budget that expires mid-pipeline
// (simulated deterministically with the fault-injection harness: the
// verification stage is cancelled as soon as it starts). Instead of failing
// with nothing, the supervisor salvages its checkpointed table as a
// *syrep.Partial, priced by a short grace verification.
func anytimeUpdate(ctx context.Context, net *syrep.Network, dest syrep.NodeID, k int) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageVerify,
		Kind:  faultinject.Cancel,
	}).BindCancel(cancel)

	_, _, err := syrep.Synthesize(runCtx, net, dest, k, syrep.Options{
		Strategy: syrep.HeuristicOnly,
		Hook:     inj,
	})
	p, ok := syrep.AsPartial(err)
	if !ok {
		return fmt.Errorf("expected a partial result, got %v", err)
	}
	fmt.Printf("budget cut the rerun short in stage %q; salvaged table has %d residual failing deliveries\n",
		p.Degradation.Stage, len(p.Residual))
	fmt.Println("the partial table is complete and deployable; re-run Repair on it later with a fresh budget")
	return nil
}

func oldPortedEntry(data []byte, net *syrep.Network, key routing.Key) ([]syrep.EdgeID, bool) {
	r, err := routing.Unmarshal(data, net)
	if err != nil {
		return nil, false
	}
	return r.Get(key.In, key.At)
}

func equal(a, b []syrep.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
