// Service demonstrates the resilient synthesis server in-process: the same
// engine behind cmd/syrep-serve, driven through its Go API. The demo walks
// the full robustness trichotomy:
//
//  1. a transient node-limit fault is retried with backoff and served;
//  2. memory pressure trips the circuit breaker, so the next request is
//     served degraded (heuristic-only, no BDD repair) instead of failing;
//  3. the pressure clears, a half-open probe succeeds, and service recovers;
//  4. graceful shutdown drains in-flight work and flushes the metrics.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"syrep/internal/obs"
	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
	"syrep/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One scripted fault: the first heuristic stage entered anywhere fails
	// like a BDD memout. The server classifies it transient and retries.
	injector := faultinject.New(faultinject.Fault{
		Stage: resilience.StageHeuristic,
		Kind:  faultinject.NodeLimit,
		Times: 1,
	})

	var pressured atomic.Bool
	ob := obs.New(nil)
	s := server.New(server.Config{
		Workers:        2,
		RetryBase:      5 * time.Millisecond,
		Breaker:        server.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond, Probes: 1},
		MemoryPressure: pressured.Load,
		Hook:           injector,
		Obs:            ob,
		DrainTimeout:   2 * time.Second,
		OnFlush: func(snap obs.Snapshot) {
			fmt.Println("-- final metrics snapshot --")
			_ = snap.WritePrometheus(os.Stdout)
		},
	})

	n := papernet.Figure1()
	req := func() *server.Request {
		return &server.Request{
			Kind:     server.KindSynthesize,
			Net:      n,
			Dest:     papernet.Figure1Dest(n),
			K:        2,
			Strategy: resilience.Combined,
		}
	}
	ctx := context.Background()

	// 1. Transient fault: retried behind the scenes, the caller just sees a
	//    resilient table (and the retry count).
	resp, err := s.Do(ctx, req())
	if err != nil {
		return err
	}
	fmt.Printf("1. transient memout: resilient=%v after %d retr%s\n",
		resp.Resilient, resp.Retries, plural(resp.Retries))

	// 2. Memory pressure: the breaker trips and requests ride the degraded
	//    heuristic-only path — best-effort tables, honestly flagged.
	pressured.Store(true)
	resp, err = s.Do(ctx, req())
	if err != nil {
		return err
	}
	fmt.Printf("2. under pressure:   degraded=%v residual=%d breaker=%s\n",
		resp.Degraded, resp.Residual, s.Breaker().State())

	// 3. Pressure clears; after the cooldown a half-open probe runs the full
	//    pipeline and recovery closes the breaker.
	pressured.Store(false)
	time.Sleep(60 * time.Millisecond)
	resp, err = s.Do(ctx, req())
	if err != nil {
		return err
	}
	fmt.Printf("3. recovered:        resilient=%v degraded=%v breaker=%s\n",
		resp.Resilient, resp.Degraded, s.Breaker().State())

	// 4. Graceful drain: admission stops, in-flight work finishes, metrics
	//    flush exactly once.
	if err := s.Shutdown(ctx); err != nil {
		return err
	}
	if _, err := s.Submit(req()); err != nil {
		fmt.Printf("4. after shutdown:   submit rejected: %v\n", err)
	}
	return nil
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
