// Zoo-synthesis compares the SyRep combined pipeline against the SyPer-style
// baseline on real ISP topologies (embedded Topology Zoo approximations),
// reproducing the paper's headline observation: orders-of-magnitude faster
// synthesis of perfectly 2-resilient tables.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"syrep"
	"syrep/internal/reduce"
	"syrep/internal/topozoo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const k = 2

	fmt.Printf("%-12s %6s %6s | %12s %12s %9s\n",
		"topology", "nodes", "edges", "baseline", "combined", "speedup")
	for _, inst := range topozoo.Embedded() {
		if inst.Net.NumNodes() > 13 {
			continue // keep the demo quick; syrep-bench covers the rest
		}
		baseT, ok1 := timeStrategy(ctx, inst, syrep.Baseline, k)
		combT, ok2 := timeStrategy(ctx, inst, syrep.Combined, k)
		speedup := "-"
		if ok1 && ok2 && combT > 0 {
			speedup = fmt.Sprintf("%8.1fx", float64(baseT)/float64(combT))
		}
		fmt.Printf("%-12s %6d %6d | %12s %12s %9s\n",
			inst.Name, inst.Net.NumNodes(), inst.Net.NumRealEdges(),
			fmtTime(baseT, ok1), fmtTime(combT, ok2), speedup)
	}

	// The reduction effect on the chain-heavy BizNet (paper Figure 5).
	for _, inst := range topozoo.Embedded() {
		if inst.Name != "BizNet" {
			continue
		}
		sound, err := reduce.Apply(ctx, inst.Net, inst.Dest, reduce.Sound)
		if err != nil {
			return err
		}
		aggro, err := reduce.Apply(ctx, inst.Net, inst.Dest, reduce.Aggressive)
		if err != nil {
			return err
		}
		fmt.Printf("\nFigure 5 (BizNet): %d/%d -> sound %d/%d -> aggressive %d/%d (nodes/edges)\n",
			inst.Net.NumNodes(), inst.Net.NumRealEdges(),
			sound.Reduced.NumNodes(), sound.Reduced.NumRealEdges(),
			aggro.Reduced.NumNodes(), aggro.Reduced.NumRealEdges())
	}
	return nil
}

func timeStrategy(ctx context.Context, inst topozoo.Instance, s syrep.Strategy, k int) (time.Duration, bool) {
	start := time.Now()
	_, _, err := syrep.Synthesize(ctx, inst.Net, inst.Dest, k, syrep.Options{
		Strategy: s,
		Timeout:  2 * time.Minute,
	})
	return time.Since(start), err == nil
}

func fmtTime(d time.Duration, ok bool) string {
	if !ok {
		return "timeout"
	}
	return d.Round(time.Microsecond).String()
}
