# Development targets. CI (.github/workflows/ci.yml) runs exactly these, so
# a green `make check` locally means a green gate.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet lint fuzz-short check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# syrep-lint runs go vet itself unless -no-vet is given; keep the two targets
# separate so `make lint` reports only the custom analyzers.
lint:
	$(GO) run ./cmd/syrep-lint -no-vet ./...

# The go tool rejects -fuzz patterns matching more than one target, so each
# fuzzer gets its own invocation.
fuzz-short:
	$(GO) test ./internal/bdd -fuzz=FuzzMk -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bdd -fuzz=FuzzApplyGC -fuzztime=$(FUZZTIME)

check: build vet lint test race
