# Development targets. CI (.github/workflows/ci.yml) runs exactly these, so
# a green `make check` locally means a green gate.

GO ?= go
FUZZTIME ?= 10s
# Seed budget for the deterministic fault-injection sweep (faults target).
FAULTSEEDS ?= 1,2,3,4,5,6,7,8

# Epoch target for the churn gate (churn target).
CHURN_EPOCHS ?= 1000

# Seed budget for the poly-vs-brute differential verification gate
# (verify-diff target): 60 seeds x 6 profiles x 3 sizes = 1080 instances,
# each checked for k in 1..3 by both backends.
VERIFY_DIFF_SEEDS ?= 60

.PHONY: build test race vet lint fuzz-short faults obs serve-test cache-test churn crash verify-diff batch check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# syrep-lint runs go vet itself unless -no-vet is given; keep the two targets
# separate so `make lint` reports only the custom analyzers. The run applies
# the reviewed suppression baseline (lint.suppress), so only new findings
# fail, and leaves behind lint.sarif (code-scanning report) and
# lint-metrics.json (per-analyzer syrep_lint_* timing counters) as
# artifacts.
lint:
	$(GO) run ./cmd/syrep-lint -no-vet -suppress lint.suppress -sarif lint.sarif -metrics-json lint-metrics.json ./...

# The go tool rejects -fuzz patterns matching more than one target, so each
# fuzzer gets its own invocation.
fuzz-short:
	$(GO) test ./internal/bdd -fuzz=FuzzMk -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bdd -fuzz=FuzzApplyGC -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/verify/poly -fuzz=FuzzPolyVerify -fuzztime=$(FUZZTIME)

# Deterministic fault-injection sweep under the race detector: the full
# matrix (every fault point x kind x strategy) plus a seed-driven sample,
# with the goroutine-leak check active. Widen coverage with
# FAULTSEEDS=1,2,...,N.
faults:
	SYREP_FAULT_SEEDS=$(FAULTSEEDS) $(GO) test -race -run 'TestFaultMatrix|TestSeededFaults|TestCancellationLatencyBounded' ./internal/resilience/...

# Observability gate under the race detector: the obs package itself (hammer
# + zero-alloc + golden exports), the parallel-vs-sequential differential
# verification suite, and the pipeline-level span/counter consistency tests.
obs:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'TestDifferential|TestParallelMaxFailures|TestVerifyCounters' ./internal/verify/
	$(GO) test -race -run 'Observed|TestObserve' ./internal/resilience/ ./internal/bdd/ ./internal/benchmark/

# Synthesis-service gate under the race detector: admission/retry/breaker
# unit tests, the chaos trichotomy (retry -> degrade -> recover), graceful
# drain, and the syrep-serve binary's boot/drain lifecycle.
serve-test:
	$(GO) test -race ./internal/server/... ./cmd/syrep-serve

# Synthesis-cache gate under the race detector: eviction/TTL/singleflight
# units, the warm-vs-cold differential suite (adapted seeds must reach the
# same resilience verdict as cold synthesis), and the server's cache
# hit/dedup/warm-start integration tests.
cache-test:
	$(GO) test -race ./internal/cache/...
	$(GO) test -race -run 'TestCache|TestWarmStart|TestMemoryPressure' ./internal/server/

# Churn-controller gate under the race detector: the controller unit and
# lifecycle tests plus the full-scale Poisson churn simulation (CHURN_EPOCHS
# topology epochs, seeded), writing the event-latency SLO histogram artifact
# to BENCH_churn_slo.json. The default `go test` run uses a reduced epoch
# target; this target drives the full one.
churn:
	$(GO) test -race ./internal/controller/ ./cmd/syrep-ctl
	SYREP_CHURN_EPOCHS=$(CHURN_EPOCHS) SYREP_CHURN_OUT=$(CURDIR)/BENCH_churn_slo.json \
		$(GO) test -race -run TestChurnSimulation -count=1 -v ./internal/controller/

# Crash-recovery gate under the race detector: journal + crashfs units, the
# controller recovery suite, and the full kill matrix — a process kill at
# every journaled filesystem operation across three seeds, plus the
# double-crash (kill during recovery) cells — each cell differentially
# checked against a no-crash oracle. Writes the recovery-differential
# summary to BENCH_crash_matrix.json.
crash:
	$(GO) test -race ./internal/journal/...
	SYREP_CRASH_MATRIX=full SYREP_CRASH_OUT=$(CURDIR)/BENCH_crash_matrix.json \
		$(GO) test -race -run 'TestCrash|TestRecover|TestPusherWatermark|TestJournalFailure|TestResyncPoison' -count=1 ./internal/controller/

# Verification-backend differential gate under the race detector: the
# poly checker against the brute-force oracle on randomized corrupted
# multigraphs (topozoo + parallel-edge + bounce modes, seed-keyed
# reproduction), plus a short run of the brute-oracle fuzz target.
verify-diff:
	SYREP_VERIFY_DIFF_SEEDS=$(VERIFY_DIFF_SEEDS) $(GO) test -race -run 'TestDifferential|TestPoly|TestFailingOrder|TestResilientCtxFirst' -count=1 ./internal/verify/ ./internal/verify/poly/
	$(GO) test ./internal/verify/poly -fuzz=FuzzPolyVerify -fuzztime=$(FUZZTIME)

# All-destinations batch gate under the race detector: the batch
# differential suite (SynthesizeAll destination-for-destination equal to N
# sequential runs), manager-pool determinism, singleflight leader-abort
# re-election, the Submit burst accounting regression, and the NDJSON
# endpoint — then the batch-vs-sequential benchmark, writing the comparison
# rows to BENCH_all_dests.json.
batch:
	$(GO) test -race -run 'TestSynthesizeAll|TestShared|TestPool|TestReset|TestSingleflight|TestSubmitBurst|TestHTTPSynthesizeAll' ./internal/resilience/ ./internal/reduce/ ./internal/bdd/ ./internal/cache/ ./internal/server/
	$(GO) run ./cmd/syrep-bench -fig alldests -alldests-json $(CURDIR)/BENCH_all_dests.json

check: build vet lint test race faults obs serve-test cache-test churn crash verify-diff batch
