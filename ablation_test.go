// Ablation benchmarks for the design choices DESIGN.md calls out: repair
// removal strategy (remove-all vs gradual vs no escalation), reduction rule
// (sound vs aggressive vs none), scenario-engine pruning (concrete-trace
// fast path), and dynamic variable reordering in overflow recovery.
package syrep_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"syrep/internal/core"
	"syrep/internal/encode"
	"syrep/internal/heuristic"
	"syrep/internal/papernet"
	"syrep/internal/reduce"
	"syrep/internal/repair"
	"syrep/internal/topozoo"
)

// ablationInstance is a mid-size chain-rich topology where all strategies
// finish quickly but differ measurably.
func ablationInstance() topozoo.Instance {
	for _, inst := range topozoo.Embedded() {
		if inst.Name == "Cesnet" {
			return inst
		}
	}
	panic("Cesnet missing")
}

func BenchmarkAblationRepairRemoveAll(b *testing.B) {
	benchRepairStrategy(b, repair.Options{Strategy: repair.RemoveAll})
}

func BenchmarkAblationRepairGradual(b *testing.B) {
	benchRepairStrategy(b, repair.Options{Strategy: repair.Gradual})
}

func benchRepairStrategy(b *testing.B, opts repair.Options) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repair.Repair(context.Background(), r, 2, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReductionSound(b *testing.B) {
	benchReductionRule(b, reduce.Sound)
}

func BenchmarkAblationReductionAggressive(b *testing.B) {
	benchReductionRule(b, reduce.Aggressive)
}

func benchReductionRule(b *testing.B, rule reduce.Rule) {
	inst := ablationInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.Synthesize(context.Background(), inst.Net, inst.Dest, 2, core.Options{
			Strategy:  core.Combined,
			Reduction: rule,
			Timeout:   20 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoReduction(b *testing.B) {
	inst := ablationInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.Synthesize(context.Background(), inst.Net, inst.Dest, 2, core.Options{
			Strategy: core.HeuristicOnly,
			Timeout:  20 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRepairVsResynthesis quantifies the paper's core claim in
// miniature: repairing the heuristic table (few BDD variables) vs
// synthesising every entry from scratch (all variables symbolic).
func BenchmarkAblationRepairVsResynthesis(b *testing.B) {
	inst := ablationInstance()
	h, err := heuristic.Generate(context.Background(), inst.Net, inst.Dest)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("repair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.Repair(context.Background(), h, 2, repair.Options{Escalate: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-synthesis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The baseline may exceed the budget on this instance — that IS
			// the ablation's point; count the bounded attempt either way.
			_, _, err := core.Synthesize(context.Background(), inst.Net, inst.Dest, 2, core.Options{
				Strategy: core.Baseline,
				Timeout:  20 * time.Second,
			})
			if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, core.ErrUnsolvable) {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationScenarioFastPath measures the concrete-trace fast path of
// the scenario engine by comparing a repair with few holes (fast path
// dominates) against full synthesis where every scenario is symbolic.
func BenchmarkAblationScenarioFastPath(b *testing.B) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	// Punch one hole: nearly every scenario resolves concretely.
	v4 := n.NodeByName("v4")
	holey := r.Clone()
	if err := holey.PunchHole(6, v4, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := encode.Solve(context.Background(), holey, 1, encode.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.SymbolicScenarios >= sol.Scenarios {
			b.Fatal("fast path never used")
		}
	}
}
