// Package syrep is a Go implementation of SyRep — efficient synthesis and
// repair of fast re-route (FRR) forwarding tables for resilient networks
// (Györgyi, Larsen, Schmid, Srba; DSN 2024).
//
// SyRep produces *perfectly k-resilient* skipping routings: priority lists
// of failover next-hops such that a packet reaches its destination under any
// combination of up to k link failures whenever the source remains
// physically connected. Its repair engine identifies the few misbehaving
// entries of an existing table and replaces them using a binary decision
// diagram (BDD) encoding; its synthesis pipeline combines structural
// network reductions, a fast routing heuristic, and that repair engine to
// outperform from-scratch BDD synthesis by orders of magnitude.
//
// # Quick start
//
//	b := syrep.NewBuilder("mynet")
//	a, c, d := b.AddNode("a"), b.AddNode("c"), b.AddNode("d")
//	b.AddEdge(a, c)
//	b.AddEdge(c, d)
//	b.AddEdge(d, a)
//	net, _ := b.Build()
//
//	r, report, err := syrep.Synthesize(ctx, net, d, 1, syrep.Options{})
//	// r is a perfectly 1-resilient routing toward d.
//
// To fortify an existing table instead, build a Routing with syrep.NewRouting
// and call syrep.Repair; only the entries involved in failing deliveries are
// replaced.
//
// The internal packages expose the building blocks: internal/bdd (the ROBDD
// engine), internal/verify (brute-force resilience checking),
// internal/encode (the BDD encoding of Section III-A), internal/heuristic
// (Section IV-A), internal/reduce (Section IV-B), and internal/benchmark
// (the evaluation harness reproducing the paper's figures).
package syrep

import (
	"context"

	"syrep/internal/core"
	"syrep/internal/network"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// Re-exported core types. The aliases make the public surface a thin facade
// over the internal packages while keeping a single import for users.
type (
	// Network is an undirected multigraph with implicit loop-back edges.
	Network = network.Network
	// Builder constructs Networks.
	Builder = network.Builder
	// NodeID identifies a router.
	NodeID = network.NodeID
	// EdgeID identifies a link.
	EdgeID = network.EdgeID
	// EdgeSet is a failure scenario.
	EdgeSet = network.EdgeSet
	// Routing is a skipping routing toward a fixed destination.
	Routing = routing.Routing
	// Options configures Synthesize and Repair.
	Options = core.Options
	// Report describes a synthesis run.
	Report = core.Report
	// Strategy selects the synthesis method.
	Strategy = core.Strategy
	// RepairOutcome reports a repair, including the changed entries.
	RepairOutcome = repair.Outcome
	// VerifyReport is the result of a resilience check.
	VerifyReport = verify.Report
	// Partial is the anytime supervisor's salvage result: a run that hit its
	// deadline, a node limit, or an internal fault still returns the best
	// routing it had checkpointed, with the residual failing deliveries and a
	// Degradation report. Extract it from an error with AsPartial.
	Partial = core.Partial
)

// Synthesis strategies (paper Figure 7): the SyRep Combined pipeline is the
// default and headline method; Baseline mirrors the SyPer tool of [26].
const (
	Baseline      = core.Baseline
	HeuristicOnly = core.HeuristicOnly
	ReductionOnly = core.ReductionOnly
	Combined      = core.Combined
)

// ErrUnsolvable reports that the chosen strategy could not produce a
// perfectly k-resilient routing.
var ErrUnsolvable = core.ErrUnsolvable

// AsPartial extracts the anytime supervisor's typed partial result from an
// error returned by Synthesize or Repair: a degraded-but-usable routing plus
// the deliveries still failing. Callers can deploy the partial table
// immediately and re-run Repair on it later with a fresh budget.
func AsPartial(err error) (*Partial, bool) { return core.AsPartial(err) }

// NewBuilder starts constructing a network topology.
func NewBuilder(name string) *Builder { return network.NewBuilder(name) }

// NewRouting returns an empty skipping routing on net toward dest. Populate
// it with Set before verifying or repairing.
func NewRouting(net *Network, dest NodeID) *Routing { return routing.New(net, dest) }

// Synthesize produces a perfectly k-resilient routing toward dest.
func Synthesize(ctx context.Context, net *Network, dest NodeID, k int, opts Options) (*Routing, *Report, error) {
	return core.Synthesize(ctx, net, dest, k, opts)
}

// Repair makes an existing routing perfectly k-resilient by replacing only
// the entries that misbehave (the paper's minimally invasive use case).
func Repair(ctx context.Context, r *Routing, k int, opts Options) (*RepairOutcome, error) {
	return core.Repair(ctx, r, k, opts)
}

// Verify checks perfect k-resilience by brute force and reports the failing
// deliveries and suspicious entries when the routing is not resilient.
func Verify(ctx context.Context, r *Routing, k int) (*VerifyReport, error) {
	return verify.Check(ctx, r, k, verify.Options{})
}

// Resilient is a convenience wrapper reporting only the verdict. Callers
// running under a deadline should prefer ResilientCtx.
func Resilient(r *Routing, k int) bool { return verify.Resilient(r, k) }

// ResilientCtx is Resilient honouring ctx: a cancelled or expired context
// reports false.
func ResilientCtx(ctx context.Context, r *Routing, k int) bool {
	return verify.ResilientCtx(ctx, r, k)
}

// MaxResilience returns the largest k <= limit for which r is perfectly
// k-resilient (-1 when the routing fails even without failures).
func MaxResilience(ctx context.Context, r *Routing, limit int) (int, error) {
	return verify.MaxResilience(ctx, r, limit)
}
