// Package papernet provides the concrete networks and routing tables used as
// running examples in the SyRep paper (Figures 1–3). They serve as shared
// fixtures for tests, examples, and documentation: every artefact here is
// fully specified by the paper text, so tests against them are golden tests
// of the reproduction.
package papernet

import (
	"syrep/internal/network"
	"syrep/internal/routing"
)

// Figure1 builds the 5-node running example of the paper (Figure 1a):
//
//	e0={v2,d}, e1={v3,d}, e2={v4,d}, e3={v1,v3}, e4={v1,v4},
//	e5={v2,v4}, e6={v3,v4}
//
// Node ids are assigned in the order d, v1, v2, v3, v4 so that node ids and
// edge ids match the paper's names (edge ei has id i).
func Figure1() *network.Network {
	b := network.NewBuilder("fig1")
	d := b.AddNode("d")
	v1 := b.AddNode("v1")
	v2 := b.AddNode("v2")
	v3 := b.AddNode("v3")
	v4 := b.AddNode("v4")
	b.AddNamedEdge("e0", v2, d)
	b.AddNamedEdge("e1", v3, d)
	b.AddNamedEdge("e2", v4, d)
	b.AddNamedEdge("e3", v1, v3)
	b.AddNamedEdge("e4", v1, v4)
	b.AddNamedEdge("e5", v2, v4)
	b.AddNamedEdge("e6", v3, v4)
	return b.MustBuild()
}

// Figure1Dest returns the destination node d of the running example.
func Figure1Dest(n *network.Network) network.NodeID { return n.NodeByName("d") }

// Figure1bRouting returns the perfectly 1-resilient (but not 2-resilient)
// skipping routing of Figure 1b. It is exactly the table produced by the
// heuristic generator of Section IV-A with the backup-edge ordering choice
// R(e6, v4) = (e2, e4, e5, ...) that the paper discusses.
func Figure1bRouting(n *network.Network) *routing.Routing {
	var (
		d  = n.NodeByName("d")
		v1 = n.NodeByName("v1")
		v2 = n.NodeByName("v2")
		v3 = n.NodeByName("v3")
		v4 = n.NodeByName("v4")
	)
	_ = d
	e := func(i int) network.EdgeID { return network.EdgeID(i) }
	r := routing.New(n, d)

	// v1: default e3, backup e4.
	r.MustSet(n.Loopback(v1), v1, []network.EdgeID{e(3), e(4)})
	r.MustSet(e(3), v1, []network.EdgeID{e(4), e(3)})
	r.MustSet(e(4), v1, []network.EdgeID{e(3), e(4)})

	// v2: default e0, backups {e0, e5}.
	r.MustSet(n.Loopback(v2), v2, []network.EdgeID{e(0), e(5)})
	r.MustSet(e(0), v2, []network.EdgeID{e(5), e(0)})
	r.MustSet(e(5), v2, []network.EdgeID{e(0), e(5)})

	// v3: default e1, backup e6, rest e3.
	r.MustSet(n.Loopback(v3), v3, []network.EdgeID{e(1), e(6), e(3)})
	r.MustSet(e(1), v3, []network.EdgeID{e(6), e(3), e(1)})
	r.MustSet(e(3), v3, []network.EdgeID{e(1), e(6), e(3)})
	r.MustSet(e(6), v3, []network.EdgeID{e(1), e(3), e(6)})

	// v4: default e2, backups {e4, e5, e6} (paper's ordering choice e4 < e5).
	r.MustSet(n.Loopback(v4), v4, []network.EdgeID{e(2), e(4), e(5), e(6)})
	r.MustSet(e(2), v4, []network.EdgeID{e(4), e(5), e(6), e(2)})
	r.MustSet(e(4), v4, []network.EdgeID{e(2), e(5), e(6), e(4)})
	r.MustSet(e(5), v4, []network.EdgeID{e(2), e(4), e(6), e(5)})
	r.MustSet(e(6), v4, []network.EdgeID{e(2), e(4), e(5), e(6)})

	return r
}

// Figure2 builds the 2-node, 3-parallel-edge network of Figure 2a: nodes d
// and v1 connected by edges e0, e1, e2. The only table that needs synthesis
// for destination d is R(lb_v1, v1); all six permutations of (e0, e1, e2)
// are perfectly 2-resilient.
func Figure2() *network.Network {
	b := network.NewBuilder("fig2")
	d := b.AddNode("d")
	v1 := b.AddNode("v1")
	b.AddNamedEdge("e0", v1, d)
	b.AddNamedEdge("e1", v1, d)
	b.AddNamedEdge("e2", v1, d)
	return b.MustBuild()
}
