package papernet_test

import (
	"fmt"
	"testing"

	"syrep/internal/network"
	"syrep/internal/papernet"
)

func TestFigure1Shape(t *testing.T) {
	n := papernet.Figure1()
	if n.NumNodes() != 5 || n.NumRealEdges() != 7 {
		t.Fatalf("Figure1 = %d nodes / %d edges, want 5/7", n.NumNodes(), n.NumRealEdges())
	}
	d := papernet.Figure1Dest(n)
	if n.NodeName(d) != "d" {
		t.Errorf("Figure1Dest = %s, want d", n.NodeName(d))
	}
	// Edge ids match the paper's names: edge ei has id i.
	for i := 0; i < n.NumRealEdges(); i++ {
		want := fmt.Sprintf("e%d", i)
		if got := n.EdgeName(network.EdgeID(i)); got != want {
			t.Errorf("edge %d named %q, want %q", i, got, want)
		}
	}
	if n.EdgeConnectivity() != 2 {
		t.Errorf("Figure1 edge connectivity = %d, want 2 (the paper calls it 2-connected)", n.EdgeConnectivity())
	}
}

func TestFigure1bRoutingShape(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	if !r.Complete() {
		t.Error("Figure1b routing incomplete")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if r.NumEntries() != 15 {
		t.Errorf("entries = %d, want 15", r.NumEntries())
	}
	// The paper's example entry R(lb_v3, v3) = (e1, e6, e3).
	v3 := n.NodeByName("v3")
	prio, ok := r.Get(n.Loopback(v3), v3)
	if !ok || len(prio) != 3 || prio[0] != 1 || prio[1] != 6 || prio[2] != 3 {
		t.Errorf("R(lb_v3, v3) = %v, want (e1, e6, e3)", prio)
	}
}

func TestFigure2Shape(t *testing.T) {
	n := papernet.Figure2()
	if n.NumNodes() != 2 || n.NumRealEdges() != 3 {
		t.Fatalf("Figure2 = %d nodes / %d edges, want 2/3", n.NumNodes(), n.NumRealEdges())
	}
	if n.EdgeConnectivity() != 3 {
		t.Errorf("Figure2 connectivity = %d, want 3 (three parallel links)", n.EdgeConnectivity())
	}
}
