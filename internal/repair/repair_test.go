package repair_test

import (
	"context"
	"errors"
	"testing"

	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

var ctx = context.Background()

// TestRepairRunningExample: the paper's headline example — Figure 1b is
// repaired to perfect 2-resilience, and the change is minimally invasive.
func TestRepairRunningExample(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)

	out, err := repair.Repair(ctx, r, 2, repair.Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if out.AlreadyResilient {
		t.Error("AlreadyResilient = true for a non-2-resilient input")
	}
	if !verify.Resilient(out.Routing, 2) {
		t.Fatalf("repaired routing not 2-resilient:\n%s", out.Routing)
	}
	if out.Suspicious != 6 {
		t.Errorf("Suspicious = %d, want 6", out.Suspicious)
	}
	if out.Removed != 6 {
		t.Errorf("Removed = %d, want 6 (RemoveAll)", out.Removed)
	}
	// Minimal invasiveness: only removed entries may change.
	if len(out.Changed) > out.Removed {
		t.Errorf("Changed %d entries > removed %d", len(out.Changed), out.Removed)
	}
	// The input routing is untouched.
	if verify.Resilient(r, 2) {
		t.Error("input routing was modified")
	}
}

func TestRepairAlreadyResilient(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	out, err := repair.Repair(ctx, r, 1, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AlreadyResilient {
		t.Error("AlreadyResilient = false for a 1-resilient input at k=1")
	}
	if !out.Routing.Equal(r) {
		t.Error("already-resilient repair changed the routing")
	}
	if len(out.Changed) != 0 {
		t.Errorf("Changed = %v, want empty", out.Changed)
	}
}

func TestRepairGradual(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	out, err := repair.Repair(ctx, r, 2, repair.Options{Strategy: repair.Gradual})
	if err != nil {
		t.Fatalf("Repair(Gradual): %v", err)
	}
	if !verify.Resilient(out.Routing, 2) {
		t.Fatal("gradual repair not 2-resilient")
	}
	// Gradual should remove at most as many entries as RemoveAll.
	if out.Removed > out.Suspicious {
		t.Errorf("Removed %d > Suspicious %d", out.Removed, out.Suspicious)
	}
	t.Logf("gradual: removed %d of %d suspicious (widened=%v, changed=%d)",
		out.Removed, out.Suspicious, out.Widened, len(out.Changed))
}

// TestRepairUnrepairable is a deterministic witness of the paper's
// Section III-C incompleteness: entries that DROP packets never fire, so
// they are never marked suspicious, yet they can make every alternative
// filling of the suspicious holes fail.
//
// Square d-x-y-z-d with deliberately broken concrete entries at x and z:
// (f2,x) = (f0) drops when f0 fails, (f3,z) = (f1) drops when f1 fails.
// The only failing delivery is (y, {f0}) and the only fired entry is lb_y,
// so repair punches just lb_y -- but every filling over {f2, f3} runs into
// one of the dropping entries under {f0} or {f1}.
func TestRepairUnrepairable(t *testing.T) {
	b := network.NewBuilder("square")
	d := b.AddNode("d")
	x := b.AddNode("x")
	y := b.AddNode("y")
	z := b.AddNode("z")
	f0 := b.AddEdge(d, x)
	f1 := b.AddEdge(d, z)
	f2 := b.AddEdge(x, y)
	f3 := b.AddEdge(y, z)
	n := b.MustBuild()

	r := routing.New(n, d)
	r.MustSet(n.Loopback(x), x, []network.EdgeID{f0, f2})
	r.MustSet(f2, x, []network.EdgeID{f0}) // drops when f0 fails
	r.MustSet(f0, x, []network.EdgeID{f2, f0})
	r.MustSet(n.Loopback(z), z, []network.EdgeID{f1, f3})
	r.MustSet(f3, z, []network.EdgeID{f1}) // drops when f1 fails
	r.MustSet(f1, z, []network.EdgeID{f3, f1})
	r.MustSet(n.Loopback(y), y, []network.EdgeID{f2, f3})
	r.MustSet(f2, y, []network.EdgeID{f3, f2})
	r.MustSet(f3, y, []network.EdgeID{f2, f3})

	_, err := repair.Repair(ctx, r, 1, repair.Options{})
	if !errors.Is(err, repair.ErrUnrepairable) {
		t.Fatalf("err = %v, want ErrUnrepairable", err)
	}
	// The gradual strategy reaches the same verdict.
	_, err = repair.Repair(ctx, r, 1, repair.Options{Strategy: repair.Gradual})
	if !errors.Is(err, repair.ErrUnrepairable) {
		t.Fatalf("gradual err = %v, want ErrUnrepairable", err)
	}
}

func TestRepairRejectsHoleyInput(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	v3 := n.NodeByName("v3")
	if err := r.PunchHole(1, v3, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := repair.Repair(ctx, r, 2, repair.Options{}); err == nil {
		t.Error("Repair accepted a routing with holes")
	}
}

func TestRepairContextCancelled(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := repair.Repair(cctx, r, 2, repair.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestStrategyString(t *testing.T) {
	if repair.RemoveAll.String() != "remove-all" || repair.Gradual.String() != "gradual" {
		t.Error("Strategy.String broken")
	}
	if repair.Strategy(9).String() == "" {
		t.Error("unknown Strategy.String empty")
	}
}

// TestRepairK3RunningExample: repairing the running example for k=3. The
// network is only 2-edge-connected, so disconnecting scenarios are excused
// and a perfectly 3-resilient repair may or may not exist; whatever Repair
// returns must be correct.
func TestRepairK3RunningExample(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	out, err := repair.Repair(ctx, r, 3, repair.Options{})
	if err != nil {
		if errors.Is(err, repair.ErrUnrepairable) {
			t.Log("k=3 repair reported unrepairable (acceptable)")
			return
		}
		t.Fatalf("Repair: %v", err)
	}
	if !verify.Resilient(out.Routing, 3) {
		t.Fatal("k=3 repair returned non-3-resilient routing")
	}
}

// TestRepairEscalationLevel1 reuses the unrepairable square but enables the
// escalation ladder: the suspicious set (just lb_y) cannot be fixed, but
// level 1 also punches the entries at the visited nodes — including the
// dropping entry (f2, x) that never fired — after which a fix exists.
func TestRepairEscalationLevel1(t *testing.T) {
	b := network.NewBuilder("square")
	d := b.AddNode("d")
	x := b.AddNode("x")
	y := b.AddNode("y")
	z := b.AddNode("z")
	f0 := b.AddEdge(d, x)
	f1 := b.AddEdge(d, z)
	f2 := b.AddEdge(x, y)
	f3 := b.AddEdge(y, z)
	n := b.MustBuild()

	r := routing.New(n, d)
	r.MustSet(n.Loopback(x), x, []network.EdgeID{f0, f2})
	r.MustSet(f2, x, []network.EdgeID{f0}) // drops when f0 fails
	r.MustSet(f0, x, []network.EdgeID{f2, f0})
	r.MustSet(n.Loopback(z), z, []network.EdgeID{f1, f3})
	r.MustSet(f3, z, []network.EdgeID{f1}) // drops when f1 fails
	r.MustSet(f1, z, []network.EdgeID{f3, f1})
	r.MustSet(n.Loopback(y), y, []network.EdgeID{f2, f3})
	r.MustSet(f2, y, []network.EdgeID{f3, f2})
	r.MustSet(f3, y, []network.EdgeID{f2, f3})

	out, err := repair.Repair(ctx, r, 1, repair.Options{Escalate: true})
	if err != nil {
		t.Fatalf("escalated repair failed: %v", err)
	}
	if out.EscalationLevel < 1 {
		t.Errorf("EscalationLevel = %d, want >= 1", out.EscalationLevel)
	}
	if !verify.Resilient(out.Routing, 1) {
		t.Fatal("escalated repair output not 1-resilient")
	}
	// Escalation still changes only entries at visited nodes when level 1
	// suffices: nothing at z or d may differ unless level 2 was needed.
	if out.EscalationLevel == 1 {
		for _, key := range out.Changed {
			if key.At != x && key.At != y {
				t.Errorf("level-1 escalation changed entry %v outside visited nodes", key)
			}
		}
	}
}
