// Package repair implements SyRep's verify-and-repair method (Section III):
// verify a routing brute-force, mark the entries that fired along failing
// deliveries as suspicious, remove them (punching holes), and let the BDD
// engine synthesise replacements that make the routing perfectly
// k-resilient.
//
// Two removal strategies are provided. RemoveAll punches every suspicious
// entry at once — simple and usually sufficient. Gradual first punches a
// greedy hitting set (at least one firing entry per failing delivery, as the
// paper requires), and widens to the full suspicious set only when the small
// hole set is unrepairable; this keeps the BDD variable count down.
package repair

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"syrep/internal/encode"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// ErrUnrepairable is reported when no hole assignment over the suspicious
// entries achieves k-resilience. Per the paper the method is incomplete:
// shadowed ill-defined entries (e.g. a list (e, e') whose e' can never fire)
// can hide behind entries that are never marked suspicious.
var ErrUnrepairable = errors.New("repair: routing cannot be repaired by replacing suspicious entries")

// Strategy selects the suspicious-entry removal policy.
type Strategy int

const (
	// RemoveAll punches every suspicious entry at once (paper Sec. III-C,
	// default behaviour).
	RemoveAll Strategy = iota + 1
	// Gradual punches a greedy hitting set of firing entries first and
	// widens to the full suspicious set only on failure.
	Gradual
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case RemoveAll:
		return "remove-all"
	case Gradual:
		return "gradual"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options tunes a repair run.
type Options struct {
	// Strategy defaults to RemoveAll.
	Strategy Strategy
	// Escalate makes repair complete: when the suspicious entries alone are
	// unrepairable (the paper's Section III-C incompleteness), the hole set
	// widens to every entry at the nodes visited by failing traces, and
	// finally to every entry of the routing (full synthesis). The paper's
	// repair corresponds to Escalate == false.
	Escalate bool
	// Encode tunes the BDD engine.
	Encode encode.Options
	// Verify tunes the verification passes. Prune is always enabled for the
	// internal passes (subsumed failing deliveries add no information).
	Verify verify.Options
	// Report, when non-nil, is a verification report for the input routing
	// at the requested k, produced with Prune enabled. Repair then skips its
	// own initial verification pass — the resilience supervisor uses this to
	// avoid verifying the same routing twice.
	Report *verify.Report
	// Counters, when non-nil, receives the repair counter stream: one
	// iteration per hole-set solve attempted and the number of holes punched
	// across all attempts. Nil means unobserved.
	Counters *obs.RepairCounters
}

// noCounters is the shared no-op bundle substituted for a nil
// Options.Counters; its nil *obs.Counter fields make every Add a no-op.
var noCounters = &obs.RepairCounters{}

// Outcome reports a successful repair.
type Outcome struct {
	// Routing is perfectly k-resilient.
	Routing *routing.Routing
	// AlreadyResilient is true when the input needed no repair.
	AlreadyResilient bool
	// Suspicious is the number of entries marked suspicious by
	// verification.
	Suspicious int
	// Removed is the number of entries actually punched (== Suspicious for
	// RemoveAll; possibly fewer for Gradual).
	Removed int
	// Changed lists the entries whose priority list differs from the input
	// routing — the paper's "minimum invasive" metric.
	Changed []routing.Key
	// Widened reports that the Gradual strategy had to fall back to the
	// full suspicious set.
	Widened bool
	// EscalationLevel records how far the Escalate ladder climbed: 0 means
	// the suspicious set sufficed, 1 means all entries at visited nodes, 2
	// means full synthesis.
	EscalationLevel int
	// Solution carries the BDD engine statistics of the successful solve.
	Solution *encode.Solution
}

// Repair makes r perfectly k-resilient by replacing suspicious entries. The
// input routing is not modified; it must be hole-free.
func Repair(ctx context.Context, r *routing.Routing, k int, opts Options) (*Outcome, error) {
	if r.NumHoles() > 0 {
		return nil, fmt.Errorf("repair: input routing has %d unresolved holes", r.NumHoles())
	}
	if opts.Strategy == 0 {
		opts.Strategy = RemoveAll
	}
	vOpts := opts.Verify
	vOpts.Prune = true

	rep := opts.Report
	if rep == nil {
		var err error
		rep, err = verify.Check(ctx, r, k, vOpts)
		if err != nil {
			return nil, err
		}
	}
	if rep.Resilient {
		return &Outcome{Routing: r.Clone(), AlreadyResilient: true}, nil
	}
	suspicious := rep.Suspicious()

	counters := opts.Counters
	if counters == nil {
		counters = noCounters
	}
	tryHoles := func(holes []routing.Key) (*Outcome, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		counters.Iterations.Inc()
		counters.HolesPunched.Add(int64(len(holes)))
		punched := r.Clone()
		for _, key := range holes {
			if err := punched.PunchHole(key.In, key.At, k+1); err != nil {
				return nil, fmt.Errorf("repair: %w", err)
			}
		}
		sol, err := encode.Solve(ctx, punched, k, opts.Encode)
		if err != nil {
			return nil, err
		}
		return &Outcome{
			Routing:    sol.Routing,
			Suspicious: len(suspicious),
			Removed:    len(holes),
			Changed:    diffEntries(r, sol.Routing),
			Solution:   sol,
		}, nil
	}

	widened := false
	if opts.Strategy == Gradual {
		subset, err := hittingSet(ctx, rep)
		if err != nil {
			return nil, err
		}
		if len(subset) < len(suspicious) {
			out, err := tryHoles(subset)
			switch {
			case err == nil:
				return out, nil
			case errors.Is(err, encode.ErrUnrepairable):
				widened = true // widen to the full suspicious set below
			default:
				return nil, err
			}
		}
	}

	out, err := tryHoles(suspicious)
	switch {
	case err == nil:
		out.Widened = widened
		return out, nil
	case !errors.Is(err, encode.ErrUnrepairable):
		return nil, err
	case !opts.Escalate:
		return nil, ErrUnrepairable
	}

	// Escalation level 1: every entry at the nodes visited by failing
	// traces, capturing shadowed dropping/looping entries that never fire.
	level1 := visitedNodeEntries(r, rep)
	if len(level1) > len(suspicious) {
		out, err = tryHoles(level1)
		switch {
		case err == nil:
			out.EscalationLevel = 1
			return out, nil
		case !errors.Is(err, encode.ErrUnrepairable):
			return nil, err
		}
	}

	// Escalation level 2: full synthesis — complete by construction.
	out, err = tryHoles(r.AllKeys())
	if err != nil {
		if errors.Is(err, encode.ErrUnrepairable) {
			return nil, ErrUnrepairable // no k-resilient routing exists at all
		}
		return nil, err
	}
	out.EscalationLevel = 2
	return out, nil
}

// visitedNodeEntries collects every routing entry at a node some failing
// trace visited.
func visitedNodeEntries(r *routing.Routing, rep *verify.Report) []routing.Key {
	nodes := make(map[network.NodeID]bool)
	for _, f := range rep.Failing {
		for _, v := range f.Visited {
			nodes[v] = true
		}
	}
	var out []routing.Key
	for _, key := range r.AllKeys() {
		if nodes[key.At] {
			out = append(out, key)
		}
	}
	return out
}

// hittingSet greedily selects entries so that every failing delivery has at
// least one of its firing entries removed (the paper's necessary condition
// for repairability). The greedy loop runs one round per selected entry and
// polls ctx each round, so cancellation on a large failing set is prompt.
func hittingSet(ctx context.Context, rep *verify.Report) ([]routing.Key, error) {
	uncovered := make([]map[routing.Key]bool, 0, len(rep.Failing))
	for _, f := range rep.Failing {
		set := make(map[routing.Key]bool, len(f.Used))
		for _, k := range f.Used {
			set[k] = true
		}
		if len(set) > 0 {
			uncovered = append(uncovered, set)
		}
	}
	var out []routing.Key
	for len(uncovered) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		counts := make(map[routing.Key]int)
		for _, set := range uncovered {
			for k := range set {
				counts[k]++
			}
		}
		var best routing.Key
		bestCount := -1
		for k, c := range counts {
			if c > bestCount || (c == bestCount && keyLess(k, best)) {
				best = k
				bestCount = c
			}
		}
		out = append(out, best)
		next := uncovered[:0]
		for _, set := range uncovered {
			if !set[best] {
				next = append(next, set)
			}
		}
		uncovered = next
	}
	sortKeys(out)
	return out, nil
}

// diffEntries lists the keys whose priority list changed between a and b.
func diffEntries(a, b *routing.Routing) []routing.Key {
	var out []routing.Key
	for _, key := range b.Keys() {
		pb, _ := b.Get(key.In, key.At)
		pa, ok := a.Get(key.In, key.At)
		if !ok || !equalLists(pa, pb) {
			out = append(out, key)
		}
	}
	return out
}

func equalLists(a, b []network.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func keyLess(a, b routing.Key) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.In < b.In
}

func sortKeys(keys []routing.Key) {
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
}
