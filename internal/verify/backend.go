package verify

// This file defines the verification-backend abstraction. The brute-force
// checker in this package enumerates every |F| <= k failure scenario, which
// is exact but exponential in k; the poly sub-package implements a
// polynomial-time fast path that either returns the same verdict or reports
// ErrNotApplicable. The Router composes the two: large-k / large-instance
// checks go to the fast path, everything else (and every fast-path bailout)
// to the oracle.

import (
	"context"
	"errors"

	"syrep/internal/routing"
)

// Backend is a perfect-k-resilience verification algorithm. Implementations
// must agree with the brute-force oracle on the Resilient verdict and must
// only report failing deliveries that the trace semantics confirm (source
// still connected to the destination in G∖F, trace does not deliver); the
// differential and fuzz suites enforce this. Backends differ in how much of
// the Report beyond the verdict they fill: the brute-force checker
// enumerates scenarios and reports every failing delivery (subject to
// Options), while the poly checker reports Scenarios == 0 and at most one
// counterexample per source.
type Backend interface {
	// Name identifies the backend ("brute-force", "poly", "router") in
	// logs, flags, and metrics.
	Name() string
	// Check verifies perfect k-resilience of r, honouring Options and ctx
	// the way verify.Check does.
	Check(ctx context.Context, r *routing.Routing, k int, opts Options) (*Report, error)
}

// ErrNotApplicable is returned by a fast-path backend that cannot decide the
// instance within its polynomial work budget (or declines it structurally).
// It is a routing signal, not a failure: the Router falls back to the oracle
// and the verdict is still produced.
var ErrNotApplicable = errors.New("verify: backend not applicable to this instance")

// BruteForce is the Backend view of this package's exhaustive checker. The
// zero value is ready to use.
type BruteForce struct{}

// Name returns "brute-force".
func (BruteForce) Name() string { return "brute-force" }

// Check runs the exhaustive scenario enumeration (verify.Check).
func (BruteForce) Check(ctx context.Context, r *routing.Routing, k int, opts Options) (*Report, error) {
	return Check(ctx, r, k, opts)
}

// Defaults of RouterConfig. MinK = 3 is where the C(m, k) scenario count
// starts to dominate every other pipeline stage on Topology-Zoo-sized
// networks; MinScenarios catches large-m instances whose k = 2 enumeration
// is already bigger than a typical k = 3 run on a small network.
const (
	DefaultRouteMinK         = 3
	DefaultRouteMinScenarios = 1 << 15
)

// RouterConfig tunes backend selection.
type RouterConfig struct {
	// Fast is the polynomial fast path (typically poly.New()). A nil Fast
	// disables routing entirely: every check goes to the oracle.
	Fast Backend
	// Oracle is the exact fallback (default BruteForce{}).
	Oracle Backend
	// MinK routes a check to Fast when k >= MinK
	// (default DefaultRouteMinK).
	MinK int
	// MinScenarios routes a check to Fast when the brute-force scenario
	// count |{F : |F| <= k}| would reach this bound even below MinK
	// (default DefaultRouteMinScenarios).
	MinScenarios int
}

// Router is a Backend that dispatches between a polynomial fast path and
// the exact oracle. Selection is by instance size: k at or above MinK, or a
// scenario count at or above MinScenarios, goes to the fast path; a
// fast-path ErrNotApplicable falls back to the oracle, so a Router check
// never fails with ErrNotApplicable itself. Routing decisions and fallbacks
// tick the BackendBrute/BackendPoly/PolyFallback counters of
// Options.Counters.
type Router struct {
	cfg RouterConfig
}

// NewRouter builds a Router, applying config defaults.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Oracle == nil {
		cfg.Oracle = BruteForce{}
	}
	if cfg.MinK <= 0 {
		cfg.MinK = DefaultRouteMinK
	}
	if cfg.MinScenarios <= 0 {
		cfg.MinScenarios = DefaultRouteMinScenarios
	}
	return &Router{cfg: cfg}
}

// Name returns "router".
func (ro *Router) Name() string { return "router" }

// UsesFast reports whether a check of r at k would be dispatched to the
// fast path (before any not-applicable fallback).
func (ro *Router) UsesFast(r *routing.Routing, k int) bool {
	if ro.cfg.Fast == nil || k < 0 {
		return false
	}
	if k >= ro.cfg.MinK {
		return true
	}
	// k < MinK is small (MinK defaults to 3), so the binomial sum cannot
	// overflow on any network an int can index.
	return r.Network().CountScenarios(k) >= ro.cfg.MinScenarios
}

// Check dispatches to the selected backend, falling back to the oracle when
// the fast path reports ErrNotApplicable.
func (ro *Router) Check(ctx context.Context, r *routing.Routing, k int, opts Options) (*Report, error) {
	c := opts.Counters
	if c == nil {
		c = noCounters
	}
	if !ro.UsesFast(r, k) {
		c.BackendBrute.Inc()
		return ro.cfg.Oracle.Check(ctx, r, k, opts)
	}
	c.BackendPoly.Inc()
	rep, err := ro.cfg.Fast.Check(ctx, r, k, opts)
	if err == nil {
		return rep, nil
	}
	if !errors.Is(err, ErrNotApplicable) {
		return nil, err
	}
	c.PolyFallback.Inc()
	c.BackendBrute.Inc()
	return ro.cfg.Oracle.Check(ctx, r, k, opts)
}
