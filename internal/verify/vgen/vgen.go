// Package vgen generates randomized corrupted routings for the verification
// differential and fuzz suites. Starting from a deterministic Topology-Zoo-like
// multigraph and its heuristic routing, it sabotages a configurable share of
// the entries so that brute-force and polynomial backends have real failing
// deliveries to disagree about. Everything is keyed by a single seed: a
// failing instance is reproduced by re-running with the Config printed in the
// test failure.
package vgen

import (
	"context"
	"fmt"
	"math/rand"

	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/routing"
	"syrep/internal/topozoo"
)

// Config selects one corrupted instance. The zero value of the corruption
// shares leaves the heuristic routing intact (useful for resilient fixtures);
// shares >= 1 corrupt every eligible entry.
type Config struct {
	// Nodes is the topology size (topozoo.GenConfig.Nodes).
	Nodes int
	// Seed keys both the topology and every corruption decision.
	Seed int64
	// TruncateShare is the probability that an entry's priority list is cut
	// to its first edge — packets arriving there drop as soon as that edge
	// fails, so verification finds failing deliveries at every k >= 1.
	TruncateShare float64
	// ParallelEdgeShare is the probability that a real edge is duplicated
	// before routing generation, turning the simple zoo graph into a proper
	// multigraph with parallel edges.
	ParallelEdgeShare float64
	// BounceShare is the probability that an entry with a real arrival edge
	// is rewritten to forward straight back on it. The builder rejects
	// self-loop edges (loop-backs are implicit), so this is the multigraph
	// analogue of self-loop corruption: it manufactures 2-cycles that
	// exercise the loop detection of every backend.
	BounceShare float64
}

// String renders the config as a copy-pasteable Go literal, so a differential
// mismatch can name the exact instance to reproduce.
func (c Config) String() string {
	return fmt.Sprintf("vgen.Config{Nodes: %d, Seed: %d, TruncateShare: %g, ParallelEdgeShare: %g, BounceShare: %g}",
		c.Nodes, c.Seed, c.TruncateShare, c.ParallelEdgeShare, c.BounceShare)
}

// Corrupted builds the instance selected by cfg: generate the topology,
// optionally duplicate edges, build the heuristic routing toward node 0, and
// corrupt entries in the deterministic Keys() order.
func Corrupted(cfg Config) (*routing.Routing, error) {
	net := topozoo.Generate(topozoo.GenConfig{Nodes: cfg.Nodes, Seed: cfg.Seed})
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.ParallelEdgeShare > 0 {
		var err error
		net, err = withParallelEdges(net, rng, cfg.ParallelEdgeShare)
		if err != nil {
			return nil, fmt.Errorf("vgen: %v: %w", cfg, err)
		}
	}
	r, err := heuristic.Generate(context.Background(), net, 0)
	if err != nil {
		return nil, fmt.Errorf("vgen: %v: heuristic generate: %w", cfg, err)
	}
	corrupt(r, rng, cfg)
	return r, nil
}

// Must is Corrupted for tests and benchmarks, panicking with the reproducing
// config on error. Generation only fails on degenerate configs (e.g. Nodes
// too small for the zoo generator), never randomly.
func Must(cfg Config) *routing.Routing {
	r, err := Corrupted(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// withParallelEdges rebuilds net with every original edge (same ids, same
// order) plus a rng-selected share of duplicates appended after them, so
// corruption decisions stay aligned with the single-graph instance of the
// same seed.
func withParallelEdges(net *network.Network, rng *rand.Rand, share float64) (*network.Network, error) {
	b := network.NewBuilder(net.Name() + "+parallel")
	for _, v := range net.Nodes() {
		b.AddNode(net.NodeName(v))
	}
	dup := make([]network.EdgeID, 0, net.NumRealEdges())
	for _, e := range net.RealEdges() {
		u, v := net.Endpoints(e)
		b.AddNamedEdge(net.EdgeName(e), u, v)
		if rng.Float64() < share {
			dup = append(dup, e)
		}
	}
	for _, e := range dup {
		u, v := net.Endpoints(e)
		b.AddNamedEdge(net.EdgeName(e)+"'", u, v)
	}
	return b.Build()
}

// corrupt sabotages entries in Keys() order, drawing both decisions for every
// key so the random sequence is independent of which corruptions apply.
func corrupt(r *routing.Routing, rng *rand.Rand, cfg Config) {
	realEdges := r.Network().NumRealEdges()
	for _, key := range r.Keys() {
		bounce := rng.Float64() < cfg.BounceShare
		truncate := rng.Float64() < cfg.TruncateShare
		if bounce && int(key.In) < realEdges {
			r.MustSet(key.In, key.At, []network.EdgeID{key.In})
			continue
		}
		if truncate {
			prio, _ := r.Get(key.In, key.At)
			if len(prio) > 1 {
				r.MustSet(key.In, key.At, prio[:1])
			}
		}
	}
}
