package verify_test

import (
	"context"
	"errors"
	"testing"

	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/verify"
	"syrep/internal/verify/vgen"
)

// fakeBackend counts calls and returns a canned report or error.
type fakeBackend struct {
	name  string
	calls int
	rep   *verify.Report
	err   error
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Check(ctx context.Context, r *routing.Routing, k int, opts verify.Options) (*verify.Report, error) {
	f.calls++
	if f.err != nil {
		return nil, f.err
	}
	if f.rep != nil {
		return f.rep, nil
	}
	return &verify.Report{K: k, Resilient: true}, nil
}

// TestRouterThresholds drives backend selection through the (k, instance
// size) table. The 12-node fixture has well over 64 scenarios at k=2, so a
// small MinScenarios redirects even low-k checks to the fast path.
func TestRouterThresholds(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 12, Seed: 1})
	scenariosK2 := r.Network().CountScenarios(2)
	if scenariosK2 < 64 {
		t.Fatalf("fixture too small: %d scenarios at k=2", scenariosK2)
	}
	for _, tc := range []struct {
		name     string
		cfg      verify.RouterConfig // Fast filled in per case
		noFast   bool
		k        int
		wantFast bool
	}{
		{name: "below-min-k", k: 2, wantFast: false},
		{name: "at-min-k", k: 3, wantFast: true},
		{name: "above-min-k", k: 5, wantFast: true},
		{name: "k-zero", k: 0, wantFast: false},
		{name: "negative-k", k: -1, wantFast: false},
		{name: "scenario-threshold", cfg: verify.RouterConfig{MinScenarios: 64}, k: 2, wantFast: true},
		{name: "scenario-threshold-unmet", cfg: verify.RouterConfig{MinScenarios: scenariosK2 + 1}, k: 2, wantFast: false},
		{name: "custom-min-k", cfg: verify.RouterConfig{MinK: 5}, k: 4, wantFast: false},
		{name: "custom-min-k-met", cfg: verify.RouterConfig{MinK: 5}, k: 5, wantFast: true},
		{name: "nil-fast", noFast: true, k: 5, wantFast: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast := &fakeBackend{name: "fast"}
			oracle := &fakeBackend{name: "oracle"}
			cfg := tc.cfg
			if !tc.noFast {
				cfg.Fast = fast
			}
			cfg.Oracle = oracle
			ro := verify.NewRouter(cfg)
			if got := ro.UsesFast(r, tc.k); got != tc.wantFast {
				t.Fatalf("UsesFast(k=%d) = %v, want %v", tc.k, got, tc.wantFast)
			}
			if tc.k < 0 {
				return // Check would reject negative k in the backend itself
			}
			if _, err := ro.Check(context.Background(), r, tc.k, verify.Options{}); err != nil {
				t.Fatal(err)
			}
			wantFastCalls, wantOracleCalls := 0, 1
			if tc.wantFast {
				wantFastCalls, wantOracleCalls = 1, 0
			}
			if fast.calls != wantFastCalls || oracle.calls != wantOracleCalls {
				t.Errorf("calls: fast=%d oracle=%d, want fast=%d oracle=%d",
					fast.calls, oracle.calls, wantFastCalls, wantOracleCalls)
			}
		})
	}
}

// TestRouterForcedFallback: a fast path reporting ErrNotApplicable must be
// retried on the oracle, tick the fallback counter, and surface the oracle's
// report; a genuine fast-path error must propagate instead.
func TestRouterForcedFallback(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 8, Seed: 2})
	oracleRep := &verify.Report{K: 3, Resilient: false}

	fast := &fakeBackend{name: "fast", err: verify.ErrNotApplicable}
	oracle := &fakeBackend{name: "oracle", rep: oracleRep}
	o := obs.New(nil)
	ro := verify.NewRouter(verify.RouterConfig{Fast: fast, Oracle: oracle})
	rep, err := ro.Check(context.Background(), r, 3, verify.Options{Counters: o.Verify()})
	if err != nil {
		t.Fatal(err)
	}
	if rep != oracleRep {
		t.Error("fallback did not surface the oracle report")
	}
	if fast.calls != 1 || oracle.calls != 1 {
		t.Errorf("calls: fast=%d oracle=%d, want 1 and 1", fast.calls, oracle.calls)
	}
	snap := o.Snapshot()
	if got := snap.Counter(obs.VerifyPolyFallback); got != 1 {
		t.Errorf("fallback counter = %d, want 1", got)
	}
	if got := snap.Counter(obs.VerifyBackendPoly); got != 1 {
		t.Errorf("poly backend counter = %d, want 1", got)
	}
	if got := snap.Counter(obs.VerifyBackendBrute); got != 1 {
		t.Errorf("brute backend counter = %d, want 1 (the fallback)", got)
	}

	boom := errors.New("boom")
	failing := &fakeBackend{name: "fast", err: boom}
	oracle2 := &fakeBackend{name: "oracle"}
	ro2 := verify.NewRouter(verify.RouterConfig{Fast: failing, Oracle: oracle2})
	if _, err := ro2.Check(context.Background(), r, 3, verify.Options{}); !errors.Is(err, boom) {
		t.Fatalf("genuine fast-path error was swallowed: %v", err)
	}
	if oracle2.calls != 0 {
		t.Errorf("oracle ran %d times after a non-applicability error, want 0", oracle2.calls)
	}
}

// TestRouterCountsBruteDispatch: small-k checks tick the brute counter once
// and never touch the fast path.
func TestRouterCountsBruteDispatch(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 8, Seed: 3})
	fast := &fakeBackend{name: "fast"}
	o := obs.New(nil)
	ro := verify.NewRouter(verify.RouterConfig{Fast: fast})
	if _, err := ro.Check(context.Background(), r, 1, verify.Options{Counters: o.Verify()}); err != nil {
		t.Fatal(err)
	}
	if fast.calls != 0 {
		t.Errorf("fast path ran %d times for k=1, want 0", fast.calls)
	}
	snap := o.Snapshot()
	if got := snap.Counter(obs.VerifyBackendBrute); got != 1 {
		t.Errorf("brute backend counter = %d, want 1", got)
	}
	if got := snap.Counter(obs.VerifyBackendPoly); got != 0 {
		t.Errorf("poly backend counter = %d, want 0", got)
	}
}

// TestBruteForceBackendDelegates: the Backend view of the exhaustive checker
// returns exactly what verify.Check returns.
func TestBruteForceBackendDelegates(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 8, Seed: 4, TruncateShare: 0.35})
	direct, err := verify.Check(context.Background(), r, 1, verify.Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	var b verify.Backend = verify.BruteForce{}
	viaBackend, err := b.Check(context.Background(), r, 1, verify.Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Resilient != viaBackend.Resilient || len(direct.Failing) != len(viaBackend.Failing) {
		t.Errorf("backend report differs from direct Check: %+v vs %+v", viaBackend, direct)
	}
	if b.Name() != "brute-force" {
		t.Errorf("Name() = %q", b.Name())
	}
}
