package verify_test

import (
	"context"
	"testing"

	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/routing"
	"syrep/internal/trace"
	"syrep/internal/verify"
)

func fig1Routing(t *testing.T) (*network.Network, *routing.Routing) {
	t.Helper()
	n := papernet.Figure1()
	return n, papernet.Figure1bRouting(n)
}

// repairedFig1Routing applies the paper's repair outcome: the second
// priority of R(e6, v4) becomes e5, which the paper states yields a
// perfectly 2-resilient routing.
func repairedFig1Routing(t *testing.T) (*network.Network, *routing.Routing) {
	t.Helper()
	n, r := fig1Routing(t)
	v4 := n.NodeByName("v4")
	r.MustSet(6, v4, []network.EdgeID{2, 5, 4, 6})
	return n, r
}

func TestFig1bIsPerfectly1Resilient(t *testing.T) {
	_, r := fig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 1, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient {
		t.Fatalf("Figure 1b routing should be 1-resilient; failures: %v", rep.Failing)
	}
	if rep.Scenarios != 8 { // {} + 7 single failures
		t.Errorf("Scenarios = %d, want 8", rep.Scenarios)
	}
}

func TestFig1bIsNot2Resilient(t *testing.T) {
	n, r := fig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilient {
		t.Fatal("Figure 1b routing should not be 2-resilient")
	}
	// The paper: (v1,F), (v3,F), (v4,F) with F={e1,e2} are exactly all
	// failing deliveries with up to 2 failed links.
	if len(rep.Failing) != 3 {
		t.Fatalf("got %d failing deliveries, want 3: %v", len(rep.Failing), rep.Failing)
	}
	wantF := network.EdgeSetOf(n.NumRealEdges(), 1, 2)
	srcs := make(map[string]bool)
	for _, f := range rep.Failing {
		if !f.Failed.Equal(wantF) {
			t.Errorf("failing scenario %v, want %v", f.Failed, wantF)
		}
		if f.Outcome != trace.Looped {
			t.Errorf("outcome %v, want looped", f.Outcome)
		}
		srcs[n.NodeName(f.Source)] = true
	}
	for _, s := range []string{"v1", "v3", "v4"} {
		if !srcs[s] {
			t.Errorf("missing failing delivery from %s", s)
		}
	}
}

func TestSuspiciousEntries(t *testing.T) {
	n, r := fig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sus := rep.Suspicious()
	if len(sus) != 6 {
		t.Fatalf("got %d suspicious entries, want 6 (paper Fig 1b): %v", len(sus), sus)
	}
	var (
		v1 = n.NodeByName("v1")
		v3 = n.NodeByName("v3")
		v4 = n.NodeByName("v4")
	)
	want := map[routing.Key]bool{
		{In: n.Loopback(v1), At: v1}: true,
		{In: n.Loopback(v3), At: v3}: true,
		{In: n.Loopback(v4), At: v4}: true,
		{In: 3, At: v3}:              true,
		{In: 4, At: v1}:              true,
		{In: 6, At: v4}:              true,
	}
	for _, k := range sus {
		if !want[k] {
			t.Errorf("unexpected suspicious entry %v", k)
		}
	}
}

func TestRepairedFig1Is2Resilient(t *testing.T) {
	_, r := repairedFig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient {
		t.Fatalf("repaired routing should be 2-resilient; failures: %v", rep.Failing)
	}
}

func TestResilientHelper(t *testing.T) {
	_, r := fig1Routing(t)
	if !verify.Resilient(r, 1) {
		t.Error("Resilient(r,1) = false")
	}
	if verify.Resilient(r, 2) {
		t.Error("Resilient(r,2) = true")
	}
}

func TestMaxResilience(t *testing.T) {
	_, r := fig1Routing(t)
	got, err := verify.MaxResilience(context.Background(), r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("MaxResilience(Fig1b) = %d, want 1", got)
	}

	_, rep := repairedFig1Routing(t)
	got, err = verify.MaxResilience(context.Background(), rep, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MaxResilience(repaired, limit 2) = %d, want 2", got)
	}
}

func TestMaxResilienceEmptyRouting(t *testing.T) {
	n := papernet.Figure1()
	r := routing.New(n, papernet.Figure1Dest(n))
	got, err := verify.MaxResilience(context.Background(), r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != -1 {
		t.Errorf("MaxResilience(empty) = %d, want -1", got)
	}
}

func TestStopAtFirst(t *testing.T) {
	_, r := fig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 2, verify.Options{StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilient {
		t.Error("Resilient = true")
	}
	if len(rep.Failing) != 1 {
		t.Errorf("Failing = %d entries, want 1", len(rep.Failing))
	}
}

func TestMaxFailuresCap(t *testing.T) {
	_, r := fig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 2, verify.Options{MaxFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failing) != 2 {
		t.Errorf("Failing = %d entries, want capped at 2", len(rep.Failing))
	}
	if rep.Resilient {
		t.Error("Resilient = true despite failures")
	}
}

func TestPruneSubsumption(t *testing.T) {
	// A 5-cycle d-a-b-c-e-d with a chord a-e, and a deliberately broken
	// routing in which node a bounces packets from b straight back, causing
	// a loop from source b whenever e0={d,a} fails. Every superset scenario
	// {e0, x} that keeps b connected replays the same trace with the same
	// entries, so Section III-C subsumption must collapse them.
	b := network.NewBuilder("prune")
	d := b.AddNode("d")
	a := b.AddNode("a")
	bb := b.AddNode("b")
	c := b.AddNode("c")
	e := b.AddNode("e")
	e0 := b.AddEdge(d, a)
	e1 := b.AddEdge(a, bb)
	e2 := b.AddEdge(bb, c)
	e3 := b.AddEdge(c, e)
	e4 := b.AddEdge(e, d)
	e5 := b.AddEdge(a, e)
	n := b.MustBuild()

	r := routing.New(n, d)
	r.MustSet(n.Loopback(a), a, []network.EdgeID{e0, e5})
	r.MustSet(n.Loopback(bb), bb, []network.EdgeID{e1})
	r.MustSet(n.Loopback(c), c, []network.EdgeID{e3})
	r.MustSet(n.Loopback(e), e, []network.EdgeID{e4, e5})
	r.MustSet(e1, a, []network.EdgeID{e0, e1}) // bounce back to b when e0 fails
	r.MustSet(e1, bb, []network.EdgeID{e1})    // and b bounces it back again
	r.MustSet(e2, c, []network.EdgeID{e3})
	r.MustSet(e3, e, []network.EdgeID{e4, e5})
	r.MustSet(e5, e, []network.EdgeID{e4})
	r.MustSet(e5, a, []network.EdgeID{e0, e1})
	r.MustSet(e2, bb, []network.EdgeID{e1})
	r.MustSet(e4, e, []network.EdgeID{e3, e5})
	r.MustSet(e0, a, []network.EdgeID{e1, e5})
	r.MustSet(e3, c, []network.EdgeID{e2})

	full, err := verify.Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := verify.Check(context.Background(), r, 2, verify.Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Resilient {
		t.Fatal("pruned run lost the non-resilience verdict")
	}
	if len(pruned.Failing) >= len(full.Failing) {
		t.Errorf("pruned %d >= full %d failing deliveries", len(pruned.Failing), len(full.Failing))
	}
	// Subsumption must not lose suspicious-entry coverage.
	fullSus := full.Suspicious()
	prunedSus := make(map[routing.Key]bool)
	for _, k := range pruned.Suspicious() {
		prunedSus[k] = true
	}
	for _, k := range fullSus {
		if !prunedSus[k] {
			t.Errorf("pruning lost suspicious entry %v", k)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	_, r := fig1Routing(t)
	seq, err := verify.Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := verify.Check(context.Background(), r, 2, verify.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Resilient != par.Resilient {
		t.Errorf("parallel Resilient = %v, sequential = %v", par.Resilient, seq.Resilient)
	}
	if seq.Scenarios != par.Scenarios {
		t.Errorf("parallel Scenarios = %d, sequential = %d", par.Scenarios, seq.Scenarios)
	}
	if len(seq.Failing) != len(par.Failing) {
		t.Errorf("parallel Failing = %d, sequential = %d", len(par.Failing), len(seq.Failing))
	}
}

func TestHolesCountAsFailures(t *testing.T) {
	n, r := fig1Routing(t)
	v3 := n.NodeByName("v3")
	if err := r.PunchHole(n.Loopback(v3), v3, 3); err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(context.Background(), r, 0, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilient {
		t.Error("routing with reachable hole reported resilient")
	}
	if len(rep.Failing) == 0 || rep.Failing[0].Outcome != trace.HitHole {
		t.Errorf("Failing = %v, want hit-hole outcome", rep.Failing)
	}
}

func TestNegativeK(t *testing.T) {
	_, r := fig1Routing(t)
	if _, err := verify.Check(context.Background(), r, -1, verify.Options{}); err == nil {
		t.Error("Check(-1) succeeded")
	}
}

func TestContextCancellation(t *testing.T) {
	_, r := fig1Routing(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := verify.Check(ctx, r, 2, verify.Options{}); err == nil {
		t.Error("cancelled Check succeeded")
	}
	if _, err := verify.Check(ctx, r, 2, verify.Options{Parallel: true}); err == nil {
		t.Error("cancelled parallel Check succeeded")
	}
}

func TestZeroResilienceOfEmptyScenario(t *testing.T) {
	_, r := fig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 0, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient || rep.Scenarios != 1 {
		t.Errorf("k=0: resilient=%v scenarios=%d", rep.Resilient, rep.Scenarios)
	}
}

func TestDisconnectedSourcesAreSkipped(t *testing.T) {
	// v3 isolated by {e1,e3,e6}: no delivery required from v3.
	n, r := fig1Routing(t)
	rep, err := verify.Check(context.Background(), r, 3, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failing {
		if !n.ConnectedWithout(f.Source, r.Dest(), f.Failed) {
			t.Errorf("failing delivery from disconnected source %s under %v",
				n.NodeName(f.Source), f.Failed)
		}
	}
}
