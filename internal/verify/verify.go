// Package verify implements brute-force verification of perfect
// k-resilience (Section III-B of the SyRep paper). For small k, it
// systematically enumerates every failure scenario |F| <= k and follows the
// trace from every source node; failing deliveries are recorded together
// with the routing entries that fired along their traces, which become the
// *suspicious* entries fed to the repair engine.
package verify

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/trace"
)

// FailingDelivery is a pair (source, F) such that the packet starting at
// source is not delivered under failure scenario F even though source and
// destination remain connected in G∖F (Section III-B).
type FailingDelivery struct {
	Source  network.NodeID
	Failed  network.EdgeSet
	Outcome trace.Outcome
	// Used are the routing entries that fired along the failing trace.
	Used []routing.Key
	// Visited are the nodes the failing trace passed through (including the
	// node where it was dropped or looped), deduplicated.
	Visited []network.NodeID
}

// Report summarises a verification run.
type Report struct {
	// K is the resilience level that was checked.
	K int
	// Resilient is true when the routing is perfectly K-resilient.
	Resilient bool
	// Failing lists the failing deliveries found. When pruning is enabled,
	// subsumed failures (same source, superset scenario, no new entries) are
	// omitted per Section III-C. The ordering is pinned: deliveries appear
	// in scenario enumeration order (ForEachScenario) and, within one
	// scenario, in ascending source-node order — identically for sequential
	// and parallel runs under every option combination.
	Failing []FailingDelivery
	// Scenarios is the number of failure scenarios examined.
	Scenarios int
	// Traces is the number of traces followed.
	Traces int
}

// Suspicious returns the union of routing entries that fired along failing
// traces, sorted deterministically. These are the entries the repair engine
// removes and re-synthesises.
func (rep *Report) Suspicious() []routing.Key {
	seen := make(map[routing.Key]bool)
	for _, f := range rep.Failing {
		for _, k := range f.Used {
			seen[k] = true
		}
	}
	out := make([]routing.Key, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].In < out[j].In
	})
	return out
}

// Options configures verification.
type Options struct {
	// MaxFailures caps the number of failing deliveries collected; 0 means
	// collect all. Verification still determines resilience exactly — the
	// cap only bounds the report size. Parallel runs without Prune
	// additionally bound every worker's buffer to MaxFailures entries, so a
	// capped parallel run holds at most GOMAXPROCS×MaxFailures deliveries
	// in memory before the merge. With Prune the worker buffers are bounded
	// by local subsumption instead of the cap: a worker cannot know which
	// of its entries the global merge-order prune will keep, so shedding at
	// the cap could drop an entry the sequential report contains. Either
	// way the merged report — contents and order — is identical to the
	// sequential one.
	MaxFailures int
	// Prune enables the subsumption rule of Section III-C: a failing
	// delivery (v, F2) is dropped when an already-recorded (v, F1) with
	// F1 ⊆ F2 used the same entries.
	Prune bool
	// Parallel enables concurrent scenario evaluation across GOMAXPROCS
	// workers.
	Parallel bool
	// StopAtFirst stops at the first failing delivery in scenario-enumeration
	// order. Sequential and parallel runs produce identical reports: parallel
	// workers cooperatively halt once any failing scenario is known, the
	// merge selects the globally lowest-index failing delivery, and the
	// Scenarios/Traces counts are restated to the exact sequential prefix.
	// Every option combination produces reports identical to sequential —
	// the differential suite locks this in.
	StopAtFirst bool
	// Counters, when non-nil, receives the verifier's counter stream:
	// scenarios examined, traces followed, failing deliveries reported,
	// and (parallel runs) deliveries buffered by workers before the merge.
	// Nil means unobserved.
	Counters *obs.VerifyCounters
}

// noCounters is the shared no-op bundle substituted for a nil
// Options.Counters: its fields are nil *obs.Counter, whose methods are
// no-ops, so call sites need no guards. Never mutated.
var noCounters = &obs.VerifyCounters{}

// ResilientCtx reports whether r is perfectly k-resilient, honouring ctx:
// a cancelled or expired context reports false. It is a convenience wrapper
// around Check that stops at the first counterexample — the first failing
// delivery in (scenario enumeration order, source-node order), a pinned
// ordering that sequential and parallel runs agree on.
func ResilientCtx(ctx context.Context, r *routing.Routing, k int) bool {
	rep, err := Check(ctx, r, k, Options{StopAtFirst: true})
	return err == nil && rep.Resilient
}

// Resilient is ResilientCtx with a background context, for boundaries that
// genuinely have no context (examples, tests). Code running under a deadline
// or supervisor must use ResilientCtx so cancellation stays bounded.
func Resilient(r *routing.Routing, k int) bool {
	return ResilientCtx(context.Background(), r, k)
}

// Check verifies perfect k-resilience of r per Definition 4: for every
// failure scenario F with |F| <= k and every source s still connected to the
// destination in G∖F, the trace from s must deliver. Traces that reach a
// hole count as failing (their behaviour is undefined).
//
// ctx cancellation aborts the run with ctx.Err().
func Check(ctx context.Context, r *routing.Routing, k int, opts Options) (*Report, error) {
	if k < 0 {
		return nil, fmt.Errorf("verify: negative resilience level %d", k)
	}
	if opts.Counters == nil {
		opts.Counters = noCounters
	}
	var (
		rep *Report
		err error
	)
	if opts.Parallel {
		rep, err = checkParallel(ctx, r, k, opts)
	} else {
		rep, err = checkSequential(ctx, r, k, opts)
	}
	if err != nil {
		return nil, err
	}
	opts.Counters.Failing.Add(int64(len(rep.Failing)))
	return rep, nil
}

func checkSequential(ctx context.Context, r *routing.Routing, k int, opts Options) (*Report, error) {
	rep := &Report{K: k, Resilient: true}
	n := r.Network()
	dest := r.Dest()
	var ctxErr error
	n.ForEachScenario(k, func(F network.EdgeSet) bool {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return false
		}
		rep.Scenarios++
		opts.Counters.Scenarios.Inc()
		reach := n.ReachableWithout(dest, F)
		for _, s := range n.Nodes() {
			if s == dest || !reach[s] {
				continue
			}
			rep.Traces++
			opts.Counters.Traces.Inc()
			res := trace.Run(r, F, s)
			if res.Outcome == trace.Delivered {
				continue
			}
			rep.Resilient = false
			rep.record(FailingDelivery{
				Source:  s,
				Failed:  F.Clone(),
				Outcome: res.Outcome,
				Used:    res.Used,
				Visited: visitedNodes(n, s, res.Edges),
			}, opts)
			if opts.StopAtFirst {
				return false
			}
		}
		return true
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	return rep, nil
}

// record appends a failing delivery, applying the subsumption rule and the
// collection cap.
func (rep *Report) record(f FailingDelivery, opts Options) {
	if opts.Prune {
		for _, prev := range rep.Failing {
			if prev.Source == f.Source && prev.Failed.SubsetOf(f.Failed) && sameEntries(prev.Used, f.Used) {
				return
			}
		}
	}
	if opts.MaxFailures > 0 && len(rep.Failing) >= opts.MaxFailures {
		return
	}
	rep.Failing = append(rep.Failing, f)
}

// visitedNodes reconstructs the node sequence of a trace (deduplicated,
// in first-visit order). edges[0] is the source's loop-back.
func visitedNodes(n *network.Network, source network.NodeID, edges []network.EdgeID) []network.NodeID {
	seen := make(map[network.NodeID]bool, len(edges)+1)
	out := []network.NodeID{source}
	seen[source] = true
	v := source
	for _, e := range edges[1:] {
		v = n.Other(e, v)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// DeliveryFromTrace runs the trace from source under failure scenario failed
// and, when it does not deliver, packages the outcome as a FailingDelivery
// (cloning failed, so the caller may keep mutating its scenario set). The
// second result is false when the trace delivers — no failing delivery
// exists for this (source, failed) pair. It is the confirmation primitive
// for alternative backends: a counterexample built through it is by
// construction one the brute-force oracle would also report, provided the
// caller has checked that source remains connected to the destination in
// G∖failed.
func DeliveryFromTrace(r *routing.Routing, failed network.EdgeSet, source network.NodeID) (FailingDelivery, bool) {
	res := trace.Run(r, failed, source)
	if res.Outcome == trace.Delivered {
		return FailingDelivery{}, false
	}
	return FailingDelivery{
		Source:  source,
		Failed:  failed.Clone(),
		Outcome: res.Outcome,
		Used:    res.Used,
		Visited: visitedNodes(r.Network(), source, res.Edges),
	}, true
}

func sameEntries(a, b []routing.Key) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[routing.Key]bool, len(a))
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		if !set[k] {
			return false
		}
	}
	return true
}

// taggedDelivery is a failing delivery annotated with the global scenario
// index that produced it, so the parallel merge can replay deliveries in
// sequential enumeration order.
type taggedDelivery struct {
	idx int
	f   FailingDelivery
}

// locallySubsumed reports whether f is subsumed by an entry already in a
// worker's buffer (the same rule Report.record applies). Subsumption is
// transitive — if q subsumes prev and prev subsumes f, then q subsumes f —
// so dropping f here never removes a delivery the merge-order replay would
// have kept: whatever would have pruned prev in the merged report prunes f
// as well.
func locallySubsumed(buf []taggedDelivery, f FailingDelivery) bool {
	for i := range buf {
		prev := &buf[i].f
		if prev.Source == f.Source && prev.Failed.SubsetOf(f.Failed) && sameEntries(prev.Used, f.Used) {
			return true
		}
	}
	return false
}

// checkParallel distributes scenarios over workers. Scenario enumeration is
// cheap relative to tracing, so every worker enumerates all scenarios and
// processes its share by index modulo the worker count.
//
// Workers tag buffered deliveries with their scenario index and the merge
// replays them through Report.record in global scenario order, which makes
// the parallel report identical to the sequential one for every option
// combination except the Prune+MaxFailures cap divergence documented on
// Options.MaxFailures. StopAtFirst runs take a dedicated path that is
// deep-equal to sequential by construction.
func checkParallel(ctx context.Context, r *routing.Routing, k int, opts Options) (*Report, error) {
	if opts.StopAtFirst {
		return checkParallelStopAtFirst(ctx, r, k, opts)
	}
	n := r.Network()
	dest := r.Dest()
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}

	type partial struct {
		failing   []taggedDelivery
		failed    bool
		scenarios int
		traces    int
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			idx := -1
			n.ForEachScenario(k, func(F network.EdgeSet) bool {
				idx++
				if idx%workers != w {
					return true
				}
				if ctx.Err() != nil {
					return false
				}
				p.scenarios++
				opts.Counters.Scenarios.Inc()
				reach := n.ReachableWithout(dest, F)
				for _, s := range n.Nodes() {
					if s == dest || !reach[s] {
						continue
					}
					p.traces++
					opts.Counters.Traces.Inc()
					res := trace.Run(r, F, s)
					if res.Outcome == trace.Delivered {
						continue
					}
					p.failed = true
					f := FailingDelivery{
						Source:  s,
						Failed:  F.Clone(),
						Outcome: res.Outcome,
						Used:    res.Used,
						Visited: visitedNodes(n, s, res.Edges),
					}
					// Bound the worker-local buffer: apply the subsumption
					// rule against this worker's own entries, and — only
					// without Prune — cap the buffer at MaxFailures. The
					// merge applies the global rule again, so subsumption
					// only sheds deliveries that could never survive it.
					// The cap is safe without Prune (the first MaxFailures
					// merged entries are a prefix of the workers' buffers)
					// but not with it: the global merge-order prune may
					// reject buffered entries, letting a delivery past a
					// worker's cap into the sequential report, so pruned
					// runs keep every non-subsumed entry instead.
					if opts.Prune && locallySubsumed(p.failing, f) {
						continue
					}
					if !opts.Prune && opts.MaxFailures > 0 && len(p.failing) >= opts.MaxFailures {
						continue
					}
					p.failing = append(p.failing, taggedDelivery{idx: idx, f: f})
					opts.Counters.Collected.Inc()
				}
				return true
			})
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{K: k, Resilient: true}
	var all []taggedDelivery
	for i := range parts {
		rep.Scenarios += parts[i].scenarios
		rep.Traces += parts[i].traces
		if parts[i].failed {
			rep.Resilient = false
		}
		all = append(all, parts[i].failing...)
	}
	// Scenario indices are disjoint across workers (striped modulo the
	// worker count) and ascending within each worker's buffer, so a stable
	// sort on the index replays deliveries in exactly the sequential record
	// order; the entries of one scenario keep their source order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].idx < all[j].idx })
	for _, t := range all {
		rep.record(t.f, opts)
	}
	return rep, nil
}

// checkParallelStopAtFirst evaluates scenarios in parallel while reproducing
// the sequential StopAtFirst report exactly. The shared minFail atomic holds
// the lowest scenario index known to fail; it only ever decreases. Workers
// process their stripe in ascending index order and halt as soon as their
// next index passes minFail, so every scenario below the final minFail is
// fully examined and the final minFail is the globally first failing
// scenario — the one the sequential run stops at. Within it, the owning
// worker records the first failing source in node order, which is exactly
// the sequential delivery.
//
// The merge then restates Scenarios/Traces to the sequential prefix: counts
// of other workers' overshoot (scenarios past minFail examined before the
// halt propagated) are discarded, and the delivered-trace prefix is
// recounted from reachability alone, which costs one BFS per scenario — far
// cheaper than the tracing already done. Counters are bumped post-merge in
// this mode so they match the report.
func checkParallelStopAtFirst(ctx context.Context, r *routing.Routing, k int, opts Options) (*Report, error) {
	n := r.Network()
	dest := r.Dest()
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}

	const noFail = int64(math.MaxInt64)
	var minFail atomic.Int64
	minFail.Store(noFail)

	type candidate struct {
		idx    int64
		traces int // traces in the failing scenario up to and including the failure
		f      FailingDelivery
	}
	type partial struct {
		scenarios int
		traces    int
		cand      *candidate
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			idx := int64(-1)
			n.ForEachScenario(k, func(F network.EdgeSet) bool {
				idx++
				if int(idx)%workers != w {
					return true
				}
				// minFail only decreases, so once our ascending index reaches
				// it no later scenario of this stripe can matter.
				if idx >= minFail.Load() {
					return false
				}
				if ctx.Err() != nil {
					return false
				}
				p.scenarios++
				scenTraces := 0
				reach := n.ReachableWithout(dest, F)
				for _, s := range n.Nodes() {
					if s == dest || !reach[s] {
						continue
					}
					scenTraces++
					res := trace.Run(r, F, s)
					if res.Outcome == trace.Delivered {
						continue
					}
					// First failing source of this scenario in node order —
					// the delivery sequential would report if this is the
					// first failing scenario overall.
					p.cand = &candidate{idx: idx, traces: scenTraces, f: FailingDelivery{
						Source:  s,
						Failed:  F.Clone(),
						Outcome: res.Outcome,
						Used:    res.Used,
						Visited: visitedNodes(n, s, res.Edges),
					}}
					opts.Counters.Collected.Inc()
					// CAS the global minimum down; each retry observes a
					// strictly smaller cur, so the loop is bounded.
					for cur := minFail.Load(); idx < cur; cur = minFail.Load() {
						if minFail.CompareAndSwap(cur, idx) {
							break
						}
					}
					return false
				}
				p.traces += scenTraces
				return true
			})
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{K: k, Resilient: true}
	fail := minFail.Load()
	if fail == noFail {
		for i := range parts {
			rep.Scenarios += parts[i].scenarios
			rep.Traces += parts[i].traces
		}
		opts.Counters.Scenarios.Add(int64(rep.Scenarios))
		opts.Counters.Traces.Add(int64(rep.Traces))
		return rep, nil
	}

	var winner *candidate
	for i := range parts {
		// The worker owning scenario `fail` stored it before lowering
		// minFail, so the winner always exists.
		if c := parts[i].cand; c != nil && c.idx == fail {
			winner = c
		}
	}
	rep.Resilient = false
	rep.Scenarios = int(fail) + 1
	// Every scenario before the first failing one was fully delivered: its
	// trace count is the number of sources still connected to the
	// destination, which reachability gives without re-tracing.
	prefix := 0
	idx := int64(-1)
	n.ForEachScenario(k, func(F network.EdgeSet) bool {
		idx++
		if idx >= fail {
			return false
		}
		reach := n.ReachableWithout(dest, F)
		for _, s := range n.Nodes() {
			if s != dest && reach[s] {
				prefix++
			}
		}
		return true
	})
	rep.Traces = prefix + winner.traces
	rep.record(winner.f, opts)
	opts.Counters.Scenarios.Add(int64(rep.Scenarios))
	opts.Counters.Traces.Add(int64(rep.Traces))
	return rep, nil
}

// MaxResilience returns the largest k <= limit for which r is perfectly
// k-resilient, checking k = 0, 1, ... in turn. It returns -1 when even k=0
// fails (the routing does not deliver on the intact network).
func MaxResilience(ctx context.Context, r *routing.Routing, limit int) (int, error) {
	best := -1
	for k := 0; k <= limit; k++ {
		rep, err := Check(ctx, r, k, Options{StopAtFirst: true})
		if err != nil {
			return best, err
		}
		if !rep.Resilient {
			return best, nil
		}
		best = k
	}
	return best, nil
}
