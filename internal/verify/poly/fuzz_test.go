package poly_test

import (
	"context"
	"errors"
	"testing"

	"syrep/internal/trace"
	"syrep/internal/verify"
	"syrep/internal/verify/poly"
	"syrep/internal/verify/vgen"
)

// FuzzPolyVerify drives the poly backend against the brute-force oracle on
// fuzzer-chosen corrupted multigraphs. The fuzzer picks topology size, seed,
// the three corruption shares, and k; the property is verdict equality plus
// oracle confirmation of every poly counterexample.
func FuzzPolyVerify(f *testing.F) {
	f.Add(uint8(8), int64(1), uint8(35), uint8(0), uint8(0), uint8(1))
	f.Add(uint8(11), int64(7), uint8(20), uint8(30), uint8(10), uint8(2))
	f.Add(uint8(14), int64(42), uint8(0), uint8(0), uint8(25), uint8(2))
	f.Add(uint8(6), int64(99), uint8(100), uint8(0), uint8(0), uint8(3))
	f.Add(uint8(4), int64(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, nodes uint8, seed int64, truncPct, parPct, bouncePct, kRaw uint8) {
		cfg := vgen.Config{
			// Small instances keep the oracle fast; topozoo clamps below 4.
			Nodes:             int(nodes%13) + 4,
			Seed:              seed,
			TruncateShare:     float64(truncPct%101) / 100,
			ParallelEdgeShare: float64(parPct%101) / 100,
			BounceShare:       float64(bouncePct%101) / 100,
		}
		k := int(kRaw % 4)
		r, err := vgen.Corrupted(cfg)
		if err != nil {
			t.Skip() // degenerate generator config, not a backend bug
		}
		brute, err := verify.Check(context.Background(), r, k, verify.Options{})
		if err != nil {
			t.Fatalf("reproduce: %v k=%d: brute: %v", cfg, k, err)
		}
		rep, err := poly.New().Check(context.Background(), r, k, verify.Options{})
		if errors.Is(err, verify.ErrNotApplicable) {
			return // sanctioned: the router would fall back to the oracle
		}
		if err != nil {
			t.Fatalf("reproduce: %v k=%d: poly: %v", cfg, k, err)
		}
		if rep.Resilient != brute.Resilient {
			t.Fatalf("reproduce: %v k=%d: poly verdict %v, brute %v (%d oracle counterexamples)",
				cfg, k, rep.Resilient, brute.Resilient, len(brute.Failing))
		}
		for _, fd := range rep.Failing {
			if fd.Failed.Len() > k {
				t.Fatalf("reproduce: %v k=%d: counterexample uses %d failures", cfg, k, fd.Failed.Len())
			}
			if !r.Network().ConnectedWithout(fd.Source, r.Dest(), fd.Failed) {
				t.Fatalf("reproduce: %v k=%d: counterexample source %d disconnected", cfg, k, fd.Source)
			}
			if res := trace.Run(r, fd.Failed, fd.Source); res.Outcome == trace.Delivered {
				t.Fatalf("reproduce: %v k=%d: counterexample delivers on replay", cfg, k)
			}
		}
	})
}
