package poly_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"syrep/internal/verify"
	"syrep/internal/verify/poly"
	"syrep/internal/verify/vgen"
)

// profiles are the corruption mixes the differential suite sweeps. Together
// with the node sizes and seeds they span intact, dropping, looping,
// parallel-edge, and saturated instances.
var profiles = []struct {
	name                  string
	truncate, par, bounce float64
}{
	{"intact", 0, 0, 0},
	{"truncate", 0.35, 0, 0},
	{"bounce", 0, 0, 0.2},
	{"multigraph", 0.2, 0.35, 0},
	{"multibounce", 0.1, 0.3, 0.15},
	{"saturated", 1.1, 0, 0},
}

// diffSeeds returns how many seeds per (profile, size) cell the suite runs.
// The default keeps `go test ./...` snappy; `make verify-diff` raises it via
// SYREP_VERIFY_DIFF_SEEDS so the full run covers >= 1000 distinct instances
// (profiles × sizes × seeds).
func diffSeeds(t *testing.T) int {
	if env := os.Getenv("SYREP_VERIFY_DIFF_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("bad SYREP_VERIFY_DIFF_SEEDS=%q: %v", env, err)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return 8
}

// TestDifferentialPolyVsBrute is the headline harness: on randomized
// corrupted multigraphs, the poly backend must agree with the brute-force
// oracle on the resilient/non-resilient verdict for every k in {1, 2, 3},
// and every counterexample it reports must survive oracle confirmation
// (budgeted scenario, source still connected, trace does not deliver). A
// failure prints the vgen.Config literal that reproduces the instance.
func TestDifferentialPolyVsBrute(t *testing.T) {
	seeds := diffSeeds(t)
	checker := poly.New()
	instances, fallbacks := 0, 0
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			for _, nodes := range []int{8, 11, 14} {
				for seed := int64(1); seed <= int64(seeds); seed++ {
					cfg := vgen.Config{
						Nodes:             nodes,
						Seed:              seed*1000 + int64(nodes),
						TruncateShare:     prof.truncate,
						ParallelEdgeShare: prof.par,
						BounceShare:       prof.bounce,
					}
					r, err := vgen.Corrupted(cfg)
					if err != nil {
						t.Fatal(err)
					}
					instances++
					for k := 1; k <= 3; k++ {
						brute, err := verify.Check(context.Background(), r, k, verify.Options{Prune: true})
						if err != nil {
							t.Fatalf("reproduce: %v k=%d: brute: %v", cfg, k, err)
						}
						rep, err := checker.Check(context.Background(), r, k, verify.Options{})
						if errors.Is(err, verify.ErrNotApplicable) {
							fallbacks++
							continue
						}
						if err != nil {
							t.Fatalf("reproduce: %v k=%d: poly: %v", cfg, k, err)
						}
						if rep.Resilient != brute.Resilient {
							t.Errorf("reproduce: %v k=%d: poly verdict %v, brute %v (%d oracle counterexamples)",
								cfg, k, rep.Resilient, brute.Resilient, len(brute.Failing))
							continue
						}
						checkReportShape(t, r, k, rep)
						if t.Failed() {
							t.Fatalf("reproduce: %v k=%d", cfg, k)
						}
					}
				}
			}
		})
	}
	t.Logf("differential: %d instances × k∈{1,2,3}, %d poly fallbacks", instances, fallbacks)
	if fallbacks > instances {
		t.Errorf("poly fell back on %d of %d instance×k checks — fast path is not earning its keep",
			fallbacks, instances*3)
	}
}

// TestDifferentialPolyStrategies crosses the backends over the option
// strategies callers actually use (StopAtFirst for supervisor gates,
// MaxFailures for capped repair feeds): the verdict must match the oracle
// under every strategy, and capped reports must respect their cap.
func TestDifferentialPolyStrategies(t *testing.T) {
	seeds := diffSeeds(t)
	strategies := []struct {
		name string
		opts verify.Options
	}{
		{"plain", verify.Options{}},
		{"stop-at-first", verify.Options{StopAtFirst: true}},
		{"capped", verify.Options{MaxFailures: 2}},
	}
	checker := poly.New()
	for _, nodes := range []int{8, 12} {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			cfg := vgen.Config{Nodes: nodes, Seed: seed, TruncateShare: 0.3, BounceShare: 0.1}
			r := vgen.Must(cfg)
			for k := 1; k <= 2; k++ {
				oracle, err := verify.Check(context.Background(), r, k, verify.Options{StopAtFirst: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, st := range strategies {
					rep, err := checker.Check(context.Background(), r, k, st.opts)
					if errors.Is(err, verify.ErrNotApplicable) {
						continue
					}
					if err != nil {
						t.Fatalf("reproduce: %v k=%d %s: %v", cfg, k, st.name, err)
					}
					if rep.Resilient != oracle.Resilient {
						t.Errorf("reproduce: %v k=%d %s: poly verdict %v, oracle %v",
							cfg, k, st.name, rep.Resilient, oracle.Resilient)
					}
					if st.opts.StopAtFirst && len(rep.Failing) > 1 {
						t.Errorf("reproduce: %v k=%d: StopAtFirst returned %d counterexamples",
							cfg, k, len(rep.Failing))
					}
					if max := st.opts.MaxFailures; max > 0 && len(rep.Failing) > max {
						t.Errorf("reproduce: %v k=%d: cap %d exceeded with %d counterexamples",
							cfg, k, max, len(rep.Failing))
					}
					for _, f := range rep.Failing {
						confirmDelivery(t, r, k, f)
					}
				}
			}
		}
	}
}

// TestDifferentialRouterNeverNotApplicable: the composed Router must absorb
// every poly bailout — including artificially starved ones — and still agree
// with the oracle.
func TestDifferentialRouterNeverNotApplicable(t *testing.T) {
	starved := verify.NewRouter(verify.RouterConfig{
		Fast: poly.NewWithOptions(poly.Options{MaxVisits: 3}),
		MinK: 1,
	})
	for seed := int64(1); seed <= 5; seed++ {
		cfg := vgen.Config{Nodes: 10, Seed: seed, TruncateShare: 0.35}
		r := vgen.Must(cfg)
		for k := 1; k <= 2; k++ {
			oracle, err := verify.Check(context.Background(), r, k, verify.Options{Prune: true})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := starved.Check(context.Background(), r, k, verify.Options{Prune: true})
			if err != nil {
				t.Fatalf("reproduce: %v k=%d: router: %v", cfg, k, err)
			}
			if rep.Resilient != oracle.Resilient {
				t.Errorf("reproduce: %v k=%d: router verdict %v, oracle %v",
					cfg, k, rep.Resilient, oracle.Resilient)
			}
		}
	}
}

func ExampleSelect() {
	b, _ := poly.Select("auto")
	fmt.Println(b.Name())
	// Output: router
}
