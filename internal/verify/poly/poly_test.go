package poly_test

import (
	"context"
	"errors"
	"testing"

	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/trace"
	"syrep/internal/verify"
	"syrep/internal/verify/poly"
	"syrep/internal/verify/vgen"
)

// confirmDelivery re-checks a poly counterexample the way the oracle defines
// one: |F| <= k, the source still connected to the destination in G∖F, and a
// trace that does not deliver.
func confirmDelivery(t *testing.T, r *routing.Routing, k int, f verify.FailingDelivery) {
	t.Helper()
	if got := f.Failed.Len(); got > k {
		t.Errorf("counterexample scenario %v has %d failures, want <= %d", f.Failed, got, k)
	}
	if !r.Network().ConnectedWithout(f.Source, r.Dest(), f.Failed) {
		t.Errorf("counterexample source %d is disconnected under %v — excused, not failing",
			f.Source, f.Failed)
	}
	res := trace.Run(r, f.Failed, f.Source)
	if res.Outcome == trace.Delivered {
		t.Errorf("counterexample (source %d, %v) delivers on replay", f.Source, f.Failed)
	}
	if res.Outcome != f.Outcome {
		t.Errorf("counterexample outcome %v, replay gives %v", f.Outcome, res.Outcome)
	}
}

// checkReportShape enforces the documented poly report contract.
func checkReportShape(t *testing.T, r *routing.Routing, k int, rep *verify.Report) {
	t.Helper()
	if rep.K != k {
		t.Errorf("report K = %d, want %d", rep.K, k)
	}
	if rep.Scenarios != 0 {
		t.Errorf("poly report Scenarios = %d, want 0 (no enumeration)", rep.Scenarios)
	}
	if rep.Resilient != (len(rep.Failing) == 0) {
		t.Errorf("Resilient = %v with %d failing deliveries", rep.Resilient, len(rep.Failing))
	}
	for i, f := range rep.Failing {
		confirmDelivery(t, r, k, f)
		if i > 0 && f.Source <= rep.Failing[i-1].Source {
			t.Errorf("counterexamples not in strictly ascending source order: %d then %d",
				rep.Failing[i-1].Source, f.Source)
		}
	}
}

func TestPolyMatchesBruteOnFixtures(t *testing.T) {
	configs := []vgen.Config{
		{Nodes: 8, Seed: 1},                                              // intact heuristic routing
		{Nodes: 8, Seed: 2, TruncateShare: 0.35},                         // dropping entries
		{Nodes: 10, Seed: 3, BounceShare: 0.2},                           // looping entries
		{Nodes: 12, Seed: 4, TruncateShare: 0.2, ParallelEdgeShare: 0.4}, // multigraph
		{Nodes: 12, Seed: 5, TruncateShare: 1.1},                         // everything truncated
	}
	for _, cfg := range configs {
		r := vgen.Must(cfg)
		for k := 0; k <= 3; k++ {
			brute, err := verify.Check(context.Background(), r, k, verify.Options{})
			if err != nil {
				t.Fatalf("%v k=%d: brute: %v", cfg, k, err)
			}
			rep, err := poly.New().Check(context.Background(), r, k, verify.Options{})
			if errors.Is(err, verify.ErrNotApplicable) {
				t.Fatalf("%v k=%d: poly not applicable on a trivial fixture", cfg, k)
			}
			if err != nil {
				t.Fatalf("%v k=%d: poly: %v", cfg, k, err)
			}
			if rep.Resilient != brute.Resilient {
				t.Errorf("%v k=%d: poly verdict %v, brute %v", cfg, k, rep.Resilient, brute.Resilient)
			}
			checkReportShape(t, r, k, rep)
		}
	}
}

func TestPolyStopAtFirstAndMaxFailures(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 14, Seed: 9, TruncateShare: 1.1})
	full, err := poly.New().Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Resilient || len(full.Failing) < 3 {
		t.Fatalf("fixture too tame: resilient=%v failing=%d", full.Resilient, len(full.Failing))
	}
	first, err := poly.New().Check(context.Background(), r, 2, verify.Options{StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Failing) != 1 {
		t.Errorf("StopAtFirst collected %d counterexamples, want 1", len(first.Failing))
	}
	if len(first.Failing) == 1 && !reflectEqualDelivery(first.Failing[0], full.Failing[0]) {
		t.Error("StopAtFirst counterexample differs from the first of the full run")
	}
	capped, err := poly.New().Check(context.Background(), r, 2, verify.Options{MaxFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Failing) != 2 {
		t.Errorf("MaxFailures=2 collected %d counterexamples, want 2", len(capped.Failing))
	}
	if capped.Resilient {
		t.Error("capped run must still report non-resilient")
	}
}

func reflectEqualDelivery(a, b verify.FailingDelivery) bool {
	if a.Source != b.Source || a.Outcome != b.Outcome || !a.Failed.Equal(b.Failed) {
		return false
	}
	return true
}

func TestPolyBudgetExhaustionIsNotApplicable(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 14, Seed: 3, TruncateShare: 0.35})
	c := poly.NewWithOptions(poly.Options{MaxVisits: 5})
	_, err := c.Check(context.Background(), r, 2, verify.Options{})
	if !errors.Is(err, verify.ErrNotApplicable) {
		t.Fatalf("budget-starved check returned %v, want ErrNotApplicable", err)
	}
}

func TestPolyContextCancellation(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 14, Seed: 3, TruncateShare: 0.35})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := poly.New().Check(ctx, r, 2, verify.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled check returned %v, want context.Canceled", err)
	}
}

func TestPolyNegativeK(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 8, Seed: 1})
	if _, err := poly.New().Check(context.Background(), r, -1, verify.Options{}); err == nil {
		t.Fatal("negative k must be rejected")
	}
}

func TestPolyCounters(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 12, Seed: 5, TruncateShare: 0.35})
	o := obs.New(nil)
	rep, err := poly.New().Check(context.Background(), r, 2, verify.Options{Counters: o.Verify()})
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()
	if got := snap.Counter(obs.VerifyPolyVisits); got <= 0 {
		t.Errorf("poly visits counter = %d, want > 0", got)
	}
	if got := snap.Counter(obs.VerifyTraces); got != int64(rep.Traces) {
		t.Errorf("traces counter %d != report %d", got, rep.Traces)
	}
	if got := snap.Counter(obs.VerifyFailing); got != int64(len(rep.Failing)) {
		t.Errorf("failing counter %d != report %d", got, len(rep.Failing))
	}
}

// TestPolyDeterministic: two runs over the same instance produce identical
// reports — the search order is fixed, independent of map iteration.
func TestPolyDeterministic(t *testing.T) {
	r := vgen.Must(vgen.Config{Nodes: 14, Seed: 11, TruncateShare: 0.3, BounceShare: 0.1})
	a, err := poly.New().Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := poly.New().Check(context.Background(), r, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Resilient != b.Resilient || len(a.Failing) != len(b.Failing) || a.Traces != b.Traces {
		t.Fatalf("poly is not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Failing {
		if !reflectEqualDelivery(a.Failing[i], b.Failing[i]) {
			t.Errorf("counterexample %d differs between runs", i)
		}
	}
}

func TestSelect(t *testing.T) {
	for _, tc := range []struct {
		name    string
		want    string
		wantErr bool
	}{
		{"", "router", false},
		{"auto", "router", false},
		{"brute", "brute-force", false},
		{"poly", "poly", false},
		{"quantum", "", true},
	} {
		b, err := poly.Select(tc.name)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Select(%q) accepted, want error", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%q): %v", tc.name, err)
			continue
		}
		if b.Name() != tc.want {
			t.Errorf("Select(%q).Name() = %q, want %q", tc.name, b.Name(), tc.want)
		}
	}
}

// TestPolyOnHandBuiltDiamond pins the search on a fully understood triangle
// fixture with a bounce entry, covering both verdict branches across k.
func TestPolyOnHandBuiltDiamond(t *testing.T) {
	b := network.NewBuilder("diamond")
	d := b.AddNode("d")
	u := b.AddNode("u")
	v := b.AddNode("v")
	e1 := b.AddEdge(u, d)
	e2 := b.AddEdge(u, v)
	e3 := b.AddEdge(v, d)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := routing.New(net, d)
	// u bounces e2 arrivals straight back: failing e3 alone loops packets
	// sourced at v between u and v even though v–u–d stays connected, so
	// the fixture is 0-resilient but not 1-resilient.
	r.MustSet(net.Loopback(u), u, []network.EdgeID{e1, e2})
	r.MustSet(e2, u, []network.EdgeID{e2})
	r.MustSet(net.Loopback(v), v, []network.EdgeID{e3, e2})
	r.MustSet(e2, v, []network.EdgeID{e3, e2})
	r.MustSet(e3, v, []network.EdgeID{e2})
	r.MustSet(e1, u, []network.EdgeID{e2})

	for k := 0; k <= 2; k++ {
		brute, err := verify.Check(context.Background(), r, k, verify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := poly.New().Check(context.Background(), r, k, verify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Resilient != brute.Resilient {
			t.Errorf("k=%d: poly %v, brute %v", k, rep.Resilient, brute.Resilient)
		}
		checkReportShape(t, r, k, rep)
	}
}
