// Package poly implements the polynomial-work fast path for perfect
// k-resilience verification (cf. Bentert & Schmid, "Perfect Network
// Resilience in Polynomial Time"). Instead of enumerating all C(m, k)
// failure scenarios like the brute-force oracle, it runs one budgeted
// decision-prefix DFS per source over forwarding states (in-edge, node):
// at each state the priority list is split into a failed prefix and the
// first surviving edge, and the search branches over where that split can
// fall, carrying the set of edges *required failed* (F_req) and *required
// alive* (A_req) along the path.
//
// Every leaf of the search is one of: the destination (that family of
// scenarios delivers), a revisited on-path state (the trace loops), or an
// exhausted priority list / missing entry (the trace drops or hits a hole).
// For a non-delivering leaf, F_req is the minimum failure scenario of its
// family; since connectivity is monotone decreasing in F, checking
// source–dest connectivity under F_req alone decides whether any scenario of
// the family is a genuine failing delivery, and replaying trace.Run under
// F_req confirms the counterexample the way the oracle would.
//
// The search is exact whenever it completes: it finds a failing delivery iff
// one exists with |F| <= k. What makes it polynomial is an explicit visit
// budget; instances whose decision tree exceeds the budget return
// verify.ErrNotApplicable and the Router falls back to the oracle, so the
// verdict is never wrong, only occasionally deferred.
package poly

import (
	"context"
	"errors"
	"fmt"

	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// DefaultVisitFactor scales the visit budget: a check may spend up to
// VisitFactor × numStates × (k+1) state visits before declaring itself not
// applicable. 64 is generous headroom over the typical near-linear search on
// repaired or lightly corrupted tables while still bounding adversarial
// instances to polynomial work.
const DefaultVisitFactor = 64

// ctxPollInterval is how many state visits pass between context polls.
const ctxPollInterval = 256

// Options tunes a Checker.
type Options struct {
	// VisitFactor overrides DefaultVisitFactor when > 0.
	VisitFactor int
	// MaxVisits pins the visit budget to an absolute value when > 0,
	// ignoring VisitFactor. Mainly for tests that need a deterministic
	// not-applicable bailout.
	MaxVisits int64
}

// Checker is the polynomial backend. It implements verify.Backend; the zero
// value is ready to use.
type Checker struct {
	opts Options
}

// New returns a Checker with default options.
func New() *Checker { return &Checker{} }

// NewWithOptions returns a Checker with explicit options.
func NewWithOptions(opts Options) *Checker { return &Checker{opts: opts} }

// Name returns "poly".
func (c *Checker) Name() string { return "poly" }

// Sentinel errors internal to the search. errBudget and errConfirm surface as
// verify.ErrNotApplicable; errSourceDone/errAllDone are control flow.
var (
	errBudget     = errors.New("poly: visit budget exhausted")
	errConfirm    = errors.New("poly: confirmation trace disagreed with search")
	errSourceDone = errors.New("poly: source resolved")
	errAllDone    = errors.New("poly: collection complete")
)

var noCounters = &obs.VerifyCounters{}

// Check verifies perfect k-resilience of r. The report carries the verdict,
// at most one oracle-confirmed counterexample per source (in ascending
// source order, the first in deterministic search order for that source),
// and Scenarios == 0 — the poly path never enumerates scenarios. Options
// honoured: StopAtFirst, MaxFailures (both cut collection short once the
// verdict is known), Counters. Prune and Parallel are accepted and ignored:
// the per-source counterexamples are never mutually subsumed, and the search
// is cheap enough sequentially.
func (c *Checker) Check(ctx context.Context, r *routing.Routing, k int, opts verify.Options) (*verify.Report, error) {
	if k < 0 {
		return nil, fmt.Errorf("verify/poly: negative resilience level %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	counters := opts.Counters
	if counters == nil {
		counters = noCounters
	}
	n := r.Network()
	numStates := (n.NumRealEdges() + n.NumNodes()) * n.NumNodes()
	factor := c.opts.VisitFactor
	if factor <= 0 {
		factor = DefaultVisitFactor
	}
	budget := int64(factor) * int64(numStates) * int64(k+1)
	if c.opts.MaxVisits > 0 {
		budget = c.opts.MaxVisits
	}
	maxFailing := opts.MaxFailures
	if opts.StopAtFirst && (maxFailing == 0 || maxFailing > 1) {
		maxFailing = 1
	}
	s := &search{
		ctx:        ctx,
		r:          r,
		n:          n,
		dest:       r.Dest(),
		k:          k,
		numNodes:   n.NumNodes(),
		budget:     budget,
		failed:     network.NewEdgeSet(n.NumRealEdges()),
		alive:      network.NewEdgeSet(n.NumRealEdges()),
		onPath:     make([]bool, numStates),
		maxFailing: maxFailing,
		rep:        &verify.Report{K: k, Resilient: true},
	}
	err := s.run()
	counters.PolyVisits.Add(s.visits)
	if err != nil {
		if errors.Is(err, errBudget) || errors.Is(err, errConfirm) {
			return nil, fmt.Errorf("%w: %v", verify.ErrNotApplicable, err)
		}
		return nil, err
	}
	s.rep.Traces = s.traces
	counters.Traces.Add(int64(s.traces))
	counters.Failing.Add(int64(len(s.rep.Failing)))
	return s.rep, nil
}

// search carries the DFS state for one Check call.
type search struct {
	ctx      context.Context
	r        *routing.Routing
	n        *network.Network
	dest     network.NodeID
	k        int
	numNodes int

	// failed is F_req (failedCount tracks its size cheaply), alive is A_req;
	// both are mutated along the path and undone on backtrack.
	failed      network.EdgeSet
	alive       network.EdgeSet
	failedCount int
	onPath      []bool

	source     network.NodeID
	visits     int64
	budget     int64
	traces     int
	maxFailing int

	rep *verify.Report
}

func (s *search) run() error {
	for _, src := range s.n.Nodes() {
		if src == s.dest {
			continue
		}
		s.source = src
		err := s.dfs(s.n.Loopback(src), src)
		if err == nil || errors.Is(err, errSourceDone) {
			continue
		}
		if errors.Is(err, errAllDone) {
			return nil
		}
		return err
	}
	return nil
}

// dfs explores every scenario family consistent with the current
// (failed, alive) constraints from forwarding state (in, at).
func (s *search) dfs(in network.EdgeID, at network.NodeID) error {
	s.visits++
	if s.visits%ctxPollInterval == 0 {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	if s.visits > s.budget {
		return errBudget
	}
	if at == s.dest {
		return nil
	}
	id := int(in)*s.numNodes + int(at)
	if s.onPath[id] {
		// The trace revisits an on-path state: every scenario of this
		// family loops.
		return s.candidate()
	}
	prio, ok := s.r.Get(in, at)
	if !ok {
		// Missing entry or hole: the packet is stuck as soon as any
		// consistent scenario materialises.
		return s.candidate()
	}
	s.onPath[id] = true
	err := s.expand(at, prio)
	s.onPath[id] = false
	return err
}

// expand branches over where the failed prefix of prio ends. Edges already
// constrained (in failed or alive) are deterministic: a failed edge is
// skipped for free, an alive edge is taken unconditionally. An
// unconstrained edge e first branches as the survivor (e joins alive, the
// packet crosses it), then — when the failure budget allows — as one more
// failure (e joins failed, the scan moves on). Exhausting the list means
// the whole list can fail within budget: a drop candidate.
func (s *search) expand(at network.NodeID, prio []network.EdgeID) error {
	var added []network.EdgeID
	var err error
	exhausted := true
	for _, e := range prio {
		if s.failed.Has(e) {
			continue
		}
		if s.alive.Has(e) {
			err = s.dfs(e, s.n.Other(e, at))
			exhausted = false
			break
		}
		s.alive.Add(e)
		err = s.dfs(e, s.n.Other(e, at))
		s.alive.Remove(e)
		if err != nil {
			exhausted = false
			break
		}
		if s.failedCount >= s.k {
			// No budget to fail e as well, so every remaining consistent
			// scenario takes it — already explored above.
			exhausted = false
			break
		}
		s.failed.Add(e)
		s.failedCount++
		added = append(added, e)
	}
	if err == nil && exhausted {
		err = s.candidate()
	}
	for _, e := range added {
		s.failed.Remove(e)
		s.failedCount--
	}
	return err
}

// candidate handles a non-delivering leaf: the current F_req is the minimum
// scenario of a family under which the trace from s.source loops, drops, or
// hits a hole. Connectivity under F_req decides whether the family contains
// a genuine failing delivery, and the confirmation trace packages it
// exactly as the oracle would.
func (s *search) candidate() error {
	if !s.n.ConnectedWithout(s.source, s.dest, s.failed) {
		// Disconnected sources are excused by Definition 4, and every
		// superset scenario is disconnected too.
		return nil
	}
	s.traces++
	f, failing := verify.DeliveryFromTrace(s.r, s.failed, s.source)
	if !failing {
		// The replay delivered where the search predicted failure — a model
		// inconsistency. Hand the instance to the oracle instead of
		// guessing.
		return errConfirm
	}
	s.rep.Resilient = false
	s.rep.Failing = append(s.rep.Failing, f)
	if s.maxFailing > 0 && len(s.rep.Failing) >= s.maxFailing {
		return errAllDone
	}
	return errSourceDone
}
