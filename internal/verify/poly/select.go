package poly

import (
	"fmt"

	"syrep/internal/verify"
)

// Select resolves a backend flag value ("auto", "brute", "poly") into a
// verify.Backend. "auto" (and "") is the recommended Router: poly for
// large-k / large-instance checks with brute-force as the oracle and
// fallback. "brute" pins the exhaustive checker; "poly" pins the fast path
// alone, whose checks can fail with verify.ErrNotApplicable — useful for
// experiments, not for serving.
func Select(name string) (verify.Backend, error) {
	switch name {
	case "", "auto":
		return verify.NewRouter(verify.RouterConfig{Fast: New()}), nil
	case "brute":
		return verify.BruteForce{}, nil
	case "poly":
		return New(), nil
	default:
		return nil, fmt.Errorf("unknown verification backend %q (want auto, brute, or poly)", name)
	}
}
