package verify_test

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/trace"
	"syrep/internal/verify"
	"syrep/internal/verify/vgen"
)

// corruptedRouting builds a seed-keyed sabotaged instance via the shared
// vgen generator (see vgen.Config for reproduction): a Zoo-like multigraph
// whose heuristic routing has a share of its priority lists truncated to the
// first edge, so verification finds failing deliveries at every k >= 1.
func corruptedRouting(t *testing.T, nodes int, seed int64, share float64) *routing.Routing {
	t.Helper()
	cfg := vgen.Config{Nodes: nodes, Seed: seed, TruncateShare: share}
	r, err := vgen.Corrupted(cfg)
	if err != nil {
		t.Fatalf("reproduce: %v: %v", cfg, err)
	}
	return r
}

// TestDifferentialParallelVsSequential is the differential harness: on
// randomized small multigraphs and k in {1, 2}, a parallel Check must
// produce a report identical (deep-equal: Scenarios, Traces, Resilient, and
// the failing set in order) to the sequential one, across every option
// combination — including Prune+MaxFailures, whose divergence was once
// sanctioned and is now fixed by exempting pruned worker buffers from the
// local cap.
func TestDifferentialParallelVsSequential(t *testing.T) {
	optionSets := []verify.Options{
		{},
		{Prune: true},
		{MaxFailures: 3},
		{MaxFailures: 1},
		{Prune: true, MaxFailures: 3},
		{Prune: true, MaxFailures: 1},
	}
	for _, nodes := range []int{8, 11, 14} {
		for seed := int64(1); seed <= 4; seed++ {
			r := corruptedRouting(t, nodes, seed, 0.35)
			for k := 1; k <= 2; k++ {
				for _, base := range optionSets {
					name := fmt.Sprintf("n%d/s%d/k%d/prune=%v/max=%d",
						nodes, seed, k, base.Prune, base.MaxFailures)
					t.Run(name, func(t *testing.T) {
						seqOpts, parOpts := base, base
						parOpts.Parallel = true
						seq, err := verify.Check(context.Background(), r, k, seqOpts)
						if err != nil {
							t.Fatal(err)
						}
						par, err := verify.Check(context.Background(), r, k, parOpts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(seq, par) {
							t.Errorf("parallel diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
						}
					})
				}
			}
		}
	}
}

// TestDifferentialMultigraphModes sweeps the extended corruption modes of
// the shared generator — parallel-edge duplication and bounce (self-loop)
// entries — through the parallel-vs-sequential property, printing the
// reproducing config on mismatch.
func TestDifferentialMultigraphModes(t *testing.T) {
	modes := []vgen.Config{
		{ParallelEdgeShare: 0.4, TruncateShare: 0.25},
		{BounceShare: 0.25},
		{ParallelEdgeShare: 0.3, BounceShare: 0.15, TruncateShare: 0.1},
	}
	for _, mode := range modes {
		for _, nodes := range []int{9, 12} {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := mode
				cfg.Nodes = nodes
				cfg.Seed = seed
				r, err := vgen.Corrupted(cfg)
				if err != nil {
					t.Fatalf("reproduce: %v: %v", cfg, err)
				}
				for _, base := range []verify.Options{{}, {Prune: true, MaxFailures: 2}} {
					seqOpts, parOpts := base, base
					parOpts.Parallel = true
					seq, err := verify.Check(context.Background(), r, 2, seqOpts)
					if err != nil {
						t.Fatalf("reproduce: %v: %v", cfg, err)
					}
					par, err := verify.Check(context.Background(), r, 2, parOpts)
					if err != nil {
						t.Fatalf("reproduce: %v: %v", cfg, err)
					}
					if !reflect.DeepEqual(seq, par) {
						t.Errorf("reproduce: %v prune=%v max=%d: parallel diverged:\nseq: %+v\npar: %+v",
							cfg, base.Prune, base.MaxFailures, seq, par)
					}
				}
			}
		}
	}
}

// TestFailingOrderIsScenarioOrder pins the documented Report.Failing
// ordering: scenario enumeration order (ForEachScenario), then ascending
// source within a scenario. The expectation is recomputed from first
// principles with the trace engine.
func TestFailingOrderIsScenarioOrder(t *testing.T) {
	r := corruptedRouting(t, 12, 5, 0.35)
	n := r.Network()
	var want []verify.FailingDelivery
	n.ForEachScenario(2, func(F network.EdgeSet) bool {
		for _, s := range n.Nodes() {
			if s == r.Dest() || !n.ConnectedWithout(s, r.Dest(), F) {
				continue
			}
			if res := trace.Run(r, F, s); res.Outcome != trace.Delivered {
				want = append(want, verify.FailingDelivery{Source: s, Failed: F.Clone(), Outcome: res.Outcome})
			}
		}
		return true
	})
	if len(want) == 0 {
		t.Fatal("fixture too tame: no failing deliveries")
	}
	for _, parallel := range []bool{false, true} {
		rep, err := verify.Check(context.Background(), r, 2, verify.Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Failing) != len(want) {
			t.Fatalf("parallel=%v: %d failing deliveries, want %d", parallel, len(rep.Failing), len(want))
		}
		for i := range want {
			got := rep.Failing[i]
			if got.Source != want[i].Source || !got.Failed.Equal(want[i].Failed) || got.Outcome != want[i].Outcome {
				t.Fatalf("parallel=%v: entry %d is (src %d, %v, %v), want (src %d, %v, %v)",
					parallel, i, got.Source, got.Failed, got.Outcome,
					want[i].Source, want[i].Failed, want[i].Outcome)
			}
		}
	}
}

// TestResilientCtxFirstCounterexample is the regression test for the pinned
// ResilientCtx/StopAtFirst ordering: whichever execution mode runs
// underneath, the single reported counterexample must be the globally first
// failing delivery in (scenario order, source order).
func TestResilientCtxFirstCounterexample(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := corruptedRouting(t, 11, seed, 0.35)
		full, err := verify.Check(context.Background(), r, 2, verify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if verify.ResilientCtx(context.Background(), r, 2) != full.Resilient {
			t.Errorf("seed %d: ResilientCtx disagrees with full Check", seed)
		}
		if full.Resilient {
			continue
		}
		for _, parallel := range []bool{false, true} {
			rep, err := verify.Check(context.Background(), r, 2,
				verify.Options{StopAtFirst: true, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Failing) != 1 {
				t.Fatalf("seed %d parallel=%v: %d counterexamples, want 1", seed, parallel, len(rep.Failing))
			}
			if !reflect.DeepEqual(rep.Failing[0], full.Failing[0]) {
				t.Errorf("seed %d parallel=%v: first counterexample is not the globally first failing delivery:\ngot:  %+v\nwant: %+v",
					seed, parallel, rep.Failing[0], full.Failing[0])
			}
		}
	}
}

// TestDifferentialStopAtFirst: the former sanctioned divergence is gone.
// Under StopAtFirst, parallel workers cooperatively halt at the lowest
// failing scenario index and the merge restates the counts to the sequential
// prefix, so the parallel report must be deep-equal to the sequential one —
// same Scenarios, same Traces, and the identical single failing delivery —
// on both failing and resilient fixtures.
func TestDifferentialStopAtFirst(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		// share 0 leaves the heuristic table intact (usually resilient at
		// k=1), exercising the no-failure merge path too.
		for _, share := range []float64{0, 0.35} {
			r := corruptedRouting(t, 12, seed, share)
			for k := 1; k <= 2; k++ {
				seq, err := verify.Check(context.Background(), r, k, verify.Options{StopAtFirst: true})
				if err != nil {
					t.Fatal(err)
				}
				par, err := verify.Check(context.Background(), r, k,
					verify.Options{StopAtFirst: true, Parallel: true})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("seed %d share %v k %d: parallel StopAtFirst diverged from sequential:\nseq: %+v\npar: %+v",
						seed, share, k, seq, par)
				}
				if !seq.Resilient && len(seq.Failing) != 1 {
					t.Errorf("seed %d share %v k %d: non-resilient run must report its counterexample",
						seed, share, k)
				}
			}
		}
	}
}

// TestStopAtFirstCountersMatchReport: in the cooperative-halt mode the
// scenario/trace counters are restated post-merge, so they must equal the
// report exactly — worker overshoot must not leak into the stream.
func TestStopAtFirstCountersMatchReport(t *testing.T) {
	r := corruptedRouting(t, 12, 3, 0.35)
	for _, parallel := range []bool{false, true} {
		o := obs.New(nil)
		rep, err := verify.Check(context.Background(), r, 2,
			verify.Options{StopAtFirst: true, Parallel: parallel, Counters: o.Verify()})
		if err != nil {
			t.Fatal(err)
		}
		snap := o.Snapshot()
		if got := snap.Counter(obs.VerifyScenarios); got != int64(rep.Scenarios) {
			t.Errorf("parallel=%v: scenarios counter %d != report %d", parallel, got, rep.Scenarios)
		}
		if got := snap.Counter(obs.VerifyTraces); got != int64(rep.Traces) {
			t.Errorf("parallel=%v: traces counter %d != report %d", parallel, got, rep.Traces)
		}
		if got := snap.Counter(obs.VerifyFailing); got != int64(len(rep.Failing)) {
			t.Errorf("parallel=%v: failing counter %d != report %d", parallel, got, len(rep.Failing))
		}
	}
}

// TestParallelMaxFailuresWorkerBound is the regression test for the
// unbounded-buffer bug: on a heavily broken routing with thousands of
// failing deliveries, a capped parallel run must (a) report exactly
// MaxFailures entries, identical to the sequential capped report, and
// (b) buffer at most workers×MaxFailures deliveries in total — previously
// every worker collected its whole share regardless of the cap.
func TestParallelMaxFailuresWorkerBound(t *testing.T) {
	// Truncate every list: almost every delivery fails once edges start
	// failing, so k=2 yields thousands of failing deliveries.
	r := corruptedRouting(t, 22, 7, 1.1)
	uncapped, err := verify.Check(context.Background(), r, 2, verify.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(uncapped.Failing) < 1000 {
		t.Fatalf("fixture too tame: %d failing deliveries, want >= 1000", len(uncapped.Failing))
	}

	const maxFailures = 5
	o := obs.New(nil)
	seq, err := verify.Check(context.Background(), r, 2, verify.Options{MaxFailures: maxFailures})
	if err != nil {
		t.Fatal(err)
	}
	par, err := verify.Check(context.Background(), r, 2, verify.Options{
		MaxFailures: maxFailures,
		Parallel:    true,
		Counters:    o.Verify(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Failing) != maxFailures {
		t.Errorf("capped parallel report has %d entries, want %d", len(par.Failing), maxFailures)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("capped parallel diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	collected := o.Snapshot().Counter(obs.VerifyCollected)
	if limit := int64(workers * maxFailures); collected > limit {
		t.Errorf("workers buffered %d deliveries, want <= %d (= %d workers x %d cap)",
			collected, limit, workers, maxFailures)
	}
	if collected < maxFailures {
		t.Errorf("workers buffered %d deliveries, want >= %d", collected, maxFailures)
	}
}

// TestVerifyCountersMatchReport: the counter stream agrees with the report
// itself, sequential and parallel.
func TestVerifyCountersMatchReport(t *testing.T) {
	r := corruptedRouting(t, 12, 3, 0.35)
	for _, parallel := range []bool{false, true} {
		o := obs.New(nil)
		rep, err := verify.Check(context.Background(), r, 2,
			verify.Options{Parallel: parallel, Counters: o.Verify()})
		if err != nil {
			t.Fatal(err)
		}
		snap := o.Snapshot()
		if got := snap.Counter(obs.VerifyScenarios); got != int64(rep.Scenarios) {
			t.Errorf("parallel=%v: scenarios counter %d != report %d", parallel, got, rep.Scenarios)
		}
		if got := snap.Counter(obs.VerifyTraces); got != int64(rep.Traces) {
			t.Errorf("parallel=%v: traces counter %d != report %d", parallel, got, rep.Traces)
		}
		if got := snap.Counter(obs.VerifyFailing); got != int64(len(rep.Failing)) {
			t.Errorf("parallel=%v: failing counter %d != report %d", parallel, got, len(rep.Failing))
		}
	}
}

// A looping fixture (not just dropping): bounce-corrupted entries keep the
// trace engine's loop detection inside the differential net too.
func TestDifferentialWithLoopingEntries(t *testing.T) {
	cfg := vgen.Config{Nodes: 10, Seed: 99, BounceShare: 0.3}
	r, err := vgen.Corrupted(cfg)
	if err != nil {
		t.Fatalf("reproduce: %v: %v", cfg, err)
	}
	seq, err := verify.Check(context.Background(), r, 2, verify.Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := verify.Check(context.Background(), r, 2, verify.Options{Prune: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("reproduce: %v: looping fixture diverged:\nseq: %+v\npar: %+v", cfg, seq, par)
	}
}
