package verify_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/topozoo"
	"syrep/internal/verify"
)

// corruptedRouting generates a Zoo-like multigraph, builds the heuristic
// routing for it, and then deterministically sabotages a share of the
// entries by truncating their priority lists to the first edge — packets
// arriving there are dropped as soon as that edge fails, so verification
// finds failing deliveries at every k >= 1.
func corruptedRouting(t *testing.T, nodes int, seed int64, share float64) *routing.Routing {
	t.Helper()
	net := topozoo.Generate(topozoo.GenConfig{Nodes: nodes, Seed: seed})
	r, err := heuristic.Generate(context.Background(), net, 0)
	if err != nil {
		t.Fatalf("heuristic.Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, key := range r.Keys() {
		if rng.Float64() >= share {
			continue
		}
		prio, _ := r.Get(key.In, key.At)
		if len(prio) > 1 {
			r.MustSet(key.In, key.At, prio[:1])
		}
	}
	return r
}

// TestDifferentialParallelVsSequential is the differential harness: on
// randomized small multigraphs and k in {1, 2}, a parallel Check must
// produce a report identical (deep-equal: Scenarios, Traces, Resilient, and
// the failing set in order) to the sequential one, across the option
// combinations for which the ordered merge guarantees equality.
func TestDifferentialParallelVsSequential(t *testing.T) {
	optionSets := []verify.Options{
		{},
		{Prune: true},
		{MaxFailures: 3},
		{MaxFailures: 1},
	}
	for _, nodes := range []int{8, 11, 14} {
		for seed := int64(1); seed <= 4; seed++ {
			r := corruptedRouting(t, nodes, seed, 0.35)
			for k := 1; k <= 2; k++ {
				for _, base := range optionSets {
					name := fmt.Sprintf("n%d/s%d/k%d/prune=%v/max=%d",
						nodes, seed, k, base.Prune, base.MaxFailures)
					t.Run(name, func(t *testing.T) {
						seqOpts, parOpts := base, base
						parOpts.Parallel = true
						seq, err := verify.Check(context.Background(), r, k, seqOpts)
						if err != nil {
							t.Fatal(err)
						}
						par, err := verify.Check(context.Background(), r, k, parOpts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(seq, par) {
							t.Errorf("parallel diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
						}
					})
				}
			}
		}
	}
}

// TestDifferentialStopAtFirst: the former sanctioned divergence is gone.
// Under StopAtFirst, parallel workers cooperatively halt at the lowest
// failing scenario index and the merge restates the counts to the sequential
// prefix, so the parallel report must be deep-equal to the sequential one —
// same Scenarios, same Traces, and the identical single failing delivery —
// on both failing and resilient fixtures.
func TestDifferentialStopAtFirst(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		// share 0 leaves the heuristic table intact (usually resilient at
		// k=1), exercising the no-failure merge path too.
		for _, share := range []float64{0, 0.35} {
			r := corruptedRouting(t, 12, seed, share)
			for k := 1; k <= 2; k++ {
				seq, err := verify.Check(context.Background(), r, k, verify.Options{StopAtFirst: true})
				if err != nil {
					t.Fatal(err)
				}
				par, err := verify.Check(context.Background(), r, k,
					verify.Options{StopAtFirst: true, Parallel: true})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("seed %d share %v k %d: parallel StopAtFirst diverged from sequential:\nseq: %+v\npar: %+v",
						seed, share, k, seq, par)
				}
				if !seq.Resilient && len(seq.Failing) != 1 {
					t.Errorf("seed %d share %v k %d: non-resilient run must report its counterexample",
						seed, share, k)
				}
			}
		}
	}
}

// TestStopAtFirstCountersMatchReport: in the cooperative-halt mode the
// scenario/trace counters are restated post-merge, so they must equal the
// report exactly — worker overshoot must not leak into the stream.
func TestStopAtFirstCountersMatchReport(t *testing.T) {
	r := corruptedRouting(t, 12, 3, 0.35)
	for _, parallel := range []bool{false, true} {
		o := obs.New(nil)
		rep, err := verify.Check(context.Background(), r, 2,
			verify.Options{StopAtFirst: true, Parallel: parallel, Counters: o.Verify()})
		if err != nil {
			t.Fatal(err)
		}
		snap := o.Snapshot()
		if got := snap.Counter(obs.VerifyScenarios); got != int64(rep.Scenarios) {
			t.Errorf("parallel=%v: scenarios counter %d != report %d", parallel, got, rep.Scenarios)
		}
		if got := snap.Counter(obs.VerifyTraces); got != int64(rep.Traces) {
			t.Errorf("parallel=%v: traces counter %d != report %d", parallel, got, rep.Traces)
		}
		if got := snap.Counter(obs.VerifyFailing); got != int64(len(rep.Failing)) {
			t.Errorf("parallel=%v: failing counter %d != report %d", parallel, got, len(rep.Failing))
		}
	}
}

// TestParallelMaxFailuresWorkerBound is the regression test for the
// unbounded-buffer bug: on a heavily broken routing with thousands of
// failing deliveries, a capped parallel run must (a) report exactly
// MaxFailures entries, identical to the sequential capped report, and
// (b) buffer at most workers×MaxFailures deliveries in total — previously
// every worker collected its whole share regardless of the cap.
func TestParallelMaxFailuresWorkerBound(t *testing.T) {
	// Truncate every list: almost every delivery fails once edges start
	// failing, so k=2 yields thousands of failing deliveries.
	r := corruptedRouting(t, 22, 7, 1.1)
	uncapped, err := verify.Check(context.Background(), r, 2, verify.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(uncapped.Failing) < 1000 {
		t.Fatalf("fixture too tame: %d failing deliveries, want >= 1000", len(uncapped.Failing))
	}

	const maxFailures = 5
	o := obs.New(nil)
	seq, err := verify.Check(context.Background(), r, 2, verify.Options{MaxFailures: maxFailures})
	if err != nil {
		t.Fatal(err)
	}
	par, err := verify.Check(context.Background(), r, 2, verify.Options{
		MaxFailures: maxFailures,
		Parallel:    true,
		Counters:    o.Verify(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Failing) != maxFailures {
		t.Errorf("capped parallel report has %d entries, want %d", len(par.Failing), maxFailures)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("capped parallel diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	collected := o.Snapshot().Counter(obs.VerifyCollected)
	if limit := int64(workers * maxFailures); collected > limit {
		t.Errorf("workers buffered %d deliveries, want <= %d (= %d workers x %d cap)",
			collected, limit, workers, maxFailures)
	}
	if collected < maxFailures {
		t.Errorf("workers buffered %d deliveries, want >= %d", collected, maxFailures)
	}
}

// TestVerifyCountersMatchReport: the counter stream agrees with the report
// itself, sequential and parallel.
func TestVerifyCountersMatchReport(t *testing.T) {
	r := corruptedRouting(t, 12, 3, 0.35)
	for _, parallel := range []bool{false, true} {
		o := obs.New(nil)
		rep, err := verify.Check(context.Background(), r, 2,
			verify.Options{Parallel: parallel, Counters: o.Verify()})
		if err != nil {
			t.Fatal(err)
		}
		snap := o.Snapshot()
		if got := snap.Counter(obs.VerifyScenarios); got != int64(rep.Scenarios) {
			t.Errorf("parallel=%v: scenarios counter %d != report %d", parallel, got, rep.Scenarios)
		}
		if got := snap.Counter(obs.VerifyTraces); got != int64(rep.Traces) {
			t.Errorf("parallel=%v: traces counter %d != report %d", parallel, got, rep.Traces)
		}
		if got := snap.Counter(obs.VerifyFailing); got != int64(len(rep.Failing)) {
			t.Errorf("parallel=%v: failing counter %d != report %d", parallel, got, len(rep.Failing))
		}
	}
}

// A looping fixture (not just dropping): two entries pointing at each other
// keeps the trace engine's loop detection inside the differential net too.
func TestDifferentialWithLoopingEntries(t *testing.T) {
	net := topozoo.Generate(topozoo.GenConfig{Nodes: 10, Seed: 99})
	r, err := heuristic.Generate(context.Background(), net, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire one node's entries to bounce on its first incident edge.
	var at network.NodeID = 3
	for _, key := range r.Keys() {
		if key.At != at {
			continue
		}
		prio, _ := r.Get(key.In, key.At)
		r.MustSet(key.In, key.At, prio[:1])
	}
	seq, err := verify.Check(context.Background(), r, 2, verify.Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := verify.Check(context.Background(), r, 2, verify.Options{Prune: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("looping fixture diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}
