package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/papernet"
	"syrep/internal/repair"
	"syrep/internal/resilience"
	"syrep/internal/routing"
)

// TestFailureTaxonomy locks the exported transient/permanent split against
// the sentinel errors the supervisor can produce, so retry policies built on
// IsTransient/IsPermanent never drift from the supervisor's own
// classification.
func TestFailureTaxonomy(t *testing.T) {
	partial := &resilience.Partial{
		Routing:     &routing.Routing{},
		Degradation: resilience.Degradation{Stage: resilience.StageRepair, Cause: context.DeadlineExceeded},
	}
	cases := []struct {
		name      string
		err       error
		transient bool
		permanent bool
	}{
		{"nil", nil, false, false},
		{"node limit", bdd.ErrNodeLimit, true, false},
		{"wrapped node limit", fmt.Errorf("stage: %w", bdd.ErrNodeLimit), true, false},
		{"stage budget", &resilience.BudgetError{Stage: resilience.StageVerify}, true, false},
		{"deadline", context.DeadlineExceeded, true, false},
		{"cancel", context.Canceled, true, false},
		{"partial salvage", partial, true, false},
		{"unsolvable", resilience.ErrUnsolvable, false, true},
		{"unrepairable", repair.ErrUnrepairable, false, true},
		{"panic", &resilience.PanicError{Stage: resilience.StageVerify, Value: "boom"}, false, true},
		{"unclassified", errors.New("disk on fire"), false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := resilience.IsTransient(tc.err); got != tc.transient {
				t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.transient)
			}
			if got := resilience.IsPermanent(tc.err); got != tc.permanent {
				t.Errorf("IsPermanent(%v) = %v, want %v", tc.err, got, tc.permanent)
			}
		})
	}
}

// TestBudgetCauseInReport: a stage that dies of its own budget must report
// a *BudgetError naming the stage (via context.WithDeadlineCause /
// context.Cause), not a bare context error. The reduce budget is degraded
// around, so the cause lands in Report.Degradations.
func TestBudgetCauseInReport(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	_, rep, err := resilience.Synthesize(context.Background(), n, d, 2, resilience.Options{
		Strategy: resilience.Combined,
		Timeout:  time.Minute,
		Budgets:  resilience.Budgets{Reduce: 1e-15}, // 0ns reduce budget: expired at entry
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if len(rep.Degradations) == 0 {
		t.Fatal("no degradation recorded for the expired reduce budget")
	}
	deg := rep.Degradations[0]
	var be *resilience.BudgetError
	if !errors.As(deg.Cause, &be) {
		t.Fatalf("degradation cause = %v, want a *BudgetError in the chain", deg.Cause)
	}
	if be.Stage != resilience.StageReduce {
		t.Errorf("BudgetError.Stage = %s, want %s", be.Stage, resilience.StageReduce)
	}
	if !errors.Is(deg.Cause, resilience.ErrBudget) || !errors.Is(deg.Cause, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want ErrBudget joined with DeadlineExceeded", deg.Cause)
	}
}

// TestBudgetCauseInFatalError: the heuristic has no fallback, so its budget
// expiry is fatal; the returned error must still name the exhausted stage.
func TestBudgetCauseInFatalError(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	_, _, err := resilience.Synthesize(context.Background(), n, d, 2, resilience.Options{
		Strategy: resilience.HeuristicOnly,
		Timeout:  time.Minute,
		Budgets:  resilience.Budgets{Heuristic: 1e-15},
	})
	if err == nil {
		t.Fatal("expected a fatal heuristic budget expiry")
	}
	var be *resilience.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want a *BudgetError in the chain", err)
	}
	if be.Stage != resilience.StageHeuristic {
		t.Errorf("BudgetError.Stage = %s, want %s", be.Stage, resilience.StageHeuristic)
	}
	if !resilience.IsTransient(err) {
		t.Errorf("a stage budget expiry must classify as transient, got permanent/unknown for %v", err)
	}
}

// TestOverallDeadlineKeepsPlainCause: when the overall deadline (not a stage
// budget) expires, no BudgetError may be invented — the error chain carries
// the plain context.DeadlineExceeded.
func TestOverallDeadlineKeepsPlainCause(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the run is over before it starts
	_, _, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.HeuristicOnly,
		Timeout:  time.Minute,
	})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	var be *resilience.BudgetError
	if errors.As(err, &be) {
		t.Errorf("err = %v, wrongly blames stage budget %s for an external cancellation", err, be.Stage)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
}
