package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"syrep/internal/bdd"
	"syrep/internal/encode"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
	"syrep/internal/routing"
	"syrep/internal/topozoo"
	"syrep/internal/verify"
)

var ctx = context.Background()

var allStrategies = []resilience.Strategy{
	resilience.Baseline, resilience.HeuristicOnly,
	resilience.ReductionOnly, resilience.Combined,
}

// zooInstance fetches an embedded topology by name.
func zooInstance(t *testing.T, name string) topozoo.Instance {
	t.Helper()
	for _, inst := range topozoo.Embedded() {
		if inst.Name == name {
			return inst
		}
	}
	t.Fatalf("embedded topology %q not found", name)
	return topozoo.Instance{}
}

// runFaulted executes one supervised synthesis with the given faults injected
// and returns the routing, the injector for coverage inspection, and the
// error. Managers created by the encode engine are checked for leaked
// protected refs on every exit path.
func runFaulted(t *testing.T, net *network.Network, dest network.NodeID,
	strat resilience.Strategy, k int, faults ...faultinject.Fault) (*routing.Routing, *faultinject.Injector, error) {
	t.Helper()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	inj := faultinject.New(faults...).BindCancel(cancel)
	var mgrs []*bdd.Manager
	r, _, err := resilience.Synthesize(cctx, net, dest, k, resilience.Options{
		Strategy: strat,
		Hook:     inj,
		Encode: encode.Options{ManagerHook: func(m *bdd.Manager) {
			mgrs = append(mgrs, m)
		}},
	})
	for i, m := range mgrs {
		if n := m.NumProtected(); n > 2 {
			t.Errorf("manager %d leaked protected refs: NumProtected = %d (steady state is <= 2)", i, n)
		}
	}
	return r, inj, err
}

// assertTrichotomy enforces the supervisor's contract: every run ends in a
// valid resilient routing, a well-formed *Partial whose routing verifies
// against its reported residual failures, or a clean typed error — never a
// corrupted routing or an untyped panic.
func assertTrichotomy(t *testing.T, r *routing.Routing, err error, k int) {
	t.Helper()
	switch {
	case err == nil:
		if r == nil {
			t.Fatal("nil routing with nil error")
		}
		if !r.Complete() {
			t.Error("successful run returned an incomplete routing")
		}
		if !verify.Resilient(r, k) {
			t.Errorf("successful run returned a routing that is not %d-resilient", k)
		}
	default:
		if r != nil {
			t.Error("routing returned alongside an error")
		}
		if p, ok := resilience.AsPartial(err); ok {
			assertWellFormedPartial(t, p, k)
		}
		assertTypedError(t, err)
	}
}

// assertWellFormedPartial checks the anytime contract of a *Partial: the
// routing is present, complete, and — unless the residual is declared
// unknown — fails exactly the deliveries the Partial reports.
func assertWellFormedPartial(t *testing.T, p *resilience.Partial, k int) {
	t.Helper()
	if p.Routing == nil {
		t.Fatal("Partial with nil routing")
	}
	if !p.Routing.Complete() {
		t.Error("Partial routing is incomplete (holes leaked out)")
	}
	if p.K != k {
		t.Errorf("Partial.K = %d, want %d", p.K, k)
	}
	if p.Degradation.Stage == "" {
		t.Error("Partial without a degradation stage")
	}
	if p.ResidualUnknown {
		return
	}
	vrep, err := verify.Check(ctx, p.Routing, k, verify.Options{Prune: true})
	if err != nil {
		t.Fatalf("re-verifying Partial routing: %v", err)
	}
	if len(vrep.Failing) != len(p.Residual) {
		t.Errorf("Partial reports %d residual failures, re-verification finds %d",
			len(p.Residual), len(vrep.Failing))
	}
}

// assertTypedError checks that a failed run died a clean, classifiable death:
// the error chain reaches one of the supervisor's typed causes and is not an
// escaped panic.
func assertTypedError(t *testing.T, err error) {
	t.Helper()
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		t.Errorf("run ended in an internal panic: %v\n%s", pe, pe.Stack)
		return
	}
	for _, want := range []error{
		faultinject.ErrInjected,
		bdd.ErrNodeLimit,
		context.Canceled,
		context.DeadlineExceeded,
		resilience.ErrUnsolvable,
		resilience.ErrBudget,
	} {
		if errors.Is(err, want) {
			return
		}
	}
	t.Errorf("error is not one of the supervisor's typed causes: %v", err)
}

// TestFaultMatrix drives every registered fault point through cancellation,
// node-limit exhaustion, and an injected stage error, under all four
// strategies, and asserts the trichotomy on each run. Faults at stages a
// strategy never reaches simply do not fire — those runs must then succeed
// outright, which the trichotomy also covers. A final check proves the
// matrix visited every registered fault point at least once.
func TestFaultMatrix(t *testing.T) {
	faultinject.LeakCheck(t)
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)

	covered := make(map[resilience.Stage]bool)
	for _, strat := range allStrategies {
		for _, stage := range resilience.FaultPoints() {
			for _, kind := range faultinject.Kinds() {
				name := fmt.Sprintf("%s/%s/%s", strat, stage, kind)
				t.Run(name, func(t *testing.T) {
					r, inj, err := runFaulted(t, n, d, strat, 2,
						faultinject.Fault{Stage: stage, Kind: kind})
					for _, st := range inj.Visited() {
						covered[st] = true
					}
					assertTrichotomy(t, r, err, 2)
				})
			}
		}
	}

	// Figure 1's heuristic is already resilient on the reduced network, so
	// the reduced-repair fault point only fires on a larger instance.
	garr := zooInstance(t, "Garr")
	for _, kind := range faultinject.Kinds() {
		t.Run(fmt.Sprintf("garr/combined/%s/%s", resilience.StageRepairReduced, kind), func(t *testing.T) {
			// A degraded reduced repair falls through to the endgame repair
			// on the full Garr network, which takes minutes; a second fault
			// cancels the run there, which both keeps the matrix fast and
			// exercises the Partial path that assertTrichotomy fully checks.
			r, inj, err := runFaulted(t, garr.Net, garr.Dest, resilience.Combined, 2,
				faultinject.Fault{Stage: resilience.StageRepairReduced, Kind: kind},
				faultinject.Fault{Stage: resilience.StageRepair, Kind: faultinject.Cancel})
			for _, st := range inj.Visited() {
				covered[st] = true
			}
			assertTrichotomy(t, r, err, 2)
		})
	}

	for _, stage := range resilience.FaultPoints() {
		if !covered[stage] {
			t.Errorf("fault point %q never visited by the matrix", stage)
		}
	}
}

// TestSeededFaults derives fault plans from integer seeds — the registry of
// seeds can be widened via SYREP_FAULT_SEEDS (comma-separated) without
// touching code — and asserts the trichotomy under each. The same seed always
// produces the same fault, so any failure reproduces from the seed alone.
func TestSeededFaults(t *testing.T) {
	faultinject.LeakCheck(t)
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if env := os.Getenv("SYREP_FAULT_SEEDS"); env != "" {
		seeds = nil
		for _, f := range strings.Split(env, ",") {
			s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("SYREP_FAULT_SEEDS: %v", err)
			}
			seeds = append(seeds, s)
		}
	}
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	for _, seed := range seeds {
		fault := faultinject.PlanFromSeed(seed)
		t.Run(fmt.Sprintf("seed=%d(%s,%s)", seed, fault.Stage, fault.Kind), func(t *testing.T) {
			r, _, err := runFaulted(t, n, d, resilience.Combined, 2, fault)
			assertTrichotomy(t, r, err, 2)
		})
	}
}
