package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/encode"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// WarmStart fortifies a seed routing to perfect k-resilience, running only
// the endgame of the pipeline — hole fill (or verify+repair) plus the final
// safety-net check — and skipping reduction, heuristic generation and
// from-scratch synthesis entirely. This is the paper's Fig. 6 shortcut for
// dynamic repair: the seed is typically a previously synthesized table
// adapted onto a changed topology, with the entries invalidated by failed
// edges punched as holes (see the cache package's Adapt).
//
// A seed with holes goes straight to the BDD hole-fill under the node-limit
// escalation ladder; the formula constrains the whole table, so a
// successful fill is perfectly k-resilient by construction and only the
// cheap StopAtFirst final verification remains. ErrUnsolvable is returned
// when the fixed entries admit no k-resilient completion — callers fall
// back to cold synthesis. A hole-free seed is verified first and repaired
// only if needed.
//
// Like Synthesize, WarmStart is an anytime computation: on timeout or
// memout with a checkpointed routing in hand the error is a *Partial, and
// escaped panics become typed errors. The returned report has WarmStart
// set and counts the holes filled.
func WarmStart(ctx context.Context, seed *routing.Routing, k int, opts Options) (r *routing.Routing, rep *Report, err error) {
	opts = opts.withDefaults()
	if seed == nil {
		return nil, nil, errors.New("resilience: nil seed routing")
	}
	if k < 0 {
		return nil, nil, fmt.Errorf("resilience: negative resilience level %d", k)
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if opts.Obs != nil {
		opts.Encode.Counters = opts.Obs.BDD()
	}
	ctx, endTotal := opts.Obs.StartStage(ctx, obs.SpanTotal)
	defer endTotal()
	start := time.Now()
	rep = &Report{Strategy: opts.Strategy, K: k, WarmStart: true, HolesFilled: seed.NumHoles()}
	s := &run{ctx: ctx, net: seed.Network(), dest: seed.Dest(), k: k, opts: opts, rep: rep}
	defer func() {
		rep.Elapsed = time.Since(start)
		if v := recover(); v != nil {
			r = nil
			err = recoveredError(s.stage, v)
		}
	}()
	r, err = s.warmStart(seed)
	return r, rep, err
}

func (s *run) warmStart(seed *routing.Routing) (*routing.Routing, error) {
	if seed.NumHoles() > 0 {
		sol, attempts, err := s.ladderFill(seed)
		if err != nil {
			if s.classify(err) == failUnrepairable {
				// The surviving entries pin the table into a corner with no
				// k-resilient completion; only cold synthesis can help.
				return nil, fmt.Errorf("%w: %v", ErrUnsolvable, err)
			}
			return nil, s.fail(StageRepair, err, attempts)
		}
		s.cp = &checkpoint{routing: sol.Routing, verified: true}
		return s.finalVerify(sol.Routing)
	}

	// Hole-free seed: the adapted table may already be resilient (the failed
	// edges never carried traffic); price it before reaching for the engine.
	err := s.at(StageVerify)
	var vrep *verify.Report
	if err == nil {
		err = s.spanned(StageVerify, func() (e error) {
			vrep, e = s.verifyCheck(s.ctx, seed, s.verifyOpts())
			return
		})
	}
	if err != nil {
		return nil, s.fail(StageVerify, err, 0)
	}
	if vrep.Resilient {
		// The pass above fully verified the seed on the target network; a
		// final-verify would repeat the identical scan. The safety net only
		// guards tables a BDD stage produced, and none ran here.
		s.cp = &checkpoint{routing: seed, verified: true}
		return seed, nil
	}
	s.cp = &checkpoint{routing: seed, residual: vrep.Failing, verified: true}

	out, attempts, err := s.ladderRepair(s.ctx, StageRepair, seed, vrep, true)
	if err != nil {
		if s.classify(err) == failUnrepairable {
			return nil, fmt.Errorf("%w: %v", ErrUnsolvable, err)
		}
		return nil, s.fail(StageRepair, err, attempts)
	}
	s.cp = &checkpoint{routing: out.Routing, verified: true}
	return s.finalVerify(out.Routing)
}

// ladderFill is the warm-start hole fill: encode.Solve on the holey seed
// under the same node-limit escalation as ladderSynth (configured limits,
// then 4× with reordering). The formula spans the whole table, so success
// certifies k-resilience of every entry, not just the filled ones.
func (s *run) ladderFill(seed *routing.Routing) (*encode.Solution, int, error) {
	endSpan := s.span(StageRepair)
	defer endSpan()
	enc := s.opts.Encode
	maxAttempts := s.opts.MaxAttempts
	if maxAttempts > 2 {
		maxAttempts = 2
	}
	attempts := 0
	for {
		attempts++
		s.rep.SolveAttempts++
		err := s.at(StageRepair)
		var sol *encode.Solution
		if err == nil {
			sol, err = encode.Solve(s.ctx, seed, s.k, enc)
		}
		if err == nil {
			return sol, attempts, nil
		}
		if !errors.Is(err, bdd.ErrNodeLimit) || s.ctx.Err() != nil || attempts >= maxAttempts {
			return nil, attempts, err
		}
		if enc.NodeLimit == 0 {
			enc.NodeLimit = encode.DefaultNodeLimit
		}
		enc.NodeLimit *= 4
		enc.DisableReorder = false
		s.degrade(StageRepair, err, attempts,
			fmt.Sprintf("retrying warm-start fill with node limit %d and reordering enabled", enc.NodeLimit))
	}
}
