package resilience

import (
	"context"
	"errors"

	"syrep/internal/bdd"
	"syrep/internal/encode"
	"syrep/internal/repair"
)

// This file exports the supervisor's internal failure taxonomy (run.classify)
// as typed sentinel predicates, so retry policies — the synthesis service's
// and external callers' — share one classification instead of string-matching
// errors. The split mirrors the degradation policy:
//
//   - transient: the pipeline ran out of a resource (BDD node budget, a
//     stage budget, the overall deadline) or salvaged a checkpoint. The same
//     request may well succeed on a retry with backoff, against a warmer or
//     less loaded process.
//   - permanent: the instance itself is the problem (no perfectly
//     k-resilient routing exists, the repair scope cannot cover it, the
//     input failed validation) or an internal invariant broke (a recovered
//     panic). Retrying reproduces the failure; callers should fail fast.
//
// The predicates are not complements: a nil error is neither, and an error
// outside the taxonomy (an injected test fault, an I/O error from a caller's
// wrapper) is reported by both as false, which retry policies should read as
// "do not retry".

// IsTransient reports whether err is a failure the supervisor classifies as
// retryable: node-limit exhaustion, a stage-budget or overall-deadline
// expiry, cancellation, or an anytime *Partial (a checkpoint salvage whose
// residual a retry may eliminate).
func IsTransient(err error) bool {
	if err == nil || IsPermanent(err) {
		return false
	}
	if _, ok := AsPartial(err); ok {
		return true
	}
	return errors.Is(err, bdd.ErrNodeLimit) ||
		errors.Is(err, ErrBudget) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// IsPermanent reports whether err is a failure retrying cannot fix: the
// instance is unsolvable or unrepairable, or an internal panic was recovered
// at the supervisor boundary. A *Partial is never permanent — a salvaged
// checkpoint is always worth a retry.
func IsPermanent(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := AsPartial(err); ok {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	return errors.Is(err, ErrUnsolvable) ||
		errors.Is(err, repair.ErrUnrepairable) ||
		errors.Is(err, encode.ErrUnrepairable)
}
