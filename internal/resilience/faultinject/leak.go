package faultinject

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count and registers a cleanup that fails
// the test if the count has not returned to the snapshot level once the test
// body finishes. Goroutines legitimately wind down asynchronously (e.g. the
// verifier's worker pool draining after a cancellation), so the check retries
// for up to a second before declaring a leak, and dumps the surviving stacks
// so the offender is identifiable.
func LeakCheck(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s",
				before, after, interestingStacks(string(buf)))
		}
	})
}

// interestingStacks keeps only the goroutines that run project code, so the
// leak report shows plausible offenders rather than runtime bookkeeping. If
// nothing matches, the full dump is returned.
func interestingStacks(dump string) string {
	var keep []string
	for _, g := range strings.Split(dump, "\n\n") {
		if strings.Contains(g, "syrep/internal") {
			keep = append(keep, g)
		}
	}
	if len(keep) == 0 {
		return dump
	}
	return strings.Join(keep, "\n\n")
}
