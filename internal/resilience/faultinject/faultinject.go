// Package faultinject is the deterministic fault-injection harness for the
// resilience supervisor. It implements resilience.Hook with scripted faults
// keyed by pipeline stage: forced cancellation, node-limit exhaustion, and
// arbitrary injected stage errors. Plans are derived from integer seeds so a
// failing run is reproducible from its seed alone.
//
// The harness is test infrastructure: production code never imports it.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"syrep/internal/bdd"
	"syrep/internal/resilience"
)

// Kind selects what a fault does when its stage is entered.
type Kind int

const (
	// Cancel cancels the run's context and then lets the stage proceed, so
	// the pipeline discovers the cancellation through its own polling. This
	// exercises the cancellation-latency path rather than the hook-error
	// path.
	Cancel Kind = iota + 1
	// NodeLimit makes the stage fail with bdd.ErrNodeLimit, exactly like BDD
	// node-budget exhaustion, exercising the supervisor's escalation ladder.
	NodeLimit
	// Error makes the stage fail with an arbitrary error (Fault.Err, or
	// ErrInjected when unset), exercising the hard-fault path.
	Error
	// Call runs the fault's Do callback and lets the stage proceed — a
	// scripted side effect rather than a failure. The churn controller's
	// epoch-race tests use it to offer a superseding link event in the
	// window between a completed repair and its push.
	Call
)

func (k Kind) String() string {
	switch k {
	case Cancel:
		return "cancel"
	case NodeLimit:
		return "nodelimit"
	case Error:
		return "error"
	case Call:
		return "call"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns every *failure* kind, for matrix tests. Call is excluded:
// it is a side-effect injection, meaningless to sweep without a scripted Do.
func Kinds() []Kind { return []Kind{Cancel, NodeLimit, Error} }

// ErrInjected is the default error of an Error-kind fault.
var ErrInjected = errors.New("faultinject: injected error")

// Fault is one scripted fault: when the supervisor enters Stage, fire Kind.
type Fault struct {
	// Stage is the fault point (one of resilience.FaultPoints()).
	Stage resilience.Stage
	// Kind is what to do there.
	Kind Kind
	// Times caps how often the fault fires (0 = every time). A NodeLimit
	// fault with Times == 1 forces exactly one ladder escalation; with a
	// large Times it exhausts the ladder into a memout.
	Times int
	// Err overrides ErrInjected for Error-kind faults.
	Err error
	// Do is the Call-kind side effect. It runs outside the injector's lock,
	// so it may call back into the system under test (e.g. Offer an event).
	Do func()
}

// Injector implements resilience.Hook by replaying scripted faults. It is
// safe for concurrent use and records every stage it observes, so tests can
// assert fault-point coverage.
type Injector struct {
	mu      sync.Mutex
	faults  []Fault
	fired   []int
	cancel  func()
	visited []resilience.Stage
}

// New builds an injector replaying the given faults. Faults targeting the
// same stage fire in order of appearance (each consuming its own Times).
func New(faults ...Fault) *Injector {
	return &Injector{faults: faults, fired: make([]int, len(faults))}
}

// BindCancel supplies the context.CancelFunc that Cancel-kind faults invoke.
// It must be called before the run starts when the plan contains a Cancel
// fault; At panics otherwise, which the supervisor surfaces as a
// *resilience.PanicError (making the harness misuse loud, not silent).
func (in *Injector) BindCancel(cancel func()) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cancel = cancel
	return in
}

// At implements resilience.Hook. The firing fault is claimed under the
// injector's lock, but its effect runs outside it, so Call-kind side
// effects may re-enter the system under test (offering an event, say)
// without deadlocking against a concurrent At.
func (in *Injector) At(stage resilience.Stage) error {
	f := in.claim(stage)
	if f == nil {
		return nil
	}
	switch f.Kind {
	case Cancel:
		in.mu.Lock()
		cancel := in.cancel
		in.mu.Unlock()
		if cancel == nil {
			panic("faultinject: Cancel fault without BindCancel")
		}
		cancel()
		return nil // the stage must discover the cancellation itself
	case NodeLimit:
		return bdd.ErrNodeLimit
	case Error:
		if f.Err != nil {
			return f.Err
		}
		return ErrInjected
	case Call:
		if f.Do == nil {
			panic("faultinject: Call fault without Do")
		}
		f.Do()
		return nil // a side effect, not a failure: the stage proceeds
	default:
		panic(fmt.Sprintf("faultinject: unknown kind %v", f.Kind))
	}
}

// claim records the visited stage and consumes the first matching fault's
// firing budget, returning nil when nothing fires.
func (in *Injector) claim(stage resilience.Stage) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.visited = append(in.visited, stage)
	for i := range in.faults {
		f := &in.faults[i]
		if f.Stage != stage || (f.Times > 0 && in.fired[i] >= f.Times) {
			continue
		}
		in.fired[i]++
		return f
	}
	return nil
}

// Visited returns the stages observed so far, in order.
func (in *Injector) Visited() []resilience.Stage {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]resilience.Stage(nil), in.visited...)
}

// Fired reports how many times fault i fired.
func (in *Injector) Fired(i int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[i]
}

// PlanFromSeed derives one fault deterministically from a seed: a pseudo-
// random stage, kind, and (for NodeLimit) Times in {1, 100}, chosen so that
// both the escalation and the exhaustion paths appear across seeds. The same
// seed always yields the same fault.
func PlanFromSeed(seed int64) Fault {
	rng := rand.New(rand.NewSource(seed))
	points := resilience.FaultPoints()
	f := Fault{
		Stage: points[rng.Intn(len(points))],
		Kind:  Kinds()[rng.Intn(3)],
	}
	if f.Kind == NodeLimit && rng.Intn(2) == 0 {
		f.Times = 1
	}
	return f
}
