package faultinject_test

import (
	"context"
	"errors"
	"testing"

	"syrep/internal/bdd"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

func TestInjectorFires(t *testing.T) {
	injected := errors.New("custom")
	in := faultinject.New(
		faultinject.Fault{Stage: resilience.StageSynth, Kind: faultinject.NodeLimit, Times: 2},
		faultinject.Fault{Stage: resilience.StageVerify, Kind: faultinject.Error, Err: injected},
		faultinject.Fault{Stage: resilience.StageRepair, Kind: faultinject.Error},
	)
	if err := in.At(resilience.StageReduce); err != nil {
		t.Errorf("unfaulted stage returned %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := in.At(resilience.StageSynth); !errors.Is(err, bdd.ErrNodeLimit) {
			t.Errorf("synth fault %d = %v, want ErrNodeLimit", i, err)
		}
	}
	if err := in.At(resilience.StageSynth); err != nil {
		t.Errorf("Times-exhausted fault still fired: %v", err)
	}
	if err := in.At(resilience.StageVerify); !errors.Is(err, injected) {
		t.Errorf("verify fault = %v, want the custom error", err)
	}
	if err := in.At(resilience.StageRepair); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("repair fault = %v, want ErrInjected", err)
	}
	if got := in.Fired(0); got != 2 {
		t.Errorf("Fired(0) = %d, want 2", got)
	}
	want := []resilience.Stage{
		resilience.StageReduce, resilience.StageSynth, resilience.StageSynth,
		resilience.StageSynth, resilience.StageVerify, resilience.StageRepair,
	}
	got := in.Visited()
	if len(got) != len(want) {
		t.Fatalf("Visited() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Visited() = %v, want %v", got, want)
		}
	}
}

func TestCancelFault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := faultinject.New(faultinject.Fault{
		Stage: resilience.StageHeuristic, Kind: faultinject.Cancel, Times: 1,
	}).BindCancel(cancel)
	if err := in.At(resilience.StageHeuristic); err != nil {
		t.Errorf("Cancel fault must return nil (the stage discovers it), got %v", err)
	}
	if ctx.Err() == nil {
		t.Error("context not cancelled")
	}
}

func TestCancelWithoutBindPanics(t *testing.T) {
	in := faultinject.New(faultinject.Fault{
		Stage: resilience.StageHeuristic, Kind: faultinject.Cancel,
	})
	defer func() {
		if recover() == nil {
			t.Error("Cancel without BindCancel did not panic")
		}
	}()
	_ = in.At(resilience.StageHeuristic)
}

// TestPlanFromSeedDeterministic: the whole point of seed-keyed plans is that
// a failure reproduces from its seed.
func TestPlanFromSeedDeterministic(t *testing.T) {
	stages := make(map[resilience.Stage]bool)
	kinds := make(map[faultinject.Kind]bool)
	for seed := int64(0); seed < 64; seed++ {
		a, b := faultinject.PlanFromSeed(seed), faultinject.PlanFromSeed(seed)
		if a.Stage != b.Stage || a.Kind != b.Kind || a.Times != b.Times {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
		if a.Stage == "" || a.Kind == 0 {
			t.Fatalf("seed %d: incomplete plan %+v", seed, a)
		}
		stages[a.Stage] = true
		kinds[a.Kind] = true
	}
	// 64 seeds over 9 stages and 3 kinds should cover everything; if this
	// ever fails the derivation is biased, not merely unlucky.
	if len(stages) != len(resilience.FaultPoints()) {
		t.Errorf("64 seeds covered %d/%d stages", len(stages), len(resilience.FaultPoints()))
	}
	if len(kinds) != len(faultinject.Kinds()) {
		t.Errorf("64 seeds covered %d/%d kinds", len(kinds), len(faultinject.Kinds()))
	}
}

func TestKindString(t *testing.T) {
	for _, k := range faultinject.Kinds() {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", int(k))
		}
	}
	if faultinject.Kind(42).String() == "" {
		t.Error("unknown Kind.String() empty")
	}
}
