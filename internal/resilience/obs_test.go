package resilience_test

import (
	"context"
	"testing"
	"time"

	"syrep/internal/obs"
	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/verify"
)

// spanNames collects the distinct names of the recorded spans.
func spanNames(rec *obs.Recorder) map[string]int {
	out := make(map[string]int)
	for _, s := range rec.Spans() {
		out[s.Name]++
	}
	return out
}

// knownStages is the set of legal span names: every fault point plus the
// entry-point total.
func knownStages() map[string]bool {
	out := map[string]bool{obs.SpanTotal: true}
	for _, st := range resilience.FaultPoints() {
		out[string(st)] = true
	}
	return out
}

// TestSynthesizeObserved: an observed Combined run on the paper's running
// example emits a total span enclosing every stage span, and the counters
// are consistent with the work the pipeline must have done.
func TestSynthesizeObserved(t *testing.T) {
	rec := &obs.Recorder{}
	o := obs.New(rec)
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r, _, err := resilience.Synthesize(context.Background(), n, d, 2,
		resilience.Options{Strategy: resilience.Combined, Obs: o})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 2) {
		t.Fatal("routing not 2-resilient")
	}

	names := spanNames(rec)
	legal := knownStages()
	for name := range names {
		if !legal[name] {
			t.Errorf("unknown span name %q", name)
		}
	}
	if names[obs.SpanTotal] != 1 {
		t.Errorf("total spans = %d, want 1", names[obs.SpanTotal])
	}
	if names[string(resilience.StageHeuristic)] == 0 {
		t.Error("no heuristic span recorded")
	}
	if names[string(resilience.StageVerify)] == 0 {
		t.Error("no verify span recorded")
	}

	snap := o.Snapshot()
	// Stage spans nest inside the total span, so their summed wall time can
	// never exceed it.
	total := snap.StageDuration(obs.SpanTotal)
	if total <= 0 {
		t.Fatalf("total duration = %v", total)
	}
	var stages time.Duration
	for name, st := range snap.Stages {
		if name != obs.SpanTotal {
			stages += st.Duration()
		}
	}
	if stages > total {
		t.Errorf("stage durations sum to %v, exceeding total %v", stages, total)
	}
	if snap.Counter(obs.VerifyScenarios) == 0 || snap.Counter(obs.VerifyTraces) == 0 {
		t.Error("verification ran but counted no scenarios/traces")
	}
}

// TestRepairObserved: repairing the paper's non-2-resilient routing drives
// the verify, repair, and BDD counters, and the repair iteration count
// matches the holes actually punched.
func TestRepairObserved(t *testing.T) {
	rec := &obs.Recorder{}
	o := obs.New(rec)
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	out, err := resilience.Repair(context.Background(), r, 2, resilience.Options{Obs: o})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if out.AlreadyResilient {
		t.Fatal("Figure 1b routing should need repair")
	}

	snap := o.Snapshot()
	if got := snap.Counter(obs.RepairIterations); got < 1 {
		t.Errorf("repair iterations = %d, want >= 1", got)
	}
	if got := snap.Counter(obs.RepairHolesPunched); got < int64(out.Removed) {
		t.Errorf("holes punched counter = %d, below outcome.Removed = %d", got, out.Removed)
	}
	if snap.Counter(obs.BDDMkCalls) == 0 {
		t.Error("repair solved a BDD instance but mk counted nothing")
	}
	if snap.Gauge(obs.BDDPeakNodes) == 0 {
		t.Error("peak node gauge never rose")
	}
	if snap.Counter(obs.VerifyFailing) == 0 {
		t.Error("the broken routing produced no counted failing deliveries")
	}
	names := spanNames(rec)
	if names[obs.SpanTotal] != 1 {
		t.Errorf("total spans = %d, want 1", names[obs.SpanTotal])
	}
	if names[string(resilience.StageVerify)] == 0 || names[string(resilience.StageRepair)] == 0 {
		t.Errorf("missing verify/repair spans: %v", names)
	}
}

// TestUnobservedRunStaysClean: without an observer the pipeline behaves
// identically and nothing panics on the nil taps (the production default).
func TestUnobservedRunStaysClean(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r, _, err := resilience.Synthesize(context.Background(), n, d, 2,
		resilience.Options{Strategy: resilience.Baseline})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 2) {
		t.Fatal("routing not 2-resilient")
	}
}

// TestBaselineObservedCountsSynth: the Baseline strategy runs from-scratch
// BDD synthesis, so an observed run must show a synth span and BDD traffic.
func TestBaselineObservedCountsSynth(t *testing.T) {
	rec := &obs.Recorder{}
	o := obs.New(rec)
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	if _, _, err := resilience.Synthesize(context.Background(), n, d, 2,
		resilience.Options{Strategy: resilience.Baseline, Obs: o}); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if spanNames(rec)[string(resilience.StageSynth)] == 0 {
		t.Error("no synth span recorded")
	}
	snap := o.Snapshot()
	if snap.Counter(obs.BDDMkCalls) == 0 || snap.Counter(obs.BDDNodesAllocated) == 0 {
		t.Error("baseline synthesis counted no BDD work")
	}
}
