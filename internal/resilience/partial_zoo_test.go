package resilience_test

import (
	"context"
	"errors"
	"testing"

	"syrep/internal/heuristic"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
	"syrep/internal/verify"
)

// TestCombinedPartialBeatsBareHeuristic is the anytime regression test from
// the issue: a Combined run on a Topology Zoo instance (Garr), killed by the
// deadline just as the endgame repair starts, must still return a *Partial
// whose routing strictly reduces the number of failing deliveries compared
// with the bare heuristic output — i.e. the checkpointed reduced-network
// repair was not wasted. The kill is injected as a cancellation at the
// endgame repair stage, which takes the same failOverall path as a deadline
// expiring there, but deterministically.
func TestCombinedPartialBeatsBareHeuristic(t *testing.T) {
	faultinject.LeakCheck(t)
	const k = 2
	garr := zooInstance(t, "Garr")

	bare, err := heuristic.Generate(ctx, garr.Net, garr.Dest)
	if err != nil {
		t.Fatalf("heuristic: %v", err)
	}
	vbare, err := verify.Check(ctx, bare, k, verify.Options{Prune: true})
	if err != nil {
		t.Fatalf("verify bare heuristic: %v", err)
	}
	if len(vbare.Failing) == 0 {
		t.Fatal("Garr bare heuristic is resilient; the instance no longer exercises the anytime path")
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageRepair, Kind: faultinject.Cancel,
	}).BindCancel(cancel)
	_, rep, serr := resilience.Synthesize(cctx, garr.Net, garr.Dest, k, resilience.Options{
		Strategy: resilience.Combined,
		Hook:     inj,
	})
	p, ok := resilience.AsPartial(serr)
	if !ok {
		t.Fatalf("err = %v, want *Partial", serr)
	}
	if !errors.Is(serr, context.Canceled) {
		t.Errorf("err = %v, want to unwrap to the cancellation", serr)
	}
	if p.Degradation.Stage != resilience.StageRepair {
		t.Errorf("Partial died at %q, want %q", p.Degradation.Stage, resilience.StageRepair)
	}
	assertWellFormedPartial(t, p, k)
	if p.ResidualUnknown {
		t.Fatal("checkpoint reached the verified endgame; residual must be known")
	}
	if len(p.Residual) == 0 {
		t.Fatal("endgame repair was cut short; residual should be non-empty")
	}
	if len(p.Residual) >= len(vbare.Failing) {
		t.Errorf("Partial residual = %d failing deliveries, want strictly fewer than the bare heuristic's %d",
			len(p.Residual), len(vbare.Failing))
	}
	if !rep.ReducedRepairUsed {
		t.Error("the improvement should come from the checkpointed reduced-network repair")
	}
}
