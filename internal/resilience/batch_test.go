package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"syrep/internal/bdd"
	"syrep/internal/cache"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// diffBatchVsSequential runs SynthesizeAll on net and checks each
// destination's routing is deep-equal to an independent single-destination
// run. The batch shares the reduce stage and a manager pool; the sequential
// baseline shares nothing — equality proves sharing is invisible.
func diffBatchVsSequential(t *testing.T, net *network.Network, k int, strat resilience.Strategy) {
	t.Helper()
	results, rep, err := resilience.SynthesizeAll(ctx, net, k, resilience.BatchOptions{
		Run:     resilience.Options{Strategy: strat},
		Workers: 4,
	})
	if err != nil {
		t.Fatalf("SynthesizeAll: %v", err)
	}
	if len(results) != net.NumNodes() {
		t.Fatalf("got %d results, want %d", len(results), net.NumNodes())
	}
	if rep.Resilient != len(results) || rep.Failed != 0 {
		t.Fatalf("report = %+v, want all resilient", rep)
	}
	for _, res := range results {
		want, _, werr := resilience.Synthesize(ctx, net, res.Dest, k,
			resilience.Options{Strategy: strat})
		if werr != nil {
			t.Fatalf("dest %s: sequential run failed: %v", res.Name, werr)
		}
		if res.Err != nil {
			t.Fatalf("dest %s: batch failed where sequential succeeded: %v", res.Name, res.Err)
		}
		if !res.Routing.Equal(want) {
			t.Errorf("dest %s: batch routing differs from sequential", res.Name)
		}
	}
}

// TestSynthesizeAllDifferential: every strategy at k=1 on the paper's
// Figure 1 network, plus k=2 for the heuristic-bearing strategies. (Full
// BDD synthesis at k=2 — Baseline/ReductionOnly — takes tens of seconds
// even on 5 nodes, and the k=2 sharing paths are already exercised by
// Combined, which threads both the shared reduce stage and the pool.)
func TestSynthesizeAllDifferential(t *testing.T) {
	net := papernet.Figure1()
	cases := []struct {
		strat resilience.Strategy
		k     int
	}{
		{resilience.Baseline, 1},
		{resilience.HeuristicOnly, 1},
		{resilience.ReductionOnly, 1},
		{resilience.Combined, 1},
		{resilience.HeuristicOnly, 2},
		{resilience.Combined, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%v-k%d", tc.strat, tc.k), func(t *testing.T) {
			t.Parallel()
			diffBatchVsSequential(t, net, tc.k, tc.strat)
		})
	}
}

// TestSynthesizeAllDifferentialZoo: the Combined pipeline on a real
// TopologyZoo topology whose chains give the shared reduce stage real work.
func TestSynthesizeAllDifferentialZoo(t *testing.T) {
	diffBatchVsSequential(t, zooInstance(t, "Abilene").Net, 1, resilience.Combined)
}

// TestSynthesizeAllStreamsAndPools: results stream via OnResult exactly once
// per destination, the batch counters add up, and the shared manager pool
// actually recycles arenas across destinations.
func TestSynthesizeAllStreamsAndPools(t *testing.T) {
	inst := zooInstance(t, "Abilene")
	o := obs.New(nil)
	var streamed atomic.Int64
	results, rep, err := resilience.SynthesizeAll(ctx, inst.Net, 1, resilience.BatchOptions{
		Workers:  2,
		Obs:      o,
		OnResult: func(resilience.DestResult) { streamed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(streamed.Load()) != len(results) {
		t.Errorf("streamed %d results, returned %d", streamed.Load(), len(results))
	}
	if rep.Pool.Gets == 0 || rep.Pool.Reuses == 0 {
		t.Errorf("pool stats %+v: batch did not recycle managers", rep.Pool)
	}
	snap := o.Snapshot()
	if snap.Counter(obs.BatchRuns) != 1 {
		t.Errorf("%s = %d, want 1", obs.BatchRuns, snap.Counter(obs.BatchRuns))
	}
	if got := snap.Counter(obs.BatchDests); got != int64(len(results)) {
		t.Errorf("%s = %d, want %d", obs.BatchDests, got, len(results))
	}
	if got := snap.Counter(obs.BatchResilient); got != int64(rep.Resilient) {
		t.Errorf("%s = %d, want %d", obs.BatchResilient, got, rep.Resilient)
	}
	if snap.Gauge(obs.BatchInflight) != 0 {
		t.Errorf("%s = %d after the batch, want 0", obs.BatchInflight, snap.Gauge(obs.BatchInflight))
	}
}

// TestSynthesizeAllCancellation: cancelling mid-batch returns the results
// that landed, a cancellation error, and leaks no goroutines (LeakCheck
// via t.Cleanup).
func TestSynthesizeAllCancellation(t *testing.T) {
	faultinject.LeakCheck(t)
	inst := zooInstance(t, "Abilene")
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var landed atomic.Int64
	results, rep, err := resilience.SynthesizeAll(cctx, inst.Net, 1, resilience.BatchOptions{
		Workers: 1, // serialize so the cancel point is deterministic
		OnResult: func(resilience.DestResult) {
			if landed.Add(1) == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == 0 || len(results) >= inst.Net.NumNodes() {
		t.Fatalf("got %d results, want a strict mid-batch subset", len(results))
	}
	if rep.Attempted != len(results) {
		t.Errorf("Attempted = %d, want %d", rep.Attempted, len(results))
	}
	for _, res := range results {
		if res.Err == nil && !res.Resilient {
			t.Errorf("dest %s: landed result neither resilient nor failed", res.Name)
		}
	}
}

// TestSynthesizeAllBatchFanoutFault: a fault injected at the batch-fanout
// stage poisons exactly one destination — that destination reports the typed
// error, every other destination succeeds, and the batch itself does not
// fail.
func TestSynthesizeAllBatchFanoutFault(t *testing.T) {
	inst := zooInstance(t, "Abilene")
	sentinel := errors.New("injected batch poison")
	for _, f := range []faultinject.Fault{
		{Stage: resilience.StageBatchFanout, Kind: faultinject.Error, Err: sentinel, Times: 1},
		{Stage: resilience.StageBatchFanout, Kind: faultinject.NodeLimit, Times: 1},
	} {
		f := f
		t.Run(f.Kind.String(), func(t *testing.T) {
			inj := faultinject.New(f)
			results, rep, err := resilience.SynthesizeAll(ctx, inst.Net, 1, resilience.BatchOptions{
				Run:     resilience.Options{Hook: inj},
				Workers: 2,
			})
			if err != nil {
				t.Fatalf("a poisoned destination must not fail the batch: %v", err)
			}
			if len(results) != inst.Net.NumNodes() {
				t.Fatalf("got %d results, want %d", len(results), inst.Net.NumNodes())
			}
			var failed []resilience.DestResult
			for _, res := range results {
				if res.Err != nil {
					failed = append(failed, res)
				}
			}
			if len(failed) != 1 {
				t.Fatalf("%d destinations failed, want exactly 1", len(failed))
			}
			switch f.Kind {
			case faultinject.Error:
				if !errors.Is(failed[0].Err, sentinel) {
					t.Errorf("poisoned dest error = %v, want the injected sentinel", failed[0].Err)
				}
			case faultinject.NodeLimit:
				if !errors.Is(failed[0].Err, bdd.ErrNodeLimit) {
					t.Errorf("poisoned dest error = %v, want bdd.ErrNodeLimit", failed[0].Err)
				}
			}
			if rep.Failed != 1 || rep.Resilient != len(results)-1 {
				t.Errorf("report = %+v, want 1 failed / %d resilient", rep, len(results)-1)
			}
			if inj.Fired(0) != 1 {
				t.Errorf("injected fault fired %d times, want 1", inj.Fired(0))
			}
		})
	}
}

// TestSynthesizeAllCache: a second batch over the same network is served
// entirely from the cache.
func TestSynthesizeAllCache(t *testing.T) {
	inst := zooInstance(t, "Abilene")
	c := cache.New(cache.Config{})
	opts := resilience.BatchOptions{Workers: 2, Cache: c}
	first, rep1, err := resilience.SynthesizeAll(ctx, inst.Net, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CacheHits != 0 {
		t.Fatalf("cold batch reported %d cache hits", rep1.CacheHits)
	}
	second, rep2, err := resilience.SynthesizeAll(ctx, inst.Net, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != len(second) {
		t.Errorf("warm batch: %d cache hits, want %d", rep2.CacheHits, len(second))
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("dest %s: warm batch result not served from cache", second[i].Name)
		}
		if !second[i].Routing.Equal(first[i].Routing) {
			t.Errorf("dest %s: cached routing differs from the cold run", second[i].Name)
		}
	}
}

// TestSynthesizeAllValidation pins the input-error paths.
func TestSynthesizeAllValidation(t *testing.T) {
	inst := zooInstance(t, "Abilene")
	if _, _, err := resilience.SynthesizeAll(ctx, nil, 1, resilience.BatchOptions{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, _, err := resilience.SynthesizeAll(ctx, inst.Net, -1, resilience.BatchOptions{}); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := resilience.SynthesizeAll(ctx, inst.Net, 1, resilience.BatchOptions{
		Dests: []network.NodeID{network.NodeID(inst.Net.NumNodes())},
	}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}
