package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/encode"
	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/reduce"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/synth"
	"syrep/internal/verify"
)

// Synthesize produces a perfectly k-resilient routing for dest on net using
// the configured strategy, as an anytime computation: on timeout or memout
// with a checkpointed routing in hand, the error is a *Partial carrying that
// routing. The returned routing is always re-verified unless SkipFinalVerify
// is set. Panics escaping the internal packages are converted into a typed
// *PanicError (or bdd.ErrNodeLimit for an escaped engine overflow).
func Synthesize(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts Options) (r *routing.Routing, rep *Report, err error) {
	opts = opts.withDefaults()
	if verr := validateSynthesize(net, dest, k); verr != nil {
		return nil, nil, verr
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if opts.Obs != nil {
		opts.Encode.Counters = opts.Obs.BDD()
	}
	ctx, endTotal := opts.Obs.StartStage(ctx, obs.SpanTotal)
	defer endTotal()
	start := time.Now()
	rep = &Report{Strategy: opts.Strategy, K: k}
	s := &run{ctx: ctx, net: net, dest: dest, k: k, opts: opts, rep: rep}
	defer func() {
		rep.Elapsed = time.Since(start)
		if v := recover(); v != nil {
			r = nil
			err = recoveredError(s.stage, v)
		}
	}()
	r, err = s.synthesize()
	return r, rep, err
}

// Repair fortifies an existing routing to perfect k-resilience — the
// paper's standalone repair use case (an operator's existing data plane is
// minimally modified). On timeout or memout mid-repair the error is a
// *Partial carrying the (unimproved) input routing together with its
// residual failing deliveries, so the caller learns exactly what still
// fails. Unlike Synthesize, repair does not escalate beyond the suspicious
// entries (the paper's repair is deliberately incomplete); the node-limit
// ladder still applies.
func Repair(ctx context.Context, r *routing.Routing, k int, opts Options) (out *repair.Outcome, err error) {
	opts = opts.withDefaults()
	if r == nil {
		return nil, errors.New("resilience: nil routing")
	}
	if k < 0 {
		return nil, fmt.Errorf("resilience: negative resilience level %d", k)
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if opts.Obs != nil {
		opts.Encode.Counters = opts.Obs.BDD()
	}
	ctx, endTotal := opts.Obs.StartStage(ctx, obs.SpanTotal)
	defer endTotal()
	s := &run{ctx: ctx, net: r.Network(), dest: r.Dest(), k: k, opts: opts,
		rep: &Report{Strategy: opts.Strategy, K: k}}
	defer func() {
		if v := recover(); v != nil {
			out = nil
			err = recoveredError(s.stage, v)
		}
	}()

	err = s.at(StageVerify)
	var vrep *verify.Report
	if err == nil {
		err = s.spanned(StageVerify, func() (e error) {
			vrep, e = s.verifyCheck(ctx, r, s.verifyOpts())
			return
		})
	}
	if err != nil {
		return nil, s.fail(StageVerify, err, 0)
	}
	if vrep.Resilient {
		return &repair.Outcome{Routing: r.Clone(), AlreadyResilient: true}, nil
	}
	s.cp = &checkpoint{routing: r.Clone(), residual: vrep.Failing, verified: true}

	res, attempts, rerr := s.ladderRepair(ctx, StageRepair, r, vrep, false)
	if rerr != nil {
		if s.classify(rerr) == failUnrepairable {
			return nil, fmt.Errorf("%w: %v", ErrUnsolvable, rerr)
		}
		return nil, s.fail(StageRepair, rerr, attempts)
	}
	return res, nil
}

func validateSynthesize(net *network.Network, dest network.NodeID, k int) error {
	if net == nil {
		return errors.New("resilience: nil network")
	}
	if int(dest) < 0 || int(dest) >= net.NumNodes() {
		return fmt.Errorf("resilience: destination %d out of range (network has %d nodes)",
			dest, net.NumNodes())
	}
	if k < 0 {
		return fmt.Errorf("resilience: negative resilience level %d", k)
	}
	return nil
}

// recoveredError maps a recovered panic value to a typed error: the bdd
// engine's control-flow overflow panic (which must stay a panic inside the
// engine) becomes bdd.ErrNodeLimit, everything else a *PanicError.
func recoveredError(stage Stage, v any) error {
	if bdd.IsOverflow(v) {
		return fmt.Errorf("resilience: %s: %w (overflow escaped its protect region)",
			stage, bdd.ErrNodeLimit)
	}
	return &PanicError{Stage: stage, Value: v, Stack: debug.Stack()}
}

// checkpoint is the best routing seen so far.
type checkpoint struct {
	routing *routing.Routing
	// rd is non-nil when routing lives on the reduced network and must be
	// expanded before it is usable.
	rd *reduce.Reduction
	// residual holds the failing deliveries of routing at k, valid only
	// when verified is set (and rd is nil).
	residual []verify.FailingDelivery
	verified bool
}

// run carries the per-invocation supervisor state.
type run struct {
	ctx   context.Context // overall context, deadline already applied
	net   *network.Network
	dest  network.NodeID
	k     int
	opts  Options
	rep   *Report
	stage Stage // last stage entered, for panic attribution
	cp    *checkpoint
}

// at enters a stage: it records the stage for panic attribution and fires
// the fault-injection hook. A non-nil return is treated by callers exactly
// like the stage failing with that error.
func (s *run) at(stage Stage) error {
	s.stage = stage
	if s.opts.Hook == nil {
		return nil
	}
	if err := s.opts.Hook.At(stage); err != nil {
		return fmt.Errorf("resilience: injected fault at %s: %w", stage, err)
	}
	return nil
}

// span opens an observability span for stage on the supervisor goroutine
// and returns its end function. Goroutines the stage spawns (e.g. parallel
// verify workers) inherit the pprof stage label. No-op without an observer.
func (s *run) span(stage Stage) func() {
	_, end := s.opts.Obs.StartStage(s.ctx, string(stage))
	return end
}

// spanned runs f inside a stage span, ending the span even when f panics:
// Run's recover fence converts the panic into an error and keeps the
// observer alive, so a span left open there would stay open forever.
func (s *run) spanned(stage Stage, f func() error) error {
	end := s.span(stage)
	defer end()
	return f()
}

// verifyOpts is the option set of the supervisor's internal verification
// passes: pruned (subsumed failures add no information) and tapped into the
// observer's verify counters.
func (s *run) verifyOpts() verify.Options {
	return verify.Options{Prune: true, Counters: s.opts.Obs.Verify()}
}

// verifyCheck runs one verification pass through the configured backend
// (Options.VerifyBackend), defaulting to the brute-force verify.Check. All
// supervisor verification sites — initial, reduced, warm-start, grace, and
// final — go through here, so backend selection applies uniformly.
func (s *run) verifyCheck(ctx context.Context, r *routing.Routing, opts verify.Options) (*verify.Report, error) {
	if b := s.opts.VerifyBackend; b != nil {
		return b.Check(ctx, r, s.k, opts)
	}
	return verify.Check(ctx, r, s.k, opts)
}

// stageCtx derives a context bounded by the stage's share of the overall
// timeout, with a *BudgetError cancellation cause so that a budget expiry
// is attributable to its stage (context.Cause) rather than surfacing as a
// bare context error. Without an overall timeout there are no stage budgets.
func (s *run) stageCtx(stage Stage, frac float64) (context.Context, context.CancelFunc) {
	if s.opts.Timeout <= 0 {
		return s.ctx, func() {}
	}
	deadline := time.Now().Add(time.Duration(frac * float64(s.opts.Timeout)))
	return context.WithDeadlineCause(s.ctx, deadline, &BudgetError{Stage: stage})
}

// stageCause attaches the stage context's cancellation cause to err when the
// stage died of its own budget, so degradation records, Partial results and
// service error responses name the exhausted budget ("verify stage budget
// exceeded") instead of a bare context error. Errors unrelated to the stage
// context — and expiries of the overall deadline, whose cause is the plain
// context error — pass through unchanged.
func stageCause(sctx context.Context, err error) error {
	if err == nil || (!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)) {
		return err
	}
	var be *BudgetError
	if !errors.As(context.Cause(sctx), &be) || errors.Is(err, ErrBudget) {
		return err
	}
	return errors.Join(be, err)
}

// failKind classifies a stage error for the degradation policy.
type failKind int

const (
	// failOverall: the overall deadline expired or the caller cancelled —
	// the run is over; salvage a Partial if possible.
	failOverall failKind = iota
	// failBudget: only the stage's budget expired; the run has time left
	// and can degrade around the stage.
	failBudget
	// failNodeLimit: the BDD engine (or an injected fault) exhausted the
	// node budget.
	failNodeLimit
	// failUnrepairable: the instance has no solution within the attempted
	// hole scope.
	failUnrepairable
	// failOther: anything else (internal errors, injected hard faults).
	failOther
)

func (s *run) classify(err error) failKind {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if s.ctx.Err() != nil {
			return failOverall
		}
		return failBudget
	case errors.Is(err, bdd.ErrNodeLimit):
		return failNodeLimit
	case errors.Is(err, repair.ErrUnrepairable) || errors.Is(err, encode.ErrUnrepairable):
		return failUnrepairable
	default:
		return failOther
	}
}

// degrade records a non-fatal deviation from the full pipeline.
func (s *run) degrade(stage Stage, cause error, attempts int, detail string) {
	if s.classify(cause) == failBudget && !errors.Is(cause, ErrBudget) {
		cause = errors.Join(ErrBudget, cause)
	}
	s.rep.Degradations = append(s.rep.Degradations,
		Degradation{Stage: stage, Cause: cause, Attempts: attempts, Detail: detail})
}

// fail ends the run at stage with cause. When a checkpointed routing exists
// it is promoted to a *Partial: a reduced-network checkpoint is expanded,
// and an unverified checkpoint is priced by a grace verification pass on a
// context detached from the expired deadline.
func (s *run) fail(stage Stage, cause error, attempts int) error {
	if s.classify(cause) == failBudget && !errors.Is(cause, ErrBudget) {
		cause = errors.Join(ErrBudget, cause)
	}
	cp := s.cp
	if cp == nil || cp.routing == nil {
		return cause
	}
	r := cp.routing
	verified, residual := cp.verified, cp.residual
	if cp.rd != nil {
		exp, err := cp.rd.Expand(r)
		if err != nil {
			return cause // cannot lift the checkpoint; no usable partial
		}
		r = exp
		verified, residual = false, nil
	}
	p := &Partial{
		Routing:     r,
		K:           s.k,
		Degradation: Degradation{Stage: stage, Cause: cause, Attempts: attempts},
	}
	if verified {
		p.Residual = residual
		return p
	}
	gctx, cancel := context.WithTimeout(context.WithoutCancel(s.ctx), s.opts.GraceVerify)
	vrep, err := s.verifyCheck(gctx, r, s.verifyOpts())
	cancel()
	if err != nil {
		p.ResidualUnknown = true
		return p
	}
	p.Residual = vrep.Failing
	return p
}

func (s *run) synthesize() (*routing.Routing, error) {
	switch s.opts.Strategy {
	case Baseline:
		return s.runBaseline()
	case HeuristicOnly:
		return s.runHeuristicPipeline(nil)
	case ReductionOnly:
		return s.runReduction()
	case Combined:
		rd, err := s.reduceStage()
		if err != nil {
			return nil, err
		}
		return s.runHeuristicPipeline(rd)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", s.opts.Strategy)
	}
}

// reduceStage applies the structural reduction under its budget. A budget
// expiry or node-limit fault degrades to "no reduction" — the pipeline
// continues on the original network; only overall expiry or a hard error is
// fatal. The returned reduction is nil when the stage was degraded away.
func (s *run) reduceStage() (*reduce.Reduction, error) {
	rctx, cancel := s.stageCtx(StageReduce, s.opts.Budgets.Reduce)
	defer cancel()
	err := s.at(StageReduce)
	var rd *reduce.Reduction
	if err == nil {
		err = s.spanned(StageReduce, func() (e error) {
			if sh := s.opts.Shared; sh != nil && sh.Reduce != nil &&
				sh.Reduce.Network() == s.net && sh.Reduce.Rule() == s.opts.Reduction {
				rd, e = sh.Reduce.ForDest(rctx, s.dest)
				return
			}
			rd, e = reduce.Apply(rctx, s.net, s.dest, s.opts.Reduction)
			return
		})
	}
	if err != nil {
		err = stageCause(rctx, err)
		switch s.classify(err) {
		case failBudget, failNodeLimit:
			s.degrade(StageReduce, err, 0, "continuing without reduction")
			return nil, nil
		default:
			return nil, s.fail(StageReduce, err, 0)
		}
	}
	s.rep.Reduced = true
	s.rep.NodesRemoved = rd.NumRemoved()
	return rd, nil
}

// runHeuristicPipeline is the heuristic-based flow, on the reduced network
// when rd is non-nil (Combined) and directly on the original otherwise
// (HeuristicOnly, or Combined whose reduction was degraded away).
func (s *run) runHeuristicPipeline(rd *reduce.Reduction) (*routing.Routing, error) {
	workNet, workDest := s.net, s.dest
	if rd != nil {
		workNet, workDest = rd.Reduced, rd.DestReduced
	}

	hctx, cancel := s.stageCtx(StageHeuristic, s.opts.Budgets.Heuristic)
	err := s.at(StageHeuristic)
	var h *routing.Routing
	if err == nil {
		err = s.spanned(StageHeuristic, func() (e error) {
			h, e = heuristic.Generate(hctx, workNet, workDest)
			return
		})
	}
	cancel()
	if err != nil {
		return nil, s.fail(StageHeuristic, stageCause(hctx, err), 0)
	}
	s.cp = &checkpoint{routing: h, rd: rd}

	work := h
	if rd != nil {
		work, err = s.reducedStages(rd, h)
		if err != nil {
			return nil, err
		}
	}
	return s.finishOnOriginal(rd, work)
}

// reducedStages verifies and repairs the heuristic routing on the reduced
// network. Budget expiry, node-limit exhaustion, and unrepairability all
// degrade to the unrepaired heuristic routing (the endgame repair on the
// original network remains able to fix it); only overall expiry or a hard
// fault is fatal.
func (s *run) reducedStages(rd *reduce.Reduction, h *routing.Routing) (*routing.Routing, error) {
	vctx, cancel := s.stageCtx(StageVerifyReduced, s.opts.Budgets.Verify)
	err := s.at(StageVerifyReduced)
	var vrep *verify.Report
	if err == nil {
		err = s.spanned(StageVerifyReduced, func() (e error) {
			vrep, e = s.verifyCheck(vctx, h, s.verifyOpts())
			return
		})
	}
	cancel()
	if err != nil {
		err = stageCause(vctx, err)
		switch s.classify(err) {
		case failBudget, failNodeLimit:
			s.degrade(StageVerifyReduced, err, 0, "skipping repair on the reduced network")
			return h, nil
		default:
			return nil, s.fail(StageVerifyReduced, err, 0)
		}
	}
	if vrep.Resilient {
		s.rep.HeuristicWasResilient = true
		return h, nil
	}

	rctx, cancel := s.stageCtx(StageRepairReduced, s.opts.Budgets.Repair)
	out, attempts, err := s.ladderRepair(rctx, StageRepairReduced, h, vrep, true)
	cancel()
	if err != nil {
		err = stageCause(rctx, err)
		switch s.classify(err) {
		case failBudget, failNodeLimit, failUnrepairable:
			s.degrade(StageRepairReduced, err, attempts, "expanding the unrepaired heuristic routing")
			return h, nil
		default:
			return nil, s.fail(StageRepairReduced, err, attempts)
		}
	}
	s.rep.ReducedRepairUsed = !out.AlreadyResilient
	s.cp = &checkpoint{routing: out.Routing, rd: rd}
	return out.Routing, nil
}

// finishOnOriginal runs the endgame: expansion (when reduced), verification
// and repair on the original network, and the final safety-net check. The
// verify and repair here run to the overall deadline — no fractional budget
// — because they produce the answer.
func (s *run) finishOnOriginal(rd *reduce.Reduction, work *routing.Routing) (*routing.Routing, error) {
	expanded := work
	if rd != nil {
		err := s.at(StageExpand)
		if err == nil {
			// Expansion is linear in the routing size; its budget is
			// enforced at stage entry.
			ectx, cancel := s.stageCtx(StageExpand, s.opts.Budgets.Expand)
			if cerr := ectx.Err(); cerr != nil {
				err = stageCause(ectx, cerr)
			} else {
				err = s.spanned(StageExpand, func() (e error) {
					expanded, e = rd.Expand(work)
					return
				})
			}
			cancel()
		}
		if err != nil {
			return nil, s.fail(StageExpand, err, 0)
		}
		s.cp = &checkpoint{routing: expanded}
	}

	err := s.at(StageVerify)
	var vrep *verify.Report
	if err == nil {
		err = s.spanned(StageVerify, func() (e error) {
			vrep, e = s.verifyCheck(s.ctx, expanded, s.verifyOpts())
			return
		})
	}
	if err != nil {
		return nil, s.fail(StageVerify, err, 0)
	}
	if vrep.Resilient {
		if rd != nil {
			s.rep.ExpansionResilient = true
		} else {
			s.rep.HeuristicWasResilient = true
		}
		s.cp = &checkpoint{routing: expanded, verified: true}
		return s.finalVerify(expanded)
	}
	s.cp = &checkpoint{routing: expanded, residual: vrep.Failing, verified: true}

	out, attempts, err := s.ladderRepair(s.ctx, StageRepair, expanded, vrep, true)
	if err != nil {
		if s.classify(err) == failUnrepairable {
			// Escalation makes repair complete: unrepairable here means no
			// perfectly k-resilient routing with lists of length k+1 exists.
			return nil, fmt.Errorf("%w: %v", ErrUnsolvable, err)
		}
		return nil, s.fail(StageRepair, err, attempts)
	}
	if rd != nil {
		s.rep.ExpansionRepairUsed = true
	}
	s.cp = &checkpoint{routing: out.Routing, verified: true}
	return s.finalVerify(out.Routing)
}

func (s *run) runBaseline() (*routing.Routing, error) {
	sol, attempts, err := s.ladderSynth(s.ctx, s.net, s.dest)
	if err != nil {
		if s.classify(err) == failUnrepairable {
			return nil, fmt.Errorf("%w: no perfectly %d-resilient routing", ErrUnsolvable, s.k)
		}
		return nil, s.fail(StageSynth, err, attempts)
	}
	s.cp = &checkpoint{routing: sol.Routing, verified: true}
	return s.finalVerify(sol.Routing)
}

func (s *run) runReduction() (*routing.Routing, error) {
	rd, err := s.reduceStage()
	if err != nil {
		return nil, err
	}
	workNet, workDest := s.net, s.dest
	sctx, cancel := s.ctx, context.CancelFunc(func() {})
	if rd != nil {
		workNet, workDest = rd.Reduced, rd.DestReduced
		sctx, cancel = s.stageCtx(StageSynth, s.opts.Budgets.Repair)
	}
	sol, attempts, serr := s.ladderSynth(sctx, workNet, workDest)
	cancel()
	if serr != nil {
		serr = stageCause(sctx, serr)
		if s.classify(serr) == failUnrepairable {
			return nil, fmt.Errorf("%w: reduced network unsynthesisable", ErrUnsolvable)
		}
		return nil, s.fail(StageSynth, serr, attempts)
	}
	if rd == nil {
		s.cp = &checkpoint{routing: sol.Routing, verified: true}
		return s.finalVerify(sol.Routing)
	}
	s.cp = &checkpoint{routing: sol.Routing, rd: rd}
	return s.finishOnOriginal(rd, sol.Routing)
}

func (s *run) finalVerify(r *routing.Routing) (*routing.Routing, error) {
	if s.opts.SkipFinalVerify {
		return r, nil
	}
	err := s.at(StageFinalVerify)
	var vrep *verify.Report
	if err == nil {
		err = s.spanned(StageFinalVerify, func() (e error) {
			vrep, e = s.verifyCheck(s.ctx, r,
				verify.Options{StopAtFirst: true, Counters: s.opts.Obs.Verify()})
			return
		})
	}
	if err != nil {
		return nil, s.fail(StageFinalVerify, err, 0)
	}
	if !vrep.Resilient {
		return nil, fmt.Errorf("core: internal error: produced routing failed final verification")
	}
	return r, nil
}

// ladderRepair runs repair under the node-limit escalation ladder: the
// configured limits first, then the limit quadrupled with reordering forced
// on, then a reduced-scope (gradual) hole strategy. The fault hook fires
// before every attempt, so injected node-limit faults exercise the ladder
// exactly like real exhaustion. Escalation of the *hole set* (repair's own
// completeness ladder) is orthogonal and controlled by escalate.
func (s *run) ladderRepair(ctx context.Context, stage Stage, r *routing.Routing, vrep *verify.Report, escalate bool) (*repair.Outcome, int, error) {
	endSpan := s.span(stage)
	defer endSpan()
	enc := s.opts.Encode
	strat := s.opts.RepairStrategy
	attempts := 0
	for {
		attempts++
		s.rep.SolveAttempts++
		err := s.at(stage)
		var out *repair.Outcome
		if err == nil {
			out, err = repair.Repair(ctx, r, s.k, repair.Options{
				Strategy: strat,
				Escalate: escalate,
				Encode:   enc,
				Verify:   verify.Options{Counters: s.opts.Obs.Verify()},
				Report:   vrep,
				Counters: s.opts.Obs.Repair(),
			})
		}
		if err == nil {
			return out, attempts, nil
		}
		if !errors.Is(err, bdd.ErrNodeLimit) || ctx.Err() != nil || attempts >= s.opts.MaxAttempts {
			return nil, attempts, err
		}
		switch attempts {
		case 1:
			if enc.NodeLimit == 0 {
				enc.NodeLimit = encode.DefaultNodeLimit
			}
			enc.NodeLimit *= 4
			enc.DisableReorder = false
			s.degrade(stage, err, attempts,
				fmt.Sprintf("retrying with node limit %d and reordering enabled", enc.NodeLimit))
		default:
			strat = repair.Gradual
			s.degrade(stage, err, attempts, "retrying with reduced-scope (gradual) hole sets")
		}
	}
}

// ladderSynth is the escalation ladder for from-scratch synthesis. It has
// no reduced-scope rung (every entry is a hole by definition), so it climbs
// at most once: configured limits, then 4× with reordering.
func (s *run) ladderSynth(ctx context.Context, net *network.Network, dest network.NodeID) (*encode.Solution, int, error) {
	endSpan := s.span(StageSynth)
	defer endSpan()
	enc := s.opts.Encode
	maxAttempts := s.opts.MaxAttempts
	if maxAttempts > 2 {
		maxAttempts = 2
	}
	attempts := 0
	for {
		attempts++
		s.rep.SolveAttempts++
		err := s.at(StageSynth)
		var sol *encode.Solution
		if err == nil {
			sol, err = synth.Baseline(ctx, net, dest, s.k, enc)
		}
		if err == nil {
			return sol, attempts, nil
		}
		if !errors.Is(err, bdd.ErrNodeLimit) || ctx.Err() != nil || attempts >= maxAttempts {
			return nil, attempts, err
		}
		if enc.NodeLimit == 0 {
			enc.NodeLimit = encode.DefaultNodeLimit
		}
		enc.NodeLimit *= 4
		enc.DisableReorder = false
		s.degrade(StageSynth, err, attempts,
			fmt.Sprintf("retrying synthesis with node limit %d and reordering enabled", enc.NodeLimit))
	}
}
