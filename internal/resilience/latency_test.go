package resilience_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// latencyBound is how long a stage may take to notice a cancellation. It is
// deliberately generous — CI machines under -race are slow — while still
// catching a stage that ignores its context outright (which shows up as the
// stage running to completion, seconds to minutes on the instances below).
const latencyBound = 5 * time.Second

// TestCancellationLatencyBounded cancels the run at every pipeline stage, on
// an instance large enough that each stage does real work, and asserts the
// run returns promptly: every stage must poll its context. The Garr/Combined
// run covers the reduction, heuristic, reduced verify+repair, expansion, and
// original verify+repair stages; Figure 1 covers from-scratch synthesis and
// the final safety-net verification.
func TestCancellationLatencyBounded(t *testing.T) {
	faultinject.LeakCheck(t)
	garr := zooInstance(t, "Garr")
	fig1 := papernet.Figure1()
	fig1Dest := papernet.Figure1Dest(fig1)

	cases := []struct {
		net   *network.Network
		dest  network.NodeID
		strat resilience.Strategy
		stage resilience.Stage
	}{
		{garr.Net, garr.Dest, resilience.Combined, resilience.StageReduce},
		{garr.Net, garr.Dest, resilience.Combined, resilience.StageHeuristic},
		{garr.Net, garr.Dest, resilience.Combined, resilience.StageVerifyReduced},
		{garr.Net, garr.Dest, resilience.Combined, resilience.StageRepairReduced},
		{garr.Net, garr.Dest, resilience.Combined, resilience.StageExpand},
		{garr.Net, garr.Dest, resilience.Combined, resilience.StageVerify},
		{garr.Net, garr.Dest, resilience.Combined, resilience.StageRepair},
		{fig1, fig1Dest, resilience.Baseline, resilience.StageSynth},
		{fig1, fig1Dest, resilience.Combined, resilience.StageFinalVerify},
	}
	for _, tc := range cases {
		t.Run(string(tc.stage), func(t *testing.T) {
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			var cancelledAt time.Time
			inj := faultinject.New(faultinject.Fault{
				Stage: tc.stage, Kind: faultinject.Cancel,
			}).BindCancel(func() {
				cancelledAt = time.Now()
				cancel()
			})
			_, _, err := resilience.Synthesize(cctx, tc.net, tc.dest, 2, resilience.Options{
				Strategy: tc.strat,
				Hook:     inj,
				// Keep the Partial pricing pass from dominating the latency
				// measurement; it runs on a detached context by design.
				GraceVerify: time.Second,
			})
			if cancelledAt.IsZero() {
				t.Fatalf("stage %s never reached; cancel fault did not fire (visited %v)",
					tc.stage, inj.Visited())
			}
			latency := time.Since(cancelledAt)
			if err == nil {
				t.Fatal("run succeeded despite cancellation")
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want to unwrap to context.Canceled", err)
			}
			if latency > latencyBound {
				t.Errorf("stage %s took %s to honour cancellation (bound %s)",
					tc.stage, latency, latencyBound)
			}
		})
	}
}
