// Package resilience is the anytime supervisor around SyRep's synthesis and
// repair pipelines. The paper's evaluation (Figure 7) is defined by timeouts
// and memouts, so the supervisor treats every run as an anytime computation:
//
//   - the overall deadline is split into per-stage budgets (reduce,
//     heuristic, verify, repair, expand) so that an early stage cannot starve
//     the endgame repair of time;
//   - node-limit exhaustion (bdd.ErrNodeLimit) triggers a retry-with-
//     escalation ladder: a bigger node budget with reordering enabled, then a
//     reduced-scope repair strategy;
//   - the best routing seen so far is checkpointed, and on timeout or memout
//     the run returns a typed *Partial carrying that routing, the residual
//     failing deliveries from the last verification pass, and a Degradation
//     report naming the stage that ran out and why;
//   - panics escaping the internal packages are converted into typed errors
//     at the supervisor boundary (the bdd package's control-flow overflow
//     panic is mapped back to bdd.ErrNodeLimit).
//
// Every stage doubles as a registered fault point; the faultinject
// sub-package drives cancellation, node-limit exhaustion and injected errors
// through each of them deterministically.
package resilience

import (
	"errors"
	"fmt"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/encode"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/reduce"
	"syrep/internal/repair"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// Strategy selects how Synthesize computes the routing.
type Strategy int

const (
	// Baseline is full BDD synthesis from scratch on the original network
	// (the SyPer approach of [26]).
	Baseline Strategy = iota + 1
	// HeuristicOnly runs the heuristic generator on the original network
	// and repairs it.
	HeuristicOnly
	// ReductionOnly reduces the network aggressively, synthesises from
	// scratch on the reduced network, expands, and repairs.
	ReductionOnly
	// Combined is the full SyRep pipeline: aggressive reduction + heuristic
	// + repair on the reduced network, expansion, then repair on the
	// original network. This is the paper's headline method.
	Combined
)

// String returns the strategy name as used in the paper's plots.
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case HeuristicOnly:
		return "heuristic"
	case ReductionOnly:
		return "reduction"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrUnsolvable is returned when the selected strategy cannot produce a
// perfectly k-resilient routing for the instance (which may still be
// solvable by another strategy, or genuinely have no solution).
var ErrUnsolvable = errors.New("core: strategy could not produce a perfectly k-resilient routing")

// ErrBudget marks a deadline expiry caused by a per-stage budget rather
// than the overall timeout: the stage exhausted its share of the deadline
// while the run as a whole still had time. It always travels joined with
// context.DeadlineExceeded so both errors.Is checks hold.
var ErrBudget = errors.New("resilience: stage budget exhausted")

// BudgetError is the cancellation cause the supervisor installs on each
// stage context (via context.WithDeadlineCause). When a stage dies of its
// own budget rather than the overall deadline, context.Cause surfaces this
// error and the resulting Degradation or Partial names the exhausted stage
// instead of reporting a bare context.DeadlineExceeded. It unwraps to
// ErrBudget, so errors.Is(err, ErrBudget) holds wherever it travels.
type BudgetError struct {
	// Stage is the stage whose budget expired.
	Stage Stage
}

// Error names the exhausted stage budget.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("resilience: %s stage budget exceeded", e.Stage)
}

// Unwrap makes errors.Is(err, ErrBudget) hold.
func (e *BudgetError) Unwrap() error { return ErrBudget }

// Stage identifies one pipeline stage. Stages double as the registered
// fault points of the fault-injection harness: the supervisor consults
// Options.Hook under each stage's name immediately before running it (and
// before every retry of a BDD stage).
type Stage string

const (
	// StageReduce is the structural chain reduction (Section IV-B).
	StageReduce Stage = "reduce"
	// StageHeuristic is the routing generator (Section IV-A).
	StageHeuristic Stage = "heuristic"
	// StageSynth is from-scratch BDD synthesis (Baseline / ReductionOnly).
	StageSynth Stage = "synth"
	// StageVerifyReduced is the verification pass on the reduced network.
	StageVerifyReduced Stage = "verify-reduced"
	// StageRepairReduced is the repair pass on the reduced network.
	StageRepairReduced Stage = "repair-reduced"
	// StageExpand lifts the reduced routing back to the original network.
	StageExpand Stage = "expand"
	// StageVerify is the verification pass on the original network.
	StageVerify Stage = "verify"
	// StageRepair is the repair pass on the original network. It is the
	// endgame stage: it always runs to the overall deadline, never a
	// fractional budget.
	StageRepair Stage = "repair"
	// StageFinalVerify is the independent safety-net verification of the
	// produced routing.
	StageFinalVerify Stage = "final-verify"

	// StageBatchFanout wraps one destination's whole pipeline inside a
	// SynthesizeAll batch; a fault injected here poisons exactly that
	// destination, which must surface as its per-destination typed error and
	// never fail the batch.
	StageBatchFanout Stage = "batch-fanout"
)

// Churn-controller stages (internal/controller). They live here because
// Stage is the fault-injection currency: the controller consults the same
// Hook interface at these points, so one harness scripts faults across both
// the pipeline and the control loop. They are deliberately NOT part of
// FaultPoints() — the supervisor never visits them.
const (
	// StageCtlInbox is consulted on every event admission; an error there
	// is treated as inbox overflow (backpressure rejection).
	StageCtlInbox Stage = "ctl-inbox"
	// StageCtlRepair is consulted before each per-destination repair
	// attempt; an error fails the attempt with that error.
	StageCtlRepair Stage = "ctl-repair"
	// StageCtlEpoch is consulted between a completed repair and its push —
	// the epoch-race window. A Call-kind fault injects a superseding event
	// here; an error fails the reconcile step.
	StageCtlEpoch Stage = "ctl-epoch"
	// StageCtlPush is consulted before every southbound push attempt; an
	// error becomes that attempt's failure (transient errors are retried
	// by the pusher, everything else dead-letters the delta).
	StageCtlPush Stage = "ctl-push"
)

// Journal stages (internal/journal, via its crashfs test FS). Like the
// ctl-* stages they share the Stage currency so one faultinject plan can
// script filesystem faults alongside pipeline and controller faults. The
// crash-matrix harness consults these around every journaled filesystem
// operation; an Error-kind fault becomes that operation's failure, and the
// harness's own kill machinery uses the visit stream to place process
// "kills" at exact operation indices.
const (
	// StageJrnWrite is consulted on every segment or snapshot write.
	StageJrnWrite Stage = "jrn-write"
	// StageJrnSync is consulted on every file fsync.
	StageJrnSync Stage = "jrn-sync"
	// StageJrnRename is consulted on every rename (snapshot publication).
	StageJrnRename Stage = "jrn-rename"
	// StageJrnRemove is consulted on every removal (compaction).
	StageJrnRemove Stage = "jrn-remove"
)

// FaultPoints returns every stage at which the supervisor consults the
// fault-injection hook, in pipeline order.
func FaultPoints() []Stage {
	return []Stage{
		StageReduce, StageHeuristic, StageSynth,
		StageVerifyReduced, StageRepairReduced, StageExpand,
		StageVerify, StageRepair, StageFinalVerify,
	}
}

// BatchFaultPoints returns every stage at which SynthesizeAll consults the
// fault-injection hook, beyond the per-destination pipeline's own points.
func BatchFaultPoints() []Stage {
	return []Stage{StageBatchFanout}
}

// ControllerFaultPoints returns every stage at which the churn controller
// consults the fault-injection hook, in event-lifecycle order.
func ControllerFaultPoints() []Stage {
	return []Stage{StageCtlInbox, StageCtlRepair, StageCtlEpoch, StageCtlPush}
}

// JournalFaultPoints returns every stage at which the journal's crashfs
// consults the fault-injection hook, in write-path order.
func JournalFaultPoints() []Stage {
	return []Stage{StageJrnWrite, StageJrnSync, StageJrnRename, StageJrnRemove}
}

// Hook observes (and may sabotage) the pipeline at each stage. A non-nil
// return is treated exactly like the stage failing with that error, which is
// how the fault-injection harness forces node-limit exhaustion and arbitrary
// stage errors; returning nil lets the stage run. Production runs leave
// Options.Hook nil.
type Hook interface {
	At(Stage) error
}

// Degradation records one way a run fell short of the full pipeline: a stage
// that exhausted its budget, an escalation rung climbed after node-limit
// exhaustion, or the stage a Partial result died in.
type Degradation struct {
	// Stage is the pipeline stage concerned.
	Stage Stage
	// Cause is the error that triggered the degradation (stage budget
	// expiry, bdd.ErrNodeLimit, cancellation, or an injected error).
	Cause error
	// Attempts counts the BDD solve attempts consumed at the stage, when it
	// is a BDD stage (0 otherwise).
	Attempts int
	// Detail is a human-readable account of what the supervisor did about
	// it.
	Detail string
}

func (d Degradation) String() string {
	s := fmt.Sprintf("%s: %v", d.Stage, d.Cause)
	if d.Attempts > 0 {
		s += fmt.Sprintf(" (after %d attempts)", d.Attempts)
	}
	if d.Detail != "" {
		s += "; " + d.Detail
	}
	return s
}

// Partial is the typed anytime result: the run could not finish, but the
// supervisor checkpointed a usable routing. It implements error so that it
// flows through the existing error-returning APIs; Unwrap exposes the root
// cause so that errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, bdd.ErrNodeLimit) keep working on callers that only care
// about timeout-vs-memout.
type Partial struct {
	// Routing is the best checkpointed routing, on the original network,
	// hole-free. Never nil.
	Routing *routing.Routing
	// K is the resilience level the run was asked for.
	K int
	// Residual lists the failing deliveries of Routing at K from the last
	// verification pass (empty means the routing is believed resilient and
	// only certification was cut short). Meaningless when ResidualUnknown.
	Residual []verify.FailingDelivery
	// ResidualUnknown reports that no verification pass over Routing
	// completed, so Residual is unknown rather than empty.
	ResidualUnknown bool
	// Degradation names the stage that ran out and why.
	Degradation Degradation
}

// Error describes the partial outcome.
func (p *Partial) Error() string {
	if p.ResidualUnknown {
		return fmt.Sprintf("resilience: partial result (%s; unverified routing)", p.Degradation)
	}
	return fmt.Sprintf("resilience: partial result (%s; %d residual failing deliveries)",
		p.Degradation, len(p.Residual))
}

// Unwrap returns the root cause of the degradation.
func (p *Partial) Unwrap() error { return p.Degradation.Cause }

// AsPartial extracts a *Partial from an error chain.
func AsPartial(err error) (*Partial, bool) {
	var p *Partial
	if errors.As(err, &p) {
		return p, true
	}
	return nil, false
}

// PanicError is a panic that escaped an internal package, caught at the
// supervisor boundary and converted into a typed error. Control-flow panics
// of the bdd engine are mapped to bdd.ErrNodeLimit instead and never appear
// here.
type PanicError struct {
	// Stage is the pipeline stage that was running (empty when unknown).
	Stage Stage
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured at recovery.
	Stack []byte
}

// Error describes the recovered panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: internal panic at %q: %v", e.Stage, e.Value)
}

// Budgets apportions the overall Options.Timeout across the early pipeline
// stages, as fractions of the timeout. Each stage's deadline is
// min(overall deadline, stage start + fraction × timeout); unused budget
// rolls forward to later stages. The endgame stages — verification and
// repair on the original network, and the final safety-net verification —
// deliberately carry no fractional budget: they run to the overall deadline,
// which is what makes the split anytime-friendly (early stages cannot starve
// the repair that actually produces the answer). Zero fields take the
// defaults; budgets are ignored entirely when Timeout is zero.
type Budgets struct {
	// Reduce bounds the structural reduction (default 0.05).
	Reduce float64
	// Heuristic bounds the routing generator (default 0.10).
	Heuristic float64
	// Verify bounds the verification pass on the reduced network
	// (default 0.20).
	Verify float64
	// Repair bounds the repair (or from-scratch synthesis) on the reduced
	// network (default 0.40).
	Repair float64
	// Expand bounds the expansion back to the original network
	// (default 0.05).
	Expand float64
}

func (b Budgets) withDefaults() Budgets {
	if b.Reduce == 0 {
		b.Reduce = 0.05
	}
	if b.Heuristic == 0 {
		b.Heuristic = 0.10
	}
	if b.Verify == 0 {
		b.Verify = 0.20
	}
	if b.Repair == 0 {
		b.Repair = 0.40
	}
	if b.Expand == 0 {
		b.Expand = 0.05
	}
	return b
}

// Options configures a synthesis run.
type Options struct {
	// Strategy defaults to Combined.
	Strategy Strategy
	// Timeout bounds the run (0 = none); on expiry the run returns a
	// *Partial wrapping context.DeadlineExceeded when a checkpointed routing
	// exists, and the bare context error otherwise.
	Timeout time.Duration
	// Budgets splits Timeout across the early stages.
	Budgets Budgets
	// Reduction selects the reduction rule for strategies that reduce
	// (default Aggressive, as in the paper's architecture).
	Reduction reduce.Rule
	// Encode tunes the BDD engine. Its NodeLimit is the first rung of the
	// escalation ladder; on bdd.ErrNodeLimit the supervisor retries with the
	// limit quadrupled and reordering forced on, then with a reduced-scope
	// repair strategy.
	Encode encode.Options
	// RepairStrategy selects the suspicious-entry removal policy.
	RepairStrategy repair.Strategy
	// SkipFinalVerify disables the final independent verification pass
	// (the pipeline's own invariants make it redundant; it is kept on by
	// default as a safety net).
	SkipFinalVerify bool
	// GraceVerify bounds the detached verification pass that prices a
	// Partial result whose checkpoint was never verified (default 2s). The
	// pass runs on a context disconnected from the expired deadline.
	GraceVerify time.Duration
	// MaxAttempts caps the escalation ladder per BDD stage (default 3:
	// configured limits, 4× limit with reordering, reduced scope).
	MaxAttempts int
	// Hook is the fault-injection test hook; nil in production.
	Hook Hook
	// VerifyBackend routes the supervisor's verification passes (initial,
	// reduced, warm-start, grace, and final) through an alternative
	// verify.Backend — typically a verify.Router dispatching large-k checks
	// to the polynomial fast path. Nil means the brute-force verify.Check,
	// the historical behaviour. A backend whose Check fails with
	// verify.ErrNotApplicable surfaces that error to the stage; wrap fast
	// paths in a Router so the oracle absorbs bailouts.
	VerifyBackend verify.Backend
	// Obs, when non-nil, observes the run: every pipeline stage emits a
	// wall-clock span (tagged with pprof goroutine labels, so CPU profiles
	// attribute samples to stages), and the BDD engine, verifier, and repair
	// loop register their counter taps with it. The whole run is wrapped in
	// an obs.SpanTotal span. Nil means unobserved; the instrumented hot
	// paths then cost a nil check each.
	Obs *obs.Observer
	// Shared carries destination-independent state reused across the runs of
	// a batch (see SynthesizeAll): precomputed reduction candidates and a
	// BDD manager pool. Nil means run standalone. Sharing never changes a
	// run's result — the shared reduce is differentially pinned equal to the
	// standalone one, and pooled managers are pinned indistinguishable from
	// fresh ones.
	Shared *SharedResources
}

// SharedResources bundles the destination-independent state a batch of
// synthesis runs over one network can share. Build it once with
// NewSharedResources and set it on every run's Options.Shared.
type SharedResources struct {
	// Reduce holds the precomputed chain-contraction candidate set; the
	// supervisor uses it instead of reduce.Apply when the run's network and
	// rule match.
	Reduce *reduce.Shared
	// Pool recycles BDD managers across solves so N destinations reuse warm
	// arenas instead of allocating N times.
	Pool *bdd.ManagerPool
}

// NewSharedResources precomputes shared state for synthesizing many
// destinations on net. rule must match the Options.Reduction of the runs
// that will use it (zero means the default, reduce.Aggressive); nodeLimit
// seeds the pool's managers and is re-tuned per solve (0 = the encode
// default).
func NewSharedResources(net *network.Network, rule reduce.Rule, nodeLimit int) (*SharedResources, error) {
	if rule == 0 {
		rule = reduce.Aggressive
	}
	if nodeLimit == 0 {
		nodeLimit = encode.DefaultNodeLimit
	}
	sh, err := reduce.NewShared(net, rule)
	if err != nil {
		return nil, err
	}
	return &SharedResources{
		Reduce: sh,
		Pool:   bdd.NewManagerPool(bdd.Config{NodeLimit: nodeLimit}),
	}, nil
}

func (o Options) withDefaults() Options {
	if o.Strategy == 0 {
		o.Strategy = Combined
	}
	if o.Reduction == 0 {
		o.Reduction = reduce.Aggressive
	}
	if o.GraceVerify == 0 {
		o.GraceVerify = 2 * time.Second
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 3
	}
	if o.Shared != nil && o.Shared.Pool != nil && o.Encode.Pool == nil {
		// Thread the batch's manager pool into every encode solve of the run
		// (ladder retries, warm-start fills) — each solve checks a manager
		// out and releases it, so concurrent runs never share one.
		o.Encode.Pool = o.Shared.Pool
	}
	o.Budgets = o.Budgets.withDefaults()
	return o
}

// Report describes a synthesis run for the benchmark harness.
type Report struct {
	Strategy Strategy
	K        int
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
	// Reduced tells whether a structural reduction was applied, and its
	// effect.
	Reduced               bool
	NodesRemoved          int
	ReducedRepairUsed     bool
	ExpansionRepairUsed   bool
	ExpansionResilient    bool
	HeuristicWasResilient bool
	// Degradations lists everything the run had to give up or escalate:
	// stage-budget expiries, node-limit escalations, skipped stages.
	Degradations []Degradation
	// SolveAttempts counts BDD solve attempts across all ladder runs.
	SolveAttempts int
	// WarmStart tells whether the run was seeded from a cached table (the
	// WarmStart entry point) rather than synthesized cold, and how many
	// holes the adaptation punched for the fill stage.
	WarmStart   bool
	HolesFilled int
}

// Degraded reports whether the run deviated from the full pipeline.
func (r *Report) Degraded() bool { return len(r.Degradations) > 0 }
