package resilience

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/cache"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
)

// All-destinations batch synthesis. A deployed FRR network needs a
// forwarding table for every destination, not one; SynthesizeAll fans the
// per-destination pipeline out across a bounded worker pool while sharing
// everything that does not depend on the destination — the chain-reduction
// candidate set (reduce.Shared) and warm BDD arenas (bdd.ManagerPool) — and
// consulting the cross-request cache per destination. One destination's
// failure is that destination's typed error, never the batch's: the batch
// only fails as a whole on cancellation, and then still returns every result
// that landed before the cut.

// DestResult is one destination's outcome within a batch.
type DestResult struct {
	// Dest is the destination node; Name is its stable name.
	Dest network.NodeID `json:"-"`
	Name string         `json:"dest"`
	// Routing is the synthesized table: fully resilient on success, a
	// salvaged checkpoint on a Partial failure, nil otherwise.
	Routing *routing.Routing `json:"-"`
	// Report is the supervisor's run report (nil when served from cache).
	Report *Report `json:"-"`
	// Resilient reports a clean pipeline success for this destination.
	Resilient bool `json:"resilient"`
	// Cached: served straight from the cache, no pipeline run.
	Cached bool `json:"cached,omitempty"`
	// Deduped: a concurrent identical computation was in flight; this
	// result shares it (singleflight).
	Deduped bool `json:"deduped,omitempty"`
	// Err is the destination's terminal error (nil on success).
	Err error `json:"-"`
}

// BatchOptions configures SynthesizeAll.
type BatchOptions struct {
	// Run configures each per-destination run. Run.Shared is filled in by
	// the batch when nil, so every run reuses the same reduction candidates
	// and manager pool.
	Run Options
	// Dests selects the destinations (nil = every node of the network).
	Dests []network.NodeID
	// Workers bounds concurrently running destinations (default GOMAXPROCS).
	Workers int
	// Cache, when non-nil, serves repeat destinations without a run,
	// collapses concurrent identical work via singleflight, and receives
	// clean resilient results.
	Cache *cache.Cache
	// OnResult streams each destination's result the moment it lands, in
	// completion order; calls are serialized. The Routing inside is owned by
	// the batch — clone it to retain it past the callback.
	OnResult func(DestResult)
	// Obs, when non-nil, receives the syrep_batch_* counters. Per-run
	// observation is configured separately via Run.Obs.
	Obs *obs.Observer
}

// BatchReport summarises a batch.
type BatchReport struct {
	// Dests is the number of destinations requested; Attempted is how many
	// ran before a cancellation cut the batch short.
	Dests     int `json:"dests"`
	Attempted int `json:"attempted"`
	// Resilient / Degraded / Failed partition the attempted destinations:
	// clean successes, successes that gave something up (see
	// Report.Degraded), and typed per-destination failures.
	Resilient int `json:"resilient"`
	Degraded  int `json:"degraded"`
	Failed    int `json:"failed"`
	// CacheHits and Dedups count destinations served without a fresh run.
	CacheHits int `json:"cacheHits"`
	Dedups    int `json:"dedups"`
	// Elapsed is the batch wall-clock time.
	Elapsed time.Duration `json:"elapsedNs"`
	// Pool reports BDD manager reuse across the batch.
	Pool bdd.PoolStats `json:"pool"`
}

// SynthesizeAll synthesizes a table for every requested destination of net,
// fanning out across a bounded worker pool. Results are returned sorted in
// Dests order (requested order, or node-id order when Dests is nil) and
// streamed to opts.OnResult in completion order as they land.
//
// Per-destination failures are reported in their DestResult and never fail
// the batch. The returned error is non-nil only for invalid input or when
// ctx was cancelled mid-batch — and then the results that completed before
// the cut are still returned alongside it.
func SynthesizeAll(ctx context.Context, net *network.Network, k int, opts BatchOptions) ([]DestResult, *BatchReport, error) {
	start := time.Now()
	if net == nil {
		return nil, nil, fmt.Errorf("resilience: nil network")
	}
	if k < 0 {
		return nil, nil, fmt.Errorf("resilience: negative resilience level %d", k)
	}
	dests := opts.Dests
	if dests == nil {
		dests = make([]network.NodeID, net.NumNodes())
		for i := range dests {
			dests[i] = network.NodeID(i)
		}
	}
	for _, d := range dests {
		if int(d) < 0 || int(d) >= net.NumNodes() {
			return nil, nil, fmt.Errorf("resilience: destination %d out of range", d)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dests) {
		workers = len(dests)
	}

	run := opts.Run
	if run.Shared == nil {
		defaulted := run.withDefaults()
		sh, err := NewSharedResources(net, defaulted.Reduction, run.Encode.NodeLimit)
		if err != nil {
			return nil, nil, err
		}
		run.Shared = sh
	}

	b := &batch{
		ctx:  ctx,
		net:  net,
		k:    k,
		opts: opts,
		run:  run,
		rep:  &BatchReport{Dests: len(dests)},
		got:  make([]*DestResult, len(dests)),
	}
	if o := opts.Obs; o != nil {
		o.Counter(obs.BatchRuns).Inc()
		b.cDests = o.Counter(obs.BatchDests)
		b.cResilient = o.Counter(obs.BatchResilient)
		b.cDegraded = o.Counter(obs.BatchDegraded)
		b.cFailed = o.Counter(obs.BatchFailed)
		b.cCacheHits = o.Counter(obs.BatchCacheHits)
		b.cDedups = o.Counter(obs.BatchDedups)
		b.gInflight = o.Gauge(obs.BatchInflight)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(dests) || ctx.Err() != nil {
					return
				}
				b.one(i, dests[i])
			}
		}()
	}
	wg.Wait()

	// Compact in Dests order; cancellation leaves unattempted slots nil.
	results := make([]DestResult, 0, len(dests))
	for _, r := range b.got {
		if r != nil {
			results = append(results, *r)
		}
	}
	b.rep.Attempted = len(results)
	b.rep.Elapsed = time.Since(start)
	if run.Shared.Pool != nil {
		b.rep.Pool = run.Shared.Pool.Stats()
	}
	if err := ctx.Err(); err != nil {
		return results, b.rep, context.Cause(ctx)
	}
	return results, b.rep, nil
}

// batch is the shared state of one SynthesizeAll invocation.
type batch struct {
	ctx  context.Context
	net  *network.Network
	k    int
	opts BatchOptions
	run  Options
	rep  *BatchReport

	mu       sync.Mutex // guards got, rep tallies, OnResult serialization
	got      []*DestResult
	inflight atomic.Int64

	cDests, cResilient, cDegraded *obs.Counter
	cFailed, cCacheHits, cDedups  *obs.Counter
	gInflight                     *obs.Gauge
}

// one settles destination slot i.
func (b *batch) one(i int, dest network.NodeID) {
	b.gInflight.Set(b.inflight.Add(1))
	defer func() { b.gInflight.Set(b.inflight.Add(-1)) }()
	res := b.solve(dest)
	b.record(i, res)
}

// record tallies and streams a landed result. The lock also serializes
// OnResult, per its contract.
func (b *batch) record(i int, res DestResult) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.got[i] = &res
	b.cDests.Inc()
	switch {
	case res.Err != nil:
		b.rep.Failed++
		b.cFailed.Inc()
	case res.Report != nil && res.Report.Degraded():
		b.rep.Degraded++
		b.cDegraded.Inc()
	default:
		b.rep.Resilient++
		b.cResilient.Inc()
	}
	if res.Cached {
		b.rep.CacheHits++
		b.cCacheHits.Inc()
	}
	if res.Deduped {
		b.rep.Dedups++
		b.cDedups.Inc()
	}
	if b.opts.OnResult != nil {
		b.opts.OnResult(res)
	}
}

// solve produces one destination's result: fault hook, cache lookup,
// singleflight, pipeline run.
func (b *batch) solve(dest network.NodeID) DestResult {
	res := DestResult{Dest: dest, Name: b.net.NodeName(dest)}
	// The batch-fanout fault point: an injected error here poisons exactly
	// this destination and must surface as its typed per-destination error.
	if h := b.run.Hook; h != nil {
		if err := h.At(StageBatchFanout); err != nil {
			res.Err = err
			return res
		}
	}
	c := b.opts.Cache
	if c == nil {
		return b.runDest(res)
	}
	key := b.cacheKey(dest)
	if e, ok := c.Get(key); ok {
		res.Routing, res.Resilient, res.Cached = e.Routing, e.Resilient, true
		return res
	}
	v, shared, err := c.Do(b.ctx, key, func() (any, error) {
		out := b.runDest(res)
		return out, out.Err
	})
	if err != nil && v == nil {
		// Waiter-side cancellation: the flight is still running but this
		// destination's budget is gone.
		res.Err = err
		return res
	}
	out, ok := v.(DestResult)
	if !ok {
		// A foreign flight on the same key (e.g. the server's own
		// singleflight) produced an incompatible value; run standalone
		// rather than share it.
		return b.runDest(res)
	}
	if shared {
		out.Deduped = true
		if out.Routing != nil {
			out.Routing = out.Routing.Clone()
		}
		return out
	}
	if out.Err == nil && out.Resilient && out.Routing != nil {
		c.Put(key, &cache.Entry{Net: b.net, Routing: out.Routing, Resilient: true})
	}
	return out
}

// runDest runs the full per-destination pipeline with the batch's shared
// resources threaded in.
func (b *batch) runDest(res DestResult) DestResult {
	ro := b.run
	r, rep, err := Synthesize(b.ctx, b.net, res.Dest, b.k, ro)
	res.Report = rep
	if err != nil {
		res.Err = err
		if p, ok := AsPartial(err); ok {
			// Salvage travels with the per-destination result, like the
			// single-destination API.
			res.Routing = p.Routing
		}
		return res
	}
	// A clean return means the final verification passed (modulo
	// SkipFinalVerify), even when the report records degradations along the
	// way — same contract as the single-destination API.
	res.Routing = r
	res.Resilient = true
	return res
}

// cacheKey mirrors the server's content-addressed key so batch results and
// single-request results share cache lines.
func (b *batch) cacheKey(dest network.NodeID) cache.Key {
	strat := b.run.Strategy
	if strat == 0 {
		strat = Combined
	}
	return cache.Key{
		Topo:     b.net.Fingerprint(),
		Dest:     b.net.NodeName(dest),
		K:        b.k,
		Strategy: strat.String(),
	}
}
