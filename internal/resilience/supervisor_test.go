package resilience_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
	"syrep/internal/verify"
)

func TestValidateSynthesize(t *testing.T) {
	n := papernet.Figure1()
	cases := []struct {
		name string
		run  func() error
	}{
		{"nil network", func() error {
			_, _, err := resilience.Synthesize(ctx, nil, 0, 2, resilience.Options{})
			return err
		}},
		{"dest out of range", func() error {
			_, _, err := resilience.Synthesize(ctx, n, network.NodeID(99), 2, resilience.Options{})
			return err
		}},
		{"negative k", func() error {
			_, _, err := resilience.Synthesize(ctx, n, 0, -1, resilience.Options{})
			return err
		}},
		{"repair nil routing", func() error {
			_, err := resilience.Repair(ctx, nil, 2, resilience.Options{})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("invalid input accepted")
			}
			var pe *resilience.PanicError
			if errors.As(err, &pe) {
				t.Fatalf("validation should return an error, not recover a panic: %v", err)
			}
		})
	}
}

// panicHook panics when the pipeline enters its stage, modelling a bug in an
// internal package escaping as a panic.
type panicHook struct{ stage resilience.Stage }

func (h panicHook) At(s resilience.Stage) error {
	if s == h.stage {
		panic("boom: injected panic")
	}
	return nil
}

// TestPanicRecovery: a panic escaping the pipeline surfaces as a typed
// *PanicError naming the stage, never as a raw panic.
func TestPanicRecovery(t *testing.T) {
	faultinject.LeakCheck(t)
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r, _, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.HeuristicOnly,
		Hook:     panicHook{stage: resilience.StageVerify},
	})
	if r != nil {
		t.Error("routing returned alongside a recovered panic")
	}
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Stage != resilience.StageVerify {
		t.Errorf("PanicError.Stage = %q, want %q", pe.Stage, resilience.StageVerify)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError without a stack trace")
	}
}

// TestLadderEscalation: a single injected node-limit fault makes the repair
// ladder climb one rung and still succeed, recording the escalation.
func TestLadderEscalation(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageRepair, Kind: faultinject.NodeLimit, Times: 1,
	})
	r, rep, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.HeuristicOnly,
		Hook:     inj,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 2) {
		t.Fatal("routing not 2-resilient after ladder escalation")
	}
	if rep.SolveAttempts < 2 {
		t.Errorf("SolveAttempts = %d, want >= 2 (one failed + one escalated)", rep.SolveAttempts)
	}
	if !rep.Degraded() {
		t.Fatal("escalation not recorded as a degradation")
	}
	deg := rep.Degradations[0]
	if deg.Stage != resilience.StageRepair || !errors.Is(deg.Cause, bdd.ErrNodeLimit) {
		t.Errorf("degradation = %v, want node-limit at %s", deg, resilience.StageRepair)
	}
}

// TestLadderExhaustionYieldsPartial: persistent node-limit faults exhaust the
// ladder; the run returns a *Partial carrying the checkpointed heuristic
// routing, and errors.Is still classifies the outcome as a memout.
func TestLadderExhaustionYieldsPartial(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageRepair, Kind: faultinject.NodeLimit,
	})
	r, rep, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.HeuristicOnly,
		Hook:     inj,
	})
	if r != nil {
		t.Error("routing returned alongside a Partial")
	}
	if !errors.Is(err, bdd.ErrNodeLimit) {
		t.Fatalf("err = %v, want to unwrap to bdd.ErrNodeLimit", err)
	}
	p, ok := resilience.AsPartial(err)
	if !ok {
		t.Fatalf("err = %v, want *Partial", err)
	}
	assertWellFormedPartial(t, p, 2)
	if len(p.Residual) == 0 {
		t.Error("heuristic routing on Figure 1 needs repair; residual should be non-empty")
	}
	if p.Degradation.Attempts != 3 {
		t.Errorf("Partial after %d attempts, want 3 (full ladder)", p.Degradation.Attempts)
	}
	if rep.SolveAttempts != 3 {
		t.Errorf("SolveAttempts = %d, want 3", rep.SolveAttempts)
	}
}

// TestInjectedErrorPricedByGraceVerify: a hard fault at the verify stage
// leaves an unverified checkpoint; the supervisor prices it with a detached
// grace verification so the Partial still reports its residual failures.
func TestInjectedErrorPricedByGraceVerify(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageVerify, Kind: faultinject.Error,
	})
	_, _, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.HeuristicOnly,
		Hook:     inj,
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want to unwrap to the injected error", err)
	}
	p, ok := resilience.AsPartial(err)
	if !ok {
		t.Fatalf("err = %v, want *Partial", err)
	}
	if p.ResidualUnknown {
		t.Fatal("grace verification should have priced the checkpoint")
	}
	assertWellFormedPartial(t, p, 2)
}

// TestFinalVerifyFaultYieldsResilientPartial: killing the run at the final
// safety-net verification returns a Partial whose checkpoint is the already
// verified routing — zero residual failures, only certification cut short.
func TestFinalVerifyFaultYieldsResilientPartial(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageFinalVerify, Kind: faultinject.Error,
	})
	_, _, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.Combined,
		Hook:     inj,
	})
	p, ok := resilience.AsPartial(err)
	if !ok {
		t.Fatalf("err = %v, want *Partial", err)
	}
	if p.ResidualUnknown || len(p.Residual) != 0 {
		t.Errorf("residual = %d (unknown=%v), want 0 failing deliveries",
			len(p.Residual), p.ResidualUnknown)
	}
	if !verify.Resilient(p.Routing, 2) {
		t.Error("checkpointed routing should be 2-resilient")
	}
}

// TestBudgetExpiryDegradesReduce: a vanishing reduce budget under an ample
// overall timeout is absorbed — the pipeline degrades to "no reduction",
// records an ErrBudget degradation, and still delivers a resilient routing.
func TestBudgetExpiryDegradesReduce(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r, rep, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.Combined,
		Timeout:  time.Hour,
		Budgets:  resilience.Budgets{Reduce: 1e-15}, // truncates to a 0ns budget: expired from the start
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 2) {
		t.Fatal("routing not 2-resilient")
	}
	if rep.Reduced {
		t.Error("reduction reported despite its budget expiring")
	}
	if !rep.Degraded() {
		t.Fatal("budget expiry not recorded")
	}
	deg := rep.Degradations[0]
	if deg.Stage != resilience.StageReduce {
		t.Errorf("degradation stage = %q, want %q", deg.Stage, resilience.StageReduce)
	}
	if !errors.Is(deg.Cause, resilience.ErrBudget) || !errors.Is(deg.Cause, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want ErrBudget joined with DeadlineExceeded", deg.Cause)
	}
}

// TestBudgetExpiryFatalAtHeuristic: the heuristic has no fallback, so its
// budget expiring is fatal — but distinguishable from an overall timeout via
// ErrBudget.
func TestBudgetExpiryFatalAtHeuristic(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	_, _, err := resilience.Synthesize(ctx, n, d, 2, resilience.Options{
		Strategy: resilience.HeuristicOnly,
		Timeout:  time.Hour,
		Budgets:  resilience.Budgets{Heuristic: 1e-15},
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, resilience.ErrBudget) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want ErrBudget joined with DeadlineExceeded", err)
	}
	if _, ok := resilience.AsPartial(err); ok {
		t.Error("no checkpoint exists before the heuristic; err must not be a Partial")
	}
}

// TestRepairStandalonePartial: the standalone repair entry point, killed by
// node-limit exhaustion, returns a Partial carrying the *input* routing and
// its residual failing deliveries — the caller learns exactly what still
// fails.
func TestRepairStandalonePartial(t *testing.T) {
	faultinject.LeakCheck(t)
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	vrep, err := verify.Check(ctx, r, 2, verify.Options{Prune: true})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageRepair, Kind: faultinject.NodeLimit,
	})
	out, rerr := resilience.Repair(ctx, r, 2, resilience.Options{Hook: inj})
	if out != nil {
		t.Error("outcome returned alongside a Partial")
	}
	p, ok := resilience.AsPartial(rerr)
	if !ok {
		t.Fatalf("err = %v, want *Partial", rerr)
	}
	if !errors.Is(rerr, bdd.ErrNodeLimit) {
		t.Errorf("err = %v, want to unwrap to bdd.ErrNodeLimit", rerr)
	}
	if len(p.Residual) != len(vrep.Failing) {
		t.Errorf("Partial residual = %d, want the input routing's %d failing deliveries",
			len(p.Residual), len(vrep.Failing))
	}
}

// TestRepairCancellation: cancelling mid-repair surfaces context.Canceled
// through the Partial, preserving timeout-vs-memout classification for the
// benchmark harness.
func TestRepairCancellation(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageRepair, Kind: faultinject.Cancel,
	}).BindCancel(cancel)
	_, err := resilience.Repair(cctx, r, 2, resilience.Options{Hook: inj})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to unwrap to context.Canceled", err)
	}
	if _, ok := resilience.AsPartial(err); !ok {
		t.Errorf("err = %v, want *Partial (verified checkpoint existed)", err)
	}
}
