package resilience_test

import (
	"context"
	"sync/atomic"
	"testing"

	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/routing"
	"syrep/internal/verify"
	"syrep/internal/verify/poly"
)

// countingBackend wraps a real backend and counts Check calls, proving the
// supervisor routes its verification passes through Options.VerifyBackend.
type countingBackend struct {
	inner verify.Backend
	calls atomic.Int64
}

func (c *countingBackend) Name() string { return "counting/" + c.inner.Name() }

func (c *countingBackend) Check(ctx context.Context, r *routing.Routing, k int, opts verify.Options) (*verify.Report, error) {
	c.calls.Add(1)
	return c.inner.Check(ctx, r, k, opts)
}

// TestRepairUsesVerifyBackend: a repair run with a configured backend must
// send its supervisor-level verification (the initial pass that prices the
// damage) through it and still converge to a resilient routing. The repair
// engine's inner convergence loop stays on the brute-force oracle by design
// — it needs complete pruned failing lists, not just verdicts.
func TestRepairUsesVerifyBackend(t *testing.T) {
	n := papernet.Figure1()
	broken := papernet.Figure1bRouting(n)
	cb := &countingBackend{inner: verify.NewRouter(verify.RouterConfig{Fast: poly.New(), MinK: 1})}
	r, err := resilience.Repair(ctx, broken.Clone(), 2, resilience.Options{VerifyBackend: cb})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !verify.Resilient(r.Routing, 2) {
		t.Fatal("repaired routing not 2-resilient")
	}
	if got := cb.calls.Load(); got < 1 {
		t.Errorf("backend saw %d verification passes, want >= 1 (the initial pass)", got)
	}
}

// TestSynthesizeUsesVerifyBackend covers the synthesis path, including the
// final safety-net verification.
func TestSynthesizeUsesVerifyBackend(t *testing.T) {
	n := papernet.Figure1()
	cb := &countingBackend{inner: verify.BruteForce{}}
	r, _, err := resilience.Synthesize(ctx, n, 0, 2, resilience.Options{
		Strategy:      resilience.Combined,
		VerifyBackend: cb,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !verify.Resilient(r, 2) {
		t.Fatal("routing not 2-resilient")
	}
	if got := cb.calls.Load(); got < 1 {
		t.Error("backend never consulted during synthesis")
	}
}

// TestRepairWithPolyRouterMatchesDefault: the same broken routing repaired
// with and without the poly-routing backend must land on routings that are
// both resilient — backend selection must not change the outcome quality.
func TestRepairWithPolyRouterMatchesDefault(t *testing.T) {
	n := papernet.Figure1()
	broken := papernet.Figure1bRouting(n)
	plain, err := resilience.Repair(ctx, broken.Clone(), 2, resilience.Options{})
	if err != nil {
		t.Fatalf("default repair: %v", err)
	}
	routed, err := resilience.Repair(ctx, broken.Clone(), 2, resilience.Options{
		VerifyBackend: verify.NewRouter(verify.RouterConfig{Fast: poly.New(), MinK: 2}),
	})
	if err != nil {
		t.Fatalf("poly-routed repair: %v", err)
	}
	if !verify.Resilient(plain.Routing, 2) || !verify.Resilient(routed.Routing, 2) {
		t.Fatal("one of the repairs is not 2-resilient")
	}
}
