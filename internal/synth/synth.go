// Package synth provides full synthesis of perfectly k-resilient skipping
// routings from scratch: every (in-edge, node) pair is a synthesis hole and
// the BDD engine fills the entire table. This mirrors the SyPer approach of
// [26] that the SyRep paper uses as its baseline — correct but slow, because
// the BDD ranges over the parameters of every routing entry at once.
package synth

import (
	"context"
	"fmt"

	"syrep/internal/encode"
	"syrep/internal/network"
	"syrep/internal/routing"
)

// Baseline synthesises a perfectly k-resilient routing for dest from
// scratch, with priority lists of length k+1 (clamped to node degree). It
// returns encode.ErrUnrepairable when no perfectly k-resilient routing with
// such lists exists.
func Baseline(ctx context.Context, net *network.Network, dest network.NodeID, k int, opts encode.Options) (*encode.Solution, error) {
	empty, err := Holes(net, dest, k)
	if err != nil {
		return nil, err
	}
	return encode.Solve(ctx, empty, k, opts)
}

// Holes returns an all-holes routing for dest with list length k+1, the
// input shape consumed by full synthesis.
func Holes(net *network.Network, dest network.NodeID, k int) (*routing.Routing, error) {
	if k < 0 {
		return nil, fmt.Errorf("synth: negative resilience level %d", k)
	}
	r := routing.New(net, dest)
	for _, key := range r.AllKeys() {
		if err := r.PunchHole(key.In, key.At, k+1); err != nil {
			return nil, fmt.Errorf("synth: %w", err)
		}
	}
	return r, nil
}
