package synth_test

import (
	"context"
	"testing"

	"syrep/internal/encode"
	"syrep/internal/papernet"
	"syrep/internal/synth"
	"syrep/internal/verify"
)

func TestBaselineFig1(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	for k := 0; k <= 2; k++ {
		sol, err := synth.Baseline(context.Background(), n, d, k, encode.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !verify.Resilient(sol.Routing, k) {
			t.Errorf("k=%d: baseline routing not resilient", k)
		}
		if !sol.Routing.Complete() {
			t.Errorf("k=%d: baseline routing incomplete", k)
		}
	}
}

func TestHolesShape(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r, err := synth.Holes(n, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEntries() != 0 {
		t.Errorf("Holes has %d concrete entries", r.NumEntries())
	}
	if got, want := r.NumHoles(), 15; got != want {
		t.Errorf("NumHoles = %d, want %d", got, want)
	}
	for _, h := range r.Holes() {
		if h.ListLen != 3 {
			t.Errorf("hole %v has list length %d, want 3", h.Key, h.ListLen)
		}
	}
}

func TestHolesNegativeK(t *testing.T) {
	n := papernet.Figure1()
	if _, err := synth.Holes(n, papernet.Figure1Dest(n), -1); err == nil {
		t.Error("Holes(-1) succeeded")
	}
}
