// Package trace implements the network-trace semantics of Definition 3 in
// the SyRep paper: the deterministic path a packet follows under a skipping
// routing and a failure scenario, starting from a node's loop-back edge.
package trace

import (
	"fmt"
	"strings"

	"syrep/internal/network"
	"syrep/internal/routing"
)

// Outcome classifies how a trace ends.
type Outcome int

const (
	// Delivered means the packet reached the destination node.
	Delivered Outcome = iota + 1
	// Dropped means a node had an entry but every listed edge was failed,
	// or had no entry at all for the arriving packet (incomplete routing).
	Dropped
	// Looped means the packet revisited an (in-edge, node) state, i.e. the
	// routing has a forwarding loop under this failure scenario.
	Looped
	// HitHole means the trace reached a routing hole, so its behaviour is
	// undefined until synthesis fills the hole.
	HitHole
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Looped:
		return "looped"
	case HitHole:
		return "hit-hole"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result describes a trace: the edges traversed (starting with the source's
// loop-back), the routing entries that fired, and the final outcome.
type Result struct {
	Outcome Outcome
	// Edges is the trace (e_0 = lb_source, e_1, ..., e_n).
	Edges []network.EdgeID
	// Used lists the routing entries that fired, in firing order. For a
	// looped trace the entries on the loop appear once.
	Used []routing.Key
}

// Delivered is a convenience accessor.
func (r Result) DeliveredOK() bool { return r.Outcome == Delivered }

// Format renders the trace like the paper: "(lb_v3, e6, e4, e3, ...)".
func (r Result) Format(n *network.Network) string {
	parts := make([]string, len(r.Edges))
	for i, e := range r.Edges {
		parts[i] = n.EdgeName(e)
	}
	suffix := ""
	if r.Outcome == Looped {
		suffix = ", ..."
	}
	return "(" + strings.Join(parts, ", ") + suffix + ") [" + r.Outcome.String() + "]"
}

// StepStatus classifies the result of a single forwarding decision.
type StepStatus int

const (
	// StepForwarded means an out-edge was selected.
	StepForwarded StepStatus = iota + 1
	// StepDropped means the entry exists but every listed edge failed, or
	// no entry exists for the arriving packet.
	StepDropped
	// StepHole means the entry is a synthesis hole with undefined behaviour.
	StepHole
)

// Step resolves a single forwarding decision: a packet that arrived at node
// at on edge in, under failure scenario failed. It returns the out-edge
// chosen by the skipping semantics (the first non-failed entry of the
// priority list).
func Step(r *routing.Routing, failed network.EdgeSet, in network.EdgeID, at network.NodeID) (network.EdgeID, StepStatus) {
	if r.IsHole(in, at) {
		return network.NoEdge, StepHole
	}
	prio, ok := r.Get(in, at)
	if !ok {
		return network.NoEdge, StepDropped
	}
	for _, e := range prio {
		if !failed.Has(e) {
			return e, StepForwarded
		}
	}
	return network.NoEdge, StepDropped
}

// Run follows the unique trace from source under routing r and failure
// scenario failed, per Definition 3. The trace starts with the loop-back
// edge lb_source. The destination absorbs packets. Loops are detected by
// revisiting an (in-edge, node) state, which is exact because forwarding is
// deterministic.
func Run(r *routing.Routing, failed network.EdgeSet, source network.NodeID) Result {
	n := r.Network()
	dest := r.Dest()
	res := Result{}

	in := n.Loopback(source)
	at := source
	res.Edges = append(res.Edges, in)
	if at == dest {
		res.Outcome = Delivered
		return res
	}

	seen := make(map[routing.Key]bool)
	for {
		key := routing.Key{In: in, At: at}
		if seen[key] {
			res.Outcome = Looped
			return res
		}
		seen[key] = true

		out, status := Step(r, failed, in, at)
		switch status {
		case StepDropped:
			res.Outcome = Dropped
			return res
		case StepHole:
			res.Outcome = HitHole
			return res
		}
		res.Used = append(res.Used, key)
		res.Edges = append(res.Edges, out)
		at = n.Other(out, at)
		in = out
		if at == dest {
			res.Outcome = Delivered
			return res
		}
	}
}
