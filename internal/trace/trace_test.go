package trace_test

import (
	"strings"
	"testing"

	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/routing"
	"syrep/internal/trace"
)

func fixture(t *testing.T) (*network.Network, *routing.Routing) {
	t.Helper()
	n := papernet.Figure1()
	return n, papernet.Figure1bRouting(n)
}

func edgeSeq(t *testing.T, n *network.Network, res trace.Result) string {
	t.Helper()
	parts := make([]string, len(res.Edges))
	for i, e := range res.Edges {
		parts[i] = n.EdgeName(e)
	}
	return strings.Join(parts, ",")
}

func TestNoFailureDelivery(t *testing.T) {
	n, r := fixture(t)
	none := network.NewEdgeSet(n.NumRealEdges())
	for _, src := range []string{"v1", "v2", "v3", "v4"} {
		res := trace.Run(r, none, n.NodeByName(src))
		if res.Outcome != trace.Delivered {
			t.Errorf("from %s: outcome %v, want delivered (%s)", src, res.Outcome, res.Format(n))
		}
	}
}

// The paper's worked example: under F = {e1, e6} the longest trace from v3
// is (lb_v3, e3, e4, e2) and delivers.
func TestPaperTraceE1E6(t *testing.T) {
	n, r := fixture(t)
	F := network.EdgeSetOf(n.NumRealEdges(), 1, 6)
	res := trace.Run(r, F, n.NodeByName("v3"))
	if res.Outcome != trace.Delivered {
		t.Fatalf("outcome %v, want delivered (%s)", res.Outcome, res.Format(n))
	}
	if got, want := edgeSeq(t, n, res), "lb_v3,e3,e4,e2"; got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
}

// The paper's Figure 1c: under F = {e1, e2} the trace from v3 loops through
// (lb_v3, e6, e4, e3, e6, ...).
func TestPaperLoopE1E2(t *testing.T) {
	n, r := fixture(t)
	F := network.EdgeSetOf(n.NumRealEdges(), 1, 2)
	res := trace.Run(r, F, n.NodeByName("v3"))
	if res.Outcome != trace.Looped {
		t.Fatalf("outcome %v, want looped (%s)", res.Outcome, res.Format(n))
	}
	if got, want := edgeSeq(t, n, res), "lb_v3,e6,e4,e3,e6"; got != want {
		t.Errorf("trace = %s, want %s (loop closes back on e6)", got, want)
	}
	// The paper highlights that starting from v1 or v4 has a similar effect.
	for _, src := range []string{"v1", "v4"} {
		res := trace.Run(r, F, n.NodeByName(src))
		if res.Outcome != trace.Looped {
			t.Errorf("from %s: outcome %v, want looped", src, res.Outcome)
		}
	}
	// v2 still delivers via e0.
	res2 := trace.Run(r, F, n.NodeByName("v2"))
	if res2.Outcome != trace.Delivered {
		t.Errorf("from v2: outcome %v, want delivered", res2.Outcome)
	}
}

// Entries used along the three looping traces of Figure 1 are exactly the
// six suspicious entries highlighted in Figure 1b.
func TestUsedEntriesMatchSuspicious(t *testing.T) {
	n, r := fixture(t)
	F := network.EdgeSetOf(n.NumRealEdges(), 1, 2)
	used := make(map[routing.Key]bool)
	for _, src := range []string{"v1", "v3", "v4"} {
		res := trace.Run(r, F, n.NodeByName(src))
		if res.Outcome != trace.Looped {
			t.Fatalf("from %s: outcome %v", src, res.Outcome)
		}
		for _, k := range res.Used {
			used[k] = true
		}
	}
	var (
		v1 = n.NodeByName("v1")
		v3 = n.NodeByName("v3")
		v4 = n.NodeByName("v4")
	)
	want := []routing.Key{
		{In: n.Loopback(v1), At: v1},
		{In: n.Loopback(v3), At: v3},
		{In: n.Loopback(v4), At: v4},
		{In: 3, At: v3},
		{In: 4, At: v1},
		{In: 6, At: v4},
	}
	if len(used) != len(want) {
		t.Errorf("used %d entries, want %d: %v", len(used), len(want), used)
	}
	for _, k := range want {
		if !used[k] {
			t.Errorf("entry %v not marked as used", k)
		}
	}
}

func TestSourceIsDestination(t *testing.T) {
	n, r := fixture(t)
	res := trace.Run(r, network.NewEdgeSet(n.NumRealEdges()), r.Dest())
	if res.Outcome != trace.Delivered {
		t.Errorf("outcome %v, want delivered", res.Outcome)
	}
	if len(res.Edges) != 1 || len(res.Used) != 0 {
		t.Errorf("trace from destination = %v", res)
	}
}

func TestDropWhenAllEdgesFail(t *testing.T) {
	n, r := fixture(t)
	// Fail everything incident to v1 so its entry cannot forward.
	F := network.EdgeSetOf(n.NumRealEdges(), 3, 4)
	res := trace.Run(r, F, n.NodeByName("v1"))
	if res.Outcome != trace.Dropped {
		t.Errorf("outcome %v, want dropped (%s)", res.Outcome, res.Format(n))
	}
}

func TestDropOnMissingEntry(t *testing.T) {
	n, _ := fixture(t)
	d := papernet.Figure1Dest(n)
	r := routing.New(n, d) // empty routing
	res := trace.Run(r, network.NewEdgeSet(n.NumRealEdges()), n.NodeByName("v3"))
	if res.Outcome != trace.Dropped {
		t.Errorf("outcome %v, want dropped", res.Outcome)
	}
}

func TestHitHole(t *testing.T) {
	n, r := fixture(t)
	v3 := n.NodeByName("v3")
	if err := r.PunchHole(n.Loopback(v3), v3, 3); err != nil {
		t.Fatal(err)
	}
	res := trace.Run(r, network.NewEdgeSet(n.NumRealEdges()), v3)
	if res.Outcome != trace.HitHole {
		t.Errorf("outcome %v, want hit-hole", res.Outcome)
	}
	// A hole further along the path is also reported.
	r2 := papernet.Figure1bRouting(n)
	v4 := n.NodeByName("v4")
	if err := r2.PunchHole(6, v4, 3); err != nil {
		t.Fatal(err)
	}
	F := network.EdgeSetOf(n.NumRealEdges(), 1) // v3 -> e6 -> v4 hits hole
	res2 := trace.Run(r2, F, v3)
	if res2.Outcome != trace.HitHole {
		t.Errorf("outcome %v, want hit-hole (%s)", res2.Outcome, res2.Format(n))
	}
}

func TestStep(t *testing.T) {
	n, r := fixture(t)
	v3 := n.NodeByName("v3")
	none := network.NewEdgeSet(n.NumRealEdges())

	out, st := trace.Step(r, none, n.Loopback(v3), v3)
	if st != trace.StepForwarded || out != 1 {
		t.Errorf("Step(lb_v3) = (%d,%v), want (1,forwarded)", out, st)
	}
	F := network.EdgeSetOf(n.NumRealEdges(), 1)
	out, st = trace.Step(r, F, n.Loopback(v3), v3)
	if st != trace.StepForwarded || out != 6 {
		t.Errorf("Step(lb_v3|e1 failed) = (%d,%v), want (6,forwarded)", out, st)
	}
	all := network.EdgeSetOf(n.NumRealEdges(), 1, 3, 6)
	if _, st = trace.Step(r, all, n.Loopback(v3), v3); st != trace.StepDropped {
		t.Errorf("Step with all edges failed = %v, want dropped", st)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    trace.Outcome
		want string
	}{
		{trace.Delivered, "delivered"},
		{trace.Dropped, "dropped"},
		{trace.Looped, "looped"},
		{trace.HitHole, "hit-hole"},
		{trace.Outcome(0), "Outcome(0)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Outcome(%d).String = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

func TestFormat(t *testing.T) {
	n, r := fixture(t)
	F := network.EdgeSetOf(n.NumRealEdges(), 1, 2)
	res := trace.Run(r, F, n.NodeByName("v3"))
	s := res.Format(n)
	if !strings.Contains(s, "lb_v3") || !strings.Contains(s, "...") {
		t.Errorf("Format = %q", s)
	}
	if !res.DeliveredOK() == false {
		t.Errorf("DeliveredOK on looped trace")
	}
}
