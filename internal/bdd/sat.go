package bdd

import (
	"math"
	"sort"
)

// Assignment maps variables to truth values; variables absent from the map
// are "don't care".
type Assignment map[Var]bool

// Eval evaluates f under a total (or sufficient) assignment; missing
// variables default to false.
func (m *Manager) Eval(f Ref, a Assignment) bool {
	for !IsTerminal(f) {
		n := m.nodes[f]
		if a[m.levelToVar(n.level)] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// variables declared in the Manager, as a float64 (counts can exceed uint64
// for many variables).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	total := m.satCount(f, memo)
	// satCount computes the count relative to the subtree's top level; scale
	// by 2^level of the root.
	var rootLevel Var
	if IsTerminal(f) {
		rootLevel = Var(m.NumVars())
	} else {
		rootLevel = m.level(f)
	}
	return total * math.Pow(2, float64(rootLevel))
}

// satCount returns the satisfying count of the subtree assuming its top node
// is at its own level; children counts are scaled by the level gaps.
func (m *Manager) satCount(f Ref, memo map[Ref]float64) float64 {
	if f == False {
		return 0
	}
	if f == True {
		return 1
	}
	if c, ok := memo[f]; ok {
		return c
	}
	n := m.nodes[f]
	c := m.satCount(n.low, memo)*m.gap(n.level, n.low) +
		m.satCount(n.high, memo)*m.gap(n.level, n.high)
	memo[f] = c
	return c
}

// gap returns 2^(levels skipped between parent and child).
func (m *Manager) gap(parent Var, child Ref) float64 {
	childLevel := Var(m.NumVars())
	if !IsTerminal(child) {
		childLevel = m.level(child)
	}
	return math.Pow(2, float64(childLevel-parent-1))
}

// AnySat returns one satisfying assignment of f (nil when f is False). Only
// variables on the chosen path appear in the result; others are don't-care.
func (m *Manager) AnySat(f Ref) Assignment {
	if f == False {
		return nil
	}
	a := make(Assignment)
	for !IsTerminal(f) {
		n := m.nodes[f]
		if n.low != False {
			a[m.levelToVar(n.level)] = false
			f = n.low
		} else {
			a[m.levelToVar(n.level)] = true
			f = n.high
		}
	}
	return a
}

// AllSat invokes fn for every satisfying path of f with the partial
// assignment of that path (don't-care variables omitted). fn must not retain
// the map. Iteration stops early when fn returns false; AllSat reports
// whether iteration ran to completion.
func (m *Manager) AllSat(f Ref, fn func(Assignment) bool) bool {
	a := make(Assignment)
	return m.allSat(f, a, fn)
}

func (m *Manager) allSat(f Ref, a Assignment, fn func(Assignment) bool) bool {
	switch f {
	case False:
		return true
	case True:
		return fn(a)
	}
	n := m.nodes[f]
	v := m.levelToVar(n.level)
	a[v] = false
	if !m.allSat(n.low, a, fn) {
		return false
	}
	a[v] = true
	if !m.allSat(n.high, a, fn) {
		return false
	}
	delete(a, v)
	return true
}

// Support returns the variables f depends on, ascending.
func (m *Manager) Support(f Ref) []Var {
	seen := make(map[Ref]bool)
	vars := make(map[Var]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if IsTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		vars[m.levelToVar(n.level)] = true
		walk(n.low)
		walk(n.high)
	}
	walk(f)
	out := make([]Var, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeCount returns the number of distinct nodes in f's DAG, terminals
// excluded.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if IsTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		walk(m.nodes[g].low)
		walk(m.nodes[g].high)
	}
	walk(f)
	return len(seen)
}
