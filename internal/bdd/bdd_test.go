package bdd

import (
	"strings"
	"testing"
)

func newMgr(t testing.TB, nvars int) (*Manager, []Var) {
	t.Helper()
	m := New()
	vars := m.NewVars("x", nvars)
	return m, vars
}

func TestTerminals(t *testing.T) {
	m := New()
	if !IsTerminal(True) || !IsTerminal(False) {
		t.Fatal("terminals not terminal")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("Not on terminals broken")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Error("And/Or on terminals broken")
	}
	if m.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", m.NumNodes())
	}
}

func TestVarBasics(t *testing.T) {
	m, xs := newMgr(t, 3)
	x := m.VarRef(xs[0])
	if IsTerminal(x) {
		t.Fatal("var is terminal")
	}
	if m.VarOf(x) != xs[0] {
		t.Errorf("VarOf = %d, want %d", m.VarOf(x), xs[0])
	}
	if m.Low(x) != False || m.High(x) != True {
		t.Error("var cofactors wrong")
	}
	if m.VarRef(xs[0]) != x {
		t.Error("hash-consing failed: same var, different nodes")
	}
	nx := m.NVarRef(xs[0])
	if m.Not(x) != nx {
		t.Error("Not(x) != NVarRef(x)")
	}
	if m.Lit(xs[1], true) != m.VarRef(xs[1]) || m.Lit(xs[1], false) != m.NVarRef(xs[1]) {
		t.Error("Lit inconsistent")
	}
	if m.VarName(xs[2]) != "x2" {
		t.Errorf("VarName = %q", m.VarName(xs[2]))
	}
	if m.VarName(Var(99)) != "x99" {
		t.Errorf("VarName(out of range) = %q", m.VarName(Var(99)))
	}
}

func TestNamedVar(t *testing.T) {
	m := New()
	v := m.NewVar("alpha")
	if m.VarName(v) != "alpha" {
		t.Errorf("VarName = %q, want alpha", m.VarName(v))
	}
	w := m.NewVar("")
	if m.VarName(w) != "x1" {
		t.Errorf("default VarName = %q, want x1", m.VarName(w))
	}
	if m.NumVars() != 2 {
		t.Errorf("NumVars = %d", m.NumVars())
	}
}

func TestCanonicity(t *testing.T) {
	m, xs := newMgr(t, 3)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	c := m.VarRef(xs[2])
	// (a ∧ b) ∨ c built two different ways must be pointer-identical.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Not(m.And(m.Not(m.And(a, b)), m.Not(c))) // De Morgan
	if f1 != f2 {
		t.Error("equivalent formulae produced different nodes")
	}
	// Distribution: a ∧ (b ∨ c) == (a∧b) ∨ (a∧c).
	if m.And(a, m.Or(b, c)) != m.Or(m.And(a, b), m.And(a, c)) {
		t.Error("distribution law violated")
	}
}

func TestConnectives(t *testing.T) {
	m, xs := newMgr(t, 2)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	type tc struct {
		name string
		got  Ref
		want func(av, bv bool) bool
	}
	tests := []tc{
		{"and", m.And(a, b), func(av, bv bool) bool { return av && bv }},
		{"or", m.Or(a, b), func(av, bv bool) bool { return av || bv }},
		{"xor", m.Xor(a, b), func(av, bv bool) bool { return av != bv }},
		{"nand", m.Apply(OpNand, a, b), func(av, bv bool) bool { return !(av && bv) }},
		{"nor", m.Apply(OpNor, a, b), func(av, bv bool) bool { return !(av || bv) }},
		{"imp", m.Imp(a, b), func(av, bv bool) bool { return !av || bv }},
		{"biimp", m.Biimp(a, b), func(av, bv bool) bool { return av == bv }},
		{"diff", m.Diff(a, b), func(av, bv bool) bool { return av && !bv }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, av := range []bool{false, true} {
				for _, bv := range []bool{false, true} {
					assign := Assignment{xs[0]: av, xs[1]: bv}
					if got, want := m.Eval(tt.got, assign), tt.want(av, bv); got != want {
						t.Errorf("%s(%v,%v) = %v, want %v", tt.name, av, bv, got, want)
					}
				}
			}
		})
	}
}

func TestOpString(t *testing.T) {
	if OpAnd.String() != "and" || OpBiimp.String() != "biimp" {
		t.Error("Op.String broken")
	}
	if Op(99).String() != "op?" {
		t.Error("unknown Op.String broken")
	}
}

func TestIte(t *testing.T) {
	m, xs := newMgr(t, 3)
	f := m.VarRef(xs[0])
	g := m.VarRef(xs[1])
	h := m.VarRef(xs[2])
	ite := m.Ite(f, g, h)
	want := m.Or(m.And(f, g), m.And(m.Not(f), h))
	if ite != want {
		t.Error("Ite differs from its definition")
	}
	if m.Ite(True, g, h) != g || m.Ite(False, g, h) != h {
		t.Error("Ite terminal cases broken")
	}
	if m.Ite(f, True, False) != f {
		t.Error("Ite(f,1,0) != f")
	}
	if m.Ite(f, False, True) != m.Not(f) {
		t.Error("Ite(f,0,1) != ¬f")
	}
	if m.Ite(f, g, g) != g {
		t.Error("Ite(f,g,g) != g")
	}
}

func TestAndNOrN(t *testing.T) {
	m, xs := newMgr(t, 4)
	lits := make([]Ref, len(xs))
	for i, v := range xs {
		lits[i] = m.VarRef(v)
	}
	all := m.AndN(lits...)
	any := m.OrN(lits...)
	assign := Assignment{}
	for _, v := range xs {
		assign[v] = true
	}
	if !m.Eval(all, assign) || !m.Eval(any, assign) {
		t.Error("AndN/OrN under all-true")
	}
	assign[xs[2]] = false
	if m.Eval(all, assign) || !m.Eval(any, assign) {
		t.Error("AndN/OrN under one-false")
	}
	if m.AndN() != True || m.OrN() != False {
		t.Error("empty folds wrong")
	}
	if m.AndN(lits[0], False, lits[1]) != False {
		t.Error("AndN short-circuit wrong")
	}
	if m.OrN(lits[0], True) != True {
		t.Error("OrN short-circuit wrong")
	}
}

func TestExistsForAll(t *testing.T) {
	m, xs := newMgr(t, 3)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	c := m.VarRef(xs[2])
	f := m.Or(m.And(a, b), c)
	cubeB := m.NewCube(xs[1])

	// ∃b. (a∧b ∨ c) == a ∨ c
	if got, want := m.Exists(f, cubeB), m.Or(a, c); got != want {
		t.Error("Exists wrong")
	}
	// ∀b. (a∧b ∨ c) == c
	if got, want := m.ForAll(f, cubeB), c; got != want {
		t.Error("ForAll wrong")
	}
	// Quantifying a variable not in support is identity.
	g := m.And(a, c)
	if m.Exists(g, cubeB) != g || m.ForAll(g, cubeB) != g {
		t.Error("quantifying non-support var changed function")
	}
	// Empty cube is identity.
	if m.Exists(f, m.NewCube()) != f || m.ForAll(f, m.NewCube()) != f {
		t.Error("empty cube not identity")
	}
	// Quantifier duality: ∃x.f == ¬∀x.¬f
	cubeAll := m.NewCube(xs...)
	if m.Exists(f, cubeAll) != m.Not(m.ForAll(m.Not(f), cubeAll)) {
		t.Error("quantifier duality violated")
	}
}

func TestCubeDedupAndContains(t *testing.T) {
	m, xs := newMgr(t, 4)
	c := m.NewCube(xs[3], xs[1], xs[3], xs[0])
	got := c.Vars()
	want := []Var{xs[0], xs[1], xs[3]}
	if len(got) != len(want) {
		t.Fatalf("cube vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cube vars = %v, want %v", got, want)
		}
	}
	if !c.contains(xs[1]) || c.contains(xs[2]) {
		t.Error("contains broken")
	}
}

func TestAndExistsEqualsComposed(t *testing.T) {
	m, xs := newMgr(t, 4)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	c := m.VarRef(xs[2])
	d := m.VarRef(xs[3])
	f := m.Or(m.And(a, b), m.And(c, d))
	g := m.Xor(b, c)
	cube := m.NewCube(xs[1], xs[2])
	if m.AndExists(f, g, cube) != m.Exists(m.And(f, g), cube) {
		t.Error("AndExists != Exists∘And")
	}
	// Special cases.
	if m.AndExists(False, g, cube) != False || m.AndExists(f, False, cube) != False {
		t.Error("AndExists with False")
	}
	if m.AndExists(True, g, cube) != m.Exists(g, cube) {
		t.Error("AndExists with True")
	}
	if m.AndExists(f, f, cube) != m.Exists(f, cube) {
		t.Error("AndExists(f,f)")
	}
}

func TestRestrict(t *testing.T) {
	m, xs := newMgr(t, 3)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	c := m.VarRef(xs[2])
	f := m.Or(m.And(a, b), c)
	// f[a:=1] = b ∨ c
	if got, want := m.Restrict(f, map[Var]bool{xs[0]: true}), m.Or(b, c); got != want {
		t.Error("Restrict a:=1 wrong")
	}
	// f[a:=0] = c
	if got, want := m.Restrict(f, map[Var]bool{xs[0]: false}), c; got != want {
		t.Error("Restrict a:=0 wrong")
	}
	// Simultaneous restriction.
	if got, want := m.Restrict(f, map[Var]bool{xs[0]: true, xs[1]: false}), c; got != want {
		t.Error("simultaneous Restrict wrong")
	}
	// Empty assignment is identity.
	if m.Restrict(f, nil) != f {
		t.Error("empty Restrict not identity")
	}
	// Restricting a variable outside the support is identity.
	if m.Restrict(c, map[Var]bool{xs[0]: true}) != c {
		t.Error("Restrict outside support changed function")
	}
}

func TestCompose(t *testing.T) {
	m, xs := newMgr(t, 3)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	c := m.VarRef(xs[2])
	f := m.Xor(a, b)
	// f[b := a∧c] == a ⊕ (a∧c)
	got := m.Compose(f, xs[1], m.And(a, c))
	want := m.Xor(a, m.And(a, c))
	if got != want {
		t.Error("Compose wrong")
	}
	// Composing a variable below the function's support is identity.
	if m.Compose(a, xs[2], c) != a {
		t.Error("Compose outside support changed function")
	}
	// Compose with constant equals Restrict.
	if m.Compose(f, xs[1], True) != m.Restrict(f, map[Var]bool{xs[1]: true}) {
		t.Error("Compose with True != Restrict")
	}
}

func TestReplace(t *testing.T) {
	m := New()
	// Interleaved current/next variables: c0,n0,c1,n1.
	c0 := m.NewVar("c0")
	n0 := m.NewVar("n0")
	c1 := m.NewVar("c1")
	n1 := m.NewVar("n1")
	f := m.And(m.VarRef(c0), m.Not(m.VarRef(c1)))
	rep := m.NewReplacement(map[Var]Var{c0: n0, c1: n1})
	got := m.Replace(f, rep)
	want := m.And(m.VarRef(n0), m.Not(m.VarRef(n1)))
	if got != want {
		t.Error("Replace wrong")
	}
	if m.Replace(True, rep) != True {
		t.Error("Replace on terminal")
	}
}

func TestReplaceOrderViolationPanics(t *testing.T) {
	m := New()
	a := m.NewVar("a")
	b := m.NewVar("b")
	f := m.And(m.VarRef(a), m.VarRef(b))
	rep := m.NewReplacement(map[Var]Var{a: b, b: a}) // swap: not order-preserving
	defer func() {
		if recover() == nil {
			t.Error("order-violating Replace did not panic")
		}
	}()
	m.Replace(f, rep)
}

func TestSatCount(t *testing.T) {
	m, xs := newMgr(t, 3)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	c := m.VarRef(xs[2])
	tests := []struct {
		name string
		f    Ref
		want float64
	}{
		{"false", False, 0},
		{"true", True, 8},
		{"a", a, 4},
		{"c (last var)", c, 4},
		{"a and b", m.And(a, b), 2},
		{"a or b", m.Or(a, b), 6},
		{"a xor c", m.Xor(a, c), 4},
		{"a and b and c", m.AndN(a, b, c), 1},
	}
	for _, tt := range tests {
		if got := m.SatCount(tt.f); got != tt.want {
			t.Errorf("SatCount(%s) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestAnySat(t *testing.T) {
	m, xs := newMgr(t, 3)
	a := m.VarRef(xs[0])
	c := m.VarRef(xs[2])
	f := m.And(a, m.Not(c))
	assign := m.AnySat(f)
	if assign == nil {
		t.Fatal("AnySat returned nil for satisfiable function")
	}
	if !m.Eval(f, assign) {
		t.Errorf("AnySat assignment %v does not satisfy f", assign)
	}
	if m.AnySat(False) != nil {
		t.Error("AnySat(False) != nil")
	}
	if got := m.AnySat(True); len(got) != 0 {
		t.Errorf("AnySat(True) = %v, want empty", got)
	}
}

func TestAllSat(t *testing.T) {
	m, xs := newMgr(t, 2)
	a := m.VarRef(xs[0])
	b := m.VarRef(xs[1])
	f := m.Xor(a, b)
	var count int
	m.AllSat(f, func(assign Assignment) bool {
		count++
		if !m.Eval(f, assign) {
			t.Errorf("AllSat produced non-satisfying %v", assign)
		}
		return true
	})
	if count != 2 {
		t.Errorf("AllSat paths = %d, want 2", count)
	}
	// Early stop.
	count = 0
	completed := m.AllSat(m.Or(a, b), func(Assignment) bool {
		count++
		return false
	})
	if completed || count != 1 {
		t.Errorf("early stop: completed=%v count=%d", completed, count)
	}
}

func TestSupport(t *testing.T) {
	m, xs := newMgr(t, 4)
	f := m.And(m.VarRef(xs[0]), m.Xor(m.VarRef(xs[2]), m.VarRef(xs[3])))
	got := m.Support(f)
	want := []Var{xs[0], xs[2], xs[3]}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if len(m.Support(True)) != 0 {
		t.Error("Support(True) not empty")
	}
}

func TestNodeCount(t *testing.T) {
	m, xs := newMgr(t, 3)
	if m.NodeCount(True) != 0 {
		t.Error("NodeCount(True) != 0")
	}
	if m.NodeCount(m.VarRef(xs[0])) != 1 {
		t.Error("NodeCount(var) != 1")
	}
	f := m.Xor(m.Xor(m.VarRef(xs[0]), m.VarRef(xs[1])), m.VarRef(xs[2]))
	// Parity over 3 vars: levels 0 has 1 node, level 1 has 2, level 2 has 2.
	if got := m.NodeCount(f); got != 5 {
		t.Errorf("NodeCount(parity3) = %d, want 5", got)
	}
}

func TestGC(t *testing.T) {
	m, xs := newMgr(t, 8)
	keep := m.Ref(m.And(m.VarRef(xs[0]), m.VarRef(xs[1])))
	// Build garbage.
	f := True
	for _, v := range xs {
		f = m.Xor(f, m.VarRef(v))
	}
	before := m.NumNodes()
	freed := m.GC()
	if freed == 0 {
		t.Error("GC freed nothing despite garbage")
	}
	if m.NumNodes() >= before {
		t.Errorf("NumNodes %d not reduced from %d", m.NumNodes(), before)
	}
	// The protected function still evaluates correctly.
	if !m.Eval(keep, Assignment{xs[0]: true, xs[1]: true}) {
		t.Error("protected node corrupted by GC")
	}
	// Rebuilding the collected function works and is canonical.
	f2 := True
	for _, v := range xs {
		f2 = m.Xor(f2, m.VarRef(v))
	}
	if !m.Eval(f2, Assignment{}) { // parity of zero trues, xor'd with True
		t.Error("rebuilt function wrong after GC")
	}
	m.Deref(keep)
	m.GC()
	_ = f
}

func TestGCRefCountNesting(t *testing.T) {
	m, xs := newMgr(t, 2)
	f := m.And(m.VarRef(xs[0]), m.VarRef(xs[1]))
	m.Ref(f)
	m.Ref(f)
	m.Deref(f)
	m.GC()
	// Still protected once: must survive.
	if m.Eval(f, Assignment{xs[0]: true, xs[1]: true}) != true {
		t.Error("node freed despite remaining protection")
	}
	m.Deref(f)
}

func TestNodeLimit(t *testing.T) {
	m := NewWithConfig(Config{NodeLimit: 16})
	xs := m.NewVars("x", 20)
	err := m.Protect(func() error {
		f := False
		for i := 0; i+1 < len(xs); i += 2 {
			f = m.Or(f, m.And(m.VarRef(xs[i]), m.VarRef(xs[i+1])))
		}
		return nil
	})
	if err != ErrNodeLimit {
		t.Errorf("err = %v, want ErrNodeLimit", err)
	}
	if !m.Overflowed() {
		t.Error("Overflowed = false")
	}
}

func TestProtectPassesThroughErrors(t *testing.T) {
	m := New()
	sentinel := errString("boom")
	if err := m.Protect(func() error { return sentinel }); err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
	if err := m.Protect(func() error { return nil }); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
}

func TestProtectRepanicsOnForeignPanic(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("foreign panic swallowed")
		}
	}()
	_ = m.Protect(func() error { panic("other") })
}

type errString string

func (e errString) Error() string { return string(e) }

func TestWriteDOT(t *testing.T) {
	m, xs := newMgr(t, 2)
	f := m.And(m.VarRef(xs[0]), m.Not(m.VarRef(xs[1])))
	var sb strings.Builder
	if err := m.WriteDOT(&sb, f, "test"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "x0", "x1", "style=dotted", "shape=box"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestClearCache(t *testing.T) {
	m, xs := newMgr(t, 4)
	f := m.And(m.VarRef(xs[0]), m.VarRef(xs[1]))
	m.ClearCache()
	// Same result after clearing the cache.
	if m.And(m.VarRef(xs[0]), m.VarRef(xs[1])) != f {
		t.Error("result changed after ClearCache")
	}
}

func TestEvalDefaultsMissingVarsToFalse(t *testing.T) {
	m, xs := newMgr(t, 2)
	f := m.Or(m.VarRef(xs[0]), m.Not(m.VarRef(xs[1])))
	if !m.Eval(f, Assignment{}) { // x1=false makes ¬x1 true
		t.Error("Eval with empty assignment wrong")
	}
}

func TestVarOfPanicsOnTerminal(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("VarOf(True) did not panic")
		}
	}()
	m.VarOf(True)
}
