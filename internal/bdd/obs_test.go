package bdd_test

import (
	"testing"

	"syrep/internal/bdd"
	"syrep/internal/obs"
)

// buildAndChurn creates some structure, garbage-collects, and reorders, so
// every instrumented code path fires at least once. On repeat calls it
// reuses the manager's existing variables (declaring new ones after a
// reorder is not supported).
func buildAndChurn(t *testing.T, m *bdd.Manager) {
	t.Helper()
	var vars []bdd.Var
	if m.NumVars() == 0 {
		vars = m.NewVars("x", 6)
	} else {
		for v := 0; v < m.NumVars(); v++ {
			vars = append(vars, bdd.Var(v))
		}
	}
	var f bdd.Ref = bdd.True
	err := m.Protect(func() error {
		for _, v := range vars {
			f = m.And(f, m.Or(m.VarRef(v), m.NVarRef(vars[0])))
			m.Ref(f)
		}
		// Re-run an op to hit the apply cache.
		_ = m.And(m.VarRef(vars[1]), m.VarRef(vars[2]))
		_ = m.And(m.VarRef(vars[1]), m.VarRef(vars[2]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.GC()
	m.Reorder(bdd.ReorderConfig{})
}

// TestObserveTapsMirrorStats: with an observer attached, the atomic taps see
// exactly what the Manager's own (non-atomic, per-Manager) Stats see.
func TestObserveTapsMirrorStats(t *testing.T) {
	o := obs.New(nil)
	m := bdd.New()
	m.Observe(o.BDD())
	buildAndChurn(t, m)
	snap := o.Snapshot()
	if got, want := snap.Counter(obs.BDDMkCalls), m.Stats.MkCalls; got != want {
		t.Errorf("mk calls: counter %d, Stats %d", got, want)
	}
	if got, want := snap.Counter(obs.BDDCacheHits), m.Stats.CacheHits; got != want {
		t.Errorf("cache hits: counter %d, Stats %d", got, want)
	}
	if got, want := snap.Counter(obs.BDDCacheMisses), m.Stats.CacheMiss; got != want {
		t.Errorf("cache misses: counter %d, Stats %d", got, want)
	}
	if got, want := snap.Counter(obs.BDDGCRuns), m.Stats.GCs; got != want {
		t.Errorf("gc runs: counter %d, Stats %d", got, want)
	}
	if got, want := snap.Counter(obs.BDDNodesFreed), m.Stats.NodesFreed; got != want {
		t.Errorf("nodes freed: counter %d, Stats %d", got, want)
	}
	if got, want := snap.Counter(obs.BDDReorders), m.Stats.Reorders; got != want {
		t.Errorf("reorders: counter %d, Stats %d", got, want)
	}
	if snap.Counter(obs.BDDCacheHits) == 0 {
		t.Error("fixture never hit the apply cache")
	}
	if snap.Counter(obs.BDDGCRuns) == 0 || snap.Counter(obs.BDDReorders) == 0 {
		t.Error("fixture never collected or reordered")
	}
	if alloc := snap.Counter(obs.BDDNodesAllocated); alloc <= 0 {
		t.Errorf("nodes allocated = %d, want > 0", alloc)
	}
	if peak := snap.Gauge(obs.BDDPeakNodes); peak < int64(m.NumNodes()) {
		t.Errorf("peak gauge %d below live node count %d", peak, m.NumNodes())
	}
}

// TestObserveDetach: Observe(nil) detaches the taps; further work must not
// move the counters.
func TestObserveDetach(t *testing.T) {
	o := obs.New(nil)
	m := bdd.New()
	m.Observe(o.BDD())
	buildAndChurn(t, m)
	before := o.Snapshot().Counter(obs.BDDMkCalls)
	if before == 0 {
		t.Fatal("no mk calls observed before detach")
	}
	m.Observe(nil)
	buildAndChurn(t, m)
	if after := o.Snapshot().Counter(obs.BDDMkCalls); after != before {
		t.Errorf("detached manager still counted: %d -> %d", before, after)
	}
}

// TestUnobservedManagerRuns: the default Manager (nil taps everywhere) works
// and keeps its Stats, proving the nil fast path is exercised by every op.
func TestUnobservedManagerRuns(t *testing.T) {
	m := bdd.New()
	buildAndChurn(t, m)
	if m.Stats.MkCalls == 0 {
		t.Error("Stats.MkCalls = 0")
	}
}
