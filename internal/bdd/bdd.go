// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// in pure Go, following Bryant's classic algorithms. It is the symbolic
// engine behind SyRep's routing synthesis and repair (Section III-A of the
// paper), playing the role CUDD plays for the authors' prototype.
//
// A Manager owns a hash-consed node store with a fixed variable order (the
// order in which variables are created). All operations return canonical
// nodes: two Refs are equal iff they denote the same Boolean function.
//
// Memory management: callers protect BDDs they want to survive garbage
// collection with Ref/Deref; GC sweeps everything unreachable from protected
// nodes. Operations that would grow the store past the configured node limit
// abort; wrap top-level symbolic computations in Protect to receive that
// condition as an error instead of a panic.
package bdd

import (
	"errors"
	"fmt"
	"math"

	"syrep/internal/obs"
)

// Ref references a BDD node inside its Manager. The constants False and True
// are the terminal nodes. Refs are only meaningful with the Manager that
// produced them.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// Var identifies a BDD variable (also its level in the fixed order).
type Var int32

const terminalLevel = Var(math.MaxInt32)

// ErrNodeLimit is reported by Protect when a symbolic computation exceeds
// the Manager's node limit even after garbage collection.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

type node struct {
	level     Var
	low, high Ref
}

type uniqueKey struct {
	level     Var
	low, high Ref
}

// Manager owns BDD nodes and caches.
type Manager struct {
	nodes    []node
	unique   map[uniqueKey]Ref
	free     []Ref // recycled node slots
	varNames []string

	cache     map[cacheKey]Ref
	protected map[Ref]int

	nodeLimit   int // hard cap on live nodes (0 = unlimited)
	gcThreshold int // try GC when live nodes exceed this
	overflowed  bool

	// var2level / level2var implement dynamic variable reordering (see
	// reorder.go); empty slices mean the identity permutation.
	var2level []Var
	level2var []Var

	// Stats counts operations for benchmarking and tuning.
	Stats Stats

	// Observability taps (see Observe). Each is nil when no observer is
	// attached, and obs.Counter/Gauge methods are no-ops on nil receivers,
	// so the unobserved hot path costs one predictable nil check per op.
	obsMk, obsAlloc, obsCacheHit, obsCacheMiss *obs.Counter
	obsGC, obsFreed, obsReorders               *obs.Counter
	obsPeak                                    *obs.Gauge
}

// Observe attaches the obs counter bundle c to the Manager so hot-path
// events (mk calls, node allocations, apply-cache hits/misses, GC runs,
// freed nodes, reorder passes, peak live nodes) stream into it atomically.
// Passing nil detaches. The per-Manager Stats field keeps counting either
// way; Observe adds a cross-Manager, goroutine-safe aggregation channel for
// the observability layer.
func (m *Manager) Observe(c *obs.BDDCounters) {
	if c == nil {
		m.obsMk, m.obsAlloc, m.obsCacheHit, m.obsCacheMiss = nil, nil, nil, nil
		m.obsGC, m.obsFreed, m.obsReorders = nil, nil, nil
		m.obsPeak = nil
		return
	}
	m.obsMk, m.obsAlloc = c.MkCalls, c.NodesAllocated
	m.obsCacheHit, m.obsCacheMiss = c.CacheHits, c.CacheMisses
	m.obsGC, m.obsFreed, m.obsReorders = c.GCRuns, c.NodesFreed, c.Reorders
	m.obsPeak = c.PeakNodes
}

// Stats aggregates operation counters.
type Stats struct {
	MkCalls    int64
	CacheHits  int64
	CacheMiss  int64
	GCs        int64
	NodesFreed int64
	Reorders   int64
}

// Config tunes a Manager.
type Config struct {
	// NodeLimit caps live BDD nodes; 0 means unlimited. When the limit is
	// hit, the Manager garbage-collects; if still over, the current
	// operation aborts (see Protect).
	NodeLimit int
	// InitialCapacity pre-sizes the node store.
	InitialCapacity int
}

// New returns a Manager with default configuration.
func New() *Manager { return NewWithConfig(Config{}) }

// NewWithConfig returns a Manager tuned by cfg.
func NewWithConfig(cfg Config) *Manager {
	capacity := cfg.InitialCapacity
	if capacity < 1024 {
		capacity = 1024
	}
	m := &Manager{
		nodes:       make([]node, 2, capacity),
		unique:      make(map[uniqueKey]Ref, capacity),
		cache:       make(map[cacheKey]Ref, capacity),
		protected:   make(map[Ref]int),
		nodeLimit:   cfg.NodeLimit,
		gcThreshold: 1 << 16,
	}
	m.nodes[False] = node{level: terminalLevel, low: False, high: False}
	m.nodes[True] = node{level: terminalLevel, low: True, high: True}
	return m
}

// NewVar declares the next variable in the order and returns it.
func (m *Manager) NewVar(name string) Var {
	v := Var(len(m.varNames))
	if name == "" {
		name = fmt.Sprintf("x%d", v)
	}
	m.varNames = append(m.varNames, name)
	return v
}

// NewVars declares n consecutive variables with a common prefix.
func (m *Manager) NewVars(prefix string, n int) []Var {
	out := make([]Var, n)
	for i := range out {
		out[i] = m.NewVar(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// NumVars returns the number of declared variables.
func (m *Manager) NumVars() int { return len(m.varNames) }

// VarName returns the display name of v.
func (m *Manager) VarName(v Var) string {
	if int(v) < len(m.varNames) {
		return m.varNames[v]
	}
	return fmt.Sprintf("x%d", v)
}

// levelName returns the display name of the variable at a level.
func (m *Manager) levelName(l Var) string { return m.VarName(m.levelToVar(l)) }

// NumNodes returns the number of live nodes, terminals included.
func (m *Manager) NumNodes() int { return len(m.nodes) - len(m.free) }

// Level returns the variable of the node (terminalLevel for constants).
func (m *Manager) level(f Ref) Var { return m.nodes[f].level }

// IsTerminal reports whether f is True or False.
func IsTerminal(f Ref) bool { return f == True || f == False }

// VarOf returns the top variable of f; calling it on a terminal is a
// programming error.
func (m *Manager) VarOf(f Ref) Var {
	if IsTerminal(f) {
		panic("bdd: VarOf on terminal")
	}
	return m.levelToVar(m.nodes[f].level)
}

// Low returns the low (else) child of f.
func (m *Manager) Low(f Ref) Ref { return m.nodes[f].low }

// High returns the high (then) child of f.
func (m *Manager) High(f Ref) Ref { return m.nodes[f].high }

// VarRef returns the BDD for the single variable v.
func (m *Manager) VarRef(v Var) Ref { return m.mk(m.varToLevel(v), False, True) }

// NVarRef returns the BDD for the negation of variable v.
func (m *Manager) NVarRef(v Var) Ref { return m.mk(m.varToLevel(v), True, False) }

// Lit returns the literal v or ¬v depending on positive.
func (m *Manager) Lit(v Var, positive bool) Ref {
	if positive {
		return m.VarRef(v)
	}
	return m.NVarRef(v)
}

// mk returns the canonical node (level, low, high), applying the reduction
// rules (low == high elimination, hash-consing).
func (m *Manager) mk(level Var, low, high Ref) Ref {
	m.Stats.MkCalls++
	m.obsMk.Inc()
	if low == high {
		return low
	}
	key := uniqueKey{level: level, low: low, high: high}
	if r, ok := m.unique[key]; ok {
		return r
	}
	if m.nodeLimit > 0 && m.NumNodes() >= m.nodeLimit {
		m.overflowed = true
		panic(bddOverflow{})
	}
	var r Ref
	if n := len(m.free); n > 0 {
		r = m.free[n-1]
		m.free = m.free[:n-1]
		m.nodes[r] = node{level: level, low: low, high: high}
	} else {
		r = Ref(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	}
	m.unique[key] = r
	m.obsAlloc.Inc()
	m.obsPeak.SetMax(int64(m.NumNodes()))
	return r
}

// bddOverflow is the panic payload for node-limit aborts; Protect converts
// it to ErrNodeLimit.
type bddOverflow struct{}

// Protect runs fn, converting a node-limit abort into ErrNodeLimit. All
// top-level symbolic computations that may blow up should run under
// Protect.
func (m *Manager) Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bddOverflow); ok {
				err = ErrNodeLimit
				return
			}
			panic(r)
		}
	}()
	return fn()
}

// Overflowed reports whether the Manager has ever hit its node limit.
func (m *Manager) Overflowed() bool { return m.overflowed }

// IsOverflow reports whether a recovered panic value is the engine's
// internal node-limit abort. Supervisors that recover panics at a package
// boundary use it to map an overflow that escaped a Protect region back to
// ErrNodeLimit instead of treating it as a bug.
func IsOverflow(v any) bool {
	_, ok := v.(bddOverflow)
	return ok
}

// NumProtected returns the number of distinct refs currently protected from
// garbage collection. The encode engine's steady state keeps at most two
// protected refs between scenarios; fault-injection tests assert the count
// returns to that level on every exit path.
func (m *Manager) NumProtected() int { return len(m.protected) }

// Ref protects f (and its descendants) from garbage collection. Calls nest.
func (m *Manager) Ref(f Ref) Ref {
	m.protected[f]++
	return f
}

// Deref removes one protection from f.
func (m *Manager) Deref(f Ref) {
	if c := m.protected[f]; c > 1 {
		m.protected[f] = c - 1
	} else {
		delete(m.protected, f)
	}
}
