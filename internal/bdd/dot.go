package bdd

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders f as a Graphviz digraph in the style of the paper's
// Figure 2b: solid arrows for the high (1) branch, dotted arrows for the low
// (0) branch, square terminals.
func (m *Manager) WriteDOT(w io.Writer, f Ref, title string) error {
	seen := make(map[Ref]bool)
	var order []Ref
	var walk func(Ref)
	walk = func(g Ref) {
		if seen[g] {
			return
		}
		seen[g] = true
		if !IsTerminal(g) {
			n := m.nodes[g]
			walk(n.low)
			walk(n.high)
		}
		order = append(order, g)
	}
	walk(f)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	if _, err := fmt.Fprintf(w, "digraph %q {\n", title); err != nil {
		return err
	}
	for _, g := range order {
		if IsTerminal(g) {
			val := 0
			if g == True {
				val = 1
			}
			if _, err := fmt.Fprintf(w, "  n%d [shape=box,label=\"%d\"];\n", g, val); err != nil {
				return err
			}
			continue
		}
		n := m.nodes[g]
		if _, err := fmt.Fprintf(w, "  n%d [shape=circle,label=%q];\n", g, m.levelName(n.level)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [style=dotted];\n", g, n.low); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", g, n.high); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
