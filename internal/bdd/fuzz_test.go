package bdd

import "testing"

// The fuzz targets drive the manager with a byte-coded op sequence over a
// small variable set and check the ROBDD canonical-form contract after every
// step: equal Boolean functions have equal Refs, no node is redundant, and
// levels strictly increase toward the terminals. A shadow truth table
// (uint64, one bit per assignment of up to 6 variables) gives an independent
// ground truth that survives GC.

const fuzzVars = 6

// varMask returns the truth table of variable v: bit r is set when
// assignment r (bit i of r = value of variable i) makes v true.
func varMask(v int) uint64 {
	var mask uint64
	for r := 0; r < 1<<fuzzVars; r++ {
		if r>>v&1 == 1 {
			mask |= 1 << r
		}
	}
	return mask
}

const fullMask = ^uint64(0) // 2^fuzzVars = 64 assignments, one bit each

// evalRef walks the BDD for one variable assignment.
func evalRef(m *Manager, f Ref, assign int) bool {
	for !IsTerminal(f) {
		if assign>>int(m.VarOf(f))&1 == 1 {
			f = m.High(f)
		} else {
			f = m.Low(f)
		}
	}
	return f == True
}

// tableOf recomputes f's full truth table from the node structure.
func tableOf(m *Manager, f Ref) uint64 {
	var mask uint64
	for r := 0; r < 1<<fuzzVars; r++ {
		if evalRef(m, f, r) {
			mask |= 1 << r
		}
	}
	return mask
}

// checkStructure asserts the ROBDD structural invariants over every live
// node: strictly increasing levels, no redundant tests, and a unique table
// that mirrors the node store exactly (hash-consing cannot have duplicates).
func checkStructure(t *testing.T, m *Manager) {
	t.Helper()
	for key, ref := range m.unique {
		n := m.nodes[ref]
		if n.level != key.level || n.low != key.low || n.high != key.high {
			t.Fatalf("unique table entry %+v does not match node %d: %+v", key, ref, n)
		}
		if n.low == n.high {
			t.Fatalf("redundant node %d: low == high == %d", ref, n.low)
		}
		for _, child := range []Ref{n.low, n.high} {
			if !IsTerminal(child) && m.nodes[child].level <= n.level {
				t.Fatalf("node %d at level %d has child %d at level %d (order violated)",
					ref, n.level, child, m.nodes[child].level)
			}
		}
	}
}

// shadow pairs a protected Ref with its independently tracked truth table.
type shadow struct {
	ref  Ref
	mask uint64
}

// checkShadows verifies semantics and canonicity of every tracked function.
func checkShadows(t *testing.T, m *Manager, pool []shadow) {
	t.Helper()
	for i, s := range pool {
		if got := tableOf(m, s.ref); got != s.mask {
			t.Fatalf("pool[%d]: BDD computes %064b, shadow says %064b", i, got, s.mask)
		}
		if (s.mask == 0) != (s.ref == False) || (s.mask == fullMask) != (s.ref == True) {
			t.Fatalf("pool[%d]: terminal canonicity violated (mask %064b, ref %d)", i, s.mask, s.ref)
		}
		for j := 0; j < i; j++ {
			if (pool[j].mask == s.mask) != (pool[j].ref == s.ref) {
				t.Fatalf("canonicity violated: pool[%d] and pool[%d] have equal functions %v but equal refs %v",
					j, i, pool[j].mask == s.mask, pool[j].ref == s.ref)
			}
		}
	}
}

// FuzzMk interleaves node creation through the public constructors and
// binary ops, asserting after every step that the result is canonical and
// the node store stays well-formed. GC never runs here; this target isolates
// mk/hash-consing from collection.
func FuzzMk(f *testing.F) {
	f.Add([]byte{0, 1, 8, 2, 9, 16, 3})
	f.Add([]byte{5, 5, 10, 10, 20, 20, 7, 7})
	f.Add([]byte{31, 17, 23, 4, 0, 12, 29, 6, 18})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, vars := newMgr(t, fuzzVars)
		pool := []shadow{{False, 0}, {True, fullMask}}
		for _, v := range vars {
			pool = append(pool, shadow{m.VarRef(v), varMask(int(v))})
		}
		for _, b := range data {
			if len(pool) > 64 {
				break
			}
			a := pool[int(b)%len(pool)]
			c := pool[int(b/7)%len(pool)]
			var s shadow
			switch b % 5 {
			case 0:
				s = shadow{m.And(a.ref, c.ref), a.mask & c.mask}
			case 1:
				s = shadow{m.Or(a.ref, c.ref), a.mask | c.mask}
			case 2:
				s = shadow{m.Xor(a.ref, c.ref), a.mask ^ c.mask}
			case 3:
				s = shadow{m.Not(a.ref), ^a.mask & fullMask}
			case 4:
				s = shadow{m.Imp(a.ref, c.ref), (^a.mask | c.mask) & fullMask}
			}
			pool = append(pool, s)
			// Rebuilding an equal function must hand back the same Ref.
			if again := m.Or(m.And(s.ref, True), False); again != s.ref {
				t.Fatalf("hash-consing broke: rebuilt %d, got %d", s.ref, again)
			}
		}
		checkStructure(t, m)
		checkShadows(t, m, pool)
	})
}

// FuzzApplyGC interleaves Apply operations with Ref/Deref and GC, checking
// after every collection that protected functions survive with identical
// semantics and that canonicity holds across the GC boundary (freed slots
// recycled by mk must not produce duplicate or corrupted nodes).
func FuzzApplyGC(f *testing.F) {
	f.Add([]byte{0, 1, 4, 2, 4, 9, 4})
	f.Add([]byte{3, 3, 4, 5, 4, 3, 4, 6, 4})
	f.Add([]byte{12, 25, 4, 17, 4, 8, 30, 4, 2, 4, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, vars := newMgr(t, fuzzVars)
		var pool []shadow
		push := func(ref Ref, mask uint64) {
			m.Ref(ref)
			pool = append(pool, shadow{ref, mask})
		}
		push(m.VarRef(vars[0]), varMask(0))
		for _, b := range data {
			if len(pool) > 48 {
				break
			}
			a := pool[int(b)%len(pool)]
			c := pool[int(b/11)%len(pool)]
			switch b % 7 {
			case 0:
				push(m.And(a.ref, c.ref), a.mask&c.mask)
			case 1:
				push(m.Or(a.ref, c.ref), a.mask|c.mask)
			case 2:
				push(m.Xor(a.ref, c.ref), a.mask^c.mask)
			case 3:
				v := vars[int(b/3)%len(vars)]
				push(m.VarRef(v), varMask(int(v)))
			case 4:
				m.GC()
				checkStructure(t, m)
				checkShadows(t, m, pool)
			case 5:
				if len(pool) > 1 {
					last := pool[len(pool)-1]
					m.Deref(last.ref)
					pool = pool[:len(pool)-1]
				}
			case 6:
				push(m.Not(a.ref), ^a.mask&fullMask)
			}
		}
		m.GC()
		checkStructure(t, m)
		checkShadows(t, m, pool)
	})
}
