package bdd

import "sort"

// Dynamic variable reordering (Rudell's sifting), the feature CUDD provides
// the SyRep authors' prototype. Reordering changes where each variable sits
// in the order while preserving every node's Boolean function and keeping
// all Refs valid: nodes are rewritten in place during adjacent-level swaps.
//
// Reordering must only run between top-level operations (like GC): the
// recursive operations keep structural assumptions on the Go stack.
//
// The Manager maintains a var↔level indirection (var2level / level2var).
// Node structure is keyed by *level*; the external API speaks *variables*.
// With the identity permutation the two coincide, which is the state before
// the first reordering.

// Level returns the current position of variable v in the order.
func (m *Manager) LevelOf(v Var) Var {
	m.ensurePerm()
	return m.var2level[v]
}

// VarAtLevel returns the variable currently at the given level.
func (m *Manager) VarAtLevel(l Var) Var {
	m.ensurePerm()
	return m.level2var[l]
}

// ensurePerm materialises the identity permutation lazily so that Managers
// that never reorder pay nothing.
func (m *Manager) ensurePerm() {
	for len(m.var2level) < len(m.varNames) {
		v := Var(len(m.var2level))
		m.var2level = append(m.var2level, v)
		m.level2var = append(m.level2var, v)
	}
}

// varToLevel translates a variable to its level (identity when no
// reordering has happened).
func (m *Manager) varToLevel(v Var) Var {
	if len(m.var2level) == 0 {
		return v
	}
	return m.var2level[v]
}

// levelToVar translates a level to the variable sitting there.
func (m *Manager) levelToVar(l Var) Var {
	if l == terminalLevel || len(m.level2var) == 0 {
		return l
	}
	return m.level2var[l]
}

// swapLevels exchanges the variables at levels x and x+1, rewriting affected
// nodes in place. Every Ref keeps denoting the same Boolean function.
func (m *Manager) swapLevels(x Var) {
	m.ensurePerm()
	y := x + 1
	if int(y) >= len(m.level2var) {
		return
	}

	// Partition live node slots by level. Dead (freed) slots are excluded
	// via the unique table, which indexes exactly the live nodes.
	var upper, lower []Ref // level x (var u) and level y (var v) nodes
	for key, ref := range m.unique {
		switch key.level {
		case x:
			upper = append(upper, ref)
		case y:
			lower = append(lower, ref)
		}
	}
	// The phase-3 rewrites call mk() per collected slot, allocating fresh
	// nodes; iterating in map order would make those allocations — and hence
	// every Ref the caller sees afterwards — differ run to run. Sort so a
	// given DAG always reorders identically.
	sort.Slice(upper, func(i, j int) bool { return upper[i] < upper[j] })
	sort.Slice(lower, func(i, j int) bool { return lower[i] < lower[j] })
	// Remove stale keys: after the swap, "level x" means a different
	// variable, so every entry at x and y is rekeyed below.
	for _, r := range upper {
		n := m.nodes[r]
		delete(m.unique, uniqueKey{level: x, low: n.low, high: n.high})
	}
	for _, r := range lower {
		n := m.nodes[r]
		delete(m.unique, uniqueKey{level: y, low: n.low, high: n.high})
	}

	// Phase 1: upper nodes that do not branch on the lower variable simply
	// move down one level.
	var rewrites []Ref
	for _, r := range upper {
		n := m.nodes[r]
		if m.nodes[n.low].level == y || m.nodes[n.high].level == y {
			rewrites = append(rewrites, r)
			continue
		}
		m.nodes[r].level = y
		m.unique[uniqueKey{level: y, low: n.low, high: n.high}] = r
	}

	// Phase 2: lower nodes keep their structure and rise to level x *if*
	// they remain referenced from above; dead ones are reinserted anyway and
	// collected by the next GC. They must be rekeyed before the rewrites so
	// that rewrites can share them... they cannot: a risen node has the
	// lower variable on top, exactly like a rewritten upper node, and the
	// canonicity argument (distinct functions before the swap stay distinct)
	// rules out collisions.
	for _, r := range lower {
		n := m.nodes[r]
		m.nodes[r].level = x
		m.unique[uniqueKey{level: x, low: n.low, high: n.high}] = r
	}

	// Phase 3: upper nodes branching on the lower variable are rewritten:
	//   u ? (v ? f11 : f10) : (v ? f01 : f00)
	// becomes
	//   v ? (u ? f11 : f01) : (u ? f10 : f00)
	// with u now living at level y and v at level x. The cofactor reads must
	// see the ORIGINAL lower nodes; phases only relabelled them (structure
	// intact), so reading children by Ref still works. Note the risen lower
	// nodes are now at level x, so "child at level y" checks below use the
	// pre-swap level via the captured cofactors.
	for _, r := range rewrites {
		n := m.nodes[r]
		f00, f01 := m.cofactorAt(n.low, x)
		f10, f11 := m.cofactorAt(n.high, x)
		inner0 := m.mk(y, f00, f10)
		inner1 := m.mk(y, f01, f11)
		if inner0 == inner1 {
			// The function does not actually depend on the upper... it
			// cannot: canonical nodes depend on their top variable, and the
			// rewrite preserves the function. inner0 == inner1 would imply
			// independence from the lower variable v; then n.low and n.high
			// could not both have branched on v in a reduced DAG. Guard
			// anyway to fail loudly instead of corrupting the table.
			panic("bdd: swapLevels produced a redundant node")
		}
		m.nodes[r].level = x
		m.nodes[r].low = inner0
		m.nodes[r].high = inner1
		m.unique[uniqueKey{level: x, low: inner0, high: inner1}] = r
	}

	// Swap the permutation entries.
	u, v := m.level2var[x], m.level2var[y]
	m.level2var[x], m.level2var[y] = v, u
	m.var2level[u], m.var2level[v] = y, x

	// The operation cache refers to pre-swap structure.
	m.cache = make(map[cacheKey]Ref, 1024)
}

// cofactorAt returns the cofactors of f with respect to the variable that
// sat at the *lower* level before the swap — which phase 2 has just moved to
// level newLevel. Children not branching on it cofactor to themselves.
func (m *Manager) cofactorAt(f Ref, newLevel Var) (low, high Ref) {
	if !IsTerminal(f) && m.nodes[f].level == newLevel {
		return m.nodes[f].low, m.nodes[f].high
	}
	return f, f
}

// nodesPerLevel counts live nodes at each level.
func (m *Manager) nodesPerLevel() []int {
	m.ensurePerm()
	counts := make([]int, len(m.level2var))
	for key := range m.unique {
		if int(key.level) < len(counts) {
			counts[key.level]++
		}
	}
	return counts
}

// ReorderConfig tunes sifting.
type ReorderConfig struct {
	// MaxGrowth aborts a variable's sift when the table grows beyond this
	// factor of its starting size (default 1.2).
	MaxGrowth float64
	// MaxVars sifts only the MaxVars most populous variables (0 = all).
	MaxVars int
	// MinShare skips variables whose level holds less than this share of
	// the live nodes (default 0.01) — sifting them cannot pay for itself.
	MinShare float64
	// Stride measures the live size (a GC) only every Stride moves instead
	// of after each adjacent swap (default 4). Larger strides sift faster
	// but may park a variable slightly off its optimum.
	Stride int
	// MaxSwaps bounds the total adjacent swaps of one Reorder pass
	// (0 = unlimited). When exhausted, the current variable is parked and
	// the pass ends.
	MaxSwaps int
	// MinGain aborts the pass early when, after the first few variables,
	// the table has not shrunk by at least this fraction (default 0.02).
	MinGain float64
}

// Reorder runs one pass of Rudell's sifting: each variable (most populous
// level first) is moved through the whole order via adjacent swaps and
// parked at the position minimising the live node count. All Refs remain
// valid and denote the same functions. Reorder must not be called from
// within a Protect'ed computation's callbacks while recursive operations
// are on the stack.
func (m *Manager) Reorder(cfg ReorderConfig) {
	if cfg.MaxGrowth <= 1 {
		cfg.MaxGrowth = 1.2
	}
	if cfg.MinShare == 0 {
		cfg.MinShare = 0.01
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 4
	}
	if cfg.MinGain == 0 {
		cfg.MinGain = 0.02
	}
	m.ensurePerm()
	levels := len(m.level2var)
	if levels < 2 {
		return
	}

	// Sift variables in decreasing order of their level population.
	counts := m.nodesPerLevel()
	type cand struct {
		v     Var
		count int
	}
	cands := make([]cand, 0, levels)
	for l, c := range counts {
		cands = append(cands, cand{v: m.level2var[l], count: c})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].count > cands[j-1].count; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if cfg.MaxVars > 0 && len(cands) > cfg.MaxVars {
		cands = cands[:cfg.MaxVars]
	}

	m.GC()
	total := len(m.unique)
	swapBudget := cfg.MaxSwaps
	if swapBudget <= 0 {
		swapBudget = 1 << 30
	}
	for i, c := range cands {
		if float64(c.count) < cfg.MinShare*float64(total) {
			break // cands are sorted; the rest are even smaller
		}
		swapBudget -= m.siftVar(c.v, cfg.MaxGrowth, cfg.Stride, swapBudget)
		if swapBudget <= 0 {
			break
		}
		// Early abort when sifting is clearly not paying for itself.
		if i >= 3 {
			if float64(len(m.unique)) > (1-cfg.MinGain)*float64(total) {
				break
			}
		}
	}
	m.Stats.Reorders++
	m.obsReorders.Inc()
}

// siftVar moves v through the order and parks it at the best position,
// returning the number of adjacent swaps performed (bounded by maxSwaps
// before parking). Every swap leaves the nodes it rewrote behind as garbage,
// so the live size is measured by collecting every few moves; sifting
// therefore requires all externally held BDDs to be protected, exactly like
// GC.
func (m *Manager) siftVar(v Var, maxGrowth float64, stride, maxSwaps int) int {
	start := m.var2level[v]
	levels := Var(len(m.level2var))
	bestSize := m.uniqueSize()
	limit := int(float64(bestSize) * maxGrowth)
	bestPos := start
	swaps := 0

	// Sift toward the closer end first, then sweep to the other end.
	dirDownFirst := levels-1-start <= start

	sinceGC := 0
	measure := func(force bool) (int, bool) {
		sinceGC++
		if !force && sinceGC < stride {
			return 0, false
		}
		sinceGC = 0
		m.GC()
		return m.uniqueSize(), true
	}

	move := func(toLower, atEnd bool) bool {
		if swaps >= maxSwaps {
			return false
		}
		l := m.var2level[v]
		if toLower {
			if int(l)+1 >= int(levels) {
				return false
			}
			m.swapLevels(l)
		} else {
			if l == 0 {
				return false
			}
			m.swapLevels(l - 1)
		}
		swaps++
		size, measured := measure(atEnd)
		if !measured {
			return true
		}
		if size < bestSize {
			bestSize = size
			bestPos = m.var2level[v]
		}
		return size <= limit
	}

	sweep := func(toLower bool) {
		for {
			l := m.var2level[v]
			atEnd := (toLower && int(l)+2 >= int(levels)) || (!toLower && l == 1)
			if !move(toLower, atEnd) {
				return
			}
		}
	}
	if dirDownFirst {
		sweep(true)
		sweep(false)
	} else {
		sweep(false)
		sweep(true)
	}
	// Park at the best position seen.
	for m.var2level[v] < bestPos {
		m.swapLevels(m.var2level[v])
		swaps++
	}
	for m.var2level[v] > bestPos {
		m.swapLevels(m.var2level[v] - 1)
		swaps++
	}
	m.GC()
	return swaps
}

func (m *Manager) uniqueSize() int { return len(m.unique) }
