package bdd

// Garbage collection: mark from protected roots, sweep everything else.
// Refs of live nodes are stable across GC; freed slots are recycled by mk.
// The operation cache is cleared because it may reference freed nodes.
//
// GC must only run between top-level operations: intermediate results held
// on the Go stack during a recursion are not protected. The Manager never
// garbage-collects implicitly for that reason.

// GC frees every node unreachable from protected roots and returns the
// number of freed nodes.
func (m *Manager) GC() int {
	m.Stats.GCs++
	marked := make([]bool, len(m.nodes))
	marked[False] = true
	marked[True] = true
	var mark func(Ref)
	mark = func(f Ref) {
		if marked[f] {
			return
		}
		marked[f] = true
		n := m.nodes[f]
		mark(n.low)
		mark(n.high)
	}
	for f := range m.protected {
		mark(f)
	}

	// Sweep: rebuild the unique table, recycle dead slots.
	freedBefore := len(m.free)
	inFree := make([]bool, len(m.nodes))
	for _, f := range m.free {
		inFree[f] = true
	}
	for key, ref := range m.unique {
		if !marked[ref] {
			delete(m.unique, key)
			if !inFree[ref] {
				m.free = append(m.free, ref)
				inFree[ref] = true
			}
		}
	}
	m.cache = make(map[cacheKey]Ref, 1024)
	freed := len(m.free) - freedBefore
	m.Stats.NodesFreed += int64(freed)
	return freed
}

// ClearCache drops the operation cache without freeing nodes. Useful to
// bound memory between independent problem instances sharing a Manager.
func (m *Manager) ClearCache() {
	m.cache = make(map[cacheKey]Ref, 1024)
}
