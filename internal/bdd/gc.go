package bdd

import "sort"

// Garbage collection: mark from protected roots, sweep everything else.
// Refs of live nodes are stable across GC; freed slots are recycled by mk.
// The operation cache is cleared because it may reference freed nodes.
//
// GC must only run between top-level operations: intermediate results held
// on the Go stack during a recursion are not protected. The Manager never
// garbage-collects implicitly for that reason.

// GC frees every node unreachable from protected roots and returns the
// number of freed nodes.
func (m *Manager) GC() int {
	m.Stats.GCs++
	m.obsGC.Inc()
	marked := make([]bool, len(m.nodes))
	marked[False] = true
	marked[True] = true
	// Mark with an explicit stack: a chain-shaped BDD is as deep as it has
	// levels, and recursion would overflow the goroutine stack long before
	// the node table fills.
	stack := make([]Ref, 0, 128)
	push := func(f Ref) {
		if !marked[f] {
			marked[f] = true
			stack = append(stack, f)
		}
	}
	for f := range m.protected {
		push(f)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := m.nodes[f]
		push(n.low)
		push(n.high)
	}

	// Sweep: rebuild the unique table, recycle dead slots. The dead slots
	// are discovered in map order; sort them before they join the free list
	// so mk recycles Refs in the same order every run — otherwise two
	// identical synthesis runs diverge in Ref numbering after the first GC.
	freedBefore := len(m.free)
	inFree := make([]bool, len(m.nodes))
	for _, f := range m.free {
		inFree[f] = true
	}
	var swept []Ref
	for key, ref := range m.unique {
		if !marked[ref] {
			delete(m.unique, key)
			if !inFree[ref] {
				swept = append(swept, ref)
				inFree[ref] = true
			}
		}
	}
	sort.Slice(swept, func(i, j int) bool { return swept[i] < swept[j] })
	m.free = append(m.free, swept...)
	m.cache = make(map[cacheKey]Ref, 1024)
	freed := len(m.free) - freedBefore
	m.Stats.NodesFreed += int64(freed)
	m.obsFreed.Add(int64(freed))
	return freed
}

// ClearCache drops the operation cache without freeing nodes. Useful to
// bound memory between independent problem instances sharing a Manager.
func (m *Manager) ClearCache() {
	m.cache = make(map[cacheKey]Ref, 1024)
}
