package bdd_test

import (
	"sync"
	"testing"

	"syrep/internal/bdd"
	"syrep/internal/obs"
)

// opTrace runs a fixed scripted op sequence on a pristine manager and
// returns every Ref it produced, GC churn included. Two pristine managers
// must yield identical traces: Ref numbering is part of the determinism
// contract pooling relies on.
func opTrace(t *testing.T, m *bdd.Manager) []bdd.Ref {
	t.Helper()
	vars := m.NewVars("p", 8)
	var trace []bdd.Ref
	var f bdd.Ref = bdd.True
	err := m.Protect(func() error {
		for i, v := range vars {
			g := m.Or(m.VarRef(v), m.NVarRef(vars[(i+3)%len(vars)]))
			f = m.And(f, g)
			m.Ref(f)
			trace = append(trace, f, g)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// GC recycles unprotected intermediates; the free-list order feeds the
	// next allocations, so the post-GC phase checks Reset restored that too.
	m.GC()
	err = m.Protect(func() error {
		for i := range vars {
			h := m.And(m.VarRef(vars[i]), m.Not(f))
			trace = append(trace, h)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func sameTrace(t *testing.T, want, got []bdd.Ref, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: trace length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: trace[%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
}

// TestResetPristine: a Reset manager replays the exact Ref trace of a fresh
// one, even after arbitrary prior churn (ops, protections, GC, reorder).
func TestResetPristine(t *testing.T) {
	fresh := bdd.NewWithConfig(bdd.Config{NodeLimit: 1 << 16})
	want := opTrace(t, fresh)

	dirty := bdd.NewWithConfig(bdd.Config{NodeLimit: 1 << 16})
	buildAndChurn(t, dirty) // ops + GC + reorder, leaves protections behind
	dirty.Reset()
	if n := dirty.NumNodes(); n != 2 {
		t.Fatalf("after Reset: %d live nodes, want 2 terminals", n)
	}
	if dirty.NumVars() != 0 {
		t.Fatalf("after Reset: %d vars, want 0", dirty.NumVars())
	}
	if dirty.NumProtected() != 0 {
		t.Fatalf("after Reset: %d protected refs, want 0", dirty.NumProtected())
	}
	sameTrace(t, want, opTrace(t, dirty), "reset vs fresh")
}

// TestResetClearsOverflow: Reset forgets a node-limit overflow and a new
// limit takes effect, so a pooled manager recycled after a memout does not
// poison the next solve.
func TestResetClearsOverflow(t *testing.T) {
	m := bdd.NewWithConfig(bdd.Config{NodeLimit: 8})
	err := m.Protect(func() error {
		vars := m.NewVars("x", 8)
		f := bdd.True
		for _, v := range vars {
			f = m.And(f, m.VarRef(v))
		}
		return nil
	})
	if err != bdd.ErrNodeLimit {
		t.Fatalf("tiny limit: err = %v, want ErrNodeLimit", err)
	}
	if !m.Overflowed() {
		t.Fatal("manager should report the overflow")
	}
	m.Reset()
	if m.Overflowed() {
		t.Fatal("Reset must clear the overflow flag")
	}
	m.SetNodeLimit(1 << 16)
	fresh := bdd.NewWithConfig(bdd.Config{NodeLimit: 1 << 16})
	sameTrace(t, opTrace(t, fresh), opTrace(t, m), "reset-after-overflow vs fresh")
}

// TestPoolReuseDeterminism: a recycled pool manager replays the trace of a
// fresh one, and the pool actually recycles (Reuses advances).
func TestPoolReuseDeterminism(t *testing.T) {
	pool := bdd.NewManagerPool(bdd.Config{NodeLimit: 1 << 16})
	m1 := pool.Get()
	want := opTrace(t, m1)
	pool.Put(m1)

	m2 := pool.Get()
	sameTrace(t, want, opTrace(t, m2), "pooled vs first use")
	pool.Put(m2)

	st := pool.Stats()
	if st.Gets != 2 || st.Reuses != 1 || st.Idle != 1 {
		t.Fatalf("pool stats = %+v, want Gets=2 Reuses=1 Idle=1", st)
	}
}

// TestPoolConcurrentObserved hammers Get/op/Put from many goroutines with
// one shared obs counter bundle attached to every checked-out manager — the
// batch fan-out shape. Run under -race this is the pooled-manager data-race
// sweep for Observe and the obs taps; each goroutine also checks its traces
// stay deterministic while the pool shuffles managers between goroutines.
func TestPoolConcurrentObserved(t *testing.T) {
	pool := bdd.NewManagerPool(bdd.Config{NodeLimit: 1 << 16})
	o := obs.New(nil)
	fresh := bdd.NewWithConfig(bdd.Config{NodeLimit: 1 << 16})
	want := opTrace(t, fresh)

	const workers, rounds = 8, 6
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m := pool.Get()
				m.Observe(o.BDD())
				got := opTraceQuiet(m)
				if got == nil {
					errs <- "opTrace failed"
				} else {
					for i := range want {
						if want[i] != got[i] {
							errs <- "pooled trace diverged from fresh"
							break
						}
					}
				}
				pool.Put(m)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if snap := o.Snapshot(); len(snap.Counters) == 0 {
		t.Fatal("shared observer saw no BDD counter traffic")
	}
}

// opTraceQuiet is opTrace without the testing.T plumbing, for use inside
// goroutines (t.Fatal must not be called off the test goroutine).
func opTraceQuiet(m *bdd.Manager) []bdd.Ref {
	vars := m.NewVars("p", 8)
	var trace []bdd.Ref
	var f bdd.Ref = bdd.True
	if err := m.Protect(func() error {
		for i, v := range vars {
			g := m.Or(m.VarRef(v), m.NVarRef(vars[(i+3)%len(vars)]))
			f = m.And(f, g)
			m.Ref(f)
			trace = append(trace, f, g)
		}
		return nil
	}); err != nil {
		return nil
	}
	m.GC()
	if err := m.Protect(func() error {
		for i := range vars {
			h := m.And(m.VarRef(vars[i]), m.Not(f))
			trace = append(trace, h)
		}
		return nil
	}); err != nil {
		return nil
	}
	return trace
}
