package bdd

import "testing"

// TestGCDeepChain guards the explicit-stack mark phase: a conjunction of n
// variables is a chain n nodes deep, and a recursive mark would overflow the
// goroutine stack long before realistic table sizes. Built top-down so each
// And touches only the chain head (O(1) per step).
func TestGCDeepChain(t *testing.T) {
	const depth = 200000
	m, vars := newMgr(t, depth)

	acc := True
	for i := depth - 1; i >= 0; i-- {
		acc = m.And(m.VarRef(vars[i]), acc)
	}
	m.Ref(acc)

	// The intermediate single-variable nodes are garbage now.
	before := m.NumNodes()
	freed := m.GC()
	if freed == 0 {
		t.Fatalf("GC freed nothing; %d nodes live before", before)
	}

	// The protected chain must have survived intact.
	f := acc
	for i := 0; i < depth; i++ {
		if IsTerminal(f) {
			t.Fatalf("chain truncated at level %d", i)
		}
		if got := m.VarOf(f); got != vars[i] {
			t.Fatalf("chain node %d has var %d, want %d", i, got, vars[i])
		}
		if m.Low(f) != False {
			t.Fatalf("chain node %d: low branch corrupted", i)
		}
		f = m.High(f)
	}
	if f != True {
		t.Fatalf("chain does not end in True")
	}

	// A second GC with nothing newly dead must be a no-op.
	if freed := m.GC(); freed != 0 {
		t.Fatalf("idle GC freed %d nodes", freed)
	}
}

// TestGCFreeOrderDeterministic pins the sorted free list: after identical
// build/GC sequences, two managers must recycle slots in the same order and
// therefore assign identical Refs to identical subsequent operations.
func TestGCFreeOrderDeterministic(t *testing.T) {
	build := func() []Ref {
		m, vars := newMgr(t, 16)
		// Create garbage spread across the unique table.
		for i := 0; i < 15; i++ {
			m.Or(m.VarRef(vars[i]), m.VarRef(vars[i+1]))
		}
		keep := m.Ref(m.And(m.VarRef(vars[0]), m.VarRef(vars[8])))
		m.GC()
		// Recycled slots are handed out by mk in free-list order.
		out := []Ref{keep}
		for i := 0; i < 10; i++ {
			out = append(out, m.Xor(m.VarRef(vars[i]), m.VarRef(vars[15-i])))
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at op %d: Ref %d vs %d", i, a[i], b[i])
		}
	}
}
