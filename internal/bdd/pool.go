package bdd

import "sync"

// Manager pooling. A batch run solves one BDD encoding per destination, and
// every solve used to pay for a fresh Manager: multi-megabyte node arenas and
// hash maps allocated, grown, and thrown away N times per topology. The
// encodings themselves cannot be shared — each destination declares its own
// hole variables — but the *arenas* can: Reset returns a Manager to the
// pristine state of a fresh NewWithConfig while keeping the node slice's
// capacity and recycling the Manager allocation, so a pooled solve starts
// with a warm arena instead of a cold heap.
//
// Determinism is the contract that makes pooling safe: a Reset Manager must
// behave byte-for-byte like a fresh one (same Refs, same tables, same
// overflow points), because the determinism suite pins synthesized tables
// across runs and the cache replays them across processes. Reset therefore
// restores every piece of semantic state — nodes, unique table, operation
// cache, protections, free list, variable order — and only the allocation
// capacity survives. The cumulative Stats counters also survive: they are
// bookkeeping, not semantics.

// Reset restores the Manager to the state of a fresh NewWithConfig with the
// same NodeLimit, keeping allocated capacity where possible. Observability
// taps are detached (re-attach with Observe); Stats keeps accumulating
// across uses.
func (m *Manager) Reset() {
	m.nodes = m.nodes[:2]
	m.nodes[False] = node{level: terminalLevel, low: False, high: False}
	m.nodes[True] = node{level: terminalLevel, low: True, high: True}
	// Maps are rebuilt rather than range-deleted: after a large solve a
	// cleared map would pin its grown bucket array forever, defeating the
	// memory bound the node limit exists for.
	m.unique = make(map[uniqueKey]Ref, 1024)
	m.cache = make(map[cacheKey]Ref, 1024)
	m.protected = make(map[Ref]int)
	m.free = m.free[:0]
	m.varNames = m.varNames[:0]
	m.var2level = m.var2level[:0]
	m.level2var = m.level2var[:0]
	m.overflowed = false
	m.gcThreshold = 1 << 16
	m.Observe(nil)
}

// SetNodeLimit adjusts the live-node cap (0 = unlimited). Batch runs reuse
// pooled Managers across solves whose escalation ladders want different
// limits, so the cap must be settable after construction.
func (m *Manager) SetNodeLimit(n int) { m.nodeLimit = n }

// ManagerPool recycles Managers across solves. Get returns a pristine
// Manager — freshly built or Reset — and Put resets and shelves one for
// reuse. Safe for concurrent use; the pool imposes no bound, so it holds at
// most as many Managers as were ever simultaneously checked out (one per
// batch worker in the intended use).
type ManagerPool struct {
	cfg Config

	mu     sync.Mutex
	free   []*Manager
	gets   int64
	reuses int64
}

// NewManagerPool returns a pool producing Managers configured by cfg. The
// cfg.NodeLimit is only the default: callers may re-tune a checked-out
// Manager with SetNodeLimit.
func NewManagerPool(cfg Config) *ManagerPool {
	return &ManagerPool{cfg: cfg}
}

// Get checks a pristine Manager out of the pool, building one when none is
// shelved. The caller owns it exclusively until Put.
func (p *ManagerPool) Get() *Manager {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		p.mu.Unlock()
		m.SetNodeLimit(p.cfg.NodeLimit)
		return m
	}
	p.mu.Unlock()
	return NewWithConfig(p.cfg)
}

// Put resets m and shelves it for reuse. m must not be used afterwards.
func (p *ManagerPool) Put(m *Manager) {
	if m == nil {
		return
	}
	m.Reset()
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// PoolStats reports the pool's reuse effectiveness.
type PoolStats struct {
	// Gets counts checkouts; Reuses counts those served by a recycled
	// Manager rather than a fresh allocation.
	Gets, Reuses int64
	// Idle is the number of Managers currently shelved.
	Idle int
}

// Stats returns a point-in-time summary.
func (p *ManagerPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Gets: p.gets, Reuses: p.reuses, Idle: len(p.free)}
}
