package bdd

import (
	"math/rand"
	"testing"
)

// quick_test.go cross-checks the BDD engine against a brute-force
// truth-table oracle on randomly generated formulae. This is the canonical
// way to gain confidence in a hash-consed BDD implementation: canonicity
// bugs show up as semantic divergence or pointer inequality between
// equivalent formulae.

const quickVars = 6

// formula is a random propositional formula over quickVars variables.
type formula struct {
	op       int // 0..7: Apply ops; 8: not; 9: var; 10: const
	variable Var
	constant bool
	l, r     *formula
}

func randFormula(rng *rand.Rand, depth int) *formula {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(6) == 0 {
			return &formula{op: 10, constant: rng.Intn(2) == 0}
		}
		return &formula{op: 9, variable: Var(rng.Intn(quickVars))}
	}
	if rng.Intn(5) == 0 {
		return &formula{op: 8, l: randFormula(rng, depth-1)}
	}
	return &formula{
		op: rng.Intn(8),
		l:  randFormula(rng, depth-1),
		r:  randFormula(rng, depth-1),
	}
}

func (f *formula) eval(assign uint) bool {
	bit := func(v Var) bool { return assign&(1<<uint(v)) != 0 }
	switch f.op {
	case 8:
		return !f.l.eval(assign)
	case 9:
		return bit(f.variable)
	case 10:
		return f.constant
	}
	a, b := f.l.eval(assign), f.r.eval(assign)
	switch Op(f.op + 1) {
	case OpAnd:
		return a && b
	case OpOr:
		return a || b
	case OpXor:
		return a != b
	case OpNand:
		return !(a && b)
	case OpNor:
		return !(a || b)
	case OpImp:
		return !a || b
	case OpBiimp:
		return a == b
	case OpDiff:
		return a && !b
	}
	panic("unreachable")
}

func (f *formula) build(m *Manager) Ref {
	switch f.op {
	case 8:
		return m.Not(f.l.build(m))
	case 9:
		return m.VarRef(f.variable)
	case 10:
		if f.constant {
			return True
		}
		return False
	}
	return m.Apply(Op(f.op+1), f.l.build(m), f.r.build(m))
}

func assignmentFromBits(bits uint) Assignment {
	a := make(Assignment, quickVars)
	for v := Var(0); v < quickVars; v++ {
		a[v] = bits&(1<<uint(v)) != 0
	}
	return a
}

func TestQuickSemanticsAgainstTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := New()
	m.NewVars("x", quickVars)
	for round := 0; round < 300; round++ {
		f := randFormula(rng, 5)
		ref := f.build(m)
		for bits := uint(0); bits < 1<<quickVars; bits++ {
			if m.Eval(ref, assignmentFromBits(bits)) != f.eval(bits) {
				t.Fatalf("round %d: BDD disagrees with truth table at %06b", round, bits)
			}
		}
	}
}

func TestQuickCanonicityEquivalentFormulae(t *testing.T) {
	// Two random formulae with the same truth table must map to the same Ref.
	rng := rand.New(rand.NewSource(7))
	m := New()
	m.NewVars("x", quickVars)
	byTable := make(map[uint64]Ref)
	for round := 0; round < 500; round++ {
		f := randFormula(rng, 4)
		ref := f.build(m)
		var table uint64
		for bits := uint(0); bits < 1<<quickVars; bits++ {
			if f.eval(bits) {
				table |= 1 << bits
			}
		}
		if prev, ok := byTable[table]; ok {
			if prev != ref {
				t.Fatalf("round %d: equivalent formulae got different Refs", round)
			}
		} else {
			byTable[table] = ref
		}
	}
}

func TestQuickSatCountAgainstTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New()
	m.NewVars("x", quickVars)
	for round := 0; round < 200; round++ {
		f := randFormula(rng, 4)
		ref := f.build(m)
		want := 0
		for bits := uint(0); bits < 1<<quickVars; bits++ {
			if f.eval(bits) {
				want++
			}
		}
		if got := m.SatCount(ref); got != float64(want) {
			t.Fatalf("round %d: SatCount = %v, want %d", round, got, want)
		}
	}
}

func TestQuickQuantifiersAgainstExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New()
	xs := m.NewVars("x", quickVars)
	for round := 0; round < 150; round++ {
		f := randFormula(rng, 4).build(m)
		v := xs[rng.Intn(quickVars)]
		cube := m.NewCube(v)
		f0 := m.Restrict(f, map[Var]bool{v: false})
		f1 := m.Restrict(f, map[Var]bool{v: true})
		if m.Exists(f, cube) != m.Or(f0, f1) {
			t.Fatalf("round %d: ∃ differs from Shannon expansion", round)
		}
		if m.ForAll(f, cube) != m.And(f0, f1) {
			t.Fatalf("round %d: ∀ differs from Shannon expansion", round)
		}
	}
}

func TestQuickAllSatExactCover(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := New()
	m.NewVars("x", quickVars)
	for round := 0; round < 100; round++ {
		f := randFormula(rng, 4)
		ref := f.build(m)
		// Expand AllSat paths to full assignments and compare sets.
		got := make(map[uint]bool)
		m.AllSat(ref, func(a Assignment) bool {
			// Enumerate don't-cares.
			var free []Var
			var base uint
			for v := Var(0); v < quickVars; v++ {
				if val, ok := a[v]; ok {
					if val {
						base |= 1 << uint(v)
					}
				} else {
					free = append(free, v)
				}
			}
			for comb := uint(0); comb < 1<<len(free); comb++ {
				bits := base
				for i, v := range free {
					if comb&(1<<uint(i)) != 0 {
						bits |= 1 << uint(v)
					}
				}
				if got[bits] {
					t.Fatalf("round %d: assignment %06b covered twice", round, bits)
				}
				got[bits] = true
			}
			return true
		})
		for bits := uint(0); bits < 1<<quickVars; bits++ {
			if got[bits] != f.eval(bits) {
				t.Fatalf("round %d: AllSat cover mismatch at %06b", round, bits)
			}
		}
	}
}

func TestQuickGCPreservesProtected(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := New()
	m.NewVars("x", quickVars)
	type kept struct {
		f     *formula
		ref   Ref
		table uint64
	}
	var keep []kept
	for round := 0; round < 50; round++ {
		f := randFormula(rng, 5)
		ref := f.build(m)
		if round%5 == 0 {
			m.Ref(ref)
			var table uint64
			for bits := uint(0); bits < 1<<quickVars; bits++ {
				if f.eval(bits) {
					table |= 1 << bits
				}
			}
			keep = append(keep, kept{f: f, ref: ref, table: table})
		}
		if round%10 == 9 {
			m.GC()
			for _, k := range keep {
				for bits := uint(0); bits < 1<<quickVars; bits++ {
					want := k.table&(1<<bits) != 0
					if m.Eval(k.ref, assignmentFromBits(bits)) != want {
						t.Fatalf("round %d: protected BDD corrupted by GC", round)
					}
				}
				// Rebuilding must be canonical with the protected copy.
				if k.f.build(m) != k.ref {
					t.Fatalf("round %d: canonicity broken after GC", round)
				}
			}
		}
	}
}
