package bdd

import "fmt"

// Boolean operations with memoisation. All binary connectives are routed
// through a single Apply with per-operator terminal rules; ITE, negation,
// quantification, substitution and restriction have dedicated recursions.

// Op selects a binary Boolean connective for Apply.
type Op uint8

// Binary connectives.
const (
	OpAnd Op = iota + 1
	OpOr
	OpXor
	OpNand
	OpNor
	OpImp   // a implies b
	OpBiimp // a iff b
	OpDiff  // a and not b
)

// opNames indexes Op for diagnostics.
var opNames = [...]string{
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNand: "nand",
	OpNor: "nor", OpImp: "imp", OpBiimp: "biimp", OpDiff: "diff",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// cacheKey memoises unary, binary and ternary operations. kind disambiguates
// the operation family; c doubles as the extra operand (ITE third argument,
// quantification cube, substitution id, ...).
type cacheKey struct {
	kind    uint8
	op      Op
	a, b, c Ref
}

const (
	kindApply = iota + 1
	kindNot
	kindIte
	kindExists
	kindForAll
	kindAndExists
	kindCompose
	kindReplace
	kindRestrict
	kindSatCount
)

func (m *Manager) cacheGet(k cacheKey) (Ref, bool) {
	r, ok := m.cache[k]
	if ok {
		m.Stats.CacheHits++
		m.obsCacheHit.Inc()
	} else {
		m.Stats.CacheMiss++
		m.obsCacheMiss.Inc()
	}
	return r, ok
}

func (m *Manager) cachePut(k cacheKey, r Ref) { m.cache[k] = r }

// And returns a ∧ b.
func (m *Manager) And(a, b Ref) Ref { return m.Apply(OpAnd, a, b) }

// Or returns a ∨ b.
func (m *Manager) Or(a, b Ref) Ref { return m.Apply(OpOr, a, b) }

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b Ref) Ref { return m.Apply(OpXor, a, b) }

// Imp returns a → b.
func (m *Manager) Imp(a, b Ref) Ref { return m.Apply(OpImp, a, b) }

// Biimp returns a ↔ b.
func (m *Manager) Biimp(a, b Ref) Ref { return m.Apply(OpBiimp, a, b) }

// Diff returns a ∧ ¬b.
func (m *Manager) Diff(a, b Ref) Ref { return m.Apply(OpDiff, a, b) }

// AndN folds And over its arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	acc := True
	for _, f := range fs {
		acc = m.And(acc, f)
		if acc == False {
			return False
		}
	}
	return acc
}

// OrN folds Or over its arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	acc := False
	for _, f := range fs {
		acc = m.Or(acc, f)
		if acc == True {
			return True
		}
	}
	return acc
}

// applyTerminal resolves op when either operand is constant or operands are
// equal. ok=false means no shortcut applies.
func applyTerminal(op Op, a, b Ref) (Ref, bool) {
	switch op {
	case OpAnd:
		switch {
		case a == False || b == False:
			return False, true
		case a == True:
			return b, true
		case b == True:
			return a, true
		case a == b:
			return a, true
		}
	case OpOr:
		switch {
		case a == True || b == True:
			return True, true
		case a == False:
			return b, true
		case b == False:
			return a, true
		case a == b:
			return a, true
		}
	case OpXor:
		switch {
		case a == b:
			return False, true
		case a == False:
			return b, true
		case b == False:
			return a, true
		}
	case OpNand:
		if a == False || b == False {
			return True, true
		}
	case OpNor:
		if a == True || b == True {
			return False, true
		}
	case OpImp:
		switch {
		case a == False || b == True:
			return True, true
		case a == True:
			return b, true
		case a == b:
			return True, true
		}
	case OpBiimp:
		switch {
		case a == b:
			return True, true
		case a == True:
			return b, true
		case b == True:
			return a, true
		}
	case OpDiff:
		switch {
		case a == False || b == True:
			return False, true
		case b == False:
			return a, true
		case a == b:
			return False, true
		}
	}
	if IsTerminal(a) && IsTerminal(b) {
		av, bv := a == True, b == True
		var r bool
		switch op {
		case OpAnd:
			r = av && bv
		case OpOr:
			r = av || bv
		case OpXor:
			r = av != bv
		case OpNand:
			r = !(av && bv)
		case OpNor:
			r = !(av || bv)
		case OpImp:
			r = !av || bv
		case OpBiimp:
			r = av == bv
		case OpDiff:
			r = av && !bv
		}
		if r {
			return True, true
		}
		return False, true
	}
	return False, false
}

// Apply computes op(a, b) by Shannon expansion with memoisation.
func (m *Manager) Apply(op Op, a, b Ref) Ref {
	if r, ok := applyTerminal(op, a, b); ok {
		return r
	}
	// Normalise commutative operators for better cache hit rates.
	switch op {
	case OpAnd, OpOr, OpXor, OpNand, OpNor, OpBiimp:
		if a > b {
			a, b = b, a
		}
	}
	key := cacheKey{kind: kindApply, op: op, a: a, b: b}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	la, lb := m.level(a), m.level(b)
	top := la
	if lb < top {
		top = lb
	}
	a0, a1 := a, a
	if la == top {
		a0, a1 = m.nodes[a].low, m.nodes[a].high
	}
	b0, b1 := b, b
	if lb == top {
		b0, b1 = m.nodes[b].low, m.nodes[b].high
	}
	low := m.Apply(op, a0, b0)
	high := m.Apply(op, a1, b1)
	r := m.mk(top, low, high)
	m.cachePut(key, r)
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	key := cacheKey{kind: kindNot, a: f}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	n := m.nodes[f]
	r := m.mk(n.level, m.Not(n.low), m.Not(n.high))
	m.cachePut(key, r)
	return r
}

// Ite returns if f then g else h.
func (m *Manager) Ite(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	key := cacheKey{kind: kindIte, a: f, b: g, c: h}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	cof := func(x Ref) (Ref, Ref) {
		if m.level(x) == top {
			return m.nodes[x].low, m.nodes[x].high
		}
		return x, x
	}
	f0, f1 := cof(f)
	g0, g1 := cof(g)
	h0, h1 := cof(h)
	r := m.mk(top, m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.cachePut(key, r)
	return r
}

// Cube represents a set of variables for quantification, as a sorted list.
type Cube struct {
	vars []Var
}

// NewCube returns a Cube over the given variables (deduplicated, sorted by
// current level). A Cube captures the variables' *levels*: reordering the
// Manager invalidates previously built cubes — rebuild them after Reorder.
func (m *Manager) NewCube(vars ...Var) Cube {
	sorted := make([]Var, 0, len(vars))
	for _, v := range vars {
		sorted = append(sorted, m.varToLevel(v))
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:0]
	var prev Var = -1
	for _, v := range sorted {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return Cube{vars: out}
}

// Vars returns the cube's variables in ascending order.
func (c Cube) Vars() []Var { return c.vars }

// cubeRef builds the product BDD of the cube, used as cache identity.
func (m *Manager) cubeRef(c Cube) Ref {
	r := True
	for i := len(c.vars) - 1; i >= 0; i-- {
		r = m.mk(c.vars[i], False, r)
	}
	return r
}

// contains reports whether the cube contains v (binary search).
func (c Cube) contains(v Var) bool {
	lo, hi := 0, len(c.vars)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case c.vars[mid] == v:
			return true
		case c.vars[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// Exists returns ∃vars. f.
func (m *Manager) Exists(f Ref, cube Cube) Ref {
	if len(cube.vars) == 0 {
		return f
	}
	return m.quant(f, cube, m.cubeRef(cube), OpOr, kindExists)
}

// ForAll returns ∀vars. f.
func (m *Manager) ForAll(f Ref, cube Cube) Ref {
	if len(cube.vars) == 0 {
		return f
	}
	return m.quant(f, cube, m.cubeRef(cube), OpAnd, kindForAll)
}

func (m *Manager) quant(f Ref, cube Cube, cubeID Ref, combine Op, kind uint8) Ref {
	if IsTerminal(f) {
		return f
	}
	lv := m.level(f)
	if lv > cube.vars[len(cube.vars)-1] {
		return f // below all quantified variables
	}
	key := cacheKey{kind: kind, a: f, b: cubeID}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	n := m.nodes[f]
	low := m.quant(n.low, cube, cubeID, combine, kind)
	var r Ref
	if cube.contains(lv) {
		// Short-circuit: ∨ with True / ∧ with False.
		if (combine == OpOr && low == True) || (combine == OpAnd && low == False) {
			r = low
		} else {
			high := m.quant(n.high, cube, cubeID, combine, kind)
			r = m.Apply(combine, low, high)
		}
	} else {
		high := m.quant(n.high, cube, cubeID, combine, kind)
		r = m.mk(lv, low, high)
	}
	m.cachePut(key, r)
	return r
}

// AndExists computes ∃cube. (f ∧ g) in one pass (the relational product),
// avoiding the intermediate conjunction.
func (m *Manager) AndExists(f, g Ref, cube Cube) Ref {
	return m.andExists(f, g, cube, m.cubeRef(cube))
}

func (m *Manager) andExists(f, g Ref, cube Cube, cubeID Ref) Ref {
	switch {
	case f == False || g == False:
		return False
	case f == True && g == True:
		return True
	case f == True:
		return m.Exists(g, cube)
	case g == True:
		return m.Exists(f, cube)
	case f == g:
		return m.Exists(f, cube)
	}
	if f > g {
		f, g = g, f
	}
	key := cacheKey{kind: kindAndExists, a: f, b: g, c: cubeID}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	lf, lg := m.level(f), m.level(g)
	top := lf
	if lg < top {
		top = lg
	}
	f0, f1 := f, f
	if lf == top {
		f0, f1 = m.nodes[f].low, m.nodes[f].high
	}
	g0, g1 := g, g
	if lg == top {
		g0, g1 = m.nodes[g].low, m.nodes[g].high
	}
	var r Ref
	if cube.contains(top) {
		low := m.andExists(f0, g0, cube, cubeID)
		if low == True {
			r = True
		} else {
			high := m.andExists(f1, g1, cube, cubeID)
			r = m.Or(low, high)
		}
	} else {
		low := m.andExists(f0, g0, cube, cubeID)
		high := m.andExists(f1, g1, cube, cubeID)
		r = m.mk(top, low, high)
	}
	m.cachePut(key, r)
	return r
}

// Restrict fixes variables to constants: assignment maps Var to value. It is
// the simultaneous cofactor of f.
func (m *Manager) Restrict(f Ref, assignment map[Var]bool) Ref {
	if len(assignment) == 0 {
		return f
	}
	// Re-key the assignment by level and build a literal cube as cache
	// identity.
	byLevel := make(map[Var]bool, len(assignment))
	vars := make([]Var, 0, len(assignment))
	for v, val := range assignment {
		byLevel[m.varToLevel(v)] = val
		//syreplint:ignore maporder NewCube below sorts and dedups its arguments
		vars = append(vars, v)
	}
	cube := m.NewCube(vars...)
	id := True
	for i := len(cube.vars) - 1; i >= 0; i-- {
		l := cube.vars[i]
		if byLevel[l] {
			id = m.mk(l, False, id)
		} else {
			id = m.mk(l, id, False)
		}
	}
	return m.restrict(f, byLevel, id, cube)
}

func (m *Manager) restrict(f Ref, assignment map[Var]bool, id Ref, cube Cube) Ref {
	if IsTerminal(f) {
		return f
	}
	lv := m.level(f)
	if lv > cube.vars[len(cube.vars)-1] {
		return f
	}
	key := cacheKey{kind: kindRestrict, a: f, b: id}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	n := m.nodes[f]
	var r Ref
	if val, ok := assignment[lv]; ok {
		child := n.low
		if val {
			child = n.high
		}
		r = m.restrict(child, assignment, id, cube)
	} else {
		r = m.mk(lv, m.restrict(n.low, assignment, id, cube),
			m.restrict(n.high, assignment, id, cube))
	}
	m.cachePut(key, r)
	return r
}

// Compose substitutes function g for variable v in f: f[v := g].
func (m *Manager) Compose(f Ref, v Var, g Ref) Ref {
	return m.compose(f, m.varToLevel(v), g)
}

func (m *Manager) compose(f Ref, lv Var, g Ref) Ref {
	if IsTerminal(f) || m.level(f) > lv {
		return f
	}
	key := cacheKey{kind: kindCompose, a: f, b: g, c: Ref(lv)}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	n := m.nodes[f]
	var r Ref
	if n.level == lv {
		r = m.Ite(g, n.high, n.low)
	} else {
		low := m.compose(n.low, lv, g)
		high := m.compose(n.high, lv, g)
		r = m.Ite(m.mk(n.level, False, True), high, low)
	}
	m.cachePut(key, r)
	return r
}

// Replacement is a prepared variable renaming for Replace. Renamings must be
// order-preserving: if v < w are both renamed then their images must satisfy
// image(v) < image(w), and images must not collide with variables in the
// support of the argument that are not themselves renamed in a way that
// would reorder levels. The encode package interleaves current/next state
// variables so that its renamings are always order-preserving.
type Replacement struct {
	to []Var // indexed by Var; identity where not renamed
	id Ref   // cache identity
}

// NewReplacement prepares the renaming pairs from→to. Like Cubes,
// Replacements capture current levels and must be rebuilt after Reorder.
func (m *Manager) NewReplacement(pairs map[Var]Var) Replacement {
	to := make([]Var, m.NumVars())
	for i := range to {
		to[i] = m.varToLevel(Var(i))
	}
	// The cache identity is the product of from-literals paired with
	// to-literals; a simple canonical encoding suffices.
	id := True
	cube := make([]Var, 0, len(pairs)*2)
	for f, t := range pairs {
		to[m.varToLevel(f)] = m.varToLevel(t)
		//syreplint:ignore maporder NewCube below sorts and dedups its arguments
		cube = append(cube, f, t)
	}
	c := m.NewCube(cube...)
	for i := len(c.vars) - 1; i >= 0; i-- {
		id = m.mk(c.vars[i], False, id)
	}
	return Replacement{to: to, id: id}
}

// Replace renames variables in f according to r. It panics when the renaming
// is not order-preserving on f's support (a programming error in the
// caller's variable layout).
func (m *Manager) Replace(f Ref, r Replacement) Ref {
	return m.replace(f, r)
}

func (m *Manager) replace(f Ref, rep Replacement) Ref {
	if IsTerminal(f) {
		return f
	}
	key := cacheKey{kind: kindReplace, a: f, b: rep.id}
	if r, ok := m.cacheGet(key); ok {
		return r
	}
	n := m.nodes[f]
	low := m.replace(n.low, rep)
	high := m.replace(n.high, rep)
	nv := rep.to[n.level]
	if !IsTerminal(low) && m.level(low) <= nv || !IsTerminal(high) && m.level(high) <= nv {
		panic(fmt.Sprintf("bdd: Replace is not order-preserving at variable %s -> %s",
			m.levelName(n.level), m.levelName(nv)))
	}
	r := m.mk(nv, low, high)
	m.cachePut(key, r)
	return r
}
