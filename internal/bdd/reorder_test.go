package bdd

import (
	"math/rand"
	"testing"
)

// truthTable evaluates f over all assignments of the first nvars variables.
func truthTable(m *Manager, f Ref, nvars int) uint64 {
	var table uint64
	for bits := uint(0); bits < 1<<nvars; bits++ {
		a := make(Assignment, nvars)
		for v := Var(0); int(v) < nvars; v++ {
			a[v] = bits&(1<<uint(v)) != 0
		}
		if m.Eval(f, a) {
			table |= 1 << bits
		}
	}
	return table
}

func TestSwapLevelsPreservesFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := New()
	m.NewVars("x", quickVars)
	type tracked struct {
		ref   Ref
		table uint64
	}
	var funcs []tracked
	for i := 0; i < 30; i++ {
		f := randFormula(rng, 4)
		ref := f.build(m)
		m.Ref(ref)
		funcs = append(funcs, tracked{ref: ref, table: truthTable(m, ref, quickVars)})
	}
	// Swap every adjacent pair a few times, in random order.
	for round := 0; round < 40; round++ {
		x := Var(rng.Intn(quickVars - 1))
		m.swapLevels(x)
		for i, fn := range funcs {
			if got := truthTable(m, fn.ref, quickVars); got != fn.table {
				t.Fatalf("round %d (swap at %d): function %d changed: %064b != %064b",
					round, x, i, got, fn.table)
			}
		}
	}
	// The permutation arrays stay mutually inverse.
	for v := Var(0); int(v) < quickVars; v++ {
		if m.level2var[m.var2level[v]] != v {
			t.Fatalf("permutation arrays inconsistent at %d", v)
		}
	}
}

func TestSwapLevelsKeepsCanonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := New()
	m.NewVars("x", quickVars)
	var formulas []*formula
	var refs []Ref
	for i := 0; i < 20; i++ {
		f := randFormula(rng, 4)
		formulas = append(formulas, f)
		r := f.build(m)
		m.Ref(r)
		refs = append(refs, r)
	}
	for round := 0; round < 15; round++ {
		m.swapLevels(Var(rng.Intn(quickVars - 1)))
		// Rebuilding any formula must return the identical Ref (canonical
		// under the new order).
		for i, f := range formulas {
			if got := f.build(m); got != refs[i] {
				t.Fatalf("round %d: formula %d lost canonicity", round, i)
			}
		}
	}
}

func TestSwapLevelsNoOpAtLastLevel(t *testing.T) {
	m := New()
	vars := m.NewVars("x", 2)
	f := m.And(m.VarRef(vars[0]), m.VarRef(vars[1]))
	m.swapLevels(1) // only levels 0 and 1 exist; swapping at 1 is a no-op
	if !m.Eval(f, Assignment{vars[0]: true, vars[1]: true}) {
		t.Error("no-op swap corrupted function")
	}
}

func TestReorderPreservesFunctionsAndShrinks(t *testing.T) {
	// The classic interleaving example: with the order a1..an b1..bn the
	// function (a1∧b1) ∨ ... ∨ (an∧bn) has exponentially many nodes; with
	// a1 b1 a2 b2 ... it is linear. Build it under the BAD order and let
	// sifting find a good one.
	const n = 7
	m := New()
	av := m.NewVars("a", n)
	bv := m.NewVars("b", n)
	f := False
	for i := 0; i < n; i++ {
		f = m.Or(f, m.And(m.VarRef(av[i]), m.VarRef(bv[i])))
	}
	m.Ref(f)
	m.GC() // drop intermediates so node counts reflect f alone
	before := m.NodeCount(f)

	// Remember the truth table on a sample of assignments (2^14 is fine).
	rng := rand.New(rand.NewSource(5))
	type sample struct {
		a    Assignment
		want bool
	}
	var samples []sample
	for i := 0; i < 200; i++ {
		a := make(Assignment, 2*n)
		for v := Var(0); v < 2*n; v++ {
			a[v] = rng.Intn(2) == 0
		}
		samples = append(samples, sample{a: a, want: m.Eval(f, a)})
	}

	m.Reorder(ReorderConfig{})
	m.GC()
	after := m.NodeCount(f)

	if after >= before {
		t.Errorf("sifting did not shrink the interleaving example: %d -> %d", before, after)
	}
	for i, s := range samples {
		if m.Eval(f, s.a) != s.want {
			t.Fatalf("sample %d: function changed by Reorder", i)
		}
	}
	if m.Stats.Reorders != 1 {
		t.Errorf("Stats.Reorders = %d, want 1", m.Stats.Reorders)
	}
	t.Logf("interleaving example: %d nodes -> %d nodes", before, after)
}

func TestReorderKeepsCanonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	m := New()
	m.NewVars("x", quickVars)
	var formulas []*formula
	var refs []Ref
	var tables []uint64
	for i := 0; i < 25; i++ {
		f := randFormula(rng, 5)
		formulas = append(formulas, f)
		r := f.build(m)
		m.Ref(r)
		refs = append(refs, r)
		tables = append(tables, truthTable(m, r, quickVars))
	}
	m.Reorder(ReorderConfig{})
	for i := range formulas {
		if truthTable(m, refs[i], quickVars) != tables[i] {
			t.Fatalf("formula %d: function changed", i)
		}
		if formulas[i].build(m) != refs[i] {
			t.Fatalf("formula %d: canonicity lost", i)
		}
	}
	// Operations still work after reordering.
	g := m.And(refs[0], m.Not(refs[0]))
	if g != False {
		t.Error("And(f, ¬f) != False after reorder")
	}
}

func TestReorderMaxVars(t *testing.T) {
	m := New()
	vars := m.NewVars("x", 6)
	f := False
	for i := 0; i+1 < len(vars); i += 2 {
		f = m.Or(f, m.And(m.VarRef(vars[i]), m.VarRef(vars[i+1])))
	}
	m.Ref(f)
	m.Reorder(ReorderConfig{MaxVars: 2})
	if m.Stats.Reorders != 1 {
		t.Error("Reorder did not run")
	}
}

func TestReorderTrivialManagers(t *testing.T) {
	m := New()
	m.Reorder(ReorderConfig{}) // no variables: no-op
	m.NewVar("only")
	m.Reorder(ReorderConfig{}) // single variable: no-op
}

func TestLevelAccessors(t *testing.T) {
	m := New()
	vars := m.NewVars("x", 3)
	for _, v := range vars {
		if m.LevelOf(v) != v || m.VarAtLevel(v) != v {
			t.Fatalf("identity permutation broken at %d", v)
		}
	}
	m.swapLevels(0)
	if m.LevelOf(vars[0]) != 1 || m.LevelOf(vars[1]) != 0 {
		t.Error("LevelOf not updated by swap")
	}
	if m.VarAtLevel(0) != vars[1] || m.VarAtLevel(1) != vars[0] {
		t.Error("VarAtLevel not updated by swap")
	}
	// VarOf reports the variable, not the level.
	x0 := m.VarRef(vars[0])
	if m.VarOf(x0) != vars[0] {
		t.Errorf("VarOf after swap = %d, want %d", m.VarOf(x0), vars[0])
	}
}

func TestOpsAfterReorderQuick(t *testing.T) {
	// Build random formulae, reorder, then keep computing: results must
	// still agree with the truth-table oracle.
	rng := rand.New(rand.NewSource(9))
	m := New()
	m.NewVars("x", quickVars)
	warm := randFormula(rng, 5).build(m)
	m.Ref(warm)
	m.Reorder(ReorderConfig{})
	for round := 0; round < 120; round++ {
		f := randFormula(rng, 4)
		ref := f.build(m)
		for bits := uint(0); bits < 1<<quickVars; bits++ {
			if m.Eval(ref, assignmentFromBits(bits)) != f.eval(bits) {
				t.Fatalf("round %d: post-reorder semantics diverged", round)
			}
		}
		if round%40 == 13 {
			m.Reorder(ReorderConfig{})
		}
	}
}

func TestRestrictAndQuantifiersAfterReorder(t *testing.T) {
	m := New()
	xs := m.NewVars("x", 4)
	f := m.Or(m.And(m.VarRef(xs[0]), m.VarRef(xs[1])), m.VarRef(xs[3]))
	m.Ref(f)
	m.swapLevels(1)
	m.swapLevels(0)

	// Restrict by variable id must still fix the right variable.
	got := m.Restrict(f, map[Var]bool{xs[0]: true})
	want := m.Or(m.VarRef(xs[1]), m.VarRef(xs[3]))
	if got != want {
		t.Error("Restrict wrong after reorder")
	}
	// Quantification by variable id (cube built after the swaps).
	cube := m.NewCube(xs[1])
	if m.Exists(f, cube) != m.Or(m.VarRef(xs[0]), m.VarRef(xs[3])) {
		t.Error("Exists wrong after reorder")
	}
	if m.ForAll(f, cube) != m.VarRef(xs[3]) {
		t.Error("ForAll wrong after reorder")
	}
	// Compose by variable id.
	if m.Compose(f, xs[3], False) != m.And(m.VarRef(xs[0]), m.VarRef(xs[1])) {
		t.Error("Compose wrong after reorder")
	}
}
