package benchmark

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"syrep/internal/cache"
	"syrep/internal/network"
	"syrep/internal/resilience"
	"syrep/internal/topozoo"
)

// ColdWarm is one row of the cold-versus-warm comparison: the same modified
// topology (the base instance minus EdgesDropped random edges) solved from
// scratch and via the warm-start fast path seeded from the base table.
type ColdWarm struct {
	Instance     string        `json:"instance"`
	Nodes        int           `json:"nodes"`
	Edges        int           `json:"edges"`
	K            int           `json:"k"`
	EdgesDropped int           `json:"edgesDropped"`
	Cold         time.Duration `json:"coldNs"`
	Warm         time.Duration `json:"warmNs"`
	// Speedup is Cold/Warm; > 1 means the warm-start path won.
	Speedup float64 `json:"speedup"`
	// HolesFilled counts the seed holes the warm fill solved.
	HolesFilled int  `json:"holesFilled"`
	ColdSolved  bool `json:"coldSolved"`
	WarmSolved  bool `json:"warmSolved"`
}

// ColdWarmConfig tunes the comparison sweep.
type ColdWarmConfig struct {
	// K is the resilience level (default 2).
	K int
	// MaxDropped sweeps 1..MaxDropped edge deletions per instance
	// (default 2).
	MaxDropped int
	// Timeout bounds each synthesis (default 30s).
	Timeout time.Duration
	// Seed makes the edge selection deterministic (default 1).
	Seed int64
}

func (c ColdWarmConfig) withDefaults() ColdWarmConfig {
	if c.K <= 0 {
		c.K = 2
	}
	if c.MaxDropped <= 0 {
		c.MaxDropped = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// connectedWithout reports whether the real-edge graph stays connected after
// hypothetically removing drop.
func connectedWithout(n *network.Network, drop map[network.EdgeID]bool) bool {
	seen := make([]bool, n.NumNodes())
	queue := []network.NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range n.IncidentEdges(v) {
			if drop[e] {
				continue
			}
			w := n.Other(e, v)
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n.NumNodes()
}

// pickDrop chooses m distinct real edges whose removal keeps the graph
// connected, or nil when no such set turns up.
func pickDrop(rng *rand.Rand, n *network.Network, m int) []network.EdgeID {
	edges := n.RealEdges()
	if len(edges) <= m {
		return nil
	}
	for attempt := 0; attempt < 50; attempt++ {
		drop := make(map[network.EdgeID]bool, m)
		for len(drop) < m {
			drop[edges[rng.Intn(len(edges))]] = true
		}
		if connectedWithout(n, drop) {
			out := make([]network.EdgeID, 0, m)
			for _, e := range edges {
				if drop[e] {
					out = append(out, e)
				}
			}
			return out
		}
	}
	return nil
}

// ColdVsWarm measures the warm-start dynamic-repair shortcut against cold
// synthesis. Per instance: synthesize a base table (untimed), then for each
// m in 1..MaxDropped delete m random connectivity-preserving edges and solve
// the modified topology twice — cold (the full pipeline from scratch) and
// warm (Adapt the base table so entries over the failed edges become holes,
// then resilience.WarmStart, which runs only fill + final verification).
// Instances whose base synthesis fails, or with no droppable edge set, are
// skipped.
func ColdVsWarm(ctx context.Context, instances []topozoo.Instance, cfg ColdWarmConfig) ([]ColdWarm, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []ColdWarm
	for _, inst := range instances {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		opts := resilience.Options{Timeout: cfg.Timeout}
		base, _, err := resilience.Synthesize(ctx, inst.Net, inst.Dest, cfg.K, opts)
		if err != nil {
			continue // an instance the pipeline cannot settle teaches nothing here
		}
		entry := &cache.Entry{Net: inst.Net, Routing: base, Resilient: true}
		destName := inst.Net.NodeName(inst.Dest)

		for m := 1; m <= cfg.MaxDropped; m++ {
			drop := pickDrop(rng, inst.Net, m)
			if drop == nil {
				continue
			}
			mod, err := network.WithoutEdges(inst.Net, drop)
			if err != nil {
				return nil, err
			}
			row := ColdWarm{
				Instance:     inst.Name,
				Nodes:        mod.NumNodes(),
				Edges:        mod.NumRealEdges(),
				K:            cfg.K,
				EdgesDropped: m,
			}

			start := time.Now()
			_, _, err = resilience.Synthesize(ctx, mod, mod.NodeByName(destName), cfg.K, opts)
			row.Cold = time.Since(start)
			row.ColdSolved = err == nil

			start = time.Now()
			seed, err := cache.Adapt(entry, mod, cfg.K)
			if err == nil {
				var rep *resilience.Report
				_, rep, err = resilience.WarmStart(ctx, seed, cfg.K, opts)
				if rep != nil {
					row.HolesFilled = rep.HolesFilled
				}
			}
			row.Warm = time.Since(start)
			row.WarmSolved = err == nil

			if row.WarmSolved && row.Warm > 0 {
				row.Speedup = float64(row.Cold) / float64(row.Warm)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// WriteColdWarm renders the comparison as a text table with a summary line
// (geometric-mean speedup over rows both paths solved).
func WriteColdWarm(ctx context.Context, w io.Writer, instances []topozoo.Instance, cfg ColdWarmConfig) ([]ColdWarm, error) {
	rows, err := ColdVsWarm(ctx, instances, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(w, "%-28s %6s %6s %5s %8s %12s %12s %9s\n",
		"instance", "nodes", "edges", "drop", "holes", "cold", "warm", "speedup"); err != nil {
		return nil, err
	}
	logSum, n := 0.0, 0
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-28s %6d %6d %5d %8d %12s %12s %8.1fx\n",
			r.Instance, r.Nodes, r.Edges, r.EdgesDropped, r.HolesFilled,
			r.Cold.Round(time.Microsecond), r.Warm.Round(time.Microsecond), r.Speedup); err != nil {
			return nil, err
		}
		if r.ColdSolved && r.WarmSolved && r.Speedup > 0 {
			logSum += math.Log(r.Speedup)
			n++
		}
	}
	if n > 0 {
		if _, err := fmt.Fprintf(w, "geomean speedup over %d solved pairs: %.1fx\n",
			n, math.Exp(logSum/float64(n))); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WriteColdWarmJSON emits the rows as one JSON array (the CI artifact).
func WriteColdWarmJSON(w io.Writer, rows []ColdWarm) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
