// Package benchmark reproduces the evaluation of the SyRep paper
// (Section V): it runs the synthesis strategies over a topology suite with
// per-instance timeouts and renders the paper's figures as text tables —
// cactus plots (Fig. 7a/7c), per-instance ratio plots (Fig. 7b/7d),
// size-versus-runtime scatters (Fig. 8/9), and the structural-reduction
// effect table (Fig. 5).
package benchmark

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/core"
	"syrep/internal/encode"
	"syrep/internal/obs"
	"syrep/internal/reduce"
	"syrep/internal/resilience"
	"syrep/internal/topozoo"
)

// Result is the outcome of one (instance, method, k) run.
type Result struct {
	Instance string
	Nodes    int
	Edges    int
	Method   core.Strategy
	K        int
	Solved   bool
	Elapsed  time.Duration
	// TimedOut distinguishes timeouts from genuine unsolvability.
	TimedOut bool
	// MemOut reports BDD node-limit exhaustion (the analogue of the
	// paper's 128 GB memory limit).
	MemOut bool
	// Partial reports that a timed-out or memed-out run still salvaged a
	// usable routing via the anytime supervisor — "timeout with a partial
	// routing" versus "timeout with nothing".
	Partial bool
	// Residual counts the failing deliveries of the salvaged partial
	// routing (0 means only certification was cut short; -1 means the run
	// died before the routing could be priced). Meaningful only when
	// Partial is set.
	Residual int
	// DegradedStage names the pipeline stage a partial run died in.
	DegradedStage string
	// RepairUsed reports whether the BDD repair stage ran (paper: "repair
	// was initiated only for 41 networks").
	RepairUsed bool
	Err        string
	// Metrics is the run's observability snapshot (per-stage wall times and
	// subsystem counters), collected when Config.Observe is set; nil
	// otherwise. Each run gets its own obs.Observer, so counts are
	// per-(instance, method, k).
	Metrics *obs.Snapshot
}

// Config drives a benchmark run.
type Config struct {
	// K is the resilience level (the paper uses 2 and 3).
	K int
	// Timeout bounds each (instance, method) run; 0 means none. The paper
	// used 20 minutes on a Xeon — scale down for laptop runs.
	Timeout time.Duration
	// Methods lists the strategies to compare (default: all four).
	Methods []core.Strategy
	// NodeLimit caps BDD nodes per run (a memory analogue of the paper's
	// 128 GB limit).
	NodeLimit int
	// Observe attaches a fresh obs.Observer to every run and stores its
	// snapshot in Result.Metrics, adding per-stage timing and counter
	// columns to the CSV/JSON outputs.
	Observe bool
}

func (c Config) withDefaults() Config {
	if len(c.Methods) == 0 {
		c.Methods = []core.Strategy{core.Baseline, core.HeuristicOnly, core.ReductionOnly, core.Combined}
	}
	return c
}

// Run executes the benchmark over the instances and returns one Result per
// (instance, method).
func Run(ctx context.Context, instances []topozoo.Instance, cfg Config) []Result {
	cfg = cfg.withDefaults()
	var out []Result
	for _, inst := range instances {
		for _, m := range cfg.Methods {
			if ctx.Err() != nil {
				return out
			}
			out = append(out, runOne(ctx, inst, m, cfg))
		}
	}
	return out
}

func runOne(ctx context.Context, inst topozoo.Instance, m core.Strategy, cfg Config) Result {
	res := Result{
		Instance: inst.Name,
		Nodes:    inst.Net.NumNodes(),
		Edges:    inst.Net.NumRealEdges(),
		Method:   m,
		K:        cfg.K,
	}
	var ob *obs.Observer
	if cfg.Observe {
		ob = obs.New(nil)
	}
	start := time.Now()
	_, rep, err := core.Synthesize(ctx, inst.Net, inst.Dest, cfg.K, core.Options{
		Strategy: m,
		Timeout:  cfg.Timeout,
		Encode:   encode.Options{NodeLimit: cfg.NodeLimit},
		Obs:      ob,
	})
	res.Elapsed = time.Since(start)
	if ob != nil {
		snap := ob.Snapshot()
		res.Metrics = &snap
	}
	if rep != nil {
		res.RepairUsed = rep.ReducedRepairUsed || rep.ExpansionRepairUsed ||
			(m == core.HeuristicOnly && !rep.HeuristicWasResilient)
	}
	switch {
	case err == nil:
		res.Solved = true
	case errors.Is(err, context.DeadlineExceeded):
		res.TimedOut = true
		res.Err = "timeout"
	case errors.Is(err, bdd.ErrNodeLimit):
		res.MemOut = true
		res.Err = "node-limit"
	default:
		res.Err = err.Error()
	}
	if p, ok := core.AsPartial(err); ok {
		res.Partial = true
		res.DegradedStage = string(p.Degradation.Stage)
		if p.ResidualUnknown {
			res.Residual = -1
			res.Err += " (partial: unpriced routing)"
		} else {
			res.Residual = len(p.Residual)
			res.Err += fmt.Sprintf(" (partial: %d residual)", len(p.Residual))
		}
	}
	return res
}

// Summary aggregates solved counts per method — the paper's headline
// numbers ("the baseline solved 120 instances while our combined method
// solved 167; repair was initiated for 41 networks").
type Summary struct {
	Method     core.Strategy
	Solved     int
	TimedOut   int
	MemOut     int
	Unsolvable int
	// Partials counts the timed-out or memed-out runs that still salvaged a
	// usable routing — the anytime supervisor's consolation wins.
	Partials    int
	RepairsUsed int
	TotalTime   time.Duration
}

// Summarise groups results by method.
func Summarise(results []Result) []Summary {
	byMethod := make(map[core.Strategy]*Summary)
	var order []core.Strategy
	for _, r := range results {
		s, ok := byMethod[r.Method]
		if !ok {
			s = &Summary{Method: r.Method}
			byMethod[r.Method] = s
			order = append(order, r.Method)
		}
		switch {
		case r.Solved:
			s.Solved++
			s.TotalTime += r.Elapsed
			if r.RepairUsed {
				s.RepairsUsed++
			}
		case r.TimedOut:
			s.TimedOut++
		case r.MemOut:
			s.MemOut++
		default:
			s.Unsolvable++
		}
		if r.Partial {
			s.Partials++
		}
	}
	out := make([]Summary, 0, len(order))
	for _, m := range order {
		out = append(out, *byMethod[m])
	}
	return out
}

// WriteSummary renders the per-method totals.
func WriteSummary(w io.Writer, results []Result) error {
	if _, err := fmt.Fprintf(w, "%-10s %7s %8s %7s %11s %8s %8s %12s\n",
		"method", "solved", "timeout", "memout", "unsolvable", "partial", "repairs", "total-time"); err != nil {
		return err
	}
	for _, s := range Summarise(results) {
		if _, err := fmt.Fprintf(w, "%-10s %7d %8d %7d %11d %8d %8d %12s\n",
			s.Method, s.Solved, s.TimedOut, s.MemOut, s.Unsolvable, s.Partials,
			s.RepairsUsed, s.TotalTime.Round(time.Millisecond)); err != nil {
			return err
		}
	}
	return nil
}

// CactusSeries returns, for the method, the sorted solve times — one point
// per solved instance, as in Figures 7a and 7c (each method sorted
// independently).
func CactusSeries(results []Result, m core.Strategy) []time.Duration {
	var times []time.Duration
	for _, r := range results {
		if r.Method == m && r.Solved {
			times = append(times, r.Elapsed)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

// WriteCactus renders the cactus plot data: instance rank vs per-method
// cumulative-sorted CPU time.
func WriteCactus(w io.Writer, results []Result, methods []core.Strategy) error {
	series := make([][]time.Duration, len(methods))
	maxLen := 0
	for i, m := range methods {
		series[i] = CactusSeries(results, m)
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	if _, err := fmt.Fprintf(w, "%-5s", "rank"); err != nil {
		return err
	}
	for _, m := range methods {
		if _, err := fmt.Fprintf(w, " %12s", m); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		if _, err := fmt.Fprintf(w, "%-5d", i+1); err != nil {
			return err
		}
		for s := range methods {
			if i < len(series[s]) {
				if _, err := fmt.Fprintf(w, " %12s", series[s][i].Round(time.Microsecond)); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(w, " %12s", "-"); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RatioPoint is one instance solved by both methods, with the runtime ratio
// a/b (value < 1 means method a is faster), as in Figures 7b and 7d.
type RatioPoint struct {
	Instance string
	A, B     time.Duration
	Ratio    float64
}

// Ratios computes the per-instance runtime ratios a/b over instances both
// methods solved, sorted ascending by ratio.
func Ratios(results []Result, a, b core.Strategy) []RatioPoint {
	type pair struct{ ra, rb *Result }
	byInstance := make(map[string]*pair)
	for i := range results {
		r := &results[i]
		if !r.Solved {
			continue
		}
		p, ok := byInstance[r.Instance]
		if !ok {
			p = &pair{}
			byInstance[r.Instance] = p
		}
		switch r.Method {
		case a:
			p.ra = r
		case b:
			p.rb = r
		}
	}
	var out []RatioPoint
	for name, p := range byInstance {
		if p.ra == nil || p.rb == nil {
			continue
		}
		rb := p.rb.Elapsed
		if rb <= 0 {
			rb = time.Nanosecond
		}
		out = append(out, RatioPoint{
			Instance: name,
			A:        p.ra.Elapsed,
			B:        p.rb.Elapsed,
			Ratio:    float64(p.ra.Elapsed) / float64(rb),
		})
	}
	// Tie-break on the instance name: out was collected in map order, and a
	// ratio-only comparator would leave equal ratios in that random order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio < out[j].Ratio
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// WriteRatios renders the ratio plot data.
func WriteRatios(w io.Writer, results []Result, a, b core.Strategy) error {
	points := Ratios(results, a, b)
	if _, err := fmt.Fprintf(w, "%-28s %12s %12s %10s\n",
		"instance", a.String(), b.String(), "ratio"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-28s %12s %12s %10.4f\n",
			p.Instance, p.A.Round(time.Microsecond), p.B.Round(time.Microsecond), p.Ratio); err != nil {
			return err
		}
	}
	return nil
}

// ScatterPoint is one solved instance for the size-vs-runtime scatters of
// Figures 8 and 9.
type ScatterPoint struct {
	Instance string
	Size     int
	Elapsed  time.Duration
}

// Scatter extracts (size, runtime) points for the method; byEdges selects
// Figure 8 (edges) over Figure 9 (nodes). Points are sorted by size.
func Scatter(results []Result, m core.Strategy, byEdges bool) []ScatterPoint {
	var out []ScatterPoint
	for _, r := range results {
		if r.Method != m || !r.Solved {
			continue
		}
		size := r.Nodes
		if byEdges {
			size = r.Edges
		}
		out = append(out, ScatterPoint{Instance: r.Instance, Size: size, Elapsed: r.Elapsed})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size < out[j].Size
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// WriteScatter renders Figure 8/9 data for the method.
func WriteScatter(w io.Writer, results []Result, m core.Strategy, byEdges bool) error {
	axis := "nodes"
	if byEdges {
		axis = "edges"
	}
	if _, err := fmt.Fprintf(w, "%-28s %8s %12s\n", "instance", axis, "runtime"); err != nil {
		return err
	}
	for _, p := range Scatter(results, m, byEdges) {
		if _, err := fmt.Fprintf(w, "%-28s %8d %12s\n",
			p.Instance, p.Size, p.Elapsed.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

// ReductionEffect is the Figure 5 table: network size before and after each
// reduction rule.
type ReductionEffect struct {
	Instance                   string
	Nodes, Edges               int
	SoundNodes, SoundEdges     int
	AggroNodes, AggroEdges     int
	SoundRemoved, AggroRemoved int
}

// ReductionEffects applies both rules to every instance. ctx cancellation
// aborts the sweep between (and inside) reductions with ctx.Err().
func ReductionEffects(ctx context.Context, instances []topozoo.Instance) ([]ReductionEffect, error) {
	out := make([]ReductionEffect, 0, len(instances))
	for _, inst := range instances {
		e := ReductionEffect{
			Instance: inst.Name,
			Nodes:    inst.Net.NumNodes(),
			Edges:    inst.Net.NumRealEdges(),
		}
		sound, err := reduce.Apply(ctx, inst.Net, inst.Dest, reduce.Sound)
		if err != nil {
			return nil, err
		}
		aggro, err := reduce.Apply(ctx, inst.Net, inst.Dest, reduce.Aggressive)
		if err != nil {
			return nil, err
		}
		e.SoundNodes = sound.Reduced.NumNodes()
		e.SoundEdges = sound.Reduced.NumRealEdges()
		e.SoundRemoved = sound.NumRemoved()
		e.AggroNodes = aggro.Reduced.NumNodes()
		e.AggroEdges = aggro.Reduced.NumRealEdges()
		e.AggroRemoved = aggro.NumRemoved()
		out = append(out, e)
	}
	return out, nil
}

// WriteReductionEffects renders the Figure 5 table.
func WriteReductionEffects(ctx context.Context, w io.Writer, instances []topozoo.Instance) error {
	effects, err := ReductionEffects(ctx, instances)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s %6s %6s | %6s %6s | %6s %6s\n",
		"instance", "nodes", "edges", "sndN", "sndE", "aggN", "aggE"); err != nil {
		return err
	}
	for _, e := range effects {
		if _, err := fmt.Fprintf(w, "%-28s %6d %6d | %6d %6d | %6d %6d\n",
			e.Instance, e.Nodes, e.Edges, e.SoundNodes, e.SoundEdges,
			e.AggroNodes, e.AggroEdges); err != nil {
			return err
		}
	}
	return nil
}

// metricStages lists the pipeline stages exported as per-row CSV timing
// columns, in pipeline order.
var metricStages = []resilience.Stage{
	resilience.StageReduce, resilience.StageHeuristic, resilience.StageSynth,
	resilience.StageVerifyReduced, resilience.StageRepairReduced,
	resilience.StageExpand, resilience.StageVerify, resilience.StageRepair,
	resilience.StageFinalVerify,
}

// metricCounters lists the subsystem counters exported as per-row CSV
// columns, paired with their headers.
var metricCounters = []struct{ header, name string }{
	{"bdd_mk_calls", obs.BDDMkCalls},
	{"bdd_peak_nodes", obs.BDDPeakNodes},
	{"verify_scenarios", obs.VerifyScenarios},
	{"verify_traces", obs.VerifyTraces},
	{"repair_iterations", obs.RepairIterations},
}

// WriteCSV emits the raw results as CSV for external plotting. Rows carry
// per-stage wall-time and counter columns, zero when the run was not
// observed (Config.Observe unset).
func WriteCSV(w io.Writer, results []Result) error {
	header := "instance,nodes,edges,method,k,solved,timedout,partial,residual,stage,repair,elapsed_us,err"
	for _, st := range metricStages {
		header += fmt.Sprintf(",%s_us", st)
	}
	for _, c := range metricCounters {
		header += "," + c.header
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range results {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,%d,%t,%t,%t,%d,%s,%t,%d,%q",
			r.Instance, r.Nodes, r.Edges, r.Method, r.K, r.Solved, r.TimedOut,
			r.Partial, r.Residual, r.DegradedStage,
			r.RepairUsed, r.Elapsed.Microseconds(), r.Err); err != nil {
			return err
		}
		var snap obs.Snapshot
		if r.Metrics != nil {
			snap = *r.Metrics
		}
		for _, st := range metricStages {
			if _, err := fmt.Fprintf(w, ",%d", snap.StageDuration(string(st)).Microseconds()); err != nil {
				return err
			}
		}
		for _, c := range metricCounters {
			v := snap.Counter(c.name)
			if c.name == obs.BDDPeakNodes {
				v = snap.Gauge(c.name)
			}
			if _, err := fmt.Fprintf(w, ",%d", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONResults emits the results — including the full per-run metrics
// snapshot when present — as an indented JSON array, for the benchmark
// driver's --metrics-json output and the CI smoke-run artifact.
func WriteJSONResults(w io.Writer, results []Result) error {
	type row struct {
		Instance  string        `json:"instance"`
		Nodes     int           `json:"nodes"`
		Edges     int           `json:"edges"`
		Method    string        `json:"method"`
		K         int           `json:"k"`
		Solved    bool          `json:"solved"`
		TimedOut  bool          `json:"timedout"`
		MemOut    bool          `json:"memout"`
		Partial   bool          `json:"partial"`
		Residual  int           `json:"residual"`
		Stage     string        `json:"stage,omitempty"`
		Repair    bool          `json:"repair"`
		ElapsedUS int64         `json:"elapsed_us"`
		Err       string        `json:"err,omitempty"`
		Metrics   *obs.Snapshot `json:"metrics,omitempty"`
	}
	rows := make([]row, 0, len(results))
	for _, r := range results {
		rows = append(rows, row{
			Instance: r.Instance, Nodes: r.Nodes, Edges: r.Edges,
			Method: r.Method.String(), K: r.K, Solved: r.Solved,
			TimedOut: r.TimedOut, MemOut: r.MemOut, Partial: r.Partial,
			Residual: r.Residual, Stage: r.DegradedStage, Repair: r.RepairUsed,
			ElapsedUS: r.Elapsed.Microseconds(), Err: r.Err, Metrics: r.Metrics,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
