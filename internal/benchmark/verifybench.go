package benchmark

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"syrep/internal/verify"
	"syrep/internal/verify/poly"
	"syrep/internal/verify/vgen"
)

// VerifyRow is one row of the brute-versus-poly verification comparison: the
// same routing table checked for perfect k-resilience by both backends.
type VerifyRow struct {
	Instance  string        `json:"instance"`
	Nodes     int           `json:"nodes"`
	Edges     int           `json:"edges"`
	K         int           `json:"k"`
	Scenarios int           `json:"scenarios"`
	Brute     time.Duration `json:"bruteNs"`
	Poly      time.Duration `json:"polyNs"`
	// Speedup is Brute/Poly; > 1 means the poly path won.
	Speedup float64 `json:"speedup"`
	// Applicable is false when the poly checker exceeded its visit budget
	// and reported verify.ErrNotApplicable (Poly then times the failed
	// attempt and Agree is vacuously true).
	Applicable bool `json:"applicable"`
	// Agree records verdict equality. Counterexample lists are not compared
	// here — poly reports one minimal witness per source while brute
	// enumerates every failing (scenario, source) pair; the differential
	// suite in internal/verify/poly oracle-confirms each poly witness.
	Agree     bool `json:"agree"`
	Resilient bool `json:"resilient"`
}

// VerifyBenchConfig tunes the verification-backend sweep.
type VerifyBenchConfig struct {
	// MaxK sweeps k = 1..MaxK (default 4).
	MaxK int
	// Sizes lists the generated instance sizes in nodes (default 8, 12, 16).
	Sizes []int
	// Seed keys the vgen topologies and corruptions (default 1).
	Seed int64
}

func (c VerifyBenchConfig) withDefaults() VerifyBenchConfig {
	if c.MaxK <= 0 {
		c.MaxK = 4
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{8, 12, 16}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// verifyBenchProfiles are the corruption shapes swept per size: an intact
// heuristic table (the common fast "is it resilient?" query), a truncated
// one (drops), a bounced one (loops), and a parallel-edge multigraph.
var verifyBenchProfiles = []struct {
	name string
	cfg  vgen.Config
}{
	{"intact", vgen.Config{}},
	{"truncate", vgen.Config{TruncateShare: 0.2}},
	{"bounce", vgen.Config{BounceShare: 0.1}},
	{"multigraph", vgen.Config{ParallelEdgeShare: 0.3, TruncateShare: 0.1}},
}

// VerifyBench checks every generated instance for k = 1..MaxK with both the
// brute-force oracle and the polynomial checker, recording wall time, verdict
// agreement, and poly applicability. Both backends run with identical
// complete-report options so the comparison is verdict-for-verdict fair.
func VerifyBench(ctx context.Context, cfg VerifyBenchConfig) ([]VerifyRow, error) {
	cfg = cfg.withDefaults()
	fast := poly.New()
	var out []VerifyRow
	for _, prof := range verifyBenchProfiles {
		for _, nodes := range cfg.Sizes {
			gen := prof.cfg
			gen.Nodes = nodes
			gen.Seed = cfg.Seed*1000 + int64(nodes)
			r, err := vgen.Corrupted(gen)
			if err != nil {
				return nil, fmt.Errorf("vgen %s/%d: %w", prof.name, nodes, err)
			}
			net := r.Network()
			for k := 1; k <= cfg.MaxK; k++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				row := VerifyRow{
					Instance:  fmt.Sprintf("%s-n%d", prof.name, nodes),
					Nodes:     net.NumNodes(),
					Edges:     net.NumRealEdges(),
					K:         k,
					Scenarios: net.CountScenarios(k),
				}

				start := time.Now()
				brep, err := verify.BruteForce{}.Check(ctx, r, k, verify.Options{})
				row.Brute = time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("brute %s k=%d: %w", row.Instance, k, err)
				}
				row.Resilient = brep.Resilient

				start = time.Now()
				prep, err := fast.Check(ctx, r, k, verify.Options{})
				row.Poly = time.Since(start)
				switch {
				case errors.Is(err, verify.ErrNotApplicable):
					row.Applicable, row.Agree = false, true
				case err != nil:
					return nil, fmt.Errorf("poly %s k=%d: %w", row.Instance, k, err)
				default:
					row.Applicable = true
					row.Agree = prep.Resilient == brep.Resilient
				}

				if row.Poly > 0 {
					row.Speedup = float64(row.Brute) / float64(row.Poly)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

// WriteVerifyBench renders the sweep as a text table with geometric-mean
// speedups split at the k where scenario enumeration starts to hurt.
func WriteVerifyBench(ctx context.Context, w io.Writer, cfg VerifyBenchConfig) ([]VerifyRow, error) {
	rows, err := VerifyBench(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(w, "%-16s %6s %6s %3s %10s %12s %12s %9s %6s %6s\n",
		"instance", "nodes", "edges", "k", "scenarios", "brute", "poly", "speedup", "appl", "agree"); err != nil {
		return nil, err
	}
	logSum := map[bool]float64{}
	n := map[bool]int{}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-16s %6d %6d %3d %10d %12s %12s %8.1fx %6t %6t\n",
			r.Instance, r.Nodes, r.Edges, r.K, r.Scenarios,
			r.Brute.Round(time.Microsecond), r.Poly.Round(time.Microsecond),
			r.Speedup, r.Applicable, r.Agree); err != nil {
			return nil, err
		}
		if r.Applicable && r.Speedup > 0 {
			largeK := r.K >= 3
			logSum[largeK] += math.Log(r.Speedup)
			n[largeK]++
		}
	}
	for _, largeK := range []bool{false, true} {
		if n[largeK] == 0 {
			continue
		}
		label := "k<=2"
		if largeK {
			label = "k>=3"
		}
		if _, err := fmt.Fprintf(w, "geomean poly speedup (%s, %d rows): %.1fx\n",
			label, n[largeK], math.Exp(logSum[largeK]/float64(n[largeK]))); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WriteVerifyBenchJSON emits the rows as one JSON array (the CI artifact).
func WriteVerifyBenchJSON(w io.Writer, rows []VerifyRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
