package benchmark

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestVerifyBenchAgreesAndRenders(t *testing.T) {
	var buf bytes.Buffer
	cfg := VerifyBenchConfig{MaxK: 2, Sizes: []int{8}}
	rows, err := WriteVerifyBench(context.Background(), &buf, cfg)
	if err != nil {
		t.Fatalf("WriteVerifyBench: %v", err)
	}
	// 4 profiles x 1 size x k in 1..2.
	if want := 4 * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.Agree {
			t.Errorf("%s k=%d: backends disagree", r.Instance, r.K)
		}
		if r.Brute <= 0 || r.Poly <= 0 {
			t.Errorf("%s k=%d: non-positive timing %v/%v", r.Instance, r.K, r.Brute, r.Poly)
		}
		if r.Scenarios <= 0 {
			t.Errorf("%s k=%d: scenarios %d", r.Instance, r.K, r.Scenarios)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "instance") || !strings.Contains(out, "intact-n8") {
		t.Errorf("table output missing expected content:\n%s", out)
	}

	var jsonBuf bytes.Buffer
	if err := WriteVerifyBenchJSON(&jsonBuf, rows); err != nil {
		t.Fatalf("WriteVerifyBenchJSON: %v", err)
	}
	var back []VerifyRow
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round-trip lost rows: %d != %d", len(back), len(rows))
	}
}

func TestVerifyBenchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyBench(ctx, VerifyBenchConfig{MaxK: 1, Sizes: []int{8}}); err == nil {
		t.Fatal("cancelled context must surface an error")
	}
}
