package benchmark_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"syrep/internal/benchmark"
	"syrep/internal/core"
	"syrep/internal/obs"
	"syrep/internal/papernet"
	"syrep/internal/topozoo"
)

var ctx = context.Background()

func smallSuite() []topozoo.Instance {
	fig1 := papernet.Figure1()
	out := []topozoo.Instance{
		{Name: "fig1", Net: fig1, Dest: papernet.Figure1Dest(fig1)},
	}
	for _, inst := range topozoo.Embedded() {
		if inst.Name == "Arpanet1970" { // solves quickly under every strategy
			out = append(out, inst)
		}
	}
	return out
}

var (
	runSmallOnce    sync.Once
	runSmallResults []benchmark.Result
)

// runSmall executes the shared 2-instance x 4-method benchmark exactly once
// per test binary; the rendering tests only need its immutable results.
func runSmall(t *testing.T) []benchmark.Result {
	t.Helper()
	runSmallOnce.Do(func() {
		runSmallResults = benchmark.Run(ctx, smallSuite(), benchmark.Config{
			K:       2,
			Timeout: 30 * time.Second,
		})
	})
	if len(runSmallResults) != 8 { // 2 instances x 4 methods
		t.Fatalf("results = %d, want 8", len(runSmallResults))
	}
	return runSmallResults
}

func TestRunAllStrategiesSolveSmallInstances(t *testing.T) {
	results := runSmall(t)
	for _, r := range results {
		if !r.Solved {
			t.Errorf("%s/%s: not solved (%s)", r.Instance, r.Method, r.Err)
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s/%s: elapsed not recorded", r.Instance, r.Method)
		}
		if r.Nodes == 0 || r.Edges == 0 {
			t.Errorf("%s/%s: size not recorded", r.Instance, r.Method)
		}
	}
}

func TestSummarise(t *testing.T) {
	results := runSmall(t)
	sums := benchmark.Summarise(results)
	if len(sums) != 4 {
		t.Fatalf("summaries = %d, want 4", len(sums))
	}
	for _, s := range sums {
		if s.Solved != 2 {
			t.Errorf("%s: solved = %d, want 2", s.Method, s.Solved)
		}
	}
	var sb strings.Builder
	if err := benchmark.WriteSummary(&sb, results); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, m := range []string{"baseline", "heuristic", "reduction", "combined"} {
		if !strings.Contains(out, m) {
			t.Errorf("summary missing method %s:\n%s", m, out)
		}
	}
}

func TestCactusSeriesSorted(t *testing.T) {
	results := runSmall(t)
	series := benchmark.CactusSeries(results, core.Combined)
	if len(series) != 2 {
		t.Fatalf("series = %d points, want 2", len(series))
	}
	if series[0] > series[1] {
		t.Error("cactus series not sorted")
	}
	var sb strings.Builder
	err := benchmark.WriteCactus(&sb, results, []core.Strategy{core.Baseline, core.Combined})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rank") {
		t.Error("cactus output missing header")
	}
}

func TestRatios(t *testing.T) {
	results := runSmall(t)
	points := benchmark.Ratios(results, core.Combined, core.Baseline)
	if len(points) != 2 {
		t.Fatalf("ratio points = %d, want 2", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i-1].Ratio > points[i].Ratio {
			t.Error("ratios not sorted")
		}
	}
	var sb strings.Builder
	if err := benchmark.WriteRatios(&sb, results, core.Combined, core.Baseline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ratio") {
		t.Error("ratio output missing header")
	}
}

func TestScatter(t *testing.T) {
	results := runSmall(t)
	byEdges := benchmark.Scatter(results, core.Combined, true)
	byNodes := benchmark.Scatter(results, core.Combined, false)
	if len(byEdges) != 2 || len(byNodes) != 2 {
		t.Fatalf("scatter sizes: %d/%d, want 2/2", len(byEdges), len(byNodes))
	}
	if byEdges[0].Size > byEdges[1].Size {
		t.Error("scatter not sorted by size")
	}
	var sb strings.Builder
	if err := benchmark.WriteScatter(&sb, results, core.Combined, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "edges") {
		t.Error("scatter output missing axis header")
	}
}

func TestReductionEffects(t *testing.T) {
	instances := smallSuite()
	effects, err := benchmark.ReductionEffects(context.Background(), instances)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 2 {
		t.Fatalf("effects = %d", len(effects))
	}
	for _, e := range effects {
		if e.AggroNodes > e.SoundNodes {
			t.Errorf("%s: aggressive (%d nodes) larger than sound (%d nodes)",
				e.Instance, e.AggroNodes, e.SoundNodes)
		}
		if e.SoundNodes > e.Nodes {
			t.Errorf("%s: reduction grew the network", e.Instance)
		}
	}
	var sb strings.Builder
	if err := benchmark.WriteReductionEffects(context.Background(), &sb, instances); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aggN") {
		t.Error("reduction table missing header")
	}
}

// TestReductionEffectsCancellation: a cancelled context aborts the sweep
// with ctx.Err() instead of grinding through every instance — previously the
// reductions ran on context.Background() and could not be cancelled at all.
func TestReductionEffectsCancellation(t *testing.T) {
	instances := smallSuite()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := benchmark.ReductionEffects(ctx, instances); !errors.Is(err, context.Canceled) {
		t.Errorf("ReductionEffects on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if err := benchmark.WriteReductionEffects(ctx, io.Discard, instances); !errors.Is(err, context.Canceled) {
		t.Errorf("WriteReductionEffects on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestWriteCSV(t *testing.T) {
	results := runSmall(t)
	var sb strings.Builder
	if err := benchmark.WriteCSV(&sb, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(results)+1 {
		t.Errorf("CSV lines = %d, want %d", len(lines), len(results)+1)
	}
	if !strings.HasPrefix(lines[0], "instance,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestObserveAttachesMetrics: Config.Observe gives every result a snapshot,
// and both renderers surface the per-stage and counter columns.
func TestObserveAttachesMetrics(t *testing.T) {
	fig1 := papernet.Figure1()
	inst := []topozoo.Instance{{Name: "fig1", Net: fig1, Dest: papernet.Figure1Dest(fig1)}}
	results := benchmark.Run(ctx, inst, benchmark.Config{
		K:       2,
		Timeout: 30 * time.Second,
		Methods: []core.Strategy{core.Combined},
		Observe: true,
	})
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	r := results[0]
	if !r.Solved {
		t.Fatalf("fig1 not solved: %s", r.Err)
	}
	if r.Metrics == nil {
		t.Fatal("Observe set but Result.Metrics is nil")
	}
	if r.Metrics.Counter(obs.VerifyScenarios) == 0 {
		t.Error("observed run counted no verify scenarios")
	}
	if r.Metrics.StageDuration(obs.SpanTotal) <= 0 {
		t.Error("observed run recorded no total span")
	}

	var csv strings.Builder
	if err := benchmark.WriteCSV(&csv, results); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{"heuristic_us", "verify_us", "bdd_mk_calls", "verify_scenarios"} {
		if !strings.Contains(header, col) {
			t.Errorf("CSV header missing %q: %s", col, header)
		}
	}

	var js strings.Builder
	if err := benchmark.WriteJSONResults(&js, results); err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Instance string        `json:"instance"`
		Metrics  *obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(js.String()), &rows); err != nil {
		t.Fatalf("WriteJSONResults output does not parse: %v", err)
	}
	if len(rows) != 1 || rows[0].Metrics == nil {
		t.Fatalf("JSON rows = %+v, want one row with metrics", rows)
	}
	if rows[0].Metrics.Counter(obs.VerifyScenarios) != r.Metrics.Counter(obs.VerifyScenarios) {
		t.Error("JSON metrics drifted from the in-memory snapshot")
	}

	// Unobserved runs must leave Metrics nil and omit it from the JSON.
	plain := benchmark.Run(ctx, inst, benchmark.Config{
		K: 2, Timeout: 30 * time.Second, Methods: []core.Strategy{core.Combined},
	})
	if plain[0].Metrics != nil {
		t.Error("unobserved run carries metrics")
	}
	var js2 strings.Builder
	if err := benchmark.WriteJSONResults(&js2, plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js2.String(), `"metrics"`) {
		t.Error("unobserved JSON row still has a metrics key")
	}
}

func TestRunHonoursContext(t *testing.T) {
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	results := benchmark.Run(cctx, smallSuite(), benchmark.Config{K: 2})
	if len(results) != 0 {
		t.Errorf("cancelled run produced %d results", len(results))
	}
}

func TestTimeoutIsRecorded(t *testing.T) {
	inst := []topozoo.Instance{{
		Name: "big",
		Net:  topozoo.Generate(topozoo.GenConfig{Nodes: 40, Seed: 1}),
		Dest: 0,
	}}
	results := benchmark.Run(ctx, inst, benchmark.Config{
		K:       3,
		Timeout: time.Millisecond,
		Methods: []core.Strategy{core.Baseline},
	})
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Solved {
		t.Skip("instance solved within a millisecond; timeout untestable here")
	}
	if !results[0].TimedOut {
		t.Errorf("expected timeout, got %+v", results[0])
	}
}
