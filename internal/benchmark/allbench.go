package benchmark

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"syrep/internal/network"
	"syrep/internal/resilience"
	"syrep/internal/routing"
	"syrep/internal/topozoo"
)

// AllDestsRow compares one topology's all-destinations batch synthesis
// (resilience.SynthesizeAll: shared reduction candidates, pooled BDD
// managers, bounded fan-out) against the same work done as N independent
// sequential single-destination runs.
type AllDestsRow struct {
	Instance string `json:"instance"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	K        int    `json:"k"`
	Strategy string `json:"strategy"`
	Dests    int    `json:"dests"`
	Workers  int    `json:"workers"`
	// Batch and Sequential are wall-clock times for the whole topology.
	Batch      time.Duration `json:"batchNs"`
	Sequential time.Duration `json:"sequentialNs"`
	// Speedup is Sequential/Batch; > 1 means the batch won.
	Speedup float64 `json:"speedup"`
	// PoolReuses counts BDD manager recycles inside the batch (0 means
	// every destination paid a fresh arena).
	PoolReuses int64 `json:"poolReuses"`
	// Resilient counts destinations both paths solved cleanly.
	Resilient int `json:"resilient"`
	// Differential: every destination's batch routing was deep-equal to
	// its sequential routing (the correctness check riding the benchmark).
	Differential bool `json:"differential"`
}

// AllDestsConfig tunes the batch-versus-sequential sweep.
type AllDestsConfig struct {
	// Topologies names embedded instances (default: a representative
	// four-topology spread of the embedded suite).
	Topologies []string
	// K is the resilience level (default 1).
	K int
	// Strategy defaults to Combined — the paper's pipeline, and the one
	// the batch's shared reduce stage accelerates.
	Strategy resilience.Strategy
	// Workers bounds the batch fan-out (default GOMAXPROCS).
	Workers int
	// Timeout bounds each per-destination run (default 30s).
	Timeout time.Duration
}

func (c AllDestsConfig) withDefaults() AllDestsConfig {
	if len(c.Topologies) == 0 {
		c.Topologies = []string{"Abilene", "Arpanet1970", "Geant", "Renater"}
	}
	if c.K <= 0 {
		c.K = 1
	}
	if c.Strategy == 0 {
		c.Strategy = resilience.Combined
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// AllDestsBench times, per topology, the batch entry point against N
// sequential single-destination runs of the identical configuration, and
// cross-checks the two result sets destination for destination.
func AllDestsBench(ctx context.Context, cfg AllDestsConfig) ([]AllDestsRow, error) {
	cfg = cfg.withDefaults()
	var out []AllDestsRow
	for _, name := range cfg.Topologies {
		net, err := embeddedByName(name)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := AllDestsRow{
			Instance: name,
			Nodes:    net.NumNodes(),
			Edges:    net.NumRealEdges(),
			K:        cfg.K,
			Strategy: cfg.Strategy.String(),
			Dests:    net.NumNodes(),
			Workers:  cfg.Workers,
		}

		// Sequential baseline: fresh options per destination, nothing shared.
		seq := make(map[network.NodeID]*routingResult, net.NumNodes())
		start := time.Now()
		for d := 0; d < net.NumNodes(); d++ {
			dest := network.NodeID(d)
			r, _, err := resilience.Synthesize(ctx, net, dest, cfg.K,
				resilience.Options{Strategy: cfg.Strategy, Timeout: cfg.Timeout})
			seq[dest] = &routingResult{r: r, err: err}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		row.Sequential = time.Since(start)

		start = time.Now()
		results, rep, err := resilience.SynthesizeAll(ctx, net, cfg.K, resilience.BatchOptions{
			Run:     resilience.Options{Strategy: cfg.Strategy, Timeout: cfg.Timeout},
			Workers: cfg.Workers,
		})
		row.Batch = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("batch %s: %w", name, err)
		}
		row.PoolReuses = rep.Pool.Reuses

		row.Differential = true
		for _, res := range results {
			want := seq[res.Dest]
			switch {
			case res.Err == nil && want.err == nil:
				row.Resilient++
				if !res.Routing.Equal(want.r) {
					row.Differential = false
				}
			case (res.Err == nil) != (want.err == nil):
				row.Differential = false
			}
		}
		if row.Batch > 0 {
			row.Speedup = float64(row.Sequential) / float64(row.Batch)
		}
		out = append(out, row)
	}
	return out, nil
}

type routingResult struct {
	r   *routing.Routing
	err error
}

func embeddedByName(name string) (*network.Network, error) {
	for _, inst := range topozoo.Embedded() {
		if strings.EqualFold(inst.Name, name) {
			return inst.Net, nil
		}
	}
	return nil, fmt.Errorf("unknown embedded topology %q", name)
}

// WriteAllDestsBench renders the sweep as a text table.
func WriteAllDestsBench(ctx context.Context, w io.Writer, cfg AllDestsConfig) ([]AllDestsRow, error) {
	rows, err := AllDestsBench(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(w, "%-14s %6s %6s %3s %6s %8s %12s %12s %9s %7s %5s\n",
		"instance", "nodes", "edges", "k", "dests", "workers", "sequential", "batch", "speedup", "reuses", "diff"); err != nil {
		return nil, err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-14s %6d %6d %3d %6d %8d %12s %12s %8.1fx %7d %5t\n",
			r.Instance, r.Nodes, r.Edges, r.K, r.Dests, r.Workers,
			r.Sequential.Round(time.Millisecond), r.Batch.Round(time.Millisecond),
			r.Speedup, r.PoolReuses, r.Differential); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WriteAllDestsBenchJSON emits the rows as one JSON array (the CI artifact).
func WriteAllDestsBenchJSON(w io.Writer, rows []AllDestsRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
