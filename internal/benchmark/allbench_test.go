package benchmark

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestAllDestsBench runs the batch-versus-sequential comparison on one
// small topology and checks the row is internally consistent: every
// destination solved by both paths, the differential cross-check green,
// and both timings populated.
func TestAllDestsBench(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rows, err := AllDestsBench(ctx, AllDestsConfig{Topologies: []string{"Abilene"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Instance != "Abilene" || r.K != 1 || r.Strategy != "combined" {
		t.Errorf("row identity = %+v", r)
	}
	if r.Dests != r.Nodes || r.Resilient != r.Dests {
		t.Errorf("solved %d of %d destinations, want all", r.Resilient, r.Dests)
	}
	if !r.Differential {
		t.Error("batch routings differ from sequential routings")
	}
	if r.Batch <= 0 || r.Sequential <= 0 || r.Speedup <= 0 {
		t.Errorf("timings not populated: %+v", r)
	}
}

// TestWriteAllDestsBench checks the table renderer and the JSON artifact
// round-trip.
func TestWriteAllDestsBench(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var table bytes.Buffer
	rows, err := WriteAllDestsBench(ctx, &table, AllDestsConfig{Topologies: []string{"Abilene"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"instance", "sequential", "batch", "speedup", "Abilene"} {
		if !strings.Contains(table.String(), col) {
			t.Errorf("table lacks %q:\n%s", col, table.String())
		}
	}
	var artifact bytes.Buffer
	if err := WriteAllDestsBenchJSON(&artifact, rows); err != nil {
		t.Fatal(err)
	}
	var back []AllDestsRow
	if err := json.Unmarshal(artifact.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(back) != len(rows) || back[0].Instance != rows[0].Instance {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, rows)
	}
}

// TestAllDestsBenchUnknownTopology pins the input-error path.
func TestAllDestsBenchUnknownTopology(t *testing.T) {
	_, err := AllDestsBench(context.Background(), AllDestsConfig{Topologies: []string{"Atlantis"}})
	if err == nil {
		t.Fatal("unknown topology accepted")
	}
}
