package atomicfield_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "obs")
}
