// Package atomic stubs sync/atomic for atomicfield fixtures. The analyzer
// matches by package name, so fixtures import the short path "atomic".
package atomic

func AddInt64(addr *int64, delta int64) int64 { *addr += delta; return *addr }
func LoadInt64(addr *int64) int64             { return *addr }
func StoreInt64(addr *int64, val int64)       { *addr = val }
func CompareAndSwapInt64(addr *int64, old, new int64) bool {
	if *addr == old {
		*addr = new
		return true
	}
	return false
}

type Int64 struct{ v int64 }

func (x *Int64) Load() int64           { return x.v }
func (x *Int64) Store(v int64)         { x.v = v }
func (x *Int64) Add(delta int64) int64 { x.v += delta; return x.v }
func (x *Int64) CompareAndSwap(old, new int64) bool {
	if x.v == old {
		x.v = new
		return true
	}
	return false
}
