// Package obs exercises atomicfield: mixed atomic/plain field access and
// atomic wrapper copies, each with a near-miss negative.
package obs

import "atomic"

type counters struct {
	hits   int64
	misses int64
}

func (c *counters) incr() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) racyRead() int64 {
	return c.hits // want `field hits is accessed via atomic\.\w+ elsewhere`
}

func (c *counters) racyWrite() {
	c.hits++ // want `field hits is accessed via atomic\.\w+ elsewhere`
}

func (c *counters) plainOnlyFieldIsFine() int64 {
	c.misses++ // near miss: misses is never touched atomically
	return c.misses
}

type gauge struct {
	v    atomic.Int64
	name string
}

func (g *gauge) set(x int64) { g.v.Store(x) }

func snapshotCopiesWrapper(g *gauge) int64 {
	cp := g.v // want `assignment copies atomic\.Int64 by value`
	return cp.Load()
}

func methodAccessIsFine(g *gauge) int64 {
	return g.v.Load() // near miss: wrapper methods are the atomic API
}

func nameIsFine(g *gauge) string {
	return g.name // near miss: not an atomic field
}
