// Package atomicfield enforces all-or-nothing atomicity on struct fields:
// a field that is ever accessed through sync/atomic (atomic.AddInt64,
// atomic.LoadUint32, ...) must be accessed that way everywhere. A single
// plain read or write of such a field is a data race the compiler will not
// flag and -race only catches when the interleaving actually happens in a
// test — obs counters and breaker state are the motivating targets.
//
// The analyzer is package-scoped (two passes over one package): first it
// collects every field whose address is taken by a sync/atomic call, then
// it reports every other selector resolving to one of those fields. Fields
// of the atomic.* wrapper types (atomic.Int64 and friends) are immune by
// construction — every access goes through their methods — but *copying*
// such a value is reported, since the copy forks the counter.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"syrep/internal/analysis"
)

// Analyzer is the atomicfield analysis.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "reports non-atomic access to struct fields that are accessed atomically elsewhere",
	Run:  run,
}

// atomicWrappers are the sync/atomic value types whose copies fork state.
var atomicWrappers = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func run(pass *analysis.Pass) error {
	atomicFields := make(map[*types.Var]string) // field -> atomic func used
	inAtomicCall := make(map[*ast.SelectorExpr]bool)

	// Pass A: find fields whose address feeds a sync/atomic call.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgName, funcName, ok := pass.PackageFuncCall(call)
			if !ok || pkgName != "atomic" || !isAtomicOp(funcName) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldVar(pass, sel); f != nil {
					atomicFields[f] = "atomic." + funcName
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}

	// Pass B: report plain accesses of those fields, and copies of atomic
	// wrapper values.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if inAtomicCall[n] {
					return true
				}
				f := fieldVar(pass, n)
				if f == nil {
					return true
				}
				if via, ok := atomicFields[f]; ok {
					pass.Reportf(n.Pos(), "field %s is accessed via %s elsewhere; this plain access races with it — use the atomic op everywhere",
						f.Name(), via)
				}
			case *ast.AssignStmt:
				checkWrapperCopies(pass, n.Lhs, n.Rhs)
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				checkWrapperCopies(pass, lhs, n.Values)
			}
			return true
		})
	}
	return nil
}

// isAtomicOp reports sync/atomic function names that operate on a *T
// pointer argument.
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldVar resolves sel to the struct field it selects, or nil.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// checkWrapperCopies reports assignments copying an atomic wrapper value
// (atomic.Int64 etc.) out of an existing location — the copy's state forks.
func checkWrapperCopies(pass *analysis.Pass, lhs, rhs []ast.Expr) {
	for i, e := range rhs {
		if len(lhs) == len(rhs) {
			if id, ok := lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		t := pass.TypeOf(e)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "atomic" || !atomicWrappers[obj.Name()] {
			continue
		}
		pass.Reportf(e.Pos(), "assignment copies atomic.%s by value; the copy's state forks from the original — share a pointer instead",
			obj.Name())
	}
}
