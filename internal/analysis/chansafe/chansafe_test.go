package chansafe_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/chansafe"
)

func TestChansafe(t *testing.T) {
	analysistest.Run(t, "testdata", chansafe.Analyzer, "server")
}
