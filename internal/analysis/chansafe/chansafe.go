// Package chansafe mechanizes the server's exactly-one-response invariant
// (DESIGN §8): a per-request response channel must be buffered (capacity
// ≥ 1) so the responder never blocks on an abandoned waiter, and must be
// sent to at most once per execution path. It also flags goroutines that
// send on unbuffered channels without a select — the shape that leaks the
// goroutine when the receiver has given up.
//
// Three checks, scoped to the server package (and fixtures named alike):
//
//  1. buffer: `make(chan T)` with no or zero capacity, bound to a
//     response-named variable or field (done, resp, result, reply, err,
//     out, ...), that is sent to somewhere in the package. Sends are
//     matched by object when the type info resolves them (a field's make
//     and its j.field <- send share the field object); a local that never
//     escapes its function is judged only by its own sends, so a
//     close-only completion channel (broadcast idiom) is exempt even when
//     an unrelated channel elsewhere shares its name. Locals that do
//     escape fall back to package-wide name tainting, because the send
//     usually happens behind a parameter with a different object.
//  2. double-send: a send on a channel expression from which another send
//     on the same expression is reachable in the CFG with no reassignment
//     of the variable in between (loop back edges count; the range head's
//     reassignment is the legitimate barrier).
//  3. goroutine-send: a `go func(){...}` sending, outside any select, on a
//     channel the enclosing function made unbuffered.
package chansafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"syrep/internal/analysis"
)

// Analyzer is the chansafe analysis.
var Analyzer = &analysis.Analyzer{
	Name: "chansafe",
	Doc:  "reports unbuffered response channels, per-path double sends, and select-free goroutine sends",
	Run:  run,
}

// responsePackages names the packages carrying the exactly-one-response
// protocol (by package name, so fixtures can live under short paths).
var responsePackages = map[string]bool{
	"server": true,
	// The churn controller's wake/exit channels follow the same protocol:
	// 1-buffered or select-wrapped, never a blocking send.
	"controller": true,
}

// responseName matches variable/field names that carry a response back to a
// waiter.
var responseName = regexp.MustCompile(`^(done|resp|response|result|res|reply|err|errc|out|ch)$`)

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !responsePackages[pass.Pkg.Name()] {
		return nil
	}

	// Package-wide: the channels that are ever sent to, by resolved object
	// (field sends through j.field match the field's make) and by trailing
	// name (the fallback for sends behind parameters, whose object differs
	// from the make-site local's).
	sent := collectSends(pass)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) {
						checkBufferedMake(pass, n.Lhs[i], rhs, sent)
					}
				}
			case *ast.KeyValueExpr:
				checkBufferedMake(pass, n.Key, n.Value, sent)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// lastName extracts the trailing identifier of a channel expression: "done"
// for both `done` and `j.done`.
func lastName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// unbufferedMake reports whether e is `make(chan T)` or `make(chan T, 0)`.
func unbufferedMake(pass *analysis.Pass, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil, false
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return nil, false
		}
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
		return nil, false
	}
	if len(call.Args) == 1 {
		return call, true
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
		return call, true
	}
	return nil, false
}

// sendSet is the package's observed sends: resolved channel objects plus
// trailing names as the imprecise fallback.
type sendSet struct {
	objs  map[types.Object]bool
	names map[string]bool
}

// collectSends scans the package once for every SendStmt's channel.
func collectSends(pass *analysis.Pass) sendSet {
	s := sendSet{objs: make(map[types.Object]bool), names: make(map[string]bool)}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			switch c := send.Chan.(type) {
			case *ast.Ident:
				if o := pass.TypesInfo.Uses[c]; o != nil {
					s.objs[o] = true
				}
			case *ast.SelectorExpr:
				if o := pass.TypesInfo.Uses[c.Sel]; o != nil {
					s.objs[o] = true
				}
			}
			if name := lastName(send.Chan); name != "" {
				s.names[name] = true
			}
			return true
		})
	}
	return s
}

// checkBufferedMake flags an unbuffered make bound to a response-named
// target that the package sends on. Close-only channels (the broadcast
// idiom) are exempt — close doesn't block — and a non-escaping local is
// judged only by sends on its own object, so it cannot be tainted by an
// unrelated channel that happens to share its name.
func checkBufferedMake(pass *analysis.Pass, target, value ast.Expr, sent sendSet) {
	name := lastName(target)
	if name == "" || !responseName.MatchString(name) {
		return
	}
	call, ok := unbufferedMake(pass, value)
	if !ok {
		return
	}
	obj := targetObject(pass, target)
	switch {
	case obj != nil && sent.objs[obj]:
		// A send resolves to this exact channel: report below.
	case obj != nil && isLocalVar(obj) && !escapes(pass, obj):
		// Never sent on directly and never leaves the function: the only
		// remaining uses are close and receive, which don't block senders.
		return
	case !sent.names[name]:
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: "response channel " + name + " is unbuffered; a send with no waiting receiver blocks the responder forever — make it 1-buffered",
		Fixes:   []analysis.Fix{bufferFix(call)},
	})
}

// targetObject resolves the make's binding target: the defined local for
// `res := make(...)`, the used local for `res = make(...)`, or the struct
// field for `job{done: make(...)}` (composite-literal keys live in Uses).
func targetObject(pass *analysis.Pass, target ast.Expr) types.Object {
	switch t := target.(type) {
	case *ast.Ident:
		if o := pass.TypesInfo.Defs[t]; o != nil {
			return o
		}
		return pass.TypesInfo.Uses[t]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[t.Sel]
	}
	return nil
}

// isLocalVar reports whether obj is a non-field variable.
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField()
}

// escapes reports whether any use of the local hands it beyond the
// function: passed to a call other than close, returned, stored into a
// composite literal, or appearing on an assignment's right-hand side.
// Receives (<-ch, range ch, select cases) and close(ch) are the benign
// uses that keep a channel local. Unknown contexts count as escapes, which
// degrades precision back to name tainting, never below it.
func escapes(pass *analysis.Pass, obj types.Object) bool {
	found := false
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj || found {
				return true
			}
			if len(stack) < 2 {
				found = true
				return true
			}
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SendStmt:
				if parent.Chan != ast.Expr(id) {
					// Sent as a value over another channel.
					found = true
				}
			case *ast.UnaryExpr:
				if parent.Op != token.ARROW {
					found = true
				}
			case *ast.RangeStmt:
				if parent.X != ast.Expr(id) {
					found = true
				}
			case *ast.CallExpr:
				fn, isIdent := parent.Fun.(*ast.Ident)
				if !isIdent || fn.Name != "close" {
					found = true
				}
			case *ast.AssignStmt:
				for _, r := range parent.Rhs {
					if r == ast.Expr(id) {
						found = true
					}
				}
			default:
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// bufferFix grows the make call's capacity to 1 by inserting ", 1" before
// the closing parenthesis.
func bufferFix(call *ast.CallExpr) analysis.Fix {
	return analysis.Fix{
		Message: "buffer the channel (capacity 1)",
		Edits: []analysis.Edit{{
			Pos:     call.Rparen,
			End:     call.Rparen,
			NewText: ", 1",
		}},
	}
}

// checkBody runs the CFG-based double-send check and the goroutine-send
// check over one function body.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.BuildCFG(body)

	// Collect the body's send entries by channel rendering.
	type sendSite struct {
		entry ast.Node
		send  *ast.SendStmt
		chans string
		base  string // base identifier for reassignment barriers
	}
	var sends []sendSite
	for _, blk := range g.Blocks {
		for _, e := range blk.Entries {
			analysis.WalkEntry(e, func(n ast.Node) bool {
				if send, ok := n.(*ast.SendStmt); ok {
					sends = append(sends, sendSite{
						entry: e,
						send:  send,
						chans: types.ExprString(send.Chan),
						base:  baseIdent(send.Chan),
					})
				}
				return true
			})
		}
	}

	for _, s := range sends {
		target := func(entry ast.Node) bool { return entrySendsOn(entry, s.chans) }
		barrier := func(entry ast.Node) bool { return entryReassigns(entry, s.chans, s.base) }
		if g.CanReach(s.entry, target, barrier) {
			pass.Reportf(s.send.Pos(), "second send on %s is reachable from this one with no reassignment; the exactly-one-response protocol allows one send per channel",
				s.chans)
		}
	}

	checkGoroutineSends(pass, g, body)
}

// baseIdent returns the root identifier of a channel expression ("j" for
// j.done, "done" for done).
func baseIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// entrySendsOn reports whether the entry contains a send on the channel
// rendering.
func entrySendsOn(entry ast.Node, chans string) bool {
	found := false
	analysis.WalkEntry(entry, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok && types.ExprString(send.Chan) == chans {
			found = true
		}
		return true
	})
	return found
}

// entryReassigns reports whether the entry assigns the channel expression or
// its base identifier — the barrier that legitimizes a send on the next
// loop iteration (e.g. the range head rebinding j in `for j := range jobs`).
func entryReassigns(entry ast.Node, chans, base string) bool {
	assign, ok := entry.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range assign.Lhs {
		if types.ExprString(l) == chans {
			return true
		}
		if id, ok := l.(*ast.Ident); ok && base != "" && id.Name == base {
			return true
		}
	}
	return false
}

// checkGoroutineSends flags `go func(){ ... ch <- v ... }()` where ch was
// made unbuffered in this body and the send sits outside any select.
func checkGoroutineSends(pass *analysis.Pass, g *analysis.CFG, body *ast.BlockStmt) {
	unbuffered := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			if _, ok := unbufferedMake(pass, rhs); ok {
				if id, isIdent := assign.Lhs[i].(*ast.Ident); isIdent {
					unbuffered[id.Name] = true
				}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		gostmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gostmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		// Sends inside a select clause are protected; collect them first.
		inSelect := make(map[*ast.SendStmt]bool)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if sel, ok := m.(*ast.SelectStmt); ok {
				for _, c := range sel.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							inSelect[send] = true
						}
					}
				}
			}
			return true
		})
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			send, ok := m.(*ast.SendStmt)
			if !ok || inSelect[send] {
				return true
			}
			if id, ok := send.Chan.(*ast.Ident); ok && unbuffered[id.Name] {
				pass.Reportf(send.Pos(), "goroutine sends on unbuffered %s outside a select; if the receiver is gone the goroutine leaks — buffer the channel or select with cancellation",
					id.Name)
			}
			return true
		})
		return true
	})
}
