// Package server exercises chansafe: unbuffered response channels, per-path
// double sends, and select-free goroutine sends, each with a near-miss.
package server

type response struct{ ok bool }

type job struct {
	done chan *response
}

// ---- check 1: response channels must be buffered ----

func newJobBad() *job {
	return &job{done: make(chan *response)} // want `response channel done is unbuffered`
}

func newJobGood() *job {
	return &job{done: make(chan *response, 1)} // near miss: 1-buffered is the protocol
}

func submit(resp chan *response) {
	res := make(chan *response) // want `response channel res is unbuffered`
	_ = res
	resp <- &response{}
}

func broadcastOnly() chan error {
	errc := make(chan error) // near miss: only ever closed; close doesn't block
	close(errc)
	return errc
}

// sendOnRes taints the name res so submit's make is reportable.
func sendOnRes(res chan *response) {
	res <- &response{}
}

// shutdownWait mirrors Server.Shutdown: done is only ever closed and
// received, so the sends on other channels named done (doubleSend et al.)
// must not taint this close-only local.
func shutdownWait(wait func()) {
	done := make(chan *response) // near miss: close-only local, judged by its own object
	go func() {
		wait()
		close(done)
	}()
	<-done
}

// ---- check 2: at most one send per path ----

func doubleSend(done chan *response) {
	done <- &response{} // want `second send on done is reachable`
	done <- &response{}
}

func resendInLoop(done chan *response, n int) {
	for i := 0; i < n; i++ {
		done <- &response{} // want `second send on done is reachable`
	}
}

func eitherBranchSends(done chan *response, ok bool) {
	if ok {
		done <- &response{ok: true} // near miss: branches are exclusive
	} else {
		done <- &response{}
	}
}

// worker mirrors the real worker loop: the range head rebinds j every
// iteration, so each send targets a fresh job's channel.
func worker(jobs chan *job) {
	for j := range jobs {
		j.done <- &response{ok: true} // near miss: j is reassigned by the range head
	}
}

// ---- check 3: goroutine sends need a buffer or a select ----

func spawnLeaky(v int) chan int {
	out := make(chan int) // want `response channel out is unbuffered`
	go func() {
		out <- v // want `goroutine sends on unbuffered out`
	}()
	return out
}

func spawnGuarded(v int, stop chan struct{}) chan int {
	sink := make(chan int)
	go func() {
		select { // near miss: the select pairs the send with cancellation
		case sink <- v:
		case <-stop:
		}
	}()
	return sink
}
