// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against // want comments, mirroring the x/tools package of the
// same name closely enough that the fixtures would port unchanged.
//
// Fixtures live under <testdata>/src/<importpath>/. Imports inside fixtures
// are resolved from <testdata>/src only — the harness never consults GOPATH,
// the module, or the network — so every imported package (including stand-ins
// for fmt, sort and the repo's own bdd/verify/... packages) must have a stub
// in the fixture tree. Stubs only need the declarations the fixtures touch.
//
// Expectations are written on the offending line:
//
//	table[k] = ref // want `bdd\.Ref stored into a map`
//
// Each backquoted or double-quoted string after "want" is a regexp that must
// match one diagnostic reported on that line. Lines without a want comment
// must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"syrep/internal/analysis"
)

// Run applies the analyzer to each fixture package and reports mismatches
// between diagnostics and // want expectations as test errors.
// Packages are processed in the order given, sharing one fact store, so a
// fixture package may consume facts exported while analyzing an earlier one
// (list dependencies first, as `go list -deps` would).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	imp := &fixtureImporter{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*types.Package),
	}
	facts := analysis.NewFactStore()
	for _, path := range pkgPaths {
		runOne(t, imp, a, path, facts)
	}
}

func runOne(t *testing.T, imp *fixtureImporter, a *analysis.Analyzer, path string, facts *analysis.FactStore) {
	t.Helper()
	files, info, tpkg, err := imp.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      imp.fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Facts:     facts,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: running on %s: %v", a.Name, path, err)
	}
	checkWants(t, imp.fset, files, pass.Diagnostics(), path)
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
}

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic, pkg string) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllString(text[i+len("want "):], -1) {
					var pat string
					if strings.HasPrefix(m, "`") {
						pat = strings.Trim(m, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(m)
						if err != nil {
							t.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, m, err)
							continue
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for i, w := range wants {
			if !matched[i] && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s:%d: [%s] %s", pkg, p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: missing diagnostic at %s:%d matching %q", pkg, w.file, w.line, w.text)
		}
	}
}

// fixtureImporter type-checks fixture packages from source, resolving every
// import from the same fixture tree.
type fixtureImporter struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*types.Package
}

// Import satisfies types.Importer for the fixtures' own imports.
func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.pkgs[path]; ok {
		return pkg, nil
	}
	_, _, pkg, err := imp.load(path)
	return pkg, err
}

func (imp *fixtureImporter) load(path string) ([]*ast.File, *types.Info, *types.Package, error) {
	dir := filepath.Join(imp.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fixture package %q: %w (stub it under testdata/src)", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("fixture package %q: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, imp.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking fixture %q: %w", path, err)
	}
	imp.pkgs[path] = tpkg
	return files, info, tpkg, nil
}
