package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// buildFromSrc parses a function body and builds its CFG.
func buildFromSrc(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fset
}

var spaces = regexp.MustCompile(`\s+`)

// entryLabel renders one block entry compactly.
func entryLabel(fset *token.FileSet, n ast.Node) string {
	if sh, ok := n.(*SelectHead); ok {
		if sh.HasDefault {
			return "select(default)"
		}
		return "select"
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return spaces.ReplaceAllString(buf.String(), " ")
}

// render flattens the graph into "bN[entries] -> succs" lines, skipping
// blocks that are empty and unreachable (builder scaffolding).
func render(t *testing.T, g *CFG, fset *token.FileSet) string {
	t.Helper()
	preds := make(map[*Block]int)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s]++
		}
	}
	var lines []string
	for _, b := range g.Blocks {
		if len(b.Entries) == 0 && preds[b] == 0 && b != g.Entry && b != g.Exit {
			continue
		}
		var entries []string
		for _, e := range b.Entries {
			entries = append(entries, entryLabel(fset, e))
		}
		succs := make([]int, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		var sb strings.Builder
		fmt.Fprintf(&sb, "b%d[%s]", b.Index, strings.Join(entries, "; "))
		if b == g.Exit {
			sb.WriteString(" exit")
		}
		if len(succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range succs {
				fmt.Fprintf(&sb, " b%d", s)
			}
		}
		lines = append(lines, sb.String())
	}
	return strings.Join(lines, "\n")
}

func expectCFG(t *testing.T, body, want string) {
	t.Helper()
	g, fset := buildFromSrc(t, body)
	got := render(t, g, fset)
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG mismatch\nbody:\n%s\ngot:\n%s\nwant:\n%s", body, got, want)
	}
}

func TestCFGIfElse(t *testing.T) {
	expectCFG(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	x = 4`, `
b0[x := 1; x > 0] -> b3 b4
b1[] exit
b2[x = 4] -> b1
b3[x = 2] -> b2
b4[x = 3] -> b2`)
}

// TestCFGLabeledLoop mirrors the bfs: labeled-break/continue shape of
// internal/network/paths.go — an outer labeled for over a queue with an
// inner loop that both continues and breaks the outer.
func TestCFGLabeledLoop(t *testing.T) {
	expectCFG(t, `
	i := 0
bfs:
	for i < 10 {
		for j := 0; j < 3; j++ {
			if j == i {
				continue bfs
			}
			if j > i {
				break bfs
			}
		}
		i++
	}
	i = -1`, `
b0[i := 0] -> b2
b1[] exit
b2[i < 10] -> b3 b5
b3[i = -1] -> b1
b4[] -> b2
b5[j := 0] -> b6
b6[j < 3] -> b7 b9
b7[i++] -> b4
b8[j++] -> b6
b9[j == i] -> b10 b11
b10[j > i] -> b12 b13
b11[] -> b4
b12[] -> b8
b13[] -> b3`)
}

// TestCFGSelectWithDefault mirrors the server drain loop: a select whose
// default branch keeps the loop non-blocking.
func TestCFGSelectWithDefault(t *testing.T) {
	expectCFG(t, `
	ch := make(chan int, 1)
	for {
		select {
		case v := <-ch:
			_ = v
		default:
			return
		}
	}`, `
b0[ch := make(chan int, 1)] -> b2
b1[] exit
b2[] -> b5
b4[] -> b2
b5[select(default)] -> b7 b8
b6[] -> b4
b7[v := <-ch; _ = v] -> b6
b8[return] -> b1`)
}

// TestCFGDeferredClosure: defers are recorded, not edges; the closure body
// stays inside the defer entry.
func TestCFGDeferredClosure(t *testing.T) {
	g, fset := buildFromSrc(t, `
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	work()`)
	got := render(t, g, fset)
	want := strings.TrimSpace(`
b0[mu.Lock(); defer func() { mu.Unlock() }(); work()] -> b1
b1[] exit`)
	if got != want {
		t.Errorf("CFG mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
	if len(g.Defers) != 1 {
		t.Fatalf("recorded %d defers, want 1", len(g.Defers))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	expectCFG(t, `
	switch x := f2(); x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	d()`, `
b0[x := f2(); x] -> b3 b4 b5
b1[] exit
b2[d()] -> b1
b3[1; a()] -> b4
b4[2; b()] -> b2
b5[c()] -> b2`)
}

// TestCFGSwitchNoDefault: without a default clause the tag block can fall
// straight through to the statement after the switch.
func TestCFGSwitchNoDefault(t *testing.T) {
	expectCFG(t, `
	switch x {
	case 1:
		a()
	}
	d()`, `
b0[x] -> b2 b3
b1[] exit
b2[d()] -> b1
b3[1; a()] -> b2`)
}

func TestCFGRangeLoop(t *testing.T) {
	expectCFG(t, `
	for _, v := range xs {
		use(v)
	}
	done()`, `
b0[xs] -> b2
b1[] exit
b2[_, v = xs] -> b3 b4
b3[done()] -> b1
b4[use(v)] -> b2`)
}

func TestCFGPanicEdge(t *testing.T) {
	expectCFG(t, `
	a()
	if bad {
		panic("x")
	}
	b()`, `
b0[a(); bad] -> b2 b3
b1[] exit
b2[b()] -> b1
b3[panic("x")] -> b1`)
}

func TestCFGGoto(t *testing.T) {
	expectCFG(t, `
	i := 0
retry:
	i++
	if i < 3 {
		goto retry
	}
	done()`, `
b0[i := 0] -> b2
b1[] exit
b2[i++; i < 3] -> b3 b4
b3[done()] -> b1
b4[] -> b2`)
}

func TestPathAvoiding(t *testing.T) {
	g, _ := buildFromSrc(t, `
	mu.Lock()
	if cond {
		return
	}
	mu.Unlock()`)
	lock := findEntry(t, g, func(n ast.Node) bool { return isCallNamed(n, "Lock") })
	avoid := func(n ast.Node) bool { return isCallNamed(n, "Unlock") }
	if !g.PathAvoiding(lock, avoid) {
		t.Error("early return skips Unlock; PathAvoiding should be true")
	}

	g2, _ := buildFromSrc(t, `
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	mu.Unlock()`)
	lock2 := findEntry(t, g2, func(n ast.Node) bool { return isCallNamed(n, "Lock") })
	if g2.PathAvoiding(lock2, avoid) {
		t.Error("every path unlocks; PathAvoiding should be false")
	}
}

func TestCanReachWithBarrier(t *testing.T) {
	g, _ := buildFromSrc(t, `
	for job := range jobs {
		send(job)
	}`)
	first := findEntry(t, g, func(n ast.Node) bool { return isCallNamed(n, "send") })
	reassigned := func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, l := range a.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "job" {
				return true
			}
		}
		return false
	}
	target := func(n ast.Node) bool { return isCallNamed(n, "send") }
	// send is reachable from itself via the back edge, but the range head
	// reassigns job on the way — the barrier must block the path.
	if g.CanReach(first, target, reassigned) {
		t.Error("range head reassignment should act as a barrier on the back edge")
	}
	if !g.CanReach(first, target, nil) {
		t.Error("without a barrier the back edge should make send reach itself")
	}
}

func TestForwardFixpoint(t *testing.T) {
	g, _ := buildFromSrc(t, `
	mu.Lock()
	for i := 0; i < 3; i++ {
		work()
	}
	mu.Unlock()
	after()`)
	// Track "lock held" as a may-fact.
	held := Forward[bool]{
		Init:  false,
		Equal: func(a, b bool) bool { return a == b },
		Join:  func(a, b bool) bool { return a || b },
		Transfer: func(in bool, n ast.Node) bool {
			if isCallNamed(n, "Lock") {
				return true
			}
			if isCallNamed(n, "Unlock") {
				return false
			}
			return in
		},
	}
	in := held.Run(g)
	work := findEntry(t, g, func(n ast.Node) bool { return isCallNamed(n, "work") })
	after := findEntry(t, g, func(n ast.Node) bool { return isCallNamed(n, "after") })
	workBlock := blockOf(t, g, work)
	afterBlock := blockOf(t, g, after)
	if !in[workBlock] {
		t.Error("lock should be held at loop body entry")
	}
	// after() sits in the same block as Unlock, after it; replay the block.
	fact := in[afterBlock]
	for _, e := range afterBlock.Entries {
		if e == after {
			break
		}
		fact = held.Transfer(fact, e)
	}
	if fact {
		t.Error("lock should be released before after()")
	}
}

// ---- helpers ----

func findEntry(t *testing.T, g *CFG, match func(ast.Node) bool) ast.Node {
	t.Helper()
	for _, b := range g.Blocks {
		for _, e := range b.Entries {
			found := false
			WalkEntry(e, func(n ast.Node) bool {
				if match(n) {
					found = true
				}
				return true
			})
			if found {
				return e
			}
		}
	}
	t.Fatal("entry not found")
	return nil
}

func blockOf(t *testing.T, g *CFG, entry ast.Node) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, e := range b.Entries {
			if e == entry {
				return b
			}
		}
	}
	t.Fatal("block not found")
	return nil
}

// isCallNamed reports whether n contains a call whose function name or
// selector is name.
func isCallNamed(n ast.Node, name string) bool {
	found := false
	WalkEntry(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == name {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				found = true
			}
		}
		return true
	})
	return found
}
