package analysis

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// loadTagmod loads the committed fixture module under testdata/tagmod with
// the given configuration and returns its single package.
func loadTagmod(t *testing.T, cfg LoadConfig) *Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "tagmod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadWith(cfg, dir, ".")
	if err != nil {
		t.Fatalf("LoadWith(%+v): %v", cfg, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// TestLoadWithoutTagsSkipsGatedFile pins the default: a tag-less load must
// not see the //go:build experimental file.
func TestLoadWithoutTagsSkipsGatedFile(t *testing.T) {
	pkg := loadTagmod(t, LoadConfig{})
	if pkg.Types.Scope().Lookup("Base") == nil {
		t.Error("Base not found; the fixture did not load at all")
	}
	if pkg.Types.Scope().Lookup("Experimental") != nil {
		t.Error("Experimental found in a tag-less load; build tags leaked in")
	}
	if got := len(pkg.Syntax); got != 1 {
		t.Errorf("parsed %d files, want 1", got)
	}
}

// TestLoadWithTagsSeesGatedFile is the regression test for the loader
// dropping build tags: with the experimental tag set, the gated file must be
// parsed and type-checked like CI's tagged builds compile it.
func TestLoadWithTagsSeesGatedFile(t *testing.T) {
	pkg := loadTagmod(t, LoadConfig{Tags: []string{"experimental"}})
	if pkg.Types.Scope().Lookup("Experimental") == nil {
		t.Fatal("Experimental not found; -tags was not propagated to go list")
	}
	if got := len(pkg.Syntax); got != 2 {
		t.Errorf("parsed %d files, want 2", got)
	}
}

// TestLoadWithRace loads race-instrumented export data, matching what
// `go test -race` compiles. Skipped where the toolchain cannot build race
// variants (no cgo).
func TestLoadWithRace(t *testing.T) {
	if out, err := exec.Command("go", "env", "CGO_ENABLED").Output(); err != nil || string(out) != "1\n" {
		t.Skip("race requires cgo")
	}
	pkg := loadTagmod(t, LoadConfig{Race: true})
	if pkg.Types.Scope().Lookup("Base") == nil {
		t.Error("Base not found under -race load")
	}
}
