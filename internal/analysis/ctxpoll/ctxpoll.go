// Package ctxpoll flags unbounded loops in pipeline packages that never
// consult their context.
//
// The resilience supervisor's anytime guarantees — bounded cancellation
// latency, per-stage budgets, prompt Partial results on timeout — hold only
// if every potentially long-running loop in the synthesis pipeline polls
// ctx.Err() (or delegates to a callee that takes the context). A single
// unpolled loop reintroduces exactly the hang the supervisor exists to
// prevent, and such loops regress silently: nothing fails until an operator
// hits Ctrl-C and nothing happens.
//
// The analyzer inspects the pipeline packages (core, resilience, encode,
// verify, repair, heuristic, reduce, synth, server) and reports `for {}` and
// `for cond {}` loops — the potentially unbounded shapes — whose condition
// and body neither
//
//   - call Err or Done on a context.Context value, nor
//   - pass a context.Context to any function (delegating the poll),
//
// Three-clause counter loops and range loops are structurally bounded and
// never reported. Loops that are bounded for non-structural reasons (a BFS
// draining a queue of at most |V| nodes, say) are suppressed with
// //syreplint:ignore ctxpoll <reason>.
package ctxpoll

import (
	"go/ast"

	"syrep/internal/analysis"
)

// Analyzer is the ctxpoll analysis.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "reports unbounded loops in pipeline packages that never poll their context",
	Run:  run,
}

// pipelinePackages names (by package name, not import path, so fixtures can
// live under short paths) the packages whose loops run under the anytime
// supervisor's deadlines.
var pipelinePackages = map[string]bool{
	"core":       true,
	"resilience": true,
	"encode":     true,
	"verify":     true,
	"repair":     true,
	"heuristic":  true,
	"reduce":     true,
	"synth":      true,
	// The synthesis service's workers run supervisor pipelines and drain
	// loops; an unpolled loop there would stall graceful shutdown.
	"server": true,
	// The synthesis cache's singleflight waiters block on in-flight
	// leaders; a wait loop that cannot observe cancellation would pin a
	// worker for the leader's whole run.
	"cache": true,
	// The churn controller's reconcile and pusher loops run for the
	// process lifetime; a loop that cannot observe cancellation would hang
	// the SIGTERM drain.
	"controller": true,
	// The write-ahead journal sits on the controller's event path: its
	// replay and compaction walks run while the controller holds its state
	// lock, so an unbounded loop there stalls event admission.
	"journal": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !pipelinePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			// Three-clause loops (for i := 0; i < n; i++) are bounded by
			// construction; range loops are a different node type entirely.
			if loop.Init != nil || loop.Post != nil {
				return true
			}
			if !pollsContext(pass, loop) {
				shape := "for {...}"
				if loop.Cond != nil {
					shape = "for cond {...}"
				}
				pass.Reportf(loop.Pos(),
					"unbounded %s loop never polls a context; check ctx.Err() in the loop (or pass ctx to the work it calls) so cancellation and stage budgets stay bounded",
					shape)
			}
			return true
		})
	}
	return nil
}

// pollsContext reports whether the loop's condition or body consults a
// context: an Err/Done call on a context.Context value, or any call that
// receives a context.Context argument (the callee then owns the poll).
func pollsContext(pass *analysis.Pass, loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContext(pass, sel.X) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if isContext(pass, arg) {
				found = true
				return false
			}
		}
		return true
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	if !found {
		ast.Inspect(loop.Body, check)
	}
	return found
}

// isContext reports whether e's static type is context.Context.
func isContext(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	return t != nil && analysis.IsNamedType(t, "context", "Context")
}
