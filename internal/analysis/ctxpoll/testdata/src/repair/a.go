// Package repair is a ctxpoll fixture named after a pipeline package.
package repair

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func infiniteNoPoll() {
	n := 0
	for { // want `unbounded for \{...\} loop never polls a context`
		n++
		if n > 10 {
			break
		}
	}
}

func condNoPoll(busy bool) {
	for busy { // want `unbounded for cond \{...\} loop never polls a context`
		busy = false
	}
}

func pollsErr(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

func pollsErrInCond(ctx context.Context) {
	for ctx.Err() == nil {
	}
}

func selectsDone(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

func delegates(ctx context.Context) error {
	for {
		if err := work(ctx); err != nil {
			return err
		}
	}
}

func counterLoop() int {
	total := 0
	for i := 0; i < 100; i++ {
		total += i
	}
	return total
}

func rangeLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func boundedDrain(queue []int) {
	//syreplint:ignore ctxpoll drains a queue of at most len(queue) items
	for len(queue) > 0 {
		queue = queue[1:]
	}
}
