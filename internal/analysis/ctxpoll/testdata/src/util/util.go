// Package util is outside the pipeline allowlist: its loops are not the
// supervisor's concern and must produce no diagnostics.
package util

func spin() {
	n := 0
	for {
		n++
		if n > 10 {
			break
		}
	}
}
