// Package context stubs the standard library for the ctxpoll fixtures; only
// the declarations the fixtures touch are present.
package context

type Context interface {
	Err() error
	Done() <-chan struct{}
}

func Background() Context { return nil }
