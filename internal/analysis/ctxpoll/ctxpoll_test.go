package ctxpoll_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpoll.Analyzer, "repair", "util")
}
