// Package analysis is a dependency-free re-implementation of the core of
// golang.org/x/tools/go/analysis, just large enough to host SyRep's custom
// static checkers (see the sibling packages bddref, maporder and protecterr).
//
// The repo deliberately has no external module dependencies, so instead of
// pulling in x/tools this package defines the same Analyzer/Pass/Diagnostic
// shape over the standard library's go/ast and go/types, plus a loader
// (load.go) that type-checks packages using `go list -export` metadata and
// the toolchain's export data. Analyzers written against this API port to
// the real x/tools API mechanically should the dependency ever be allowed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //syreplint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Reportf. The error return is for operational failures, not
	// findings.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions of Files back to file/line/column.
	Fset *token.FileSet
	// Files is the parsed syntax of the package (test files excluded).
	Files []*ast.File
	// Pkg and TypesInfo are the type-checked package and its use/def maps.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the cross-package fact store of the current run, shared by
	// all passes of the same analyzer. Nil when running without one.
	Facts *FactStore

	diagnostics []Diagnostic
	ignores     map[string][]ignoreDirective // filename -> directives
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Fixes are optional mechanical corrections, applied only under
	// `syrep-lint -fix`.
	Fixes []Fix
}

// Fix is one suggested correction: a set of textual edits that together
// resolve the finding.
type Fix struct {
	Message string
	Edits   []Edit
}

// Edit replaces source in [Pos, End) with NewText. A pure insertion has
// Pos == End.
type Edit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Position resolves the diagnostic's file position via fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Reportf records a finding unless a //syreplint:ignore directive covers it.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...any) {
	pass.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a finding (with optional fixes) unless a
// //syreplint:ignore directive covers it. The Analyzer field is filled in
// by the pass.
func (pass *Pass) Report(d Diagnostic) {
	if pass.ignored(d.Pos) {
		return
	}
	d.Analyzer = pass.Analyzer.Name
	pass.diagnostics = append(pass.diagnostics, d)
}

// Diagnostics returns the findings recorded so far, in position order.
func (pass *Pass) Diagnostics() []Diagnostic {
	out := append([]Diagnostic(nil), pass.diagnostics...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ignoreDirective is a parsed //syreplint:ignore comment. It suppresses the
// named analyzers (or all, when names is empty) on its own line and the line
// directly below it.
type ignoreDirective struct {
	line  int
	names []string
}

// ignorePrefix introduces a suppression comment:
//
//	//syreplint:ignore maporder NewCube sorts and dedups the collected vars
//
// The first word after "ignore" is a comma-separated analyzer list; the rest
// of the line documents why suppression is sound and is mandatory by
// convention (the analyzers do not enforce the prose, reviewers do).
const ignorePrefix = "//syreplint:ignore"

// buildIgnores scans the files' comments once per pass.
func (pass *Pass) buildIgnores() {
	pass.ignores = make(map[string][]ignoreDirective)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				var names []string
				if fields := strings.Fields(rest); len(fields) > 0 {
					names = strings.Split(fields[0], ",")
				}
				p := pass.Fset.Position(c.Pos())
				pass.ignores[p.Filename] = append(pass.ignores[p.Filename], ignoreDirective{
					line:  p.Line,
					names: names,
				})
			}
		}
	}
}

// ignored reports whether a directive suppresses this analyzer at pos.
func (pass *Pass) ignored(pos token.Pos) bool {
	if pass.ignores == nil {
		pass.buildIgnores()
	}
	p := pass.Fset.Position(pos)
	for _, d := range pass.ignores[p.Filename] {
		if p.Line != d.line && p.Line != d.line+1 {
			continue
		}
		if len(d.names) == 0 {
			return true
		}
		for _, n := range d.names {
			if n == pass.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// Run applies every analyzer to the package and returns the combined
// findings in position order. Analyzers that rely on cross-package facts
// should be driven through RunPackages instead.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPackage(pkg, analyzers, nil)
}

// RunOne applies one analyzer to one package against a shared fact store
// (nil is allowed: fact export/import become no-ops).
func RunOne(pkg *Package, a *Analyzer, facts *FactStore) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Facts:     facts,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	return pass.Diagnostics(), nil
}

func runPackage(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		ds, err := RunOne(pkg, a, facts)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// RunPackages applies every analyzer to every package, sharing one fact
// store per analyzer across the whole run. Packages must be given in
// dependency order (dependencies first — `go list -deps` order, which Load
// preserves) so facts about a dependency exist before its dependents are
// analyzed. perAnalyzer, when non-nil, observes each analyzer's findings
// across all packages (for timing and per-analyzer reporting).
func RunPackages(pkgs []*Package, analyzers []*Analyzer, perAnalyzer func(a *Analyzer, ds []Diagnostic)) ([]Diagnostic, error) {
	facts := NewFactStore()
	var out []Diagnostic
	for _, a := range analyzers {
		var ds []Diagnostic
		for _, pkg := range pkgs {
			d, err := RunOne(pkg, a, facts)
			if err != nil {
				return nil, err
			}
			ds = append(ds, d...)
		}
		if perAnalyzer != nil {
			perAnalyzer(a, ds)
		}
		out = append(out, ds...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}
