package analysis

// cfg.go turns one function body into a control-flow graph and offers the
// path queries the concurrency analyzers (locksafe, chansafe, spanpair) ask
// of it. The builder is deliberately small — basic blocks of flattened
// statement entries plus successor edges — but it models the control shapes
// that actually occur in this repository: if/else, all three for forms,
// switch/type-switch with fallthrough, select (with and without default),
// labeled break/continue, goto, early return, and panic calls. Defers are
// recorded separately: they do not create edges (they run during unwinding,
// which the graph does not model) but analyzers consult them to decide
// whether a cleanup is panic-safe.
//
// Block entries are *flattened*: a compound statement contributes only its
// control expression (an if's condition, a switch's tag, a range's operand)
// to the block that evaluates it, never its sub-statements — those live in
// their own blocks. An analyzer can therefore inspect an entry's subtree
// without double-visiting statements owned by other blocks. The only
// synthetic entry is *SelectHead, standing for the blocking select point
// itself (its communication clauses follow as successors).

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: entries execute in order, then control moves to
// one of Succs (an empty Succs list means the block ends the function —
// normally by flowing into the CFG's synthetic exit).
type Block struct {
	// Index is the block's position in CFG.Blocks (entry block is 0).
	Index int
	// Entries are the flattened statement/expression nodes evaluated in this
	// block, in execution order. See the package comment for flattening.
	Entries []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// SelectHead is the synthetic entry standing for a select statement's
// blocking point. Its clauses' bodies are successor blocks; the head itself
// is where the goroutine parks when no case is ready.
type SelectHead struct {
	// Sel is the select statement.
	Sel *ast.SelectStmt
	// HasDefault reports whether the select can proceed immediately.
	HasDefault bool
}

// Pos implements ast.Node.
func (s *SelectHead) Pos() token.Pos { return s.Sel.Pos() }

// End implements ast.Node.
func (s *SelectHead) End() token.Pos { return s.Sel.End() }

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block, entry first. Unreachable blocks (after a
	// return, say) are retained but have no predecessors.
	Blocks []*Block
	// Entry is Blocks[0].
	Entry *Block
	// Exit is the synthetic, empty exit block every completed path reaches.
	Exit *Block
	// Defers lists the defer statements in source order. They run during
	// unwinding and at return; analyzers treat "a defer releases it" as
	// covering every exit path, including panic edges.
	Defers []*ast.DeferStmt

	// comm marks statements that are a select clause's communication op;
	// they never block by themselves (the SelectHead accounts for the wait).
	comm map[ast.Stmt]bool

	where map[ast.Node]entryRef // entry node -> its block and index
}

// entryRef locates one entry inside the graph.
type entryRef struct {
	block *Block
	index int
}

// IsCommClause reports whether stmt is the communication operation of a
// select clause (and thus never blocks on its own).
func (g *CFG) IsCommClause(stmt ast.Stmt) bool { return g.comm[stmt] }

// BuildCFG constructs the control-flow graph of body. fn is only used for
// recovering from pathological inputs; a nil body yields a two-block graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{comm: make(map[ast.Stmt]bool), where: make(map[ast.Node]entryRef)}
	b := &cfgBuilder{g: g, labels: make(map[string]*loopFrame), gotoTargets: make(map[string]*Block)}
	entry := b.newBlock()
	g.Entry = entry
	exit := b.newBlock()
	g.Exit = exit
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(exit)
	for _, pg := range b.pendingGotos {
		if target, ok := b.gotoTargets[pg.label]; ok {
			pg.from.Succs = append(pg.from.Succs, target)
		} else {
			// Unresolvable goto (label in dead code): fall to exit so the
			// path queries stay conservative.
			pg.from.Succs = append(pg.from.Succs, exit)
		}
	}
	// Index entries for the path queries.
	for _, blk := range g.Blocks {
		for i, e := range blk.Entries {
			g.where[e] = entryRef{block: blk, index: i}
		}
	}
	return g
}

// loopFrame is the break/continue target pair of one enclosing loop, switch,
// or select (switch/select frames have a nil continueTo).
type loopFrame struct {
	breakTo    *Block
	continueTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil while the current position is unreachable

	frames       []*loopFrame          // innermost last
	labels       map[string]*loopFrame // labeled loop/switch frames
	gotoTargets  map[string]*Block
	pendingGotos []pendingGoto

	// pendingLabel holds a label naming the *next* loop/switch statement,
	// so "outer: for {...}" registers outer's break/continue targets.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends an entry to the current block (no-op while unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Entries = append(b.cur.Entries, n)
	}
}

// jump wires the current block to target and leaves the position
// unreachable; startBlock opens a fresh reachable block.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
	}
	b.cur = nil
}

func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

// jumpAndStart closes the current block into target and continues there —
// the normal fallthrough between consecutive regions.
func (b *cfgBuilder) jumpAndStart(target *Block) {
	b.jump(target)
	b.startBlock(target)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
		default:
			// A plain labeled statement is a goto target.
			blk := b.newBlock()
			b.jumpAndStart(blk)
			b.gotoTargets[s.Label.Name] = blk
			b.stmt(s.Stmt)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.branchTo(s, func(f *loopFrame) *Block { return f.breakTo })
		case token.CONTINUE:
			b.branchTo(s, func(f *loopFrame) *Block { return f.continueTo })
		case token.GOTO:
			if b.cur != nil {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder (the clause's tail block falls
			// through); nothing to record here.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.jump(thenBlk) // cond -> then
		b.startBlock(thenBlk)
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			if condBlock != nil {
				condBlock.Succs = append(condBlock.Succs, elseBlk)
			}
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jump(after)
		} else if condBlock != nil {
			condBlock.Succs = append(condBlock.Succs, after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.jumpAndStart(head)
		if s.Cond != nil {
			b.add(s.Cond)
			// head -> after when the condition fails.
			head.Succs = append(head.Succs, after)
		}
		frame := &loopFrame{breakTo: after, continueTo: post}
		b.pushFrame(frame)
		body := b.newBlock()
		b.jumpAndStart(body)
		b.stmtList(s.Body.List)
		b.jumpAndStart(post)
		if s.Post != nil {
			b.add(s.Post)
		}
		b.jump(head) // back edge
		b.popFrame()
		b.startBlock(after)

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		after := b.newBlock()
		b.jumpAndStart(head)
		// The range head assigns the iteration variables; represent the
		// assignment so reassignment barriers (chansafe) can see it.
		if s.Key != nil || s.Value != nil {
			b.add(&ast.AssignStmt{
				Lhs:    rangeLhs(s),
				TokPos: s.For,
				Tok:    token.ASSIGN,
				Rhs:    []ast.Expr{s.X},
			})
		}
		head.Succs = append(head.Succs, after) // ranged-out edge
		frame := &loopFrame{breakTo: after, continueTo: head}
		b.pushFrame(frame)
		body := b.newBlock()
		b.jumpAndStart(body)
		b.stmtList(s.Body.List)
		b.jump(head) // back edge
		b.popFrame()
		b.startBlock(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, true)

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		b.add(&SelectHead{Sel: s, HasDefault: hasDefault})
		head := b.cur
		after := b.newBlock()
		b.cur = nil
		frame := &loopFrame{breakTo: after}
		b.pushFrame(frame)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			if head != nil {
				head.Succs = append(head.Succs, clause)
			}
			b.startBlock(clause)
			if cc.Comm != nil {
				b.g.comm[cc.Comm] = true
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.popFrame()
		if head != nil && len(s.Body.List) == 0 {
			// select{} blocks forever; no successors.
		}
		b.startBlock(after)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
		}

	default:
		// Assignments, sends, declarations, go statements, inc/dec, empty
		// statements: straight-line entries.
		b.add(s)
	}
}

// rangeLhs collects the non-blank assignment targets of a range header.
func rangeLhs(s *ast.RangeStmt) []ast.Expr {
	var lhs []ast.Expr
	if s.Key != nil {
		lhs = append(lhs, s.Key)
	}
	if s.Value != nil {
		lhs = append(lhs, s.Value)
	}
	return lhs
}

// caseClauses wires a (type) switch's clauses: every clause is a successor
// of the block evaluating the tag; fallthrough chains clause bodies.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, typeSwitch bool) {
	head := b.cur
	after := b.newBlock()
	b.cur = nil
	frame := &loopFrame{breakTo: after}
	b.pushFrame(frame)

	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blocks[i] = b.newBlock()
		if head != nil {
			head.Succs = append(head.Succs, blocks[i])
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.startBlock(blocks[i])
		if !typeSwitch {
			for _, e := range cc.List {
				b.add(e)
			}
		}
		b.stmtList(cc.Body)
		// A trailing fallthrough continues into the next clause's body.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.jump(blocks[i+1])
				continue
			}
		}
		b.jump(after)
	}
	b.popFrame()
	if head != nil && !hasDefault {
		// No default: the switch may match nothing and fall through.
		head.Succs = append(head.Succs, after)
	}
	b.startBlock(after)
}

// branchTo resolves a break/continue (possibly labeled) to its target block.
func (b *cfgBuilder) branchTo(s *ast.BranchStmt, pick func(*loopFrame) *Block) {
	if b.cur == nil {
		return
	}
	var frame *loopFrame
	if s.Label != nil {
		frame = b.labels[s.Label.Name]
	} else {
		// Innermost frame with the requested target (continue skips
		// switch/select frames, whose continueTo is nil).
		for i := len(b.frames) - 1; i >= 0; i-- {
			if pick(b.frames[i]) != nil {
				frame = b.frames[i]
				break
			}
		}
	}
	if frame == nil || pick(frame) == nil {
		b.jump(b.g.Exit) // malformed; stay conservative
		return
	}
	b.jump(pick(frame))
}

func (b *cfgBuilder) pushFrame(f *loopFrame) {
	b.frames = append(b.frames, f)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = f
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// WalkEntry visits entry's subtree in source order, skipping nested
// function literal bodies (they execute on their own schedule, not at this
// entry) and handling the synthetic SelectHead (visited as itself, without
// descending — its clauses live in successor blocks). visit returning false
// prunes the subtree, as with ast.Inspect.
func WalkEntry(entry ast.Node, visit func(ast.Node) bool) {
	if sh, ok := entry.(*SelectHead); ok {
		visit(sh)
		return
	}
	ast.Inspect(entry, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			visit(n)
			return false
		}
		return visit(n)
	})
}

// ---- Path queries ----------------------------------------------------------

// PathAvoiding reports whether some execution path from the entry `from`
// (exclusive) to the function exit avoids every entry for which avoid
// returns true. This is the "release may be missed" query: from a Lock with
// avoid=Unlock, true means a path returns with the mutex still held.
func (g *CFG) PathAvoiding(from ast.Node, avoid func(ast.Node) bool) bool {
	ref, ok := g.where[from]
	if !ok {
		return false
	}
	// Walk the remainder of from's block, then DFS over successors.
	for i := ref.index + 1; i < len(ref.block.Entries); i++ {
		if avoid(ref.block.Entries[i]) {
			return false
		}
	}
	seen := make(map[*Block]bool)
	var dfs func(blk *Block) bool
	dfs = func(blk *Block) bool {
		if blk == g.Exit {
			return true
		}
		if seen[blk] {
			return false
		}
		seen[blk] = true
		for _, e := range blk.Entries {
			if avoid(e) {
				return false
			}
		}
		if len(blk.Succs) == 0 {
			// Dead end that is not the exit (e.g. select{}): not a
			// completed path.
			return false
		}
		for _, s := range blk.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range ref.block.Succs {
		if dfs(s) {
			return true
		}
	}
	return len(ref.block.Succs) == 0 && ref.block == g.Exit
}

// CanReach reports whether an entry satisfying target is reachable from the
// entry `from` (exclusive) along a path on which no intermediate entry
// satisfies barrier. Both from-to-target endpoints may sit in the same block
// or across loops (back edges count, so a node can reach itself).
func (g *CFG) CanReach(from ast.Node, target, barrier func(ast.Node) bool) bool {
	ref, ok := g.where[from]
	if !ok {
		return false
	}
	scan := func(blk *Block, start int) (hit bool, blocked bool) {
		for i := start; i < len(blk.Entries); i++ {
			if target(blk.Entries[i]) {
				return true, false
			}
			if barrier != nil && barrier(blk.Entries[i]) {
				return false, true
			}
		}
		return false, false
	}
	if hit, blocked := scan(ref.block, ref.index+1); hit {
		return true
	} else if blocked {
		return false
	}
	seen := make(map[*Block]bool)
	var dfs func(blk *Block) bool
	dfs = func(blk *Block) bool {
		if seen[blk] {
			return false
		}
		seen[blk] = true
		if hit, blocked := scan(blk, 0); hit {
			return true
		} else if blocked {
			return false
		}
		for _, s := range blk.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range ref.block.Succs {
		if dfs(s) {
			return true
		}
	}
	return false
}

// ---- Forward may-analysis --------------------------------------------------

// Forward is a forward dataflow analysis over a CFG. Facts flow from the
// entry block along successor edges; Join merges facts at control-flow
// merges and Transfer folds one entry into a fact. The analysis iterates to
// a fixpoint, so Join/Transfer must be monotone and the fact domain of
// finite height (sets over the function's finitely many expressions are).
type Forward[T any] struct {
	// Init is the fact at function entry.
	Init T
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b T) bool
	// Join merges two incoming facts (a may-analysis uses union).
	Join func(a, b T) T
	// Transfer folds entry n into fact in, returning the fact after n.
	Transfer func(in T, n ast.Node) T
}

// Run computes the fact holding at the *entry* of every block. Use Transfer
// to replay a block's entries when per-entry facts are needed.
func (f Forward[T]) Run(g *CFG) map[*Block]T {
	in := make(map[*Block]T, len(g.Blocks))
	in[g.Entry] = f.Init
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		fact := in[blk]
		for _, e := range blk.Entries {
			fact = f.Transfer(fact, e)
		}
		for _, s := range blk.Succs {
			cur, ok := in[s]
			next := fact
			if ok {
				next = f.Join(cur, fact)
			}
			if !ok || !f.Equal(cur, next) {
				in[s] = next
				work = append(work, s)
			}
		}
	}
	return in
}
