// Package protecterr flags dropped error returns from the SyRep entry
// points where an ignored error is not merely sloppy but wrong-answer
// inducing.
//
// The BDD engine converts node-table overflow into bdd.ErrNodeLimit via
// Manager.Protect; a caller that discards that error treats a resource
// failure as "formula is false" and the synthesis pipeline then emits a
// routing table that silently under-approximates resilience. Likewise a
// dropped error from Verify/Repair/encode entry points turns "could not
// check" into "checked, fine". `go vet` has no such check and errcheck is
// an external dependency, so this analyzer hard-codes the repo's critical
// call list.
//
// Both plain expression statements (`m.Protect(...)`) and blank assignments
// of the error component (`res, _ := verify.Check(...)`) are reported.
package protecterr

import (
	"go/ast"
	"go/types"

	"syrep/internal/analysis"
)

// Analyzer is the protecterr analysis.
var Analyzer = &analysis.Analyzer{
	Name: "protecterr",
	Doc:  "reports discarded errors from Protect, verify, repair and encode/synthesis entry points",
	Run:  run,
}

// methodTargets lists (receiver package, receiver type, method) triples whose
// error result must be consumed.
var methodTargets = []struct{ pkg, typ, name string }{
	{"bdd", "Manager", "Protect"},
	{"routing", "Table", "Set"},
	{"routing", "Table", "PunchHole"},
	{"routing", "Table", "Validate"},
}

// funcTargets maps package name -> function names whose error result must be
// consumed. Identification is by package *name* so analysistest fixtures can
// stub these packages under short import paths.
var funcTargets = map[string]map[string]bool{
	"verify": {"Check": true, "MaxResilience": true},
	"encode": {"Solve": true, "Enumerate": true, "BuildSymbolic": true},
	"synth":  {"Baseline": true, "Holes": true},
	"repair": {"Repair": true},
	"core":   {"Synthesize": true, "Repair": true},
	"syrep":  {"Synthesize": true, "Repair": true, "Verify": true, "MaxResilience": true},
	"heuristic": {
		"Generate": true, "Generate1Resilient": true, "GenerateWithInfo": true,
	},
	"reduce": {"Apply": true},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := targetCall(pass, call); ok && returnsError(pass, call) {
						pass.Reportf(call.Pos(),
							"result of %s dropped; an ignored error here turns a resource or verification failure into a wrong answer",
							name)
					}
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.GoStmt:
				if name, ok := targetCall(pass, n.Call); ok && returnsError(pass, n.Call) {
					pass.Reportf(n.Call.Pos(),
						"result of %s dropped by go statement; run it synchronously or collect the error", name)
				}
			case *ast.DeferStmt:
				if name, ok := targetCall(pass, n.Call); ok && returnsError(pass, n.Call) {
					pass.Reportf(n.Call.Pos(),
						"result of %s dropped by defer; wrap it in a closure that records the error", name)
				}
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `_ = target(...)` and multi-value forms whose error
// component lands in the blank identifier, e.g. `v, _ := verify.Check(...)`.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Only the single-call form can discard an error positionally.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := targetCall(pass, call)
	if !ok {
		return
	}
	results := resultTypes(pass, call)
	for i, lhs := range as.Lhs {
		id, isIdent := lhs.(*ast.Ident)
		if !isIdent || id.Name != "_" {
			continue
		}
		if i < len(results) && isErrorType(results[i]) {
			pass.Reportf(as.Pos(),
				"error result of %s assigned to blank identifier; handle it — a dropped bdd.ErrNodeLimit or verification failure corrupts downstream results",
				name)
			return
		}
	}
}

// targetCall reports whether call is one of the critical entry points and
// returns a display name for diagnostics.
func targetCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	for _, t := range methodTargets {
		if pass.MethodCallOn(call, t.pkg, t.typ, t.name) {
			return t.typ + "." + t.name, true
		}
	}
	if pkg, name, ok := pass.PackageFuncCall(call); ok {
		if names, ok := funcTargets[pkg]; ok && names[name] {
			return pkg + "." + name, true
		}
	}
	return "", false
}

// returnsError reports whether the call has at least one error-typed result.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, t := range resultTypes(pass, call) {
		if isErrorType(t) {
			return true
		}
	}
	return false
}

func resultTypes(pass *analysis.Pass, call *ast.CallExpr) []types.Type {
	t := pass.TypeOf(call)
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "error"
}
