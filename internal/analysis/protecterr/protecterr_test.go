package protecterr_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/protecterr"
)

func TestProtectErr(t *testing.T) {
	analysistest.Run(t, "testdata", protecterr.Analyzer, "a")
}
