// Package bdd is a fixture stub: the analyzer matches Manager.Protect by
// receiver package name and type.
package bdd

type Ref int32

type Manager struct{}

func New(vars int) *Manager { return &Manager{} }

func (m *Manager) Protect(fn func() error) error { return fn() }
func (m *Manager) NumNodes() int                 { return 0 }
