// Fixtures for the protecterr analyzer.
package a

import (
	"bdd"
	"verify"
)

// Discarded critical calls as bare statements.
func dropped(m *bdd.Manager) {
	m.Protect(func() error { return nil }) // want `result of Manager\.Protect dropped`
	verify.Check(1)                        // want `result of verify\.Check dropped`
}

// The blank identifier swallowing the error component.
func blankAssigned() {
	r, _ := verify.Check(1) // want `error result of verify\.Check assigned to blank identifier`
	_ = r
	_, _ = verify.MaxResilience(2) // want `error result of verify\.MaxResilience assigned to blank identifier`
}

// go / defer silently discard the return value too.
func goAndDefer(m *bdd.Manager) {
	work := func() error { return nil }
	go m.Protect(work)    // want `result of Manager\.Protect dropped by go statement`
	defer m.Protect(work) // want `result of Manager\.Protect dropped by defer`
}

// Properly handled calls: no reports.
func handled(m *bdd.Manager) error {
	if err := m.Protect(func() error { return nil }); err != nil {
		return err
	}
	r, err := verify.Check(1)
	if err != nil {
		return err
	}
	_ = r
	n, err := verify.MaxResilience(3)
	_ = n
	return err
}

// Non-critical calls may be dropped freely.
func nonCritical(m *bdd.Manager) {
	m.NumNodes()
	helper()
}

func helper() error { return nil }

// Suppression for a deliberate drop.
func suppressed(m *bdd.Manager) {
	//syreplint:ignore protecterr best-effort warm-up; failure is retried below
	m.Protect(func() error { return nil })
}
