// Package verify is a fixture stub of syrep/internal/verify.
package verify

type Result struct{ Resilient bool }

func Check(k int) (Result, error)      { return Result{}, nil }
func MaxResilience(k int) (int, error) { return 0, nil }
