package analysis

// facts.go is the cross-package fact store. An analyzer can record a fact
// about a package-level object (typically "this function wraps X") while
// analyzing the package that defines it; when a dependent package is
// analyzed later, the same analyzer reads the fact back through the
// imported types.Object. Facts only flow forward along the dependency
// order, which is exactly the order `go list -deps` emits packages in, so
// RunPackages simply processes its input in order.

import (
	"go/types"
	"sort"
)

// FactKey identifies one fact: which analyzer recorded it, about which
// object, under which fact name (an analyzer may record several kinds).
type FactKey struct {
	Analyzer string
	Pkg      string // package path of the object's package
	Object   string // object name within the package
	Name     string // fact name, analyzer-chosen
}

// FactStore holds facts shared across packages within one lint run.
// It is not safe for concurrent use; RunPackages drives it sequentially.
type FactStore struct {
	facts map[FactKey]any
}

// NewFactStore builds an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[FactKey]any)}
}

// objKey derives the store key for obj, or false for objects facts cannot
// attach to (nil, or not package-level).
func objKey(analyzer string, obj types.Object, name string) (FactKey, bool) {
	if obj == nil || obj.Pkg() == nil {
		return FactKey{}, false
	}
	return FactKey{
		Analyzer: analyzer,
		Pkg:      obj.Pkg().Path(),
		Object:   obj.Name(),
		Name:     name,
	}, true
}

// ExportObjectFact records a fact about a package-level object. Re-exporting
// overwrites. Returns false if the object cannot carry facts.
func (pass *Pass) ExportObjectFact(obj types.Object, name string, fact any) bool {
	if pass.Facts == nil {
		return false
	}
	key, ok := objKey(pass.Analyzer.Name, obj, name)
	if !ok {
		return false
	}
	pass.Facts.facts[key] = fact
	return true
}

// ObjectFact reads a fact previously exported about obj by this analyzer,
// whether in this package or a dependency analyzed earlier.
func (pass *Pass) ObjectFact(obj types.Object, name string) (any, bool) {
	if pass.Facts == nil {
		return nil, false
	}
	key, ok := objKey(pass.Analyzer.Name, obj, name)
	if !ok {
		return nil, false
	}
	f, ok := pass.Facts.facts[key]
	return f, ok
}

// AllFacts returns the store's keys in a deterministic order, for tests.
func (s *FactStore) AllFacts() []FactKey {
	keys := make([]FactKey, 0, len(s.facts))
	for k := range s.facts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Name < b.Name
	})
	return keys
}
