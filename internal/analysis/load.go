package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is a loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// LoadConfig adjusts how the loader resolves the package graph. The zero
// value matches a plain `go build`.
type LoadConfig struct {
	// Tags are extra build constraints (`go list -tags`). Without them the
	// loader sees a different file set than a tagged CI build compiles, and
	// analyzers silently skip tag-gated code.
	Tags []string
	// Race loads the race-instrumented package variants (`go list -race`),
	// matching what `go test -race` compiles. Export data differs between
	// instrumented and plain builds, so analyses meant to mirror the race CI
	// lane must set this.
	Race bool
}

// Load resolves the package patterns (e.g. "./...") in dir, parses the
// matched non-test Go files from source, and type-checks them. Imports —
// both standard library and intra-module — are satisfied from the
// toolchain's export data, located via `go list -export`, so the loader
// needs no network access and no dependencies beyond the go tool itself.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadWith(LoadConfig{}, dir, patterns...)
}

// LoadWith is Load with an explicit configuration.
func LoadWith(cfg LoadConfig, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// One `go list` walks the full dependency closure: deps provide export
	// data for the importer, pattern matches provide source file lists.
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module",
	}
	if len(cfg.Tags) > 0 {
		args = append(args, "-tags", strings.Join(cfg.Tags, ","))
	}
	if cfg.Race {
		args = append(args, "-race")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			roots = append(roots, p)
		}
	}

	// `go list -deps` emits dependencies before dependents, so checking
	// roots in output order would also work from source; export data makes
	// the order irrelevant and the type identities consistent, because the
	// gc importer caches every package it materialises.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})

	var pkgs []*Package
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			path := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   p.ImportPath,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
