package locksafe_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "cache")
}
