// Package locksafe checks the mutex discipline of the concurrent packages
// (server, cache, bdd, obs) against the failure semantics of DESIGN §8:
// because the server's panic fence recovers worker panics and keeps the
// process alive, a mutex left locked by a panicking critical section is not
// a crash — it is a silent, permanent deadlock of every later request that
// touches the same lock.
//
// Four checks, all per function body over the analysis package's CFG:
//
//  1. copy: a sync.Mutex/RWMutex (or a struct containing one) copied by
//     value — the copy's state diverges from the original's.
//  2. release: a Lock/RLock after which some path reaches return without
//     the matching Unlock/RUnlock (and no defer covers it).
//  3. blocking: a lock held across a blocking operation — channel send or
//     receive, a select without default, or a sync Wait — stalling every
//     other acquirer for an unbounded time.
//  4. panic-unsafe: a critical section released by a plain (non-deferred)
//     Unlock that calls other functions while holding the lock; any panic
//     in the callee leaks the lock past the recover fence.
//
// Check 2 carries a suggested fix (insert `defer x.Unlock()`) when the
// function contains no explicit release at all, the only case where the
// insertion cannot double-unlock.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"syrep/internal/analysis"
)

// Analyzer is the locksafe analysis.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "reports mutex copies, missing unlocks, locks held across blocking calls, and panic-unsafe critical sections",
	Run:  run,
}

// lockedPackages names (by package name, so fixtures can live under short
// paths) the packages whose locks guard cross-request state.
var lockedPackages = map[string]bool{
	"server": true,
	"cache":  true,
	"bdd":    true,
	"obs":    true,
	// The controller's mutex guards epoch/settlement state shared between
	// the reconcile loop, the pusher, and Offer callers; blocking under it
	// would stall event admission.
	"controller": true,
	// The journal's mutex serializes the append/sync/rotate write path and
	// is taken by the controller with its own lock held; a blocking call
	// under it would freeze both the journal and the controller.
	"journal": true,
}

// pairs maps an acquire method to its release.
var pairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !lockedPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				// Each literal gets its own CFG; the Inspect keeps descending
				// so nested literals are visited too.
				checkBody(pass, n.Body)
			case *ast.AssignStmt:
				checkCopies(pass, n.Lhs, n.Rhs)
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				checkCopies(pass, lhs, n.Values)
			}
			return true
		})
	}
	return nil
}

// ---- check 1: copies -------------------------------------------------------

// checkCopies flags right-hand sides that copy an existing lock-bearing
// value. Fresh values (composite literals, function results) are fine; only
// copying a value that may already be locked diverges state. Assignments to
// the blank identifier discard the value and create no divergent copy.
func checkCopies(pass *analysis.Pass, lhs, rhs []ast.Expr) {
	for i, e := range rhs {
		if len(lhs) == len(rhs) {
			if id, ok := lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		t := pass.TypeOf(e)
		if t == nil {
			continue
		}
		if path := lockPath(t, 0); path != "" {
			if path == " " {
				path = ""
			}
			pass.Reportf(e.Pos(), "assignment copies %s by value%s; the copy's lock state diverges from the original — share a pointer instead",
				t.String(), path)
		}
	}
}

// lockPath reports how t contains a lock by value: "" for none, otherwise a
// human-readable field path suffix (e.g. " (field mu)").
func lockPath(t types.Type, depth int) string {
	if depth > 3 {
		return ""
	}
	if analysis.IsNamedTypeValue(t, "sync", "Mutex") || analysis.IsNamedTypeValue(t, "sync", "RWMutex") {
		return " "
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if sub := lockPath(f.Type(), depth+1); sub != "" {
			if sub == " " {
				return " (field " + f.Name() + ")"
			}
			return sub
		}
	}
	return ""
}

// ---- checks 2–4: per-body CFG ---------------------------------------------

// lockSite is one acquire found in a body.
type lockSite struct {
	entry   ast.Node // CFG entry containing the acquire
	stmt    ast.Node // the acquire call expression
	recv    string   // receiver rendering, e.g. "s.mu"
	acquire string   // Lock or RLock
	release string   // Unlock or RUnlock
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.BuildCFG(body)

	var sites []lockSite
	explicitReleases := 0
	for _, blk := range g.Blocks {
		for _, e := range blk.Entries {
			analysis.WalkEntry(e, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, method, ok := mutexMethod(pass, call)
				if !ok {
					return true
				}
				if rel, isAcq := pairs[method]; isAcq {
					sites = append(sites, lockSite{entry: e, stmt: call, recv: recv, acquire: method, release: rel})
				} else {
					explicitReleases++
				}
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}

	for _, site := range sites {
		deferred := deferReleases(pass, g, site.recv, site.release)
		released := func(n ast.Node) bool { return entryReleases(pass, n, site.recv, site.release) }

		// Check 2: some path misses the release entirely.
		if !deferred && g.PathAvoiding(site.entry, released) {
			d := analysis.Diagnostic{
				Pos: site.stmt.Pos(),
				Message: site.recv + "." + site.acquire +
					"() is not released on every path; add defer " + site.recv + "." + site.release + "() or release before each return",
			}
			if explicitReleases == 0 {
				d.Fixes = []analysis.Fix{deferFix(pass, site)}
			}
			pass.Report(d)
		}

		// Check 3: a blocking operation is reachable while the lock is held.
		// A deferred release does not help — the lock stays held until the
		// function returns, so only an explicit earlier release bars the path.
		if blk, desc := reachableBlocking(pass, g, site, released); blk != nil {
			pass.Reportf(blk.Pos(), "%s while holding %s (%s at %s); a blocked holder stalls every other acquirer — release the lock first",
				desc, site.recv, site.acquire, shortPos(pass, site.stmt))
		}

		// Check 4: plain-released critical section that calls functions.
		if !deferred {
			if call := callInCriticalSection(pass, g, site, released); call != nil {
				pass.Reportf(call.Pos(), "%s is held across this call with a plain %s.%s(); a panic here leaves the lock held past the recover fence — use defer",
					site.recv, site.recv, site.release)
			}
		}
	}
}

// mutexMethod resolves call as a sync.Mutex/RWMutex method call, returning
// the rendered receiver and method name.
func mutexMethod(pass *analysis.Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if !analysis.IsNamedType(t, "sync", "Mutex") && !analysis.IsNamedType(t, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// entryReleases reports whether the entry releases recv *at this program
// point*. A defer statement registers the release for function exit, it does
// not release here, so deferred calls are excluded.
func entryReleases(pass *analysis.Pass, entry ast.Node, recv, release string) bool {
	if _, isDefer := entry.(*ast.DeferStmt); isDefer {
		return false
	}
	found := false
	analysis.WalkEntry(entry, func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r, m, ok := mutexMethod(pass, call); ok && r == recv && m == release {
			found = true
		}
		return true
	})
	return found
}

// deferReleases reports whether any defer in the body releases recv —
// directly (defer mu.Unlock()) or inside a deferred closure.
func deferReleases(pass *analysis.Pass, g *analysis.CFG, recv, release string) bool {
	for _, d := range g.Defers {
		if r, m, ok := mutexMethod(pass, d.Call); ok && r == recv && m == release {
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if r, m, ok := mutexMethod(pass, call); ok && r == recv && m == release {
						found = true
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// reachableBlocking finds a blocking operation reachable from the acquire
// with no release in between, returning the blocking node and a description.
func reachableBlocking(pass *analysis.Pass, g *analysis.CFG, site lockSite, released func(ast.Node) bool) (ast.Node, string) {
	var hit ast.Node
	var desc string
	target := func(entry ast.Node) bool {
		if hit != nil {
			return true
		}
		if n, d := blockingOp(pass, g, entry); n != nil {
			hit, desc = n, d
			return true
		}
		return false
	}
	if g.CanReach(site.entry, target, released) && hit != nil {
		return hit, desc
	}
	// The acquire's own entry may contain a blocking op after the call
	// (same statement list flattening puts them in separate entries, so
	// CanReach starting after the entry already covers it).
	return nil, ""
}

// blockingOp reports a blocking operation inside the entry: a channel send,
// a channel receive, a select without default, or a sync wait.
func blockingOp(pass *analysis.Pass, g *analysis.CFG, entry ast.Node) (ast.Node, string) {
	if sh, ok := entry.(*analysis.SelectHead); ok {
		if sh.HasDefault {
			return nil, ""
		}
		return sh.Sel, "select without default blocks"
	}
	var hit ast.Node
	var desc string
	analysis.WalkEntry(entry, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if stmt, ok := entry.(ast.Stmt); ok && g.IsCommClause(stmt) {
				// The enclosing SelectHead already accounts for the wait.
				return true
			}
			hit, desc = n, "channel send may block"
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if stmt, ok := entry.(ast.Stmt); ok && g.IsCommClause(stmt) {
				return true
			}
			hit, desc = n, "channel receive may block"
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				t := pass.TypeOf(sel.X)
				if t != nil && (analysis.IsNamedType(t, "sync", "WaitGroup") || analysis.IsNamedType(t, "sync", "Cond")) {
					hit, desc = n, "sync wait blocks"
				}
			}
		}
		return true
	})
	return hit, desc
}

// callInCriticalSection finds a panic-capable call between the acquire and
// its plain release: any non-builtin, non-conversion call that is not
// itself a method on the same mutex.
func callInCriticalSection(pass *analysis.Pass, g *analysis.CFG, site lockSite, released func(ast.Node) bool) ast.Node {
	var hit ast.Node
	target := func(entry ast.Node) bool {
		if hit != nil {
			return true
		}
		// Only calls strictly inside the critical section count: if the
		// entry also releases, the release bars the remainder, but a call in
		// the same entry before the release is still in section. Keep it
		// simple: an entry that releases is treated as the barrier first.
		if released(entry) {
			return false
		}
		analysis.WalkEntry(entry, func(n ast.Node) bool {
			if hit != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isExemptCall(pass, call) {
				return true
			}
			if _, _, isMutex := mutexMethod(pass, call); isMutex {
				return true
			}
			hit = call
			return false
		})
		return hit != nil
	}
	g.CanReach(site.entry, target, released)
	return hit
}

// isExemptCall reports calls that cannot meaningfully panic while holding a
// lock: builtins (len, cap, append, delete, ...) and type conversions.
func isExemptCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return true
			}
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
		}
	case *ast.ParenExpr, *ast.ArrayType, *ast.MapType, *ast.ChanType:
		return true
	}
	// Conversions like time.Duration(x) resolve the Fun to a type above;
	// composite expressions used as conversions land here.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// deferFix builds the suggested `defer recv.Unlock()` insertion after the
// acquire statement, matching its indentation.
func deferFix(pass *analysis.Pass, site lockSite) analysis.Fix {
	pos := pass.Fset.Position(site.stmt.Pos())
	indent := "\n" + strings.Repeat("\t", pos.Column-1)
	return analysis.Fix{
		Message: "insert defer " + site.recv + "." + site.release + "()",
		Edits: []analysis.Edit{{
			Pos:     site.stmt.End(),
			End:     site.stmt.End(),
			NewText: indent + "defer " + site.recv + "." + site.release + "()",
		}},
	}
}

// shortPos renders a position as file:line for cross-reference in messages.
func shortPos(pass *analysis.Pass, n ast.Node) string {
	p := pass.Fset.Position(n.Pos())
	parts := strings.Split(p.Filename, "/")
	return parts[len(parts)-1] + ":" + strconv.Itoa(p.Line)
}
