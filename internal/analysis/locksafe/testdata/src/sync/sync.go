// Package sync stubs the standard library for locksafe fixtures: same
// names and shapes, no behavior.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{ n int32 }

func (w *WaitGroup) Add(delta int) {}
func (w *WaitGroup) Done()         {}
func (w *WaitGroup) Wait()         {}
