// Package cache exercises every locksafe check with one true positive and
// one near-miss negative each.
package cache

import "sync"

type Cache struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	count int
}

func work()      {}
func cheap() int { return 1 }

// ---- check 1: copies ----

func copyMutex(c *Cache) {
	cp := c.mu // want `assignment copies sync\.Mutex by value`
	_ = cp
}

func copyStructWithMutex(c *Cache) {
	cp := *c // want `copies cache\.Cache by value \(field mu\)`
	_ = cp
}

func pointerIsFine(c *Cache) {
	p := &c.mu // near miss: sharing a pointer is the correct idiom
	q := c     // near miss: pointer to the whole struct
	_, _ = p, q
}

// ---- check 2: release on every path ----

func missingUnlockOnEarlyReturn(c *Cache, bad bool) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path`
	if bad {
		return
	}
	c.mu.Unlock()
}

func panicPathSkipsUnlock(c *Cache, bad bool) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path`
	if bad {
		panic("bad")
	}
	c.mu.Unlock()
}

func allPathsUnlock(c *Cache, bad bool) {
	c.mu.Lock() // near miss: both branches release
	if bad {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

func deferCoversAllPaths(c *Cache, bad bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bad {
		return
	}
	c.count++
}

func rlockNeedsRUnlock(c *Cache, bad bool) {
	c.rw.RLock() // want `c\.rw\.RLock\(\) is not released on every path`
	if bad {
		return
	}
	c.rw.RUnlock()
}

// ---- check 3: blocking under lock ----

func recvUnderLock(c *Cache, ch chan int) {
	c.mu.Lock()
	v := <-ch // want `channel receive may block while holding c\.mu`
	_ = v
	c.mu.Unlock()
}

func sendUnderLock(c *Cache, ch chan int) {
	c.mu.Lock()
	ch <- 1 // want `channel send may block while holding c\.mu`
	c.mu.Unlock()
}

func selectNoDefaultUnderLock(c *Cache, ch chan int) {
	c.mu.Lock()
	select { // want `select without default blocks while holding c\.mu`
	case v := <-ch:
		_ = v
	}
	c.mu.Unlock()
}

func selectWithDefaultIsFine(c *Cache, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // near miss: the default branch keeps this non-blocking
	case v := <-ch:
		_ = v
	default:
	}
}

func waitUnderLock(c *Cache, wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want `sync wait blocks while holding c\.mu`
}

func releaseBeforeBlocking(c *Cache, ch chan int) {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
	v := <-ch // near miss: the lock is released before the receive
	_ = v
}

// ---- check 4: panic-unsafe critical section ----

func plainUnlockAroundCall(c *Cache) {
	c.mu.Lock()
	work() // want `c\.mu is held across this call with a plain c\.mu\.Unlock\(\)`
	c.mu.Unlock()
}

func deferMakesCallsSafe(c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	work() // near miss: the deferred unlock survives a panic here
}

func callFreeSectionIsFine(c *Cache) {
	c.mu.Lock()
	c.count += len("x") // near miss: builtins cannot panic-leak the lock
	c.mu.Unlock()
}

func callAfterReleaseIsFine(c *Cache) {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
	work() // near miss: the call is outside the critical section
}
