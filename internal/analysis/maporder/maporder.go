// Package maporder flags map iterations whose order leaks into output.
//
// Go randomises map iteration order on purpose. SyRep's contract is stronger
// than most programs': synthesising the same topology twice must produce
// byte-identical routing tables, or operators cannot diff tables across runs
// and the repair pipeline cannot cache verification results. A `for k := range
// m` whose body appends to a slice that outlives the loop, or writes output
// directly, bakes the random order into the result unless the collected
// values are sorted afterwards.
//
// The analyzer reports:
//
//   - appends inside a map-range body to a slice declared outside the loop,
//     unless a call later in the same function whose name contains "sort"
//     or "Sort" mentions that slice (the sort-after idiom: collect, then
//     canonicalise);
//   - direct output writes inside a map-range body (fmt.Print*/Fprint*,
//     print/println, or any call on a value whose type name contains
//     "Writer" or "Builder").
//
// Bodies that only aggregate order-insensitively (count, sum, max, insert
// into another map) are not flagged. Genuinely order-independent collection
// (e.g. feeding a function that sorts internally) is suppressed with
// //syreplint:ignore maporder <reason>.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"syrep/internal/analysis"
)

// Analyzer is the maporder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "reports map-range loops whose nondeterministic order escapes into slices or output",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fn, rng)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target, ok := appendTarget(pass, call); ok {
			if obj := pass.TypesInfo.Uses[target]; obj != nil {
				if declaredOutside(obj, rng) && !sortedLater(pass, fn, obj, rng.End()) {
					pass.Reportf(call.Pos(),
						"append to %q inside range over map bakes in nondeterministic iteration order; sort the keys first or sort %q after the loop",
						target.Name, target.Name)
				}
			}
			return true
		}
		if what, ok := outputCall(pass, call); ok {
			pass.Reportf(call.Pos(),
				"%s inside range over map writes output in nondeterministic iteration order; iterate sorted keys instead",
				what)
		}
		return true
	})
}

// appendTarget matches `x = append(x, ...)` — append's first argument names
// the slice being grown — and returns the identifier of the slice: the plain
// variable, or the field name when the target is a selector like m.free.
func appendTarget(pass *analysis.Pass, call *ast.CallExpr) (*ast.Ident, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	switch target := call.Args[0].(type) {
	case *ast.Ident:
		return target, true
	case *ast.SelectorExpr:
		return target.Sel, true
	}
	return nil, false
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement — an append to a loop-local scratch slice that also dies inside
// the loop cannot leak order. Struct fields always qualify.
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedLater reports whether, after the loop ends, the function calls
// something sort-like mentioning obj — e.g. sort.Slice(out, ...) or
// sort.Strings(names) or routing.SortKeys(keys).
func sortedLater(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		if !strings.Contains(strings.ToLower(calleeName(call)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentions = true
					return false
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		// Include the package/receiver part so `sort.Slice` matches even
		// though the method name alone ("Slice") does not contain "sort".
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

// outputCall reports whether call writes program output: fmt printing,
// the print/println builtins, or a method on an io.Writer-ish receiver.
func outputCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if pkg, name, ok := pass.PackageFuncCall(call); ok {
		if pkg == "fmt" && strings.HasPrefix(name, "Print") {
			return "fmt." + name, true
		}
		if pkg == "fmt" && strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "print" || id.Name == "println" {
				return id.Name, true
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if strings.HasPrefix(sel.Sel.Name, "Write") || sel.Sel.Name == "Print" {
			if t := pass.TypeOf(sel.X); t != nil {
				name := t.String()
				if strings.Contains(name, "Writer") || strings.Contains(name, "Builder") || strings.Contains(name, "File") {
					return "write to " + shortType(name), true
				}
			}
		}
	}
	return "", false
}

func shortType(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimPrefix(name, "*")
}
