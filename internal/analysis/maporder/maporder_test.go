package maporder_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a")
}
