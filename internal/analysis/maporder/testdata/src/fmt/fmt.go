// Package fmt is a fixture stub: the analyzer matches by package name.
package fmt

func Println(args ...any) (int, error)              { return 0, nil }
func Printf(format string, args ...any) (int, error) { return 0, nil }
func Sprintf(format string, args ...any) string      { return "" }
