// Package sort is a fixture stub: the analyzer matches sort-after calls by
// callee name.
package sort

func Strings(s []string)                     {}
func Ints(s []int)                           {}
func Slice(x any, less func(i, j int) bool) {}
