// Fixtures for the maporder analyzer.
package a

import (
	"fmt"
	"sort"
)

// Collecting map keys without sorting: the classic nondeterminism bug.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map`
	}
	return keys
}

// Collect-then-sort is the blessed idiom: no report.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice also counts, even though the method name alone is "Slice".
func collectSortSlice(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Printing inside a map range emits output in random order.
func printDirect(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

type logWriter struct{}

func (w *logWriter) WriteString(s string) (int, error) { return len(s), nil }

// Writing to a writer-ish receiver counts as output too.
func writeDirect(m map[string]int, w *logWriter) {
	for k := range m {
		w.WriteString(k) // want `write to a\.logWriter inside range over map`
	}
}

// A loop-local scratch slice dies inside the iteration: order cannot leak.
func localScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		doubled := []int{}
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// Order-insensitive aggregation is fine.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Ranging over a slice is never flagged.
func sliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// Suppression: the consumer canonicalises internally.
func suppressed(m map[string]int) []string {
	var pairs []string
	for k := range m {
		//syreplint:ignore maporder canonicalise() sorts and dedups its input
		pairs = append(pairs, k)
	}
	return canonicalise(pairs)
}

func canonicalise(s []string) []string { return s }
