package analysis

import (
	"go/ast"
	"go/types"
)

// Helpers shared by the SyRep analyzers. Identification is by package *name*
// plus object name (not full import path) so that analysistest fixtures can
// stub the real packages under short import paths.

// IsNamedType reports whether t (after pointer indirection) is the named
// type pkgName.typeName.
func IsNamedType(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// IsNamedTypeValue is IsNamedType without pointer indirection: it reports
// whether t itself (not *t) is the named type. Copy checks use it — copying
// a *sync.Mutex is fine, copying a sync.Mutex is not.
func IsNamedTypeValue(t types.Type, pkgName, typeName string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// TypeOf returns the type of e per the pass's type information (nil when
// unknown).
func (pass *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// IsConstExpr reports whether e evaluated to a compile-time constant (e.g.
// bdd.True / bdd.False).
func (pass *Pass) IsConstExpr(e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// MethodCallOn resolves call as a method invocation and reports whether the
// receiver is recvPkg.recvType and the method name is one of names. It
// understands both m.GC() selector calls and (bdd.Manager).GC(m) method
// expressions.
func (pass *Pass) MethodCallOn(call *ast.CallExpr, recvPkg, recvType string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if !IsNamedType(sig.Recv().Type(), recvPkg, recvType) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// PackageFuncCall resolves call as a package-level function invocation and
// returns the defining package name and function name (ok=false for method
// calls, builtins, and calls through function-typed variables).
func (pass *Pass) PackageFuncCall(call *ast.CallExpr) (pkgName, funcName string, ok bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", "", false
	}
	fn, isFunc := pass.TypesInfo.Uses[id].(*types.Func)
	if !isFunc || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Name(), fn.Name(), true
}

// ReceiverIsNamed reports whether decl is a method whose receiver is
// pkgName.typeName (used to skip the BDD engine's own internals).
func (pass *Pass) ReceiverIsNamed(decl *ast.FuncDecl, pkgName, typeName string) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	t := pass.TypeOf(decl.Recv.List[0].Type)
	return t != nil && IsNamedType(t, pkgName, typeName)
}
