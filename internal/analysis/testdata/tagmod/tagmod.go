// Package tagmod is a loader fixture: Base is always built, Experimental
// only under the "experimental" build tag. The loader tests assert that
// LoadWith propagates tags to `go list` and Load (tag-less) does not see
// the gated file.
package tagmod

// Base is compiled unconditionally.
func Base() int { return 1 }
