module tagmod

go 1.21
