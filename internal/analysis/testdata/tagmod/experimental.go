//go:build experimental

package tagmod

// Experimental only exists when the "experimental" tag is set.
func Experimental() int { return 2 }
