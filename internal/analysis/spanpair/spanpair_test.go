package spanpair_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/spanpair"
)

func TestSpanpair(t *testing.T) {
	// resilience first: driver consumes its spancloser facts through the
	// shared store, mirroring the loader's dependency order.
	analysistest.Run(t, "testdata", spanpair.Analyzer, "resilience", "driver")
}
