// Package spanpair enforces the observability discipline of DESIGN §9:
// every stage span opened via obs.Observer.StartStage (or a helper that
// returns its closer, like the supervisor's run.span) must be closed on
// every exit path — including panic edges, because the service's recover
// fence keeps the process alive after a worker panic. A span closer that is
// invoked without defer leaks the span and its pprof stage label the moment
// anything between the open and the call panics; a closer that is never
// invoked leaks unconditionally.
//
// The analyzer recognizes closers through two routes:
//
//   - directly: `sctx, end := ob.StartStage(ctx, name)` — the second result
//     is the closer;
//   - through wrappers: a function whose single func() result is derived
//     from a closer exports a "spancloser" fact (shared across packages via
//     the fact store, iterated to fixpoint within a package so wrappers of
//     wrappers resolve), and its call sites become acquisitions.
//
// A closer use is clean when it is deferred (directly or inside a deferred
// closure), returned (the caller inherits the obligation), passed to
// another function, or reassigned (escapes local reasoning). Everything
// else is reported: never used, discarded into the blank identifier, the
// whole result list dropped, or called without defer.
package spanpair

import (
	"go/ast"
	"go/types"

	"syrep/internal/analysis"
)

// Analyzer is the spanpair analysis.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "reports obs stage-span closers that are dropped or not deferred (span leaks on panic edges)",
	Run:  run,
}

// closerFact marks a function whose single func() result is a span closer.
const closerFact = "spancloser"

func run(pass *analysis.Pass) error {
	// Fixpoint: export wrapper facts until no new ones appear, so wrappers
	// that delegate to other wrappers in the same package resolve in any
	// declaration order.
	for {
		changed := false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !returnsSingleFunc(pass, fd) {
					continue
				}
				obj := pass.TypesInfo.Defs[fd.Name]
				if obj == nil {
					continue
				}
				if _, have := pass.ObjectFact(obj, closerFact); have {
					continue
				}
				if returnsSpanCloser(pass, fd) && pass.ExportObjectFact(obj, closerFact, true) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// acquiresCloser reports whether call yields a span closer, and at which
// result index: StartStage's closer is its second result, a wrapper's its
// only one.
func acquiresCloser(pass *analysis.Pass, call *ast.CallExpr) (index int, callee string, ok bool) {
	if pass.MethodCallOn(call, "obs", "Observer", "StartStage") {
		return 1, "StartStage", true
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return 0, "", false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return 0, "", false
	}
	if _, have := pass.ObjectFact(obj, closerFact); have {
		return 0, id.Name, true
	}
	return 0, "", false
}

// returnsSingleFunc reports whether fd declares exactly one result of a
// function type — the only shape a closer wrapper can have.
func returnsSingleFunc(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return false
	}
	r := fd.Type.Results.List[0]
	if len(r.Names) > 1 {
		return false
	}
	t := pass.TypeOf(r.Type)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// returnsSpanCloser reports whether some return path hands out a closer:
// `return end` for a closer variable, or `return wrapper(...)` directly.
func returnsSpanCloser(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	closerObjs := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, obj := range closerTargets(pass, assign) {
			closerObjs[obj] = true
		}
		return true
	})
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		switch r := ret.Results[0].(type) {
		case *ast.Ident:
			if closerObjs[pass.TypesInfo.Uses[r]] {
				found = true
			}
		case *ast.CallExpr:
			if _, _, ok := acquiresCloser(pass, r); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// closerTargets resolves the objects an assignment binds to closer results.
func closerTargets(pass *analysis.Pass, assign *ast.AssignStmt) []types.Object {
	if len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	idx, _, ok := acquiresCloser(pass, call)
	if !ok || idx >= len(assign.Lhs) {
		return nil
	}
	id, ok := assign.Lhs[idx].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return []types.Object{obj}
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return []types.Object{obj}
	}
	return nil
}

// checkBody verifies every closer acquired directly in this body (nested
// function literals check themselves).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Deferred regions: position ranges of defer statements in this body.
	type span struct{ lo, hi int }
	var deferred []span
	walkShallow(body, func(n ast.Node) {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred = append(deferred, span{int(d.Pos()), int(d.End())})
		}
	})
	inDefer := func(n ast.Node) bool {
		p := int(n.Pos())
		for _, s := range deferred {
			if s.lo <= p && p < s.hi {
				return true
			}
		}
		return false
	}

	walkShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if _, callee, ok := acquiresCloser(pass, call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded; the span never ends and its stage label leaks", callee)
				}
			}
		case *ast.AssignStmt:
			checkAcquisition(pass, body, n, inDefer)
		}
	})
}

// checkAcquisition analyzes one closer-binding assignment's uses.
func checkAcquisition(pass *analysis.Pass, body *ast.BlockStmt, assign *ast.AssignStmt, inDefer func(ast.Node) bool) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	idx, callee, ok := acquiresCloser(pass, call)
	if !ok {
		return
	}
	if idx >= len(assign.Lhs) {
		return
	}
	id, ok := assign.Lhs[idx].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(assign.Pos(), "span closer from %s is discarded; the span never ends and its stage label leaks", callee)
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id] // plain = to an existing variable
	}
	if obj == nil {
		return
	}

	var deferredCall, plainCall, escapes bool
	var plainCallNode ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fun, ok := n.Fun.(*ast.Ident); ok && pass.TypesInfo.Uses[fun] == obj {
				if inDefer(n) {
					deferredCall = true
				} else {
					plainCall = true
					if plainCallNode == nil {
						plainCallNode = n
					}
				}
				return true
			}
			// Closer passed as an argument: the callee owns it now.
			for _, arg := range n.Args {
				if a, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[a] == obj {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if a, ok := r.(*ast.Ident); ok && pass.TypesInfo.Uses[a] == obj {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			if n == assign {
				return true
			}
			for i, r := range n.Rhs {
				a, ok := r.(*ast.Ident)
				if !ok || pass.TypesInfo.Uses[a] != obj {
					continue
				}
				// `_ = end` discards rather than escapes; it must not
				// satisfy the obligation.
				if len(n.Lhs) == len(n.Rhs) {
					if l, ok := n.Lhs[i].(*ast.Ident); ok && l.Name == "_" {
						continue
					}
				}
				escapes = true
			}
		}
		return true
	})

	switch {
	case deferredCall, escapes:
		// Deferred (panic-safe) or out of local hands.
	case plainCall:
		pass.Reportf(plainCallNode.Pos(), "span closer %s is called without defer; a panic between %s and this call leaks the span past the recover fence — defer it (or wrap the stage in a closure)",
			id.Name, callee)
	default:
		pass.Reportf(assign.Pos(), "span closer %s from %s is never called; the span never ends and its stage label leaks",
			id.Name, callee)
	}
}

// walkShallow visits the nodes of body without descending into nested
// function literals (they are separate bodies with their own obligations).
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		visit(n)
		return true
	})
}
