// Package context stubs the standard library for spanpair fixtures.
package context

type Context interface {
	Err() error
	Done() <-chan struct{}
}

func Background() Context { return nil }
