// Package obs stubs the repo's observability package for spanpair
// fixtures: Observer.StartStage returns (ctx, closer) like the real one.
package obs

import "context"

type Observer struct{ spans int }

func (o *Observer) StartStage(ctx context.Context, name string) (context.Context, func()) {
	return ctx, func() {}
}
