// Package resilience exercises spanpair's in-package checks: direct
// StartStage use, the span() wrapper idiom (fact export), wrapper
// delegation, and the clean shapes.
package resilience

import (
	"context"
	"obs"
)

type run struct {
	ob  *obs.Observer
	ctx context.Context
}

// span mirrors the supervisor helper; returning the closer exports the
// spancloser fact, so call sites become acquisitions.
func (s *run) span(stage string) func() {
	_, end := s.ob.StartStage(s.ctx, stage)
	return end
}

// spanAlias delegates to span; the fact must propagate to it too.
func (s *run) spanAlias(stage string) func() {
	return s.span(stage)
}

// StageSpan is the exported wrapper the driver fixture consumes
// cross-package through the fact store.
func StageSpan(o *obs.Observer, ctx context.Context, stage string) func() {
	_, end := o.StartStage(ctx, stage)
	return end
}

func work() {}

// ---- clean shapes ----

func deferredDirect(s *run) {
	_, end := s.ob.StartStage(s.ctx, "verify")
	defer end()
	work()
}

func deferredWrapper(s *run) {
	end := s.span("verify")
	defer end() // near miss: deferred closers survive panics
	work()
}

func deferredClosure(s *run) {
	end := s.span("verify")
	defer func() {
		work()
		end() // near miss: called inside a deferred closure
	}()
	work()
}

func handoff(s *run) {
	end := s.span("total")
	runWith(end) // near miss: the callee owns the closer now
}

func runWith(end func()) {
	defer end()
	work()
}

// ---- leaks ----

func plainCallLeaksOnPanic(s *run) {
	end := s.span("reduce")
	work()
	end() // want `span closer end is called without defer`
}

func aliasedWrapperPlainCall(s *run) {
	end := s.spanAlias("synth")
	work()
	end() // want `span closer end is called without defer`
}

func directPlainCall(s *run) {
	sctx, end := s.ob.StartStage(s.ctx, "expand")
	_ = sctx
	work()
	end() // want `span closer end is called without defer`
}

func blankDiscard(s *run) {
	_ = s.span("expand") // want `span closer from span is discarded`
}

func exprDiscard(s *run) {
	s.span("reduce") // want `result of span is discarded`
}

func neverCalled(s *run) {
	end := s.span("expand") // want `span closer end from span is never called`
	_ = end
}
