// Package driver consumes resilience.StageSpan cross-package: the
// spancloser fact exported while analyzing resilience must flow through the
// shared fact store for these to be recognized as acquisitions.
package driver

import (
	"context"
	"obs"
	"resilience"
)

func work() {}

func plainCrossPackage(o *obs.Observer, ctx context.Context) {
	end := resilience.StageSpan(o, ctx, "verify")
	work()
	end() // want `span closer end is called without defer`
}

func deferredCrossPackage(o *obs.Observer, ctx context.Context) {
	end := resilience.StageSpan(o, ctx, "verify")
	defer end() // near miss: deferred
	work()
}
