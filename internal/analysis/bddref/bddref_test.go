package bddref_test

import (
	"testing"

	"syrep/internal/analysis/analysistest"
	"syrep/internal/analysis/bddref"
)

func TestBDDRef(t *testing.T) {
	analysistest.Run(t, "testdata", bddref.Analyzer, "a")
}
