// Package bddref checks the manual memory-safety protocol of the pure-Go
// BDD engine (syrep/internal/bdd). The engine's garbage collector frees
// every node unreachable from roots protected with Manager.Ref; a bdd.Ref
// held anywhere else is silently invalidated by Manager.GC(). The Go
// compiler cannot see this — a Ref is just an int32 — so this analyzer
// enforces the two rules the bdd package documents:
//
//  1. In a function that (directly) runs Manager.GC or Manager.Reorder, a
//     bdd.Ref value must not be stored into a struct field, map, or slice
//     (it escapes the current call and outlives the collection) unless the
//     store is the result of Manager.Ref, which protects it.
//
//  2. A function must not call Manager.GC while one of its own unprotected
//     bdd.Ref locals is still live — assigned before the GC call and read
//     after it without an intervening reassignment.
//
// Functions that never collect are exempt: the engine guarantees that no
// implicit GC happens inside a top-level operation, so plain stores there
// are safe. Methods of bdd.Manager itself are exempt too — the engine has
// to manipulate raw node slots to implement collection and reordering.
//
// The check is intra-procedural and position-based (with a refinement for
// reads looping back over a GC inside the same for statement); it will not
// see a GC buried in a callee. It is a tripwire for the common shapes of
// this bug class, not a proof of absence.
package bddref

import (
	"go/ast"
	"go/token"
	"go/types"

	"syrep/internal/analysis"
)

// Analyzer is the bddref analysis.
var Analyzer = &analysis.Analyzer{
	Name: "bddref",
	Doc:  "reports bdd.Ref values that may dangle across Manager.GC or Manager.Reorder",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.ReceiverIsNamed(fn, "bdd", "Manager") {
				continue // the engine's own internals
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// gcCall is one Manager.GC / Manager.Reorder call site inside the function.
type gcCall struct {
	pos  token.Pos
	name string
	// loop is the innermost enclosing for/range statement, if any; reads
	// anywhere in its body can follow the GC on a later iteration.
	loop ast.Node
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	gcs := collectGCs(pass, fn.Body)
	if len(gcs) == 0 {
		return
	}

	checkEscapes(pass, fn, gcs[0].name)
	checkLiveLocals(pass, fn, gcs)
}

// collectGCs finds direct Manager.GC/Reorder calls, remembering the
// innermost enclosing loop of each.
func collectGCs(pass *analysis.Pass, body *ast.BlockStmt) []gcCall {
	var gcs []gcCall
	var loops []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			ast.Inspect(loopBody(n), func(m ast.Node) bool { return walk(m) })
			loops = loops[:len(loops)-1]
			// Children already visited with loop context; also visit the
			// loop's init/cond/post outside that context is unnecessary for
			// this check.
			return false
		case *ast.CallExpr:
			if pass.MethodCallOn(n, "bdd", "Manager", "GC", "Reorder") {
				g := gcCall{pos: n.Pos(), name: callName(n)}
				if len(loops) > 0 {
					g.loop = loops[len(loops)-1]
				}
				gcs = append(gcs, g)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return gcs
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "GC"
}

// checkEscapes implements rule 1: no unprotected Ref may be stored into a
// struct field, map, or slice anywhere in a collecting function.
func checkEscapes(pass *analysis.Pass, fn *ast.FuncDecl, gcName string) {
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"bdd.Ref stored into %s in a function that runs Manager.%s; the node can be collected — protect it with Manager.Ref first",
			what, gcName)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // n-to-1 assignment: no Ref-typed component to pair
				}
				rhs := n.Rhs[i]
				if !isUnprotectedRef(pass, rhs) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					if sel, ok := pass.TypesInfo.Selections[l]; ok && sel.Kind() == types.FieldVal {
						report(n.Pos(), "struct field "+l.Sel.Name)
					}
				case *ast.IndexExpr:
					report(n.Pos(), indexKind(pass, l))
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args[1:] {
						if isUnprotectedRef(pass, arg) {
							report(arg.Pos(), "a slice via append")
						}
					}
				}
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isUnprotectedRef(pass, v) {
					report(v.Pos(), "a composite literal")
				}
			}
		}
		return true
	})
}

// isUnprotectedRef reports whether e is a bdd.Ref value that is neither a
// constant (True/False are never collected) nor freshly protected by a
// Manager.Ref call.
func isUnprotectedRef(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil || !analysis.IsNamedType(t, "bdd", "Ref") {
		return false
	}
	if pass.IsConstExpr(e) {
		return false
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if pass.MethodCallOn(call, "bdd", "Manager", "Ref") {
			return false
		}
	}
	return true
}

func indexKind(pass *analysis.Pass, idx *ast.IndexExpr) string {
	t := pass.TypeOf(idx.X)
	if t == nil {
		return "an indexed collection"
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "a map"
	case *types.Slice, *types.Array:
		return "a slice"
	}
	return "an indexed collection"
}

// refLocal tracks one bdd.Ref-typed local (or parameter) of the function.
type refLocal struct {
	obj       types.Object
	assigns   []token.Pos // definitions and reassignments
	reads     []token.Pos // uses that are not assignment targets
	protected []token.Pos // positions where the local was passed to Manager.Ref
}

// checkLiveLocals implements rule 2.
func checkLiveLocals(pass *analysis.Pass, fn *ast.FuncDecl, gcs []gcCall) {
	locals := collectRefLocals(pass, fn)
	for _, g := range gcs {
		for _, l := range locals {
			if firstBefore(l.protected, g.pos) {
				continue
			}
			if !firstBefore(l.assigns, g.pos) {
				continue // never assigned before the GC: not live yet
			}
			read, ok := liveReadAfter(l, g)
			if !ok {
				continue
			}
			pass.Reportf(g.pos,
				"Manager.%s() with unprotected bdd.Ref local %q still live (read at %s); protect it with Manager.Ref or move the collection",
				g.name, l.obj.Name(), pass.Fset.Position(read))
		}
	}
}

// firstBefore reports whether any position precedes p.
func firstBefore(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q < p {
			return true
		}
	}
	return false
}

// liveReadAfter finds a read of l that can observe the GC at g: a read
// positioned after the call with no intervening reassignment, or — when the
// GC sits inside a loop — any read in that loop's body not preceded (within
// the body) by a reassignment.
func liveReadAfter(l refLocal, g gcCall) (token.Pos, bool) {
	for _, r := range l.reads {
		if r <= g.pos {
			continue
		}
		killed := false
		for _, a := range l.assigns {
			if a > g.pos && a < r {
				killed = true
				break
			}
		}
		if !killed {
			return r, true
		}
	}
	if g.loop != nil {
		start, end := g.loop.Pos(), g.loop.End()
		for _, r := range l.reads {
			if r < start || r > end || r > g.pos {
				continue // later reads were handled above
			}
			// A read earlier in the loop body sees the GC via the back
			// edge unless every path reassigns first; approximate with
			// "some assignment in the body precedes the read".
			killed := false
			for _, a := range l.assigns {
				if a >= start && a < r {
					killed = true
					break
				}
			}
			if !killed {
				return r, true
			}
		}
	}
	return 0, false
}

// collectRefLocals gathers the function's bdd.Ref-typed variables with
// their assignment, read, and protection positions.
func collectRefLocals(pass *analysis.Pass, fn *ast.FuncDecl) []refLocal {
	byObj := make(map[types.Object]*refLocal)
	ordered := []*refLocal{}
	get := func(obj types.Object) *refLocal {
		if obj == nil || !analysis.IsNamedType(obj.Type(), "bdd", "Ref") {
			return nil
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return nil
		}
		l, ok := byObj[obj]
		if !ok {
			l = &refLocal{obj: obj}
			byObj[obj] = l
			ordered = append(ordered, l)
		}
		return l
	}

	// Assignment targets are writes; every other identifier use is a read.
	// A write is recorded at the *end* of its statement, because in
	// `acc = m.And(acc, ...)` the rhs read of acc happens before the store:
	// position-wise the read must not count as killed by its own statement.
	writeEnd := make(map[*ast.Ident]token.Pos)
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writeEnd[id] = n.End()
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				writeEnd[id] = n.End()
			}
		}
		return true
	})

	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Defs[n]
			if obj == nil {
				obj = pass.TypesInfo.Uses[n]
			}
			l := get(obj)
			if l == nil {
				return true
			}
			if end, ok := writeEnd[n]; ok {
				l.assigns = append(l.assigns, end)
			} else if pass.TypesInfo.Defs[n] != nil {
				// Parameters and range variables: treated as assigned at
				// their declaration position.
				l.assigns = append(l.assigns, n.Pos())
			} else {
				l.reads = append(l.reads, n.Pos())
			}
		case *ast.CallExpr:
			if pass.MethodCallOn(n, "bdd", "Manager", "Ref") && len(n.Args) == 1 {
				if id, ok := n.Args[0].(*ast.Ident); ok {
					if l := get(pass.TypesInfo.Uses[id]); l != nil {
						l.protected = append(l.protected, n.Pos())
					}
				}
			}
		}
		return true
	})

	out := make([]refLocal, len(ordered))
	for i, l := range ordered {
		out[i] = *l
	}
	return out
}
