// Package bdd is a fixture stub of syrep/internal/bdd: just enough surface
// for the analyzers, which identify the real package by name, not path.
package bdd

type Ref int32

const (
	False Ref = 0
	True  Ref = 1
)

type Manager struct{}

func New(vars int) *Manager          { return &Manager{} }
func (m *Manager) Ref(f Ref) Ref     { return f }
func (m *Manager) Deref(f Ref)       {}
func (m *Manager) GC()               {}
func (m *Manager) Reorder(limit int) {}
func (m *Manager) VarRef(v int) Ref  { return True }
func (m *Manager) And(a, b Ref) Ref  { return a }

func (m *Manager) Protect(fn func() error) error { return fn() }
