// Fixtures for the bddref analyzer.
package a

import "bdd"

type holder struct {
	root   bdd.Ref
	domain bdd.Ref
}

// Escaping stores in a function that collects: all flagged.
func storesWhileCollecting(m *bdd.Manager, h *holder, table map[string]bdd.Ref, list []bdd.Ref) {
	x := m.VarRef(1)
	h.root = x            // want `bdd\.Ref stored into struct field root in a function that runs Manager\.GC`
	table["k"] = x        // want `bdd\.Ref stored into a map in a function that runs Manager\.GC`
	list[0] = x           // want `bdd\.Ref stored into a slice in a function that runs Manager\.GC`
	_ = append(list, x)   // want `bdd\.Ref stored into a slice via append in a function that runs Manager\.GC`
	_ = []bdd.Ref{x}      // want `bdd\.Ref stored into a composite literal in a function that runs Manager\.GC`
	m.Deref(x)
	m.GC()
}

// Same stores, but the function never collects: the engine guarantees no
// implicit GC inside a top-level op, so nothing is reported.
func storesWithoutGC(m *bdd.Manager, h *holder, table map[string]bdd.Ref) {
	x := m.VarRef(1)
	h.root = x
	table["k"] = x
}

// Protected stores and constants are fine even when collecting.
func protectedStores(m *bdd.Manager, h *holder, table map[string]bdd.Ref) {
	x := m.VarRef(1)
	h.root = m.Ref(x)
	h.domain = bdd.True
	table["k"] = m.Ref(x)
	m.GC()
}

// GC with a live unprotected local: flagged, with the read position.
func gcWithLiveLocal(m *bdd.Manager) bdd.Ref {
	x := m.VarRef(1)
	m.GC() // want `Manager\.GC\(\) with unprotected bdd\.Ref local "x" still live`
	return x
}

// The local is re-derived after the collection: not live across it.
func gcThenReassign(m *bdd.Manager) bdd.Ref {
	x := m.VarRef(1)
	m.Deref(x)
	m.GC()
	x = m.VarRef(2)
	return x
}

// Protecting before collecting silences the report.
func gcProtectedLocal(m *bdd.Manager) bdd.Ref {
	x := m.VarRef(1)
	x = m.Ref(x)
	m.GC()
	return x
}

// Accumulator read on the next iteration after an in-loop GC: flagged even
// though no read follows the call positionally.
func gcInLoopAccumulator(m *bdd.Manager, n int) {
	acc := m.VarRef(0)
	for i := 1; i < n; i++ {
		acc = m.And(acc, m.VarRef(i))
		m.GC() // want `Manager\.GC\(\) with unprotected bdd\.Ref local "acc" still live`
	}
}

// Loop-local scratch that is re-derived before every read: not flagged.
func gcInLoopFresh(m *bdd.Manager, n int) {
	for i := 0; i < n; i++ {
		x := m.VarRef(i)
		m.Deref(x)
		m.GC()
	}
}

// The engine's own Manager methods are exempt (checked via a local alias
// type in the real tree; here the stub's methods simply are not analyzed
// because they live in another package).

// Suppression directive.
func suppressedStore(m *bdd.Manager, h *holder) {
	x := m.VarRef(1)
	//syreplint:ignore bddref x is protected by the caller for the manager's lifetime
	h.root = x
	m.GC()
}
