package analysis

// fix.go applies suggested fixes textually. Edits are gathered per file,
// applied back-to-front so earlier offsets stay valid, and returned as new
// file contents for the caller (syrep-lint -fix) to write out.

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// fileEdit is one edit resolved to byte offsets within a file.
type fileEdit struct {
	start, end int
	newText    string
}

// ApplyFixes collects every fix attached to the diagnostics and returns the
// updated contents of each file that changes, keyed by filename. Overlapping
// edits within a file are an error — mechanical fixes must not fight.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (map[string][]byte, error) {
	perFile := make(map[string][]fileEdit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				p := fset.Position(e.Pos)
				endOff := p.Offset
				if e.End.IsValid() {
					pe := fset.Position(e.End)
					if pe.Filename != p.Filename {
						return nil, fmt.Errorf("analysis: fix edit spans files %s and %s", p.Filename, pe.Filename)
					}
					endOff = pe.Offset
				}
				perFile[p.Filename] = append(perFile[p.Filename], fileEdit{
					start:   p.Offset,
					end:     endOff,
					newText: e.NewText,
				})
			}
		}
	}

	out := make(map[string][]byte, len(perFile))
	for name, edits := range perFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				return nil, fmt.Errorf("analysis: overlapping fix edits in %s at offsets %d and %d",
					name, edits[i].start, edits[i-1].start)
			}
		}
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("analysis: fix edit out of range in %s", name)
			}
			src = append(src[:e.start], append([]byte(e.newText), src[e.end:]...)...)
		}
		out[name] = src
	}
	return out, nil
}

// WriteFixes writes the contents returned by ApplyFixes back to disk.
func WriteFixes(files map[string][]byte) error {
	for name, content := range files {
		info, err := os.Stat(name)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode()
		}
		if err := os.WriteFile(name, content, mode); err != nil {
			return fmt.Errorf("analysis: writing fix: %w", err)
		}
	}
	return nil
}
