package routing

import (
	"testing"

	"syrep/internal/network"
)

// twoBuilds constructs the same square topology twice with different node
// and edge insertion orders, returning both networks.
func twoBuilds(t *testing.T) (*network.Network, *network.Network) {
	t.Helper()
	b1 := network.NewBuilder("sq")
	for _, n := range []string{"d", "v1", "v2", "v3"} {
		b1.AddNode(n)
	}
	for _, l := range [][2]string{{"d", "v1"}, {"v1", "v2"}, {"v2", "v3"}, {"v3", "d"}} {
		b1.AddLink(l[0], l[1])
	}
	b2 := network.NewBuilder("sq-permuted")
	for _, n := range []string{"v2", "d", "v3", "v1"} {
		b2.AddNode(n)
	}
	for _, l := range [][2]string{{"v3", "v2"}, {"d", "v3"}, {"v2", "v1"}, {"v1", "d"}} {
		b2.AddLink(l[0], l[1])
	}
	n1, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n1, n2
}

// install writes the same logical table onto a routing via display names:
// at v1 arriving on the loop-back, prefer the edge toward d then toward v2.
func install(t *testing.T, net *network.Network) *Routing {
	t.Helper()
	r := New(net, net.NodeByName("d"))
	v1 := net.NodeByName("v1")
	var toD, toV2 network.EdgeID = network.NoEdge, network.NoEdge
	for _, e := range net.IncidentEdges(v1) {
		if net.NodeName(net.Other(e, v1)) == "d" {
			toD = e
		}
		if net.NodeName(net.Other(e, v1)) == "v2" {
			toV2 = e
		}
	}
	r.MustSet(net.Loopback(v1), v1, []network.EdgeID{toD, toV2})
	if err := r.PunchHole(toV2, v1, 2); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoutingFingerprintCanonical(t *testing.T) {
	n1, n2 := twoBuilds(t)
	r1, r2 := install(t, n1), install(t, n2)
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Errorf("same logical table on permuted builds, different fingerprints:\n  %s\n  %s",
			r1.Fingerprint(), r2.Fingerprint())
	}
	// Mutations change the fingerprint.
	before := r1.Fingerprint()
	v1 := n1.NodeByName("v1")
	prio, _ := r1.Get(n1.Loopback(v1), v1)
	r1.MustSet(n1.Loopback(v1), v1, []network.EdgeID{prio[1], prio[0]})
	if r1.Fingerprint() == before {
		t.Error("reordering a priority list did not change the fingerprint")
	}
}

func TestRoutingFingerprintSensitiveToDest(t *testing.T) {
	n1, _ := twoBuilds(t)
	a := New(n1, n1.NodeByName("d"))
	b := New(n1, n1.NodeByName("v2"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different destinations share a fingerprint")
	}
}
