package routing

import (
	"encoding/json"
	"fmt"

	"syrep/internal/network"
)

// wireRouting is the JSON representation of a Routing. Edges and nodes are
// referenced by display name so that tables survive edge-id renumbering as
// long as names are stable.
type wireRouting struct {
	Dest    string      `json:"dest"`
	Entries []wireEntry `json:"entries"`
	Holes   []wireHole  `json:"holes,omitempty"`
}

type wireEntry struct {
	In       string   `json:"in"`
	At       string   `json:"at"`
	Priority []string `json:"priority"`
}

type wireHole struct {
	In      string `json:"in"`
	At      string `json:"at"`
	ListLen int    `json:"listLen"`
}

// MarshalJSON encodes the routing with node/edge names.
func (r *Routing) MarshalJSON() ([]byte, error) {
	w := wireRouting{Dest: r.net.NodeName(r.dest)}
	for _, k := range r.Keys() {
		prio := r.entries[k]
		names := make([]string, len(prio))
		for i, e := range prio {
			names[i] = r.net.EdgeName(e)
		}
		w.Entries = append(w.Entries, wireEntry{
			In:       r.net.EdgeName(k.In),
			At:       r.net.NodeName(k.At),
			Priority: names,
		})
	}
	for _, h := range r.Holes() {
		w.Holes = append(w.Holes, wireHole{
			In:      r.net.EdgeName(h.Key.In),
			At:      r.net.NodeName(h.Key.At),
			ListLen: h.ListLen,
		})
	}
	return json.Marshal(w)
}

// Unmarshal decodes a routing previously produced by MarshalJSON, resolving
// names against net.
func Unmarshal(data []byte, net *network.Network) (*Routing, error) {
	var w wireRouting
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("routing: decode: %w", err)
	}
	dest := net.NodeByName(w.Dest)
	if dest == network.NoNode {
		return nil, fmt.Errorf("routing: unknown destination node %q", w.Dest)
	}
	edgeByName := make(map[string]network.EdgeID, net.NumEdges())
	for e := 0; e < net.NumEdges(); e++ {
		edgeByName[net.EdgeName(network.EdgeID(e))] = network.EdgeID(e)
	}
	r := New(net, dest)
	for _, we := range w.Entries {
		at := net.NodeByName(we.At)
		if at == network.NoNode {
			return nil, fmt.Errorf("routing: unknown node %q", we.At)
		}
		in, ok := edgeByName[we.In]
		if !ok {
			return nil, fmt.Errorf("routing: unknown edge %q", we.In)
		}
		prio := make([]network.EdgeID, len(we.Priority))
		for i, name := range we.Priority {
			e, ok := edgeByName[name]
			if !ok {
				return nil, fmt.Errorf("routing: unknown edge %q", name)
			}
			prio[i] = e
		}
		if err := r.Set(in, at, prio); err != nil {
			return nil, err
		}
	}
	for _, wh := range w.Holes {
		at := net.NodeByName(wh.At)
		if at == network.NoNode {
			return nil, fmt.Errorf("routing: unknown node %q", wh.At)
		}
		in, ok := edgeByName[wh.In]
		if !ok {
			return nil, fmt.Errorf("routing: unknown edge %q", wh.In)
		}
		if err := r.PunchHole(in, at, wh.ListLen); err != nil {
			return nil, err
		}
	}
	return r, nil
}
