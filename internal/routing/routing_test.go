package routing_test

import (
	"encoding/json"
	"strings"
	"testing"

	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/routing"
)

func fig1() (*network.Network, network.NodeID) {
	n := papernet.Figure1()
	return n, papernet.Figure1Dest(n)
}

func TestSetGet(t *testing.T) {
	n, d := fig1()
	r := routing.New(n, d)
	v3 := n.NodeByName("v3")
	if err := r.Set(n.Loopback(v3), v3, []network.EdgeID{1, 6, 3}); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, ok := r.Get(n.Loopback(v3), v3)
	if !ok {
		t.Fatal("Get: entry missing")
	}
	want := []network.EdgeID{1, 6, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Get = %v, want %v", got, want)
		}
	}
	if r.NumEntries() != 1 {
		t.Errorf("NumEntries = %d, want 1", r.NumEntries())
	}
}

func TestSetValidation(t *testing.T) {
	n, d := fig1()
	r := routing.New(n, d)
	v3 := n.NodeByName("v3")
	v2 := n.NodeByName("v2")
	tests := []struct {
		name string
		in   network.EdgeID
		at   network.NodeID
		prio []network.EdgeID
	}{
		{"entry at destination", 0, d, []network.EdgeID{0}},
		{"in-edge not incident", 0 /* e0={v2,d} */, v3, []network.EdgeID{1}},
		{"priority edge not incident", 1, v3, []network.EdgeID{0}},
		{"loopback in priority list", 1, v3, []network.EdgeID{n.Loopback(v3)}},
		{"foreign loopback in-edge", n.Loopback(v2), v3, []network.EdgeID{1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := r.Set(tt.in, tt.at, tt.prio); err == nil {
				t.Error("Set succeeded, want error")
			}
		})
	}
}

func TestDelete(t *testing.T) {
	n, d := fig1()
	r := routing.New(n, d)
	v3 := n.NodeByName("v3")
	r.MustSet(1, v3, []network.EdgeID{6})
	r.Delete(1, v3)
	if _, ok := r.Get(1, v3); ok {
		t.Error("entry survived Delete")
	}
}

func TestHoles(t *testing.T) {
	n, d := fig1()
	r := routing.New(n, d)
	v3 := n.NodeByName("v3")
	v4 := n.NodeByName("v4")
	r.MustSet(1, v3, []network.EdgeID{6})
	if err := r.PunchHole(1, v3, 3); err != nil {
		t.Fatalf("PunchHole: %v", err)
	}
	if _, ok := r.Get(1, v3); ok {
		t.Error("entry survived PunchHole")
	}
	if !r.IsHole(1, v3) {
		t.Error("IsHole = false")
	}
	if err := r.PunchHole(6, v4, 2); err != nil {
		t.Fatalf("PunchHole: %v", err)
	}
	holes := r.Holes()
	if len(holes) != 2 {
		t.Fatalf("Holes = %v, want 2 entries", holes)
	}
	// Sorted by (node, in-edge): v3 before v4.
	if holes[0].Key.At != v3 || holes[1].Key.At != v4 {
		t.Errorf("Holes order = %v", holes)
	}
	if holes[0].ListLen != 3 || holes[1].ListLen != 2 {
		t.Errorf("Holes lengths = %v", holes)
	}
	// Setting an entry clears the hole.
	r.MustSet(1, v3, []network.EdgeID{6, 1})
	if r.IsHole(1, v3) {
		t.Error("hole survived Set")
	}
}

func TestPunchHoleValidation(t *testing.T) {
	n, d := fig1()
	r := routing.New(n, d)
	if err := r.PunchHole(0, d, 2); err == nil {
		t.Error("PunchHole at destination succeeded")
	}
	if err := r.PunchHole(0, n.NodeByName("v3"), 2); err == nil {
		t.Error("PunchHole with non-incident in-edge succeeded")
	}
	if err := r.PunchHole(1, n.NodeByName("v3"), 0); err == nil {
		t.Error("PunchHole with zero length succeeded")
	}
}

func TestCloneEqual(t *testing.T) {
	n, _ := fig1()
	r := papernet.Figure1bRouting(n)
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	v3 := n.NodeByName("v3")
	c.MustSet(1, v3, []network.EdgeID{3, 6, 1})
	if r.Equal(c) {
		t.Error("Equal after divergence")
	}
	got, _ := r.Get(1, v3)
	if got[0] != 6 {
		t.Error("mutating clone affected original")
	}
}

func TestEqualHoleDifference(t *testing.T) {
	n, _ := fig1()
	a := papernet.Figure1bRouting(n)
	b := a.Clone()
	v3 := n.NodeByName("v3")
	if err := b.PunchHole(1, v3, 2); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Error("Equal despite hole difference")
	}
}

func TestComplete(t *testing.T) {
	n, _ := fig1()
	r := papernet.Figure1bRouting(n)
	if !r.Complete() {
		t.Error("Figure 1b routing should be complete")
	}
	r.Delete(1, n.NodeByName("v3"))
	if r.Complete() {
		t.Error("Complete after Delete")
	}
}

func TestAllKeys(t *testing.T) {
	n, _ := fig1()
	r := papernet.Figure1bRouting(n)
	keys := r.AllKeys()
	// Per node v != d: deg(v) + 1 keys. v1:3, v2:3, v3:4, v4:5 = 15.
	if len(keys) != 15 {
		t.Errorf("AllKeys returned %d keys, want 15", len(keys))
	}
	for _, k := range keys {
		if k.At == r.Dest() {
			t.Errorf("AllKeys contains destination key %v", k)
		}
		if !n.Incident(k.In, k.At) {
			t.Errorf("AllKeys key %v not incident", k)
		}
	}
	// Figure 1b routing is complete, so its keys equal AllKeys.
	if r.NumEntries() != len(keys) {
		t.Errorf("entries %d != keys %d", r.NumEntries(), len(keys))
	}
}

func TestValidate(t *testing.T) {
	n, _ := fig1()
	r := papernet.Figure1bRouting(n)
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	n, _ := fig1()
	r := papernet.Figure1bRouting(n)
	v3 := n.NodeByName("v3")
	if err := r.PunchHole(1, v3, 3); err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "HOLE[3]") {
		t.Errorf("String lacks hole marker:\n%s", s)
	}
	if !strings.Contains(s, "lb_v3") {
		t.Errorf("String lacks loop-back name:\n%s", s)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	n, _ := fig1()
	r := papernet.Figure1bRouting(n)
	if err := r.PunchHole(6, n.NodeByName("v4"), 3); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := routing.Unmarshal(data, n)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !r.Equal(back) {
		t.Errorf("round trip lost information:\n%s\nvs\n%s", r, back)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	n, _ := fig1()
	tests := []struct {
		name string
		data string
	}{
		{"garbage", "{"},
		{"unknown dest", `{"dest":"zz"}`},
		{"unknown node", `{"dest":"d","entries":[{"in":"e1","at":"zz","priority":[]}]}`},
		{"unknown in edge", `{"dest":"d","entries":[{"in":"zz","at":"v3","priority":[]}]}`},
		{"unknown prio edge", `{"dest":"d","entries":[{"in":"e1","at":"v3","priority":["zz"]}]}`},
		{"invalid entry", `{"dest":"d","entries":[{"in":"e0","at":"v3","priority":[]}]}`},
		{"hole at unknown node", `{"dest":"d","holes":[{"in":"e1","at":"zz","listLen":2}]}`},
		{"hole unknown edge", `{"dest":"d","holes":[{"in":"zz","at":"v3","listLen":2}]}`},
		{"invalid hole", `{"dest":"d","holes":[{"in":"e0","at":"v3","listLen":2}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := routing.Unmarshal([]byte(tt.data), n); err == nil {
				t.Error("Unmarshal succeeded, want error")
			}
		})
	}
}

func TestKeyString(t *testing.T) {
	k := routing.Key{In: 3, At: 1}
	if got := k.String(); got != "(e3, n1)" {
		t.Errorf("Key.String = %q", got)
	}
}
