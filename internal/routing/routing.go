// Package routing implements skipping routings (Definition 2 of the SyRep
// paper): partial functions R : E × V ⇀ E* mapping an (in-edge, node) pair to
// a priority list of out-edges. A packet arriving at node v on edge e is
// forwarded along the first edge of R(e, v) that is not failed.
//
// A Routing may contain holes — keys whose priority list has been removed and
// is awaiting synthesis by the BDD-based repair engine.
package routing

import (
	"fmt"
	"sort"
	"strings"

	"syrep/internal/network"
)

// Key identifies a routing table entry: the in-edge and the node at which
// the forwarding decision is made.
type Key struct {
	In network.EdgeID
	At network.NodeID
}

// String renders the key as "(e3, v1)" using raw ids.
func (k Key) String() string {
	return fmt.Sprintf("(e%d, n%d)", k.In, k.At)
}

// Routing is a skipping routing for a single fixed destination. Entries at
// the destination node itself are not stored: the destination absorbs
// packets.
type Routing struct {
	net     *network.Network
	dest    network.NodeID
	entries map[Key][]network.EdgeID
	holes   map[Key]int // hole -> desired priority-list length
}

// New returns an empty routing on net toward dest.
func New(net *network.Network, dest network.NodeID) *Routing {
	return &Routing{
		net:     net,
		dest:    dest,
		entries: make(map[Key][]network.EdgeID),
		holes:   make(map[Key]int),
	}
}

// Network returns the network the routing is defined on.
func (r *Routing) Network() *network.Network { return r.net }

// Dest returns the destination node.
func (r *Routing) Dest() network.NodeID { return r.dest }

// Set installs the priority list for (in, at), replacing any previous entry
// or hole. It validates Definition 2: every listed edge, as well as the
// in-edge, must be incident to the node. Entries at the destination are
// rejected because the destination never forwards.
func (r *Routing) Set(in network.EdgeID, at network.NodeID, prio []network.EdgeID) error {
	if at == r.dest {
		return fmt.Errorf("routing: entry at destination node %d", at)
	}
	if !r.net.Incident(in, at) {
		return fmt.Errorf("routing: in-edge e%d is not incident to node %d", in, at)
	}
	for _, e := range prio {
		if !r.net.Incident(e, at) {
			return fmt.Errorf("routing: priority edge e%d of entry %v is not incident to node %d",
				e, Key{In: in, At: at}, at)
		}
		if r.net.IsLoopback(e) {
			return fmt.Errorf("routing: priority list of %v contains loop-back e%d",
				Key{In: in, At: at}, e)
		}
	}
	k := Key{In: in, At: at}
	delete(r.holes, k)
	r.entries[k] = append([]network.EdgeID(nil), prio...)
	return nil
}

// MustSet is Set for statically known-valid tables; it panics on error.
func (r *Routing) MustSet(in network.EdgeID, at network.NodeID, prio []network.EdgeID) {
	if err := r.Set(in, at, prio); err != nil {
		panic(err)
	}
}

// Get returns the priority list for (in, at). The second result is false if
// the entry is absent or a hole. The returned slice is shared; callers must
// not modify it.
func (r *Routing) Get(in network.EdgeID, at network.NodeID) ([]network.EdgeID, bool) {
	p, ok := r.entries[Key{In: in, At: at}]
	return p, ok
}

// Delete removes the entry (and any hole) at the key.
func (r *Routing) Delete(in network.EdgeID, at network.NodeID) {
	k := Key{In: in, At: at}
	delete(r.entries, k)
	delete(r.holes, k)
}

// PunchHole removes the entry at the key and marks it as a hole to be filled
// by synthesis with a priority list of the given length.
func (r *Routing) PunchHole(in network.EdgeID, at network.NodeID, listLen int) error {
	if at == r.dest {
		return fmt.Errorf("routing: hole at destination node %d", at)
	}
	if !r.net.Incident(in, at) {
		return fmt.Errorf("routing: hole in-edge e%d is not incident to node %d", in, at)
	}
	if listLen < 1 {
		return fmt.Errorf("routing: hole list length %d < 1", listLen)
	}
	k := Key{In: in, At: at}
	delete(r.entries, k)
	r.holes[k] = listLen
	return nil
}

// IsHole reports whether the key is currently a hole.
func (r *Routing) IsHole(in network.EdgeID, at network.NodeID) bool {
	_, ok := r.holes[Key{In: in, At: at}]
	return ok
}

// Holes returns the hole keys with their desired list lengths, sorted for
// determinism.
func (r *Routing) Holes() []Hole {
	out := make([]Hole, 0, len(r.holes))
	for k, n := range r.holes {
		out = append(out, Hole{Key: k, ListLen: n})
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].Key, out[j].Key) })
	return out
}

// Hole is a routing entry removed for re-synthesis.
type Hole struct {
	Key     Key
	ListLen int
}

// NumEntries returns the number of concrete entries.
func (r *Routing) NumEntries() int { return len(r.entries) }

// NumHoles returns the number of holes.
func (r *Routing) NumHoles() int { return len(r.holes) }

// Keys returns all concrete entry keys, sorted for determinism.
func (r *Routing) Keys() []Key {
	out := make([]Key, 0, len(r.entries))
	for k := range r.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Clone returns an independent deep copy of the routing.
func (r *Routing) Clone() *Routing {
	c := New(r.net, r.dest)
	for k, p := range r.entries {
		c.entries[k] = append([]network.EdgeID(nil), p...)
	}
	for k, n := range r.holes {
		c.holes[k] = n
	}
	return c
}

// Equal reports whether two routings have identical entries and holes on the
// same network (pointer identity) and destination.
func (r *Routing) Equal(o *Routing) bool {
	if r.net != o.net || r.dest != o.dest ||
		len(r.entries) != len(o.entries) || len(r.holes) != len(o.holes) {
		return false
	}
	for k, p := range r.entries {
		q, ok := o.entries[k]
		if !ok || len(p) != len(q) {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
	}
	for k, n := range r.holes {
		if o.holes[k] != n {
			return false
		}
	}
	return true
}

// Complete reports whether the routing has a concrete entry for every
// (in-edge, node) pair of the network except at the destination. A complete
// routing never silently drops a packet for lack of a rule (it may still
// drop when all listed edges fail).
func (r *Routing) Complete() bool {
	for _, v := range r.net.Nodes() {
		if v == r.dest {
			continue
		}
		for _, in := range r.inEdges(v) {
			if _, ok := r.entries[Key{In: in, At: v}]; !ok {
				return false
			}
		}
	}
	return true
}

// inEdges lists the possible in-edges at v: all incident real edges plus the
// loop-back.
func (r *Routing) inEdges(v network.NodeID) []network.EdgeID {
	inc := r.net.IncidentEdges(v)
	out := make([]network.EdgeID, 0, len(inc)+1)
	out = append(out, inc...)
	out = append(out, r.net.Loopback(v))
	return out
}

// AllKeys returns every (in-edge, node) pair that may carry an entry:
// all pairs (e, v) with v ∈ r(e), v != dest, including loop-back in-edges.
// Sorted for determinism.
func (r *Routing) AllKeys() []Key {
	var out []Key
	for _, v := range r.net.Nodes() {
		if v == r.dest {
			continue
		}
		for _, in := range r.inEdges(v) {
			out = append(out, Key{In: in, At: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Validate re-checks Definition 2 for every stored entry. It is useful after
// deserialisation.
func (r *Routing) Validate() error {
	for k, prio := range r.entries {
		if k.At == r.dest {
			return fmt.Errorf("routing: entry %v at destination", k)
		}
		if !r.net.Incident(k.In, k.At) {
			return fmt.Errorf("routing: entry %v: in-edge not incident", k)
		}
		for _, e := range prio {
			if !r.net.Incident(e, k.At) {
				return fmt.Errorf("routing: entry %v: edge e%d not incident", k, e)
			}
		}
	}
	return nil
}

// String renders the routing as a table in the style of Figure 1b.
func (r *Routing) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "routing to %s (%d entries, %d holes)\n",
		r.net.NodeName(r.dest), len(r.entries), len(r.holes))
	for _, k := range r.Keys() {
		prio := r.entries[k]
		names := make([]string, len(prio))
		for i, e := range prio {
			names[i] = r.net.EdgeName(e)
		}
		fmt.Fprintf(&b, "  %-8s @ %-4s -> (%s)\n",
			r.net.EdgeName(k.In), r.net.NodeName(k.At), strings.Join(names, ", "))
	}
	for _, h := range r.Holes() {
		fmt.Fprintf(&b, "  %-8s @ %-4s -> HOLE[%d]\n",
			r.net.EdgeName(h.Key.In), r.net.NodeName(h.Key.At), h.ListLen)
	}
	return b.String()
}

func less(a, b Key) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.In < b.In
}
