package routing

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
	"strconv"
	"strings"

	"syrep/internal/network"
)

// Fingerprint returns the canonical content hash of the routing table:
// SHA-256 over the network fingerprint, the destination name, and the sorted
// canonical encodings of every entry and hole. Edge ids do not contribute —
// entries are encoded via canonical edge keys and node names — so two
// logically identical tables on independently built copies of the same
// topology share a fingerprint. Routings are mutable, so the hash is
// recomputed on every call; use it at cache boundaries, not in hot loops.
func (r *Routing) Fingerprint() network.Fingerprint {
	lines := make([]string, 0, len(r.entries)+len(r.holes))
	for _, k := range r.Keys() {
		var b strings.Builder
		b.WriteString("entry ")
		b.WriteString(r.net.EdgeKey(k.In))
		b.WriteString(" @ ")
		b.WriteString(strconv.Quote(r.net.NodeName(k.At)))
		b.WriteString(" ->")
		for _, e := range r.entries[k] {
			b.WriteString(" ")
			b.WriteString(r.net.EdgeKey(e))
		}
		lines = append(lines, b.String())
	}
	for _, hole := range r.Holes() {
		lines = append(lines, "hole "+r.net.EdgeKey(hole.Key.In)+" @ "+
			strconv.Quote(r.net.NodeName(hole.Key.At))+" len "+strconv.Itoa(hole.ListLen))
	}
	// Keys() sorts by edge/node id, which is builder-order dependent; the
	// canonical order is the lexicographic order of the encoded lines.
	sort.Strings(lines)

	h := sha256.New()
	// Hash writes never fail; errors are ignored throughout.
	_, _ = io.WriteString(h, "syrep/routing/v1\n")
	_, _ = io.WriteString(h, "net "+string(r.net.Fingerprint())+"\n")
	_, _ = io.WriteString(h, "dest "+strconv.Quote(r.net.NodeName(r.dest))+"\n")
	for _, line := range lines {
		_, _ = io.WriteString(h, line+"\n")
	}
	return network.Fingerprint(hex.EncodeToString(h.Sum(nil)[:16]))
}
