package routing_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"syrep/internal/core"
	"syrep/internal/papernet"
)

// TestSynthesisDeterministic is the repo's reproducibility contract: running
// the full synthesis pipeline twice on the same topology must yield
// byte-identical encoded routing tables, for every strategy. A failure here
// means map-iteration order (or BDD Ref allocation order) leaked into the
// result — the exact bug class the maporder/bddref analyzers guard against.
func TestSynthesisDeterministic(t *testing.T) {
	ctx := context.Background()
	for _, s := range []core.Strategy{core.Baseline, core.HeuristicOnly, core.ReductionOnly, core.Combined} {
		t.Run(s.String(), func(t *testing.T) {
			encode := func() []byte {
				n := papernet.Figure1()
				d := papernet.Figure1Dest(n)
				r, _, err := core.Synthesize(ctx, n, d, 2, core.Options{Strategy: s})
				if err != nil {
					t.Fatalf("Synthesize: %v", err)
				}
				data, err := json.Marshal(r)
				if err != nil {
					t.Fatalf("Marshal: %v", err)
				}
				return data
			}
			first, second := encode(), encode()
			if !bytes.Equal(first, second) {
				t.Errorf("two synthesis runs produced different encoded tables:\nrun 1: %s\nrun 2: %s", first, second)
			}
		})
	}
}
