// Package cache implements the cross-request synthesis cache: a
// content-addressed LRU+TTL map from (topology fingerprint, destination,
// resilience level, strategy) to a previously synthesized routing table and
// its verification verdict, plus the warm-start machinery that adapts a
// cached table onto a changed topology so only the verify+repair endgame of
// the pipeline runs (the paper's Fig. 6 dynamic-repair shortcut).
//
// The cache is bounded twice — by entry count and by an approximate byte
// footprint — and supports wholesale purging on memory pressure (the server
// purges when its breaker trips for memory). Concurrent identical requests
// are deduplicated by the singleflight Do, so N callers cost one synthesis.
package cache

import (
	"container/list"
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
)

// Key is the cache key: everything that determines the synthesized table.
type Key struct {
	// Topo is the canonical topology fingerprint (network.Fingerprint).
	Topo network.Fingerprint
	// Dest is the destination node name (names survive renumbering).
	Dest string
	// K is the resilience level.
	K int
	// Strategy is the synthesis strategy's string form.
	Strategy string
}

// Entry is a cached synthesis result.
type Entry struct {
	// Net is the base network the table was synthesized on.
	Net *network.Network
	// Routing is the synthesized table. The cache stores and returns deep
	// clones, so callers may mutate what they get back.
	Routing *routing.Routing
	// Resilient and Residual are the verification verdict of Routing at K:
	// perfectly k-resilient, or carrying this many known failing deliveries.
	Resilient bool
	Residual  int
}

// Config sizes the cache. The zero value gets sane defaults.
type Config struct {
	// MaxEntries bounds the entry count (default 256).
	MaxEntries int
	// MaxBytes bounds the approximate byte footprint (default 64 MiB).
	MaxBytes int64
	// TTL bounds entry age; expired entries miss and are dropped on lookup
	// (default 15 minutes).
	TTL time.Duration
	// Obs, when non-nil, receives the hit/miss/dedup/warm-start/eviction
	// counters and the entries/bytes gauges under the canonical
	// syrep_cache_* names.
	Obs *obs.Observer
	// Now is a test seam for the clock (default time.Now).
	Now func() time.Time
}

// Stats is a point-in-time summary, served by the /v1/cache endpoint.
type Stats struct {
	Entries    int           `json:"entries"`
	MaxEntries int           `json:"maxEntries"`
	Bytes      int64         `json:"bytes"`
	MaxBytes   int64         `json:"maxBytes"`
	TTL        time.Duration `json:"ttlNs"`
	Hits       int64         `json:"hits"`
	Misses     int64         `json:"misses"`
	Dedups     int64         `json:"dedups"`
	WarmHits   int64         `json:"warmHits"`
	WarmMisses int64         `json:"warmMisses"`
	Evictions  int64         `json:"evictions"`
}

// item is the LRU list payload.
type item struct {
	key     Key
	e       *Entry
	bytes   int64
	expires time.Time // zero when the cache has no TTL
}

// flight is one in-progress singleflight computation.
type flight struct {
	done chan struct{}
	v    any
	err  error
}

// Cache is the cross-request synthesis cache. Safe for concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[Key]*list.Element
	bytes   int64
	flights map[Key]*flight

	hits, misses, dedups     *obs.Counter
	warmHits, warmMisses     *obs.Counter
	evictions                *obs.Counter
	entriesGauge, bytesGauge *obs.Gauge
}

// New returns a cache sized by cfg.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 256
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Cache{
		cfg:     cfg,
		ll:      list.New(),
		entries: make(map[Key]*list.Element),
		flights: make(map[Key]*flight),
	}
	if cfg.Obs != nil {
		c.hits = cfg.Obs.Counter(obs.CacheHits)
		c.misses = cfg.Obs.Counter(obs.CacheMisses)
		c.dedups = cfg.Obs.Counter(obs.CacheDedups)
		c.warmHits = cfg.Obs.Counter(obs.CacheWarmHits)
		c.warmMisses = cfg.Obs.Counter(obs.CacheWarmMisses)
		c.evictions = cfg.Obs.Counter(obs.CacheEvictions)
		c.entriesGauge = cfg.Obs.Gauge(obs.CacheEntries)
		c.bytesGauge = cfg.Obs.Gauge(obs.CacheBytes)
	} else {
		c.hits, c.misses, c.dedups = new(obs.Counter), new(obs.Counter), new(obs.Counter)
		c.warmHits, c.warmMisses = new(obs.Counter), new(obs.Counter)
		c.evictions = new(obs.Counter)
		c.entriesGauge, c.bytesGauge = new(obs.Gauge), new(obs.Gauge)
	}
	return c
}

// Get returns the entry under key, bumping it to most-recently-used. The
// returned entry carries a clone of the cached routing. Expired entries are
// dropped and miss.
func (c *Cache) Get(key Key) (*Entry, bool) {
	e, ok := func() (*Entry, bool) {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.lookupLocked(key)
	}()
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return cloneEntry(e), true
}

// lookupLocked finds key, handles TTL expiry, and bumps the LRU position.
func (c *Cache) lookupLocked(key Key) (*Entry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	it := el.Value.(*item)
	if !it.expires.IsZero() && c.cfg.Now().After(it.expires) {
		c.removeLocked(el)
		c.evictions.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	return it.e, true
}

// Put inserts (or replaces) the entry under key and evicts least-recently
// used entries until the count and byte bounds hold again.
func (c *Cache) Put(key Key, e *Entry) {
	if e == nil || e.Routing == nil || e.Net == nil {
		return
	}
	stored := cloneEntry(e)
	it := &item{
		key:     key,
		e:       stored,
		bytes:   entryBytes(stored),
		expires: c.cfg.Now().Add(c.cfg.TTL),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(it)
	c.entries[key] = el
	c.bytes += it.bytes
	// Evict from the LRU end until both bounds hold again; each pass drops
	// one entry, so the initial length bounds the loop.
	for left := c.ll.Len(); left > 1 && (c.ll.Len() > c.cfg.MaxEntries || c.bytes > c.cfg.MaxBytes); left-- {
		back := c.ll.Back()
		if back == el {
			break // never evict the entry just inserted, even when oversized
		}
		c.removeLocked(back)
		c.evictions.Inc()
	}
	c.gaugesLocked()
}

func (c *Cache) removeLocked(el *list.Element) {
	it := el.Value.(*item)
	c.ll.Remove(el)
	delete(c.entries, it.key)
	c.bytes -= it.bytes
	c.gaugesLocked()
}

func (c *Cache) gaugesLocked() {
	c.entriesGauge.Set(int64(c.ll.Len()))
	c.bytesGauge.Set(c.bytes)
}

// Purge drops every cached entry (in-progress flights are unaffected) and
// returns how many were dropped. The server calls it when the breaker trips
// on memory pressure: the cache is the service's largest discretionary
// allocation.
func (c *Cache) Purge() int {
	n := func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := c.ll.Len()
		c.ll.Init()
		c.entries = make(map[Key]*list.Element)
		c.bytes = 0
		c.gaugesLocked()
		return n
	}()
	c.evictions.Add(int64(n))
	return n
}

// PurgeOldest drops the least-recently-used fraction of the cache (rounded
// up, clamped to [0, 1]) and returns how many entries were dropped. It is
// the partial-evict path for memory pressure under churn: the controller
// keeps its hottest destinations' warm seeds — exactly the entries whose
// loss would turn the next repair from a warm adapt into a cold synthesis —
// while still shedding the bulk of the footprint. A fraction ≥ 1 is a full
// Purge.
func (c *Cache) PurgeOldest(fraction float64) int {
	// NaN fails both range checks below and would make the drop count
	// int(NaN) — a platform-dependent value; treat it as a no-op.
	if math.IsNaN(fraction) || fraction <= 0 {
		return 0
	}
	if fraction >= 1 {
		return c.Purge()
	}
	n := func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		drop := int(math.Ceil(fraction * float64(c.ll.Len())))
		for i := 0; i < drop; i++ {
			back := c.ll.Back()
			if back == nil {
				return i
			}
			c.removeLocked(back)
		}
		return drop
	}()
	c.evictions.Add(int64(n))
	return n
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// errFlightAborted surfaces a leader that died without a result (panic
// unwound through fn); waiters retry or fail their own request.
var errFlightAborted = errors.New("cache: singleflight leader aborted")

// Do deduplicates concurrent identical work: the first caller for key (the
// leader) runs fn; every caller that arrives while the flight is in progress
// blocks and receives the leader's result with shared=true, charging N
// concurrent identical requests one synthesis. The shared value is returned
// as-is — treat it as read-only or copy it. Do does not consult or fill the
// result cache; compose it with Get/Put so non-cacheable results (partial,
// degraded) still dedupe without being stored.
//
// Waiters also unblock on ctx cancellation with the context's error; the
// leader always runs fn to completion regardless of its own ctx (fn is
// expected to carry its own deadline).
//
// A flight whose leader dies without a usable result does not poison its
// waiters: when the leader panics out of fn, or fails with a cancellation
// that was the *leader's* (the waiter's own ctx is still live), each waiter
// re-elects — the first to wake becomes the new leader and runs fn itself,
// the rest wait on the new flight. A batch fanning N destinations through
// Do therefore never loses N-1 requests to one aborted leader.
func (c *Cache) Do(ctx context.Context, key Key, fn func() (any, error)) (v any, shared bool, err error) {
	for {
		c.mu.Lock()
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			c.dedups.Inc()
			select {
			case <-f.done:
				if leaderAborted(f.err) && ctx.Err() == nil {
					continue // re-elect: this waiter may become leader
				}
				return f.v, true, f.err
			case <-ctx.Done():
				return nil, true, context.Cause(ctx)
			}
		}
		f := &flight{done: make(chan struct{}), err: errFlightAborted}
		c.flights[key] = f
		c.mu.Unlock()

		defer func() {
			c.mu.Lock()
			delete(c.flights, key)
			c.mu.Unlock()
			close(f.done)
		}()
		f.v, f.err = fn()
		return f.v, false, f.err
	}
}

// leaderAborted classifies flight errors that say nothing about the work
// itself, only about the leader that was running it: a panic unwound through
// fn (errFlightAborted) or the leader's own context expiring. Such a result
// must not be shared with waiters whose contexts are still live.
func leaderAborted(err error) bool {
	return errors.Is(err, errFlightAborted) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// NoteWarmHit records a repair request served by the warm-start fast path.
func (c *Cache) NoteWarmHit() { c.warmHits.Inc() }

// NoteWarmMiss records a repair request that wanted the fast path but fell
// back to cold synthesis (no candidate, adaptation failure, or fill failure).
func (c *Cache) NoteWarmMiss() { c.warmMisses.Inc() }

// Stats returns a point-in-time summary.
func (c *Cache) Stats() Stats {
	entries, bytes := func() (int, int64) {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.ll.Len(), c.bytes
	}()
	return Stats{
		Entries:    entries,
		MaxEntries: c.cfg.MaxEntries,
		Bytes:      bytes,
		MaxBytes:   c.cfg.MaxBytes,
		TTL:        c.cfg.TTL,
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Dedups:     c.dedups.Load(),
		WarmHits:   c.warmHits.Load(),
		WarmMisses: c.warmMisses.Load(),
		Evictions:  c.evictions.Load(),
	}
}

// Nearest returns the cached entry whose base topology is closest to net —
// same destination name, same k, resilient verdict, and an edge diff (size
// of the symmetric difference of canonical edge-key sets) of at most
// maxDiff — together with that diff. Ties prefer the smaller diff, then the
// lexicographically smallest topology fingerprint, so the choice is
// deterministic under Go's random map order. The scan is linear in the
// cache size, which the entry bound keeps small relative to one synthesis.
func (c *Cache) Nearest(net *network.Network, dest string, k, maxDiff int) (*Entry, int, bool) {
	keys := keySet(net.EdgeKeys())
	now := c.cfg.Now()

	var e *Entry
	diff := 0
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		var best *item
		bestDiff := maxDiff + 1
		for key, el := range c.entries {
			if key.Dest != dest || key.K != k {
				continue
			}
			it := el.Value.(*item)
			if !it.expires.IsZero() && now.After(it.expires) {
				continue // expired; left for lookup/eviction to reap
			}
			if !it.e.Resilient {
				continue
			}
			d := diffAgainst(keys, it.e.Net.EdgeKeys())
			if d < bestDiff || (d == bestDiff && best != nil && key.Topo < best.key.Topo) {
				best, bestDiff = it, d
			}
		}
		if best == nil {
			return
		}
		c.ll.MoveToFront(c.entries[best.key])
		e, diff = best.e, bestDiff
	}()
	if e == nil {
		return nil, 0, false
	}
	return cloneEntry(e), diff, true
}

func cloneEntry(e *Entry) *Entry {
	out := *e
	out.Routing = e.Routing.Clone()
	return &out
}

// entryBytes approximates the resident size of an entry: routing entries
// dominate, at map-header-plus-slice cost per key; the shared network is
// charged once per entry because entries usually pin distinct topologies.
func entryBytes(e *Entry) int64 {
	var b int64 = 128
	r := e.Routing
	for _, k := range r.Keys() {
		prio, _ := r.Get(k.In, k.At)
		b += 48 + 8*int64(len(prio))
	}
	b += 56 * int64(r.NumHoles())
	n := e.Net
	b += 64 + 24*int64(n.NumNodes()) + 48*int64(n.NumEdges())
	return b
}
