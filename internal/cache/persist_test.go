package cache

import (
	"bytes"
	"strings"
	"testing"

	"syrep/internal/network"
)

// TestSaveLoadRoundTrip: a saved cache restores its entries — tables,
// verdicts, and LRU order — against a resolver that knows the topology.
func TestSaveLoadRoundTrip(t *testing.T) {
	old := ring(t, "a", "b", "c")
	newer := ring(t, "a", "b", "c", "d")
	c := New(Config{MaxEntries: 8})
	c.Put(keyFor(old, 2), entryFor(t, old, true))
	c.Put(keyFor(newer, 3), entryFor(t, newer, false))

	var buf bytes.Buffer
	saved, err := c.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 2 {
		t.Fatalf("saved %d entries, want 2", saved)
	}

	known := map[network.Fingerprint]*network.Network{
		old.Fingerprint():   old,
		newer.Fingerprint(): newer,
	}
	resolve := func(fp network.Fingerprint) *network.Network { return known[fp] }

	c2 := New(Config{MaxEntries: 8})
	restored, err := c2.Load(bytes.NewReader(buf.Bytes()), resolve)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 || c2.Len() != 2 {
		t.Fatalf("restored %d entries (len %d), want 2", restored, c2.Len())
	}
	for _, net := range []*network.Network{old, newer} {
		k := 2
		if net == newer {
			k = 3
		}
		e, ok := c2.Get(keyFor(net, k))
		if !ok {
			t.Fatalf("entry for %s/k=%d not restored", net.Fingerprint(), k)
		}
		if e.Routing.NumEntries() == 0 {
			t.Error("restored routing is empty")
		}
		if want := net == old; e.Resilient != want {
			t.Errorf("restored Resilient = %v, want %v", e.Resilient, want)
		}
	}
}

// TestLoadSkipsUnknownTopology: entries whose fingerprint the resolver does
// not recognize are skipped without failing the load.
func TestLoadSkipsUnknownTopology(t *testing.T) {
	net := ring(t, "a", "b", "c")
	c := New(Config{MaxEntries: 8})
	c.Put(keyFor(net, 2), entryFor(t, net, true))
	var buf bytes.Buffer
	if _, err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	c2 := New(Config{MaxEntries: 8})
	restored, err := c2.Load(bytes.NewReader(buf.Bytes()),
		func(network.Fingerprint) *network.Network { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || c2.Len() != 0 {
		t.Fatalf("restored %d entries, want 0", restored)
	}
}

// TestLoadRejectsGarbage: a malformed stream is an error, not a panic.
func TestLoadRejectsGarbage(t *testing.T) {
	c := New(Config{MaxEntries: 8})
	if _, err := c.Load(strings.NewReader("not json"),
		func(network.Fingerprint) *network.Network { return nil }); err == nil {
		t.Fatal("garbage load did not error")
	}
}
