package cache

// Regression tests for the singleflight leader-abort path: N waiters parked
// on a flight whose leader dies without a usable result (cancelled, or
// panicked out of fn) must re-elect a leader and finish the work, not all
// fail permanently. The all-destinations batch leans on this: it funnels
// every destination through Do, so one aborted leader poisoning its waiters
// would silently fail a whole slice of the batch.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightLeaderCancelledWaitersReelect: the leader's own context is
// cancelled mid-flight (its fn returns context.Canceled); waiters with live
// contexts must re-elect and obtain a real result instead of inheriting the
// leader's cancellation.
func TestSingleflightLeaderCancelledWaitersReelect(t *testing.T) {
	c := New(Config{})
	key := Key{Topo: "fp", Dest: "a", K: 2, Strategy: "combined"}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	var fnCalls atomic.Int64

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(leaderCtx, key, func() (any, error) {
			fnCalls.Add(1)
			close(started)
			<-leaderCtx.Done() // the leader's budget dies under it
			return nil, leaderCtx.Err()
		})
	}()
	<-started

	const waiters = 5
	results := make([]any, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.Do(context.Background(), key, func() (any, error) {
				fnCalls.Add(1)
				return "recovered", nil
			})
		}(i)
	}
	// Park all waiters on the doomed flight before killing its leader.
	for c.Stats().Dedups < waiters {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Errorf("leader err = %v, want its own context.Canceled", leaderErr)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Errorf("waiter %d inherited the leader's abort: %v", i, errs[i])
		}
		if results[i] != "recovered" {
			t.Errorf("waiter %d got %v, want the re-elected leader's result", i, results[i])
		}
	}
	// 1 doomed leader + at least 1 re-elected leader; waiters that wake
	// after the recovery flight already finished may each run once more,
	// but nobody runs twice.
	if n := fnCalls.Load(); n < 2 || n > 1+waiters {
		t.Errorf("fn ran %d times, want between 2 and %d", n, 1+waiters)
	}
}

// TestSingleflightLeaderPanicWaitersReelect: a leader that panics out of fn
// leaves the flight marked aborted; waiters re-elect rather than failing
// with errFlightAborted.
func TestSingleflightLeaderPanicWaitersReelect(t *testing.T) {
	c := New(Config{})
	key := Key{Topo: "fp", Dest: "a", K: 2, Strategy: "combined"}

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // the panic propagates to the leader
		_, _, _ = c.Do(context.Background(), key, func() (any, error) {
			close(started)
			<-release
			panic("leader dies")
		})
	}()
	<-started

	const waiters = 3
	results := make([]any, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.Do(context.Background(), key, func() (any, error) {
				return "recovered", nil
			})
		}(i)
	}
	for c.Stats().Dedups < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errors.Is(errs[i], errFlightAborted) {
			t.Errorf("waiter %d failed with errFlightAborted; it should have re-elected", i)
		}
		if errs[i] != nil || results[i] != "recovered" {
			t.Errorf("waiter %d: v=%v err=%v, want recovered/nil", i, results[i], errs[i])
		}
	}
}

// TestSingleflightAbortedWaiterOwnCancellation: a waiter whose own context
// is already dead when the leader aborts must fail with its cancellation,
// not loop re-electing.
func TestSingleflightAbortedWaiterOwnCancellation(t *testing.T) {
	c := New(Config{})
	key := Key{Topo: "fp", Dest: "a", K: 2, Strategy: "combined"}

	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		_, _, _ = c.Do(context.Background(), key, func() (any, error) {
			close(started)
			<-release
			panic("leader dies")
		})
	}()
	<-started

	wctx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(wctx, key, func() (any, error) {
			t.Error("dead waiter must not become leader")
			return nil, nil
		})
		waiterDone <- err
	}()
	for c.Stats().Dedups < 1 {
		time.Sleep(time.Millisecond)
	}
	cancelWaiter()
	close(release)
	wg.Wait()

	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Errorf("dead waiter err = %v, want context.Canceled", err)
	}
}

// TestSingleflightLeaderWorkErrorStillShared: a genuine work error (not a
// leader abort) is still shared with every waiter — re-election must not
// turn failure dedup into a retry storm.
func TestSingleflightLeaderWorkErrorStillShared(t *testing.T) {
	c := New(Config{})
	key := Key{Topo: "fp", Dest: "a", K: 2, Strategy: "combined"}
	boom := errors.New("unsolvable")

	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.Do(context.Background(), key, func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started

	const waiters = 3
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), key, func() (any, error) {
				calls.Add(1)
				return nil, boom
			})
		}(i)
	}
	for c.Stats().Dedups < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1 (typed failures are shared, not retried)", n)
	}
	for i := 0; i < waiters; i++ {
		if !errors.Is(errs[i], boom) {
			t.Errorf("waiter %d err = %v, want the shared work error", i, errs[i])
		}
	}
}
