package cache_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"syrep/internal/cache"
	"syrep/internal/network"
	"syrep/internal/resilience"
	"syrep/internal/topozoo"
	"syrep/internal/verify"
)

// connectedWithout reports whether the real-edge graph stays connected after
// hypothetically removing drop.
func connectedWithout(n *network.Network, drop map[network.EdgeID]bool) bool {
	seen := make([]bool, n.NumNodes())
	queue := []network.NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range n.IncidentEdges(v) {
			if drop[e] {
				continue
			}
			w := n.Other(e, v)
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n.NumNodes()
}

// pickDrop chooses m distinct real edges whose removal keeps the graph
// connected, or returns nil when the rng fails to find such a set.
func pickDrop(rng *rand.Rand, n *network.Network, m int) []network.EdgeID {
	edges := n.RealEdges()
	for attempt := 0; attempt < 50; attempt++ {
		drop := make(map[network.EdgeID]bool, m)
		for len(drop) < m {
			drop[edges[rng.Intn(len(edges))]] = true
		}
		if connectedWithout(n, drop) {
			out := make([]network.EdgeID, 0, m)
			for _, e := range edges { // deterministic order
				if drop[e] {
					out = append(out, e)
				}
			}
			return out
		}
	}
	return nil
}

// TestWarmColdDifferential is the end-to-end contract of the warm-start fast
// path: synthesize a base table, cache it, delete up to m random edges, and
// check that Nearest+Adapt+WarmStart yields a table whose resilience verdict
// is deep-equal to a cold synthesis on the modified topology — both
// perfectly k-resilient with zero failing deliveries. When the pinned
// surviving entries admit no completion the fast path must say so with
// ErrUnsolvable (the server's cold-fallback trigger), never return a
// non-resilient table.
func TestWarmColdDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential synthesis suite is slow")
	}
	const k = 2
	ctx := context.Background()
	opts := resilience.Options{Timeout: 60 * time.Second}
	warmRuns := 0

	for seed := int64(1); seed <= 4; seed++ {
		for _, m := range []int{1, 2} {
			rng := rand.New(rand.NewSource(seed*100 + int64(m)))
			net := topozoo.Generate(topozoo.GenConfig{Nodes: 8, Seed: seed})
			dest := network.NodeID(0)
			destName := net.NodeName(dest)

			base, brep, err := resilience.Synthesize(ctx, net, dest, k, opts)
			if err != nil {
				t.Fatalf("seed %d: base synthesis: %v", seed, err)
			}
			if brep.WarmStart {
				t.Fatalf("seed %d: cold synthesis reported WarmStart", seed)
			}
			c := cache.New(cache.Config{})
			c.Put(cache.Key{Topo: net.Fingerprint(), Dest: destName, K: k, Strategy: "combined"},
				&cache.Entry{Net: net, Routing: base, Resilient: true})

			drop := pickDrop(rng, net, m)
			if drop == nil {
				t.Logf("seed %d m=%d: no connected %d-edge deletion, skipping", seed, m, m)
				continue
			}
			mod, err := network.WithoutEdges(net, drop)
			if err != nil {
				t.Fatal(err)
			}

			ent, diff, ok := c.Nearest(mod, destName, k, m)
			if !ok || diff != m {
				t.Fatalf("seed %d m=%d: Nearest ok=%v diff=%d", seed, m, ok, diff)
			}
			seedRouting, err := cache.Adapt(ent, mod, k)
			if err != nil {
				t.Fatalf("seed %d m=%d: Adapt: %v", seed, m, err)
			}

			warm, wrep, err := resilience.WarmStart(ctx, seedRouting, k, opts)
			if err != nil {
				if errors.Is(err, resilience.ErrUnsolvable) {
					// Legitimate fast-path miss; the cold path below must
					// still settle the instance.
					warm = nil
				} else {
					t.Fatalf("seed %d m=%d: WarmStart: %v", seed, m, err)
				}
			} else {
				warmRuns++
				if !wrep.WarmStart {
					t.Errorf("seed %d m=%d: report not flagged WarmStart", seed, m)
				}
				if wrep.HolesFilled != seedRouting.NumHoles() && seedRouting.NumHoles() > 0 {
					t.Errorf("seed %d m=%d: HolesFilled=%d, seed had %d holes",
						seed, m, wrep.HolesFilled, seedRouting.NumHoles())
				}
			}

			cold, _, err := resilience.Synthesize(ctx, mod, mod.NodeByName(destName), k, opts)
			if err != nil {
				t.Fatalf("seed %d m=%d: cold synthesis on modified topology: %v", seed, m, err)
			}
			coldRep, err := verify.Check(ctx, cold, k, verify.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !coldRep.Resilient {
				t.Fatalf("seed %d m=%d: cold table not resilient", seed, m)
			}
			if warm == nil {
				continue
			}
			warmRep, err := verify.Check(ctx, warm, k, verify.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// The resilience verdicts must be deep-equal: perfectly
			// k-resilient with identical (empty) failing-delivery sets.
			if warmRep.Resilient != coldRep.Resilient || len(warmRep.Failing) != len(coldRep.Failing) {
				t.Errorf("seed %d m=%d: warm verdict (resilient=%v failing=%d) != cold (resilient=%v failing=%d)",
					seed, m, warmRep.Resilient, len(warmRep.Failing), coldRep.Resilient, len(coldRep.Failing))
			}
		}
	}
	if warmRuns == 0 {
		t.Fatal("no trial exercised the warm-start path; suite is vacuous")
	}
}

// TestAdaptSeedShape pins the seed construction: entries over failed edges
// become holes, surviving entries carry over, and the seed validates on the
// modified network.
func TestAdaptSeedShape(t *testing.T) {
	ctx := context.Background()
	net := topozoo.Generate(topozoo.GenConfig{Nodes: 8, Seed: 1})
	dest := network.NodeID(0)
	base, _, err := resilience.Synthesize(ctx, net, dest, 2, resilience.Options{Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	drop := pickDrop(rand.New(rand.NewSource(7)), net, 1)
	if drop == nil {
		t.Fatal("no droppable edge")
	}
	mod, err := network.WithoutEdges(net, drop)
	if err != nil {
		t.Fatal(err)
	}
	e := &cache.Entry{Net: net, Routing: base, Resilient: true}
	seed, err := cache.Adapt(e, mod, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Network() != mod {
		t.Error("seed not built on the modified network")
	}
	if err := seed.Validate(); err != nil {
		t.Errorf("adapted seed does not validate: %v", err)
	}
	if !seed.Complete() {
		t.Error("adapted seed must cover every (in-edge, node) key with an entry or a hole")
	}
	// No entry may reference the dropped edge's canonical key.
	droppedKey := net.EdgeKey(drop[0])
	for _, key := range seed.Keys() {
		if mod.EdgeKey(key.In) == droppedKey {
			t.Fatalf("seed entry enters on dropped edge %s", droppedKey)
		}
		prio, _ := seed.Get(key.In, key.At)
		for _, pe := range prio {
			if mod.EdgeKey(pe) == droppedKey {
				t.Fatalf("seed priority list still points at dropped edge %s", droppedKey)
			}
		}
	}
}
