package cache

import (
	"fmt"
	"sort"

	"syrep/internal/network"
	"syrep/internal/routing"
)

// EdgeDiff returns the size of the symmetric difference of the canonical
// edge-key sets of two networks: how many real edges must be added or
// removed to turn one topology into the other. Parallel edges match i-th to
// i-th by ordinal, which is sound because they are interchangeable.
func EdgeDiff(a, b *network.Network) int {
	return diffAgainst(keySet(a.EdgeKeys()), b.EdgeKeys())
}

func keySet(keys []string) map[string]bool {
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}

// diffAgainst counts keys present in exactly one of set and keys. Edge keys
// are unique per network (the ordinal disambiguates parallels), so plain
// membership counting is exact.
func diffAgainst(set map[string]bool, keys []string) int {
	diff := len(set)
	for _, k := range keys {
		if set[k] {
			diff-- // shared: not in the symmetric difference
		} else {
			diff++ // only in keys
		}
	}
	return diff
}

// Adapt transplants a cached entry's routing table onto net, the warm-start
// seed construction: entries whose in-edge and node survive are carried over
// with their priority lists filtered to surviving edges, and every uncovered
// key — new edges, new nodes, lists emptied by the diff, and the seed's own
// holes — is punched as a hole of length k+1 for the fill stage to solve.
// Edges and nodes are matched by canonical key and name, so the two networks
// may number them differently.
//
// Adapt fails when net has no node named like the entry's destination; any
// other topology difference degrades into holes rather than errors.
func Adapt(e *Entry, net *network.Network, k int) (*routing.Routing, error) {
	src := e.Routing
	old := src.Network()
	destName := old.NodeName(src.Dest())
	dest := net.NodeByName(destName)
	if dest == network.NoNode {
		return nil, fmt.Errorf("cache: destination %q not in submitted topology", destName)
	}
	r := routing.New(net, dest)

	// src.Keys() is already deterministic (sorted); iterate it rather than
	// the underlying map so the Set order — and thus any error — is stable.
	for _, key := range src.Keys() {
		at := net.NodeByName(old.NodeName(key.At))
		if at == network.NoNode || at == dest {
			continue
		}
		in, ok := net.EdgeByKey(old.EdgeKey(key.In))
		if !ok {
			continue
		}
		prio, _ := src.Get(key.In, key.At)
		mapped := make([]network.EdgeID, 0, len(prio))
		for _, pe := range prio {
			if ne, ok := net.EdgeByKey(old.EdgeKey(pe)); ok {
				mapped = append(mapped, ne)
			}
		}
		if len(mapped) == 0 {
			continue // emptied by the diff; becomes a hole below
		}
		if err := r.Set(in, at, mapped); err != nil {
			return nil, fmt.Errorf("cache: adapting entry at %q: %w", old.NodeName(key.At), err)
		}
	}

	// Everything the carried-over entries don't cover becomes a hole. Sort
	// for determinism even though AllKeys is already ordered — the hole set
	// is part of the seed's identity.
	var missing []routing.Key
	for _, key := range r.AllKeys() {
		if _, ok := r.Get(key.In, key.At); !ok {
			missing = append(missing, key)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].At != missing[j].At {
			return missing[i].At < missing[j].At
		}
		return missing[i].In < missing[j].In
	})
	for _, key := range missing {
		if err := r.PunchHole(key.In, key.At, k+1); err != nil {
			return nil, fmt.Errorf("cache: punching hole at %q: %w", net.NodeName(key.At), err)
		}
	}
	return r, nil
}
