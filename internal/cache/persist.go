package cache

import (
	"encoding/json"
	"fmt"
	"io"

	"syrep/internal/network"
	"syrep/internal/routing"
)

// Cache persistence: Save renders the cached tables in a canonical wire
// form (edge keys and node names, which survive topology renumbering) and
// Load rebuilds them against resolved networks, so a restarted server
// starts with a warm cache instead of re-synthesizing every table from
// scratch. Entries whose topology the resolver no longer knows — or whose
// rules no longer decode — are skipped, not fatal: a stale persisted entry
// merely costs the cold synthesis it would have saved.

// wireRule is one routing entry in canonical string form.
type wireRule struct {
	In   string   `json:"in"`
	At   string   `json:"at"`
	Prio []string `json:"prio"`
}

// wireEntry is one cache entry in wire form.
type wireEntry struct {
	Topo      network.Fingerprint `json:"topo"`
	Dest      string              `json:"dest"`
	K         int                 `json:"k"`
	Strategy  string              `json:"strategy"`
	Resilient bool                `json:"resilient"`
	Residual  int                 `json:"residual,omitempty"`
	Rules     []wireRule          `json:"rules"`
}

// wireSnapshot is the persisted file: entries ordered least recently used
// first, so replaying them through Put restores the LRU order.
type wireSnapshot struct {
	Entries []wireEntry `json:"entries"`
}

// Save writes every live entry to w as JSON and returns how many were
// written. Expired entries are dropped, not persisted.
func (c *Cache) Save(w io.Writer) (int, error) {
	snap := wireSnapshot{}
	func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		now := c.cfg.Now()
		// Walk back-to-front: least recently used first.
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			it := el.Value.(*item)
			if !it.expires.IsZero() && now.After(it.expires) {
				continue
			}
			snap.Entries = append(snap.Entries, encodeEntry(it.key, it.e))
		}
	}()
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return 0, fmt.Errorf("cache: save: %w", err)
	}
	return len(snap.Entries), nil
}

// Load reads a Save snapshot from r and re-inserts every entry whose
// topology resolve recognizes (resolve returns nil to skip a fingerprint).
// It returns how many entries were restored. Undecodable rules skip their
// entry; a malformed stream is an error.
func (c *Cache) Load(r io.Reader, resolve func(network.Fingerprint) *network.Network) (int, error) {
	var snap wireSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("cache: load: %w", err)
	}
	restored := 0
	for _, we := range snap.Entries {
		net := resolve(we.Topo)
		if net == nil || net.Fingerprint() != we.Topo {
			continue
		}
		rt, err := decodeRules(net, we.Dest, we.Rules)
		if err != nil {
			continue
		}
		c.Put(Key{Topo: we.Topo, Dest: we.Dest, K: we.K, Strategy: we.Strategy}, &Entry{
			Net:       net,
			Routing:   rt,
			Resilient: we.Resilient,
			Residual:  we.Residual,
		})
		restored++
	}
	return restored, nil
}

func encodeEntry(key Key, e *Entry) wireEntry {
	net := e.Net
	we := wireEntry{
		Topo:      key.Topo,
		Dest:      key.Dest,
		K:         key.K,
		Strategy:  key.Strategy,
		Resilient: e.Resilient,
		Residual:  e.Residual,
	}
	for _, k := range e.Routing.Keys() {
		prio, ok := e.Routing.Get(k.In, k.At)
		if !ok {
			continue
		}
		rule := wireRule{
			In:   net.EdgeKey(k.In),
			At:   net.NodeName(k.At),
			Prio: make([]string, len(prio)),
		}
		for i, out := range prio {
			rule.Prio[i] = net.EdgeKey(out)
		}
		we.Rules = append(we.Rules, rule)
	}
	return we
}

func decodeRules(net *network.Network, dest string, rules []wireRule) (*routing.Routing, error) {
	destID := net.NodeByName(dest)
	if destID < 0 {
		return nil, fmt.Errorf("cache: decode: destination %q not in topology", dest)
	}
	rt := routing.New(net, destID)
	for _, rule := range rules {
		in, ok := net.EdgeByKey(rule.In)
		if !ok {
			return nil, fmt.Errorf("cache: decode: unknown in-edge %q", rule.In)
		}
		at := net.NodeByName(rule.At)
		if at < 0 {
			return nil, fmt.Errorf("cache: decode: unknown node %q", rule.At)
		}
		prio := make([]network.EdgeID, len(rule.Prio))
		for i, key := range rule.Prio {
			out, ok := net.EdgeByKey(key)
			if !ok {
				return nil, fmt.Errorf("cache: decode: unknown out-edge %q", key)
			}
			prio[i] = out
		}
		if err := rt.Set(in, at, prio); err != nil {
			return nil, fmt.Errorf("cache: decode: %w", err)
		}
	}
	return rt, nil
}
