package cache

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
)

// ring builds a cycle over the given node names, so every node has degree 2
// and any single edge can be dropped without disconnecting the graph.
func ring(t testing.TB, names ...string) *network.Network {
	t.Helper()
	b := network.NewBuilder("ring")
	for _, s := range names {
		b.AddNode(s)
	}
	for i := range names {
		b.AddEdge(network.NodeID(i), network.NodeID((i+1)%len(names)))
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// entryFor makes a small valid Entry on net: one real routing entry so byte
// accounting and cloning have something to chew on.
func entryFor(t testing.TB, net *network.Network, resilient bool) *Entry {
	t.Helper()
	dest := net.NodeByName("a")
	r := routing.New(net, dest)
	// One hop from b toward a via the b-a ring edge, entered on loop-back.
	b := net.NodeByName("b")
	var out network.EdgeID = network.NoEdge
	for _, e := range net.IncidentEdges(b) {
		if net.Other(e, b) == dest {
			out = e
		}
	}
	if out == network.NoEdge {
		t.Fatal("ring has no b-a edge")
	}
	if err := r.Set(net.Loopback(b), b, []network.EdgeID{out}); err != nil {
		t.Fatal(err)
	}
	return &Entry{Net: net, Routing: r, Resilient: resilient}
}

func keyFor(net *network.Network, k int) Key {
	return Key{Topo: net.Fingerprint(), Dest: "a", K: k, Strategy: "combined"}
}

func TestGetPutLRU(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	n1 := ring(t, "a", "b", "c")
	n2 := ring(t, "a", "b", "c", "d")
	n3 := ring(t, "a", "b", "c", "d", "e")
	k1, k2, k3 := keyFor(n1, 2), keyFor(n2, 2), keyFor(n3, 2)

	c.Put(k1, entryFor(t, n1, true))
	c.Put(k2, entryFor(t, n2, true))
	if _, ok := c.Get(k1); !ok { // bump k1: k2 is now LRU
		t.Fatal("k1 should be cached")
	}
	c.Put(k3, entryFor(t, n3, true))
	if _, ok := c.Get(k2); ok {
		t.Error("k2 should have been evicted as least recently used")
	}
	if _, ok := c.Get(k1); !ok {
		t.Error("k1 should have survived the eviction")
	}
	if _, ok := c.Get(k3); !ok {
		t.Error("k3 should be cached")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries and 1 eviction", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestGetReturnsClone(t *testing.T) {
	c := New(Config{})
	n := ring(t, "a", "b", "c")
	key := keyFor(n, 2)
	c.Put(key, entryFor(t, n, true))

	e1, _ := c.Get(key)
	cc := n.NodeByName("c")
	if err := e1.Routing.PunchHole(n.Loopback(cc), cc, 1); err != nil {
		t.Fatal(err)
	}
	e2, _ := c.Get(key)
	if e2.Routing.NumHoles() != 0 {
		t.Error("mutating a returned entry leaked into the cache")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	c := New(Config{TTL: time.Minute, Now: clock})
	n := ring(t, "a", "b", "c")
	key := keyFor(n, 2)
	c.Put(key, entryFor(t, n, true))

	if _, ok := c.Get(key); !ok {
		t.Fatal("fresh entry should hit")
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, ok := c.Get(key); ok {
		t.Fatal("expired entry should miss")
	}
	if _, _, ok := c.Nearest(n, "a", 2, 0); ok {
		t.Fatal("Nearest must not return an expired entry")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want the expired entry reaped", st)
	}
}

func TestByteBound(t *testing.T) {
	n1 := ring(t, "a", "b", "c")
	one := entryBytes(entryFor(t, n1, true))
	c := New(Config{MaxEntries: 100, MaxBytes: one + one/2}) // room for ~1.5 entries
	c.Put(keyFor(n1, 2), entryFor(t, n1, true))
	n2 := ring(t, "a", "b", "c", "d")
	c.Put(keyFor(n2, 2), entryFor(t, n2, true))
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d after byte-bounded insert, want 1", got)
	}
	if _, ok := c.Get(keyFor(n2, 2)); !ok {
		t.Error("newest entry should survive byte-bound eviction")
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{})
	n1 := ring(t, "a", "b", "c")
	n2 := ring(t, "a", "b", "c", "d")
	c.Put(keyFor(n1, 2), entryFor(t, n1, true))
	c.Put(keyFor(n2, 3), entryFor(t, n2, true))
	if got := c.Purge(); got != 2 {
		t.Fatalf("Purge = %d, want 2", got)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Evictions != 2 {
		t.Errorf("stats after purge = %+v", st)
	}
}

// TestPurgeOldestEvictionOrder pins the partial-evict contract: PurgeOldest
// drops exactly the least-recently-used fraction (rounded up), in LRU order,
// and the hottest entries — the churn controller's warm seeds — survive.
func TestPurgeOldestEvictionOrder(t *testing.T) {
	c := New(Config{MaxEntries: 16})
	var nets []*network.Network
	names := []string{"a", "b"}
	for i := 0; i < 4; i++ {
		names = append(names, string(rune('c'+i)))
		nets = append(nets, ring(t, names...))
	}
	for _, n := range nets {
		c.Put(keyFor(n, 2), entryFor(t, n, true))
	}
	// Recency, oldest→newest, is now nets[0..3]. Touch nets[0] so the
	// insertion order and the LRU order differ: oldest becomes nets[1].
	if _, ok := c.Get(keyFor(nets[0], 2)); !ok {
		t.Fatal("nets[0] should be cached")
	}

	// 0.5 of 4 entries: exactly the two least recently used (nets[1],
	// nets[2]) go; the recently touched nets[0] and the newest nets[3] stay.
	if got := c.PurgeOldest(0.5); got != 2 {
		t.Fatalf("PurgeOldest(0.5) = %d, want 2", got)
	}
	for i, want := range map[int]bool{0: true, 1: false, 2: false, 3: true} {
		if _, ok := c.Get(keyFor(nets[i], 2)); ok != want {
			t.Errorf("after PurgeOldest, nets[%d] cached = %v, want %v", i, ok, want)
		}
	}

	// Rounding: 0.3 of the 2 survivors rounds up to 1 eviction.
	if got := c.PurgeOldest(0.3); got != 1 {
		t.Errorf("PurgeOldest(0.3) of 2 = %d, want 1 (ceil)", got)
	}
	// Degenerate fractions: ≤0 is a no-op, ≥1 is a full purge.
	if got := c.PurgeOldest(0); got != 0 {
		t.Errorf("PurgeOldest(0) = %d, want 0", got)
	}
	if got := c.PurgeOldest(1.5); got != 1 {
		t.Errorf("PurgeOldest(1.5) = %d, want 1 (full purge of the survivor)", got)
	}
	if c.Len() != 0 {
		t.Errorf("entries after full purge = %d, want 0", c.Len())
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New(Config{})
	key := Key{Topo: "fp", Dest: "a", K: 2, Strategy: "combined"}

	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, 6)
	leader := func(i int, fn func() (any, error)) {
		defer wg.Done()
		v, _, err := c.Do(context.Background(), key, fn)
		if err != nil {
			t.Error(err)
		}
		results[i] = v
	}
	wg.Add(1)
	go leader(0, func() (any, error) {
		calls.Add(1)
		close(started)
		<-release
		return "synthesized", nil
	})
	<-started
	for i := 1; i < 6; i++ {
		wg.Add(1)
		go leader(i, func() (any, error) {
			calls.Add(1)
			return "should not run", nil
		})
	}
	// Give the waiters time to register before releasing the leader; a
	// waiter that races past the flight would bump calls and fail below.
	for c.Stats().Dedups < 5 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "synthesized" {
			t.Errorf("caller %d got %v, want the leader's result", i, v)
		}
	}
	if st := c.Stats(); st.Dedups != 5 {
		t.Errorf("dedups = %d, want 5", st.Dedups)
	}
}

func TestSingleflightWaiterCancellation(t *testing.T) {
	c := New(Config{})
	key := Key{Topo: "fp", Dest: "a", K: 2, Strategy: "combined"}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Do(context.Background(), key, func() (any, error) {
			close(started)
			<-release
			return nil, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := c.Do(ctx, key, func() (any, error) { return nil, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter: shared=%v err=%v, want shared context.Canceled", shared, err)
	}
	close(release)
	<-done
}

func TestSingleflightErrorShared(t *testing.T) {
	c := New(Config{})
	key := Key{Topo: "fp", Dest: "a", K: 2, Strategy: "combined"}
	boom := errors.New("boom")
	_, shared, err := c.Do(context.Background(), key, func() (any, error) { return nil, boom })
	if shared || !errors.Is(err, boom) {
		t.Errorf("leader: shared=%v err=%v", shared, err)
	}
	// The flight is gone; a new call runs fresh.
	v, shared, err := c.Do(context.Background(), key, func() (any, error) { return 42, nil })
	if shared || err != nil || v != 42 {
		t.Errorf("second flight: v=%v shared=%v err=%v", v, shared, err)
	}
}

func TestNearest(t *testing.T) {
	c := New(Config{})
	base := ring(t, "a", "b", "c", "d")
	c.Put(keyFor(base, 2), entryFor(t, base, true))

	// Exact topology: diff 0.
	if _, diff, ok := c.Nearest(ring(t, "a", "b", "c", "d"), "a", 2, 2); !ok || diff != 0 {
		t.Fatalf("exact match: ok=%v diff=%d, want hit with diff 0", ok, diff)
	}
	// One edge dropped: diff 1.
	drop := []network.EdgeID{base.RealEdges()[0]}
	mod, err := network.WithoutEdges(base, drop)
	if err != nil {
		t.Fatal(err)
	}
	if _, diff, ok := c.Nearest(mod, "a", 2, 2); !ok || diff != 1 {
		t.Fatalf("one-edge diff: ok=%v diff=%d, want hit with diff 1", ok, diff)
	}
	// Over budget.
	if _, _, ok := c.Nearest(mod, "a", 2, 0); ok {
		t.Error("diff 1 must miss with maxDiff 0")
	}
	// Wrong destination or k.
	if _, _, ok := c.Nearest(base, "b", 2, 4); ok {
		t.Error("destination mismatch must miss")
	}
	if _, _, ok := c.Nearest(base, "a", 3, 4); ok {
		t.Error("k mismatch must miss")
	}
	// Non-resilient entries are never warm-start bases.
	c2 := New(Config{})
	c2.Put(keyFor(base, 2), entryFor(t, base, false))
	if _, _, ok := c2.Nearest(base, "a", 2, 4); ok {
		t.Error("non-resilient entry must be skipped")
	}
}

func TestEdgeDiff(t *testing.T) {
	a := ring(t, "a", "b", "c", "d")
	if d := EdgeDiff(a, ring(t, "a", "b", "c", "d")); d != 0 {
		t.Errorf("identical rings: diff %d", d)
	}
	mod, err := network.WithoutEdges(a, []network.EdgeID{a.RealEdges()[1]})
	if err != nil {
		t.Fatal(err)
	}
	if d := EdgeDiff(a, mod); d != 1 {
		t.Errorf("one dropped edge: diff %d, want 1", d)
	}
	if d := EdgeDiff(a, ring(t, "a", "b", "x", "d")); d == 0 {
		t.Error("renamed node must change the edge set")
	}
}

func TestObsWiring(t *testing.T) {
	o := obs.New(nil)
	c := New(Config{Obs: o})
	n := ring(t, "a", "b", "c")
	key := keyFor(n, 2)
	c.Get(key) // miss
	c.Put(key, entryFor(t, n, true))
	c.Get(key) // hit
	c.NoteWarmHit()
	c.NoteWarmMiss()
	snap := o.Snapshot()
	for name, want := range map[string]int64{
		obs.CacheHits:       1,
		obs.CacheMisses:     1,
		obs.CacheWarmHits:   1,
		obs.CacheWarmMisses: 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges[obs.CacheEntries]; got != 1 {
		t.Errorf("gauge %s = %d, want 1", obs.CacheEntries, got)
	}
	if got := snap.Gauges[obs.CacheBytes]; got <= 0 {
		t.Errorf("gauge %s = %d, want positive", obs.CacheBytes, got)
	}
}

// TestPurgeOldestEdgeCases pins the eviction count for every degenerate
// fraction — in particular NaN, which fails both range checks and would
// otherwise become a platform-dependent int(NaN) drop count.
func TestPurgeOldestEdgeCases(t *testing.T) {
	fill := func(c *Cache, n int) {
		names := []string{"a", "b"}
		for i := 0; i < n; i++ {
			names = append(names, string(rune('c'+i)))
			net := ring(t, names...)
			c.Put(keyFor(net, 2), entryFor(t, net, true))
		}
	}
	cases := []struct {
		name     string
		entries  int
		fraction float64
		want     int
	}{
		{"nan", 4, math.NaN(), 0},
		{"negative", 4, -0.5, 0},
		{"zero", 4, 0, 0},
		{"negative-zero", 4, math.Copysign(0, -1), 0},
		{"tiny", 4, 1e-9, 1}, // ceil: any positive fraction evicts at least one
		{"half", 4, 0.5, 2},
		{"ceil", 3, 0.5, 2},
		{"one", 4, 1, 4},
		{"above-one", 4, 1.5, 4},
		{"plus-inf", 4, math.Inf(1), 4},
		{"minus-inf", 4, math.Inf(-1), 0},
		{"empty-half", 0, 0.5, 0},
		{"empty-one", 0, 1, 0},
		{"empty-nan", 0, math.NaN(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{MaxEntries: 16})
			fill(c, tc.entries)
			if got := c.PurgeOldest(tc.fraction); got != tc.want {
				t.Errorf("PurgeOldest(%v) on %d entries = %d, want %d",
					tc.fraction, tc.entries, got, tc.want)
			}
			if want := tc.entries - tc.want; c.Len() != want {
				t.Errorf("Len after purge = %d, want %d", c.Len(), want)
			}
		})
	}
}
