// Package crashfs is an in-memory journal.FS that injects the failures a
// real disk exhibits around a process crash: torn writes, short writes,
// fsync errors, and whole-process "kills" placed at exact operation
// indices. The crash kill-matrix drives a journal-backed controller over
// it, kills it at every journaled step, "reboots" with Reopen, and checks
// recovery against a no-crash oracle.
//
// Durability model: every file carries stable bytes (survive a crash) and
// a volatile suffix (written but not yet synced). Write appends to the
// volatile suffix; Sync promotes it to stable; a kill freezes the store
// and Reopen tears each volatile suffix at a seeded random prefix — so an
// unsynced tail may fully survive, vanish, or tear mid-frame, which is
// exactly the spread of outcomes the journal's replay must absorb. Rename
// and Remove are atomic-with-directory-sync (matching DirFS, which fsyncs
// the directory): a kill lands before or after them, never between.
//
// Faults beyond kills come from the shared faultinject currency: each
// mutating operation consults the optional resilience.Hook at its jrn-*
// stage, and a returned error becomes the operation's failure — short
// writes persist a seeded prefix before failing, modelling a partial
// write the journal must both latch on and replay past.
package crashfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"syrep/internal/journal"
	"syrep/internal/resilience"
)

// ErrKilled reports that the simulated process died: the scripted kill
// fired, and every operation after it fails until Reopen "reboots".
var ErrKilled = errors.New("crashfs: process killed")

// errStale guards handles that survived a Reopen; the pre-crash process
// cannot keep writing into the rebooted store.
var errStale = errors.New("crashfs: stale handle from before reopen")

// FS implements journal.FS in memory with scripted crash faults. Safe for
// concurrent use; all scheduling decisions derive from the seed, so a
// failing matrix cell reproduces from (seed, kill index) alone.
type FS struct {
	mu     sync.Mutex
	rng    *rand.Rand
	files  map[string]*file
	hook   resilience.Hook
	ops    int // mutating operations observed so far
	killAt int // ops index at which the kill fires; -1 = never
	killed bool
	gen    int // bumped by Reopen to invalidate surviving handles
}

type file struct {
	stable   []byte
	volatile []byte
}

// New builds an FS whose tears and kill coin-flips derive from seed.
func New(seed int64) *FS {
	return &FS{
		rng:    rand.New(rand.NewSource(seed)),
		files:  make(map[string]*file),
		killAt: -1,
	}
}

var _ journal.FS = (*FS)(nil)

// SetHook installs the fault-injection hook consulted at the jrn-* stages.
func (c *FS) SetHook(h resilience.Hook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = h
}

// KillAt schedules the process kill at the n-th mutating operation from
// now (0 = the very next one); n < 0 cancels. The counter is absolute
// since New or the last Reopen, so run a clean pass first, read Ops, and
// sweep n over [0, Ops).
func (c *FS) KillAt(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killAt = n
}

// Ops returns the number of mutating operations since New or the last
// Reopen — the width of the kill matrix.
func (c *FS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Killed reports whether the scripted kill has fired.
func (c *FS) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// Reopen simulates the reboot after a crash: every file's volatile suffix
// is torn at a seeded random prefix and what survives becomes stable,
// handles from before the crash go stale, and the operation counter and
// kill schedule reset. It is also valid on a live FS (a hard power cut
// without a preceding scripted kill).
func (c *FS) Reopen() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Tear in sorted name order: the rng draws must not follow map
	// iteration order, or a (seed, kill) cell stops reproducing.
	names := make([]string, 0, len(c.files))
	for name := range c.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := c.files[name]
		if n := len(f.volatile); n > 0 {
			keep := c.rng.Intn(n + 1)
			f.stable = append(f.stable, f.volatile[:keep]...)
		}
		f.volatile = nil
	}
	c.killed = false
	c.killAt = -1
	c.ops = 0
	c.gen++
}

// step accounts one mutating operation: it fails if the process is dead,
// fires the scheduled kill when the counter hits killAt, and otherwise
// consults the fault hook. The caller applies the operation only on nil.
func (c *FS) step(stage resilience.Stage) error {
	if c.killed {
		return ErrKilled
	}
	op := c.ops
	c.ops++
	if c.killAt >= 0 && op >= c.killAt {
		c.killed = true
		return ErrKilled
	}
	if c.hook != nil {
		// The hook may re-enter the FS from its Do callback; run it
		// unlocked like faultinject runs Call effects.
		hook := c.hook
		c.mu.Unlock()
		err := hook.At(stage)
		c.mu.Lock()
		if c.killed {
			return ErrKilled
		}
		return err
	}
	return nil
}

type handle struct {
	fs   *FS
	f    *file
	gen  int
	open bool
}

// OpenAppend implements journal.FS. Opening is not a mutating operation —
// creation only becomes durable once bytes are synced, which the
// volatile/stable model already captures.
func (c *FS) OpenAppend(name string) (journal.File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return nil, ErrKilled
	}
	f, ok := c.files[name]
	if !ok {
		f = &file{}
		c.files[name] = f
	}
	return &handle{fs: c, f: f, gen: c.gen, open: true}, nil
}

func (h *handle) check() error {
	if h.fs.killed {
		return ErrKilled
	}
	if h.gen != h.fs.gen {
		return errStale
	}
	if !h.open {
		return errors.New("crashfs: write on closed handle")
	}
	return nil
}

// Write appends to the file's volatile suffix. A kill here still records
// the bytes as volatile first — an in-flight write may partially survive
// the crash, like any other unsynced data. A hook-injected error turns
// into a short write: a seeded prefix persists, the rest is dropped.
func (h *handle) Write(p []byte) (int, error) {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := h.check(); err != nil {
		if errors.Is(err, ErrKilled) && h.gen == c.gen {
			h.f.volatile = append(h.f.volatile, p...)
		}
		return 0, err
	}
	if err := c.step(resilience.StageJrnWrite); err != nil {
		if errors.Is(err, ErrKilled) {
			h.f.volatile = append(h.f.volatile, p...)
			return 0, err
		}
		short := 0
		if len(p) > 0 {
			short = c.rng.Intn(len(p))
		}
		h.f.volatile = append(h.f.volatile, p[:short]...)
		return short, fmt.Errorf("crashfs: short write (%d of %d bytes): %w", short, len(p), err)
	}
	h.f.volatile = append(h.f.volatile, p...)
	return len(p), nil
}

// Sync promotes the volatile suffix to stable. A kill or injected fsync
// error leaves it volatile — exactly the window the journal's latch and
// the recovery tear exist for.
func (h *handle) Sync() error {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if err := c.step(resilience.StageJrnSync); err != nil {
		return err
	}
	h.f.stable = append(h.f.stable, h.f.volatile...)
	h.f.volatile = nil
	return nil
}

// Close implements journal.File. Closing is free: it neither syncs nor
// mutates durable state.
func (h *handle) Close() error {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return ErrKilled
	}
	h.open = false
	return nil
}

// ReadFile implements journal.FS. Reads see the live content — stable
// plus volatile — because a running process reads its own unsynced
// writes; only a crash discards them.
func (c *FS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return nil, ErrKilled
	}
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("crashfs: %s: file does not exist", name)
	}
	out := make([]byte, 0, len(f.stable)+len(f.volatile))
	out = append(out, f.stable...)
	return append(out, f.volatile...), nil
}

// List implements journal.FS.
func (c *FS) List() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return nil, ErrKilled
	}
	names := make([]string, 0, len(c.files))
	for name := range c.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements journal.FS. Like DirFS it is directory-synced: a kill
// lands before or after the removal (seeded coin), never half-way.
func (c *FS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[name]; !ok && !c.killed {
		return fmt.Errorf("crashfs: remove %s: file does not exist", name)
	}
	if err := c.step(resilience.StageJrnRemove); err != nil {
		if errors.Is(err, ErrKilled) && c.rng.Intn(2) == 0 {
			delete(c.files, name)
		}
		return err
	}
	delete(c.files, name)
	return nil
}

// Rename implements journal.FS. Atomic with directory sync, like DirFS: a
// kill leaves either the old name or the new, never a tear.
func (c *FS) Rename(oldname, newname string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[oldname]
	if !ok && !c.killed {
		return fmt.Errorf("crashfs: rename %s: file does not exist", oldname)
	}
	if err := c.step(resilience.StageJrnRename); err != nil {
		if errors.Is(err, ErrKilled) && ok && c.rng.Intn(2) == 0 {
			delete(c.files, oldname)
			c.files[newname] = f
		}
		return err
	}
	delete(c.files, oldname)
	c.files[newname] = f
	return nil
}
