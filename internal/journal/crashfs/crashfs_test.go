package crashfs

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"syrep/internal/journal"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// appendRun drives a fixed journal workload (appends with periodic syncs
// and one snapshot) and reports how far it got before the FS failed:
// synced = records known durable, appended = records attempted.
func appendRun(fsys *FS) (synced, appended int, err error) {
	j, err := journal.Open(fsys, journal.Options{SegmentBytes: 64})
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < 12; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			return synced, appended, err
		}
		appended++
		if i%3 == 2 {
			if err := j.Sync(); err != nil {
				return synced, appended, err
			}
			synced = appended
		}
		if i == 6 {
			if err := j.Snapshot([]byte(fmt.Sprintf("snap-at-%02d", i))); err != nil {
				return synced, appended, err
			}
			synced = appended
		}
	}
	if err := j.Close(); err != nil {
		return synced, appended, err
	}
	return appended, appended, nil
}

// replayRun recovers the workload's state: the index encoded in the
// snapshot (if any) plus the tail records after it, checked for order.
func replayRun(t *testing.T, fsys *FS) (recovered int, stats journal.ReplayStats) {
	t.Helper()
	j, err := journal.Open(fsys, journal.Options{})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	last := -1
	stats, err = j.Replay(func(snapshot bool, payload []byte) error {
		var idx int
		var format string
		if snapshot {
			format = "snap-at-%02d"
		} else {
			format = "rec-%02d"
		}
		if _, err := fmt.Sscanf(string(payload), format, &idx); err != nil {
			return fmt.Errorf("unparseable record %q: %w", payload, err)
		}
		if idx != last+1 && !snapshot {
			return fmt.Errorf("record %d after %d: replay out of order", idx, last)
		}
		last = idx
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return last + 1, stats
}

func TestCleanRunRoundTrips(t *testing.T) {
	fsys := New(1)
	synced, appended, err := appendRun(fsys)
	if err != nil || synced != 12 || appended != 12 {
		t.Fatalf("clean run: synced=%d appended=%d err=%v", synced, appended, err)
	}
	fsys.Reopen()
	recovered, stats := replayRun(t, fsys)
	if recovered != 12 {
		t.Fatalf("recovered %d records, want 12 (stats %+v)", recovered, stats)
	}
	if !stats.Snapshot {
		t.Fatal("snapshot not replayed")
	}
}

// TestKillSweep is the package's own miniature kill matrix: the workload
// is killed at every mutating-operation index, rebooted, and replayed.
// Recovery must always succeed, never lose a synced record, and never
// invent or reorder records.
func TestKillSweep(t *testing.T) {
	clean := New(1)
	if _, _, err := appendRun(clean); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	width := clean.Ops()
	if width < 10 {
		t.Fatalf("workload too small for a sweep: %d ops", width)
	}
	for kill := 0; kill < width; kill++ {
		for seed := int64(1); seed <= 3; seed++ {
			fsys := New(seed)
			fsys.KillAt(kill)
			synced, appended, err := appendRun(fsys)
			if err == nil {
				t.Fatalf("kill=%d seed=%d: run survived its kill", kill, seed)
			}
			if !errors.Is(err, ErrKilled) {
				t.Fatalf("kill=%d seed=%d: died of %v, want ErrKilled", kill, seed, err)
			}
			if !fsys.Killed() {
				t.Fatalf("kill=%d seed=%d: Killed() false after kill", kill, seed)
			}
			fsys.Reopen()
			recovered, _ := replayRun(t, fsys)
			if recovered < synced {
				t.Fatalf("kill=%d seed=%d: recovered %d < synced %d — durable records lost",
					kill, seed, recovered, synced)
			}
			if recovered > appended {
				t.Fatalf("kill=%d seed=%d: recovered %d > appended %d — phantom records",
					kill, seed, recovered, appended)
			}
		}
	}
}

// TestDoubleKill crashes the recovery run too: the second kill lands
// either inside replay's own torn-tail repair (the crash-during-recovery
// case proper) or on the first post-recovery appends, and a third reboot
// must still recover everything ever synced.
func TestDoubleKill(t *testing.T) {
	fsys := New(7)
	fsys.KillAt(9)
	synced, _, err := appendRun(fsys)
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("first run: %v", err)
	}
	fsys.Reopen()

	fsys.KillAt(2)
	j, err := journal.Open(fsys, journal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	last := -1
	_, err = j.Replay(func(snapshot bool, payload []byte) error {
		format := "rec-%02d"
		if snapshot {
			format = "snap-at-%02d"
		}
		var idx int
		if _, err := fmt.Sscanf(string(payload), format, &idx); err != nil {
			return err
		}
		last = idx
		return nil
	})
	if err != nil && !errors.Is(err, ErrKilled) {
		t.Fatalf("replay died of %v, want ErrKilled or success", err)
	}
	// If recovery dodged the kill (no torn tail to repair), drive appends
	// until it fires — either way the process dies a second time.
	for i := 0; !fsys.Killed(); i++ {
		if i > 100 {
			t.Fatal("second kill never fired")
		}
		_ = j.Append([]byte(fmt.Sprintf("rec-%02d", last+1)))
		if j.Sync() == nil {
			last++
		}
	}

	fsys.Reopen()
	final, _ := replayRun(t, fsys)
	if final < synced {
		t.Fatalf("recovery after double crash lost records: %d < %d", final, synced)
	}
}

func TestFsyncErrorLatchesJournal(t *testing.T) {
	fsys := New(3)
	fsys.SetHook(faultinject.New(faultinject.Fault{
		Stage: resilience.StageJrnSync,
		Kind:  faultinject.Error,
		Times: 1,
	}))
	j, err := journal.Open(fsys, journal.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.Append([]byte("x")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.Sync(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sync = %v, want injected error", err)
	}
	if err := j.Append([]byte("y")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append after fsync failure = %v, want latched error", err)
	}
}

func TestShortWriteLatchesAndReplays(t *testing.T) {
	fsys := New(5)
	fsys.SetHook(faultinject.New(faultinject.Fault{
		Stage: resilience.StageJrnWrite,
		Kind:  faultinject.Error,
		Times: 1,
	}))
	j, err := journal.Open(fsys, journal.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var appendErr error
	n := 0
	for i := 0; i < 5; i++ {
		if appendErr = j.Append([]byte(fmt.Sprintf("rec-%02d", i))); appendErr != nil {
			break
		}
		n++
		if appendErr = j.Sync(); appendErr != nil {
			break
		}
	}
	if appendErr == nil {
		t.Fatal("short write never fired")
	}
	if !strings.Contains(appendErr.Error(), "short write") {
		t.Fatalf("append error = %v, want short write", appendErr)
	}
	fsys.Reopen()
	recovered, _ := replayRun(t, fsys)
	// Everything synced before the short write survives; the short frame
	// itself is a torn tail at worst.
	if recovered < n {
		t.Fatalf("recovered %d, want at least the %d synced records", recovered, n)
	}
}

func TestRenameAtomicUnderKill(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		fsys := New(seed)
		j, err := journal.Open(fsys, journal.Options{})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for i := 0; i < 4; i++ {
			if err := j.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := j.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		// Find the rename inside Snapshot by killing at each op until the
		// snapshot call dies; whatever the landing point, recovery holds.
		fsys.KillAt(fsys.Ops() + int(seed)%4)
		err = j.Snapshot([]byte("snap-at-03"))
		if err == nil {
			// Kill landed after the snapshot completed (compaction etc.
			// already done) — fine, push one more op to fire it.
			_ = j.Append([]byte("rec-04"))
		}
		fsys.Reopen()
		recovered, _ := replayRun(t, fsys)
		if recovered < 4 {
			t.Fatalf("seed=%d: recovered %d, want ≥ 4 synced records", seed, recovered)
		}
	}
}

func TestStaleHandleAfterReopen(t *testing.T) {
	fsys := New(2)
	h, err := fsys.OpenAppend("wal-0000000000000001.seg")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fsys.Reopen()
	if _, err := h.Write([]byte("x")); !errors.Is(err, errStale) {
		t.Fatalf("write through pre-reopen handle = %v, want stale", err)
	}
}

func TestVolatileTornOnReopen(t *testing.T) {
	// With many seeds, unsynced tails must sometimes survive, sometimes
	// tear — both outcomes are required for the matrix to mean anything.
	fullySurvived, lost := 0, 0
	for seed := int64(0); seed < 32; seed++ {
		fsys := New(seed)
		h, err := fsys.OpenAppend("f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		fsys.Reopen()
		data, err := fsys.ReadFile("f")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix("0123456789", string(data)) {
			t.Fatalf("seed=%d: surviving bytes %q are not a prefix", seed, data)
		}
		switch len(data) {
		case 10:
			fullySurvived++
		case 0:
			lost++
		}
	}
	if fullySurvived == 0 || lost == 0 {
		t.Fatalf("tear distribution degenerate: survived=%d lost=%d", fullySurvived, lost)
	}
}
