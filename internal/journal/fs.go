package journal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the journal's view of one open segment or snapshot file: append
// writes, durability via Sync, and Close. Writers never seek — the journal
// is strictly append-only.
type File interface {
	io.Writer
	// Sync makes every byte written so far durable. A crash after a
	// successful Sync must preserve them; a crash before it may lose or
	// tear any suffix written since the previous Sync.
	Sync() error
	Close() error
}

// FS is the journal's filesystem seam: a flat directory of named files.
// DirFS backs it with the os for production; crashfs backs it with an
// in-memory store that injects torn writes, fsync errors, and process
// kills for the crash matrix.
type FS interface {
	// OpenAppend opens name for appending, creating it empty if absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// List returns the base names of every file in the directory.
	List() ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname. A crash around a
	// Rename leaves either the old state or the new state, never a tear —
	// the property the snapshot write relies on.
	Rename(oldname, newname string) error
}

// DirFS is the production FS: a single os directory. Renames are followed
// by a directory fsync so the new name is durable, matching the atomicity
// the snapshot protocol assumes.
type DirFS struct{ dir string }

// NewDirFS creates dir if needed and returns an FS rooted there.
func NewDirFS(dir string) (DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return DirFS{}, err
	}
	return DirFS{dir: dir}, nil
}

// Dir returns the root directory.
func (d DirFS) Dir() string { return d.dir }

// OpenAppend implements FS.
func (d DirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (d DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

// List implements FS.
func (d DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Remove implements FS.
func (d DirFS) Remove(name string) error {
	if err := os.Remove(filepath.Join(d.dir, name)); err != nil {
		return err
	}
	return d.syncDir()
}

// Rename implements FS.
func (d DirFS) Rename(oldname, newname string) error {
	if err := os.Rename(filepath.Join(d.dir, oldname), filepath.Join(d.dir, newname)); err != nil {
		return err
	}
	return d.syncDir()
}

// syncDir fsyncs the directory so renames and removals are durable, not
// just the file contents they point at.
func (d DirFS) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
