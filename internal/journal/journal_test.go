package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"syrep/internal/obs"
)

func openDir(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	fsys, err := NewDirFS(dir)
	if err != nil {
		t.Fatalf("NewDirFS: %v", err)
	}
	j, err := Open(fsys, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func replayAll(t *testing.T, j *Journal) (snap []byte, recs [][]byte, stats ReplayStats) {
	t.Helper()
	stats, err := j.Replay(func(snapshot bool, payload []byte) error {
		cp := append([]byte(nil), payload...)
		if snapshot {
			snap = cp
		} else {
			recs = append(recs, cp)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return snap, recs, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openDir(t, dir, Options{})
	want := [][]byte{[]byte("one"), []byte(""), []byte("three\x00binary")}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := openDir(t, dir, Options{})
	snap, recs, stats := replayAll(t, j2)
	if snap != nil || stats.Snapshot {
		t.Fatalf("unexpected snapshot: %q", snap)
	}
	if stats.TornTail {
		t.Fatal("unexpected torn tail")
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if string(recs[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestReplayAfterAppendRejected(t *testing.T) {
	j := openDir(t, t.TempDir(), Options{})
	if err := j.Append([]byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := j.Replay(func(bool, []byte) error { return nil }); !errors.Is(err, ErrReplayed) {
		t.Fatalf("Replay after Append = %v, want ErrReplayed", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := openDir(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tear the tail: chop the last 3 bytes of the only segment.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	ob := obs.New(nil)
	j2 := openDir(t, dir, Options{Obs: ob})
	_, recs, stats := replayAll(t, j2)
	if !stats.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (tail truncated)", len(recs))
	}
	var buf strings.Builder
	if err := ob.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), obs.JournalTornTails) {
		t.Fatalf("export missing %s: %s", obs.JournalTornTails, buf.String())
	}
}

func TestCorruptSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every record seals its own segment.
	j := openDir(t, dir, Options{SegmentBytes: 1})
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a payload byte in the first (sealed) segment.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openDir(t, dir, Options{})
	_, err = j2.Replay(func(bool, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestRotationSealsSegments(t *testing.T) {
	dir := t.TempDir()
	ob := obs.New(nil)
	j := openDir(t, dir, Options{SegmentBytes: 32, Obs: ob})
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("expected multiple segments, got %d files", len(ents))
	}
	j2 := openDir(t, dir, Options{})
	_, recs, stats := replayAll(t, j2)
	if len(recs) != 10 || stats.TornTail {
		t.Fatalf("replayed %d records (torn=%v), want 10 clean", len(recs), stats.TornTail)
	}
}

func TestSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	j := openDir(t, dir, Options{SegmentBytes: 32})
	for i := 0; i < 6; i++ {
		if err := j.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Snapshot([]byte("STATE")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := j.Append([]byte("post-0")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Everything before the snapshot must be gone.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		seq, snap, ok := parseName(e.Name())
		if !ok {
			t.Fatalf("foreign file after compaction: %s", e.Name())
		}
		if !snap && seq < 2 {
			t.Fatalf("pre-snapshot segment survived compaction: %s", e.Name())
		}
	}

	j2 := openDir(t, dir, Options{})
	snap, recs, stats := replayAll(t, j2)
	if string(snap) != "STATE" || !stats.Snapshot {
		t.Fatalf("snapshot = %q, want STATE", snap)
	}
	if len(recs) != 1 || string(recs[0]) != "post-0" {
		t.Fatalf("tail records = %q, want [post-0]", recs)
	}
}

func TestBadSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j := openDir(t, dir, Options{})
	if err := j.Snapshot([]byte("OLD")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := j.Append([]byte("tail-after-old")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Forge a newer snapshot with garbage content (rename landed, bytes bad).
	bogus := filepath.Join(dir, snapshotName(99))
	if err := os.WriteFile(bogus, []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openDir(t, dir, Options{})
	snap, recs, _ := replayAll(t, j2)
	if string(snap) != "OLD" {
		t.Fatalf("snapshot = %q, want fallback to OLD", snap)
	}
	// The tail segment outranks the OLD snapshot but not the bogus one; it
	// sits between, and with the bogus snapshot skipped it must replay.
	if len(recs) != 1 || string(recs[0]) != "tail-after-old" {
		t.Fatalf("tail records = %q, want [tail-after-old]", recs)
	}
}

func TestStaleTmpRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, snapshotName(7)+".tmp")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	openDir(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived Open: %v", err)
	}
}

func TestSyncEveryBatches(t *testing.T) {
	dir := t.TempDir()
	ob := obs.New(nil)
	j := openDir(t, dir, Options{SyncEvery: 3, Obs: ob})
	for i := 0; i < 7; i++ {
		if err := j.Append([]byte("x")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// 7 appends with SyncEvery=3 → auto-syncs at 3 and 6.
	if got := ob.Counter(obs.JournalSyncs).Load(); got != 2 {
		t.Fatalf("auto-syncs = %d, want 2", got)
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := ob.Counter(obs.JournalSyncs).Load(); got != 3 {
		t.Fatalf("syncs after explicit = %d, want 3", got)
	}
	// Clean journal: another Sync is a dirty-flag no-op.
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := ob.Counter(obs.JournalSyncs).Load(); got != 3 {
		t.Fatalf("no-op sync ticked the counter: %d", got)
	}
}

// errFile / errFS force a sync failure to check the latch.
type errFile struct {
	File
	syncErr error
}

func (f errFile) Sync() error { return f.syncErr }

type errFS struct {
	FS
	syncErr error
}

func (e errFS) OpenAppend(name string) (File, error) {
	f, err := e.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return errFile{File: f, syncErr: e.syncErr}, nil
}

func TestSyncErrorLatches(t *testing.T) {
	inner, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	j, err := Open(errFS{FS: inner, syncErr: boom}, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := j.Append([]byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync = %v, want wrapped %v", err, boom)
	}
	// Latched: every later operation reports the same failure.
	if err := j.Append([]byte("y")); !errors.Is(err, boom) {
		t.Fatalf("Append after failure = %v, want latched %v", err, boom)
	}
	if err := j.Snapshot([]byte("s")); !errors.Is(err, boom) {
		t.Fatalf("Snapshot after failure = %v, want latched %v", err, boom)
	}
	if err := j.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want latched %v", err, boom)
	}
}

func TestWalkMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	j := openDir(t, dir, Options{SegmentBytes: 32})
	if err := j.Snapshot([]byte("SNAP")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("w-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fsys, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	var recs []string
	stats, err := Walk(fsys, func(snapshot bool, payload []byte) error {
		if snapshot {
			snap = append([]byte(nil), payload...)
		} else {
			recs = append(recs, string(payload))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if string(snap) != "SNAP" || !stats.Snapshot {
		t.Fatalf("Walk snapshot = %q, want SNAP", snap)
	}
	if len(recs) != 5 || stats.Records != 5 {
		t.Fatalf("Walk records = %v (stats %d), want 5", recs, stats.Records)
	}
}

func TestReplayEmptyJournal(t *testing.T) {
	j := openDir(t, t.TempDir(), Options{})
	snap, recs, stats := replayAll(t, j)
	if snap != nil || len(recs) != 0 || stats.Snapshot || stats.TornTail || stats.Records != 0 {
		t.Fatalf("empty replay = snap %q recs %v stats %+v", snap, recs, stats)
	}
}
