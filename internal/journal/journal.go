// Package journal is an append-only, CRC-checksummed write-ahead log with
// segment rotation, fsync batching, and snapshot+compaction, behind a
// pluggable FS seam.
//
// The churn controller journals every accepted link event, computed delta,
// southbound ack, and dead-letter here before the change takes effect, so a
// process crash loses at most the unsynced tail — and recovery replays
// snapshot+tail to resume pushes idempotently instead of cold-resynthesizing
// every destination.
//
// On-disk layout (one flat directory):
//
//	wal-<seq>.seg    length-prefixed records: u32le length, u32le CRC-32C
//	                 over (length ‖ payload), then the payload
//	snap-<seq>.snap  one framed record holding a full state snapshot
//
// Sequence numbers are shared between segments and snapshots and strictly
// increase, so recovery is: load the highest intact snapshot, then replay
// every segment with a higher sequence in order. A crash tears only the
// tail of whatever segment was being written — usually the highest, but a
// crash *during a previous recovery* can leave the tear in an older
// segment with empty segments after it (Open creates the next active
// segment before Replay repairs the tear). Replay therefore truncates
// every torn tail and reports it, and treats a complete record appearing
// anywhere after the first tear as corruption — that is damage no crash
// ordering can explain.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"

	"syrep/internal/obs"
)

// frame layout: 4-byte little-endian payload length, 4-byte little-endian
// CRC-32C over the length bytes followed by the payload. Checksumming the
// length too means a corrupted length never masquerades as a short record.
const frameHeader = 8

// maxRecord bounds a single record so a corrupted length field cannot
// demand an absurd allocation during replay.
const maxRecord = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports journal damage that torn-tail truncation cannot
// explain: a broken frame that is not at the tail of the final segment, or
// no intact snapshot where one is referenced.
var ErrCorrupt = errors.New("journal: corrupt")

// ErrReplayed rejects Replay after the journal has started appending; the
// replay-then-append order is what makes recovery exact.
var ErrReplayed = errors.New("journal: Replay must run before the first Append")

// Options tunes a journal. The zero value gets serviceable defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 1 MiB).
	SegmentBytes int64
	// SyncEvery, when positive, fsyncs automatically after every N appends.
	// Zero means the owner batches durability explicitly via Sync — the
	// controller syncs once per event batch and once per repair pass.
	SyncEvery int
	// Obs, when non-nil, receives the syrep_journal_* counters.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// ReplayStats summarizes one Replay.
type ReplayStats struct {
	// Snapshot tells whether a snapshot seeded the replay.
	Snapshot bool
	// Records counts tail records delivered after the snapshot.
	Records int
	// TornTail tells whether the final segment ended in a broken frame
	// (short header, short payload, or CRC mismatch); the records before
	// the tear were delivered, the tear discarded.
	TornTail bool
}

// Journal is a single-writer write-ahead log. Append/Sync/Snapshot are
// goroutine-safe (the controller journals from both its reconcile and
// pusher goroutines); Replay must happen first, once.
type Journal struct {
	fsys FS
	opts Options

	mu       sync.Mutex
	seq      uint64 // sequence of the active segment
	cur      File
	curBytes int64
	dirty    bool // bytes written since the last successful Sync
	unsynced int  // appends since the last successful Sync
	appended bool // latches once Append runs; Replay then errors
	failed   error

	appends, syncs, rotations *obs.Counter
	snapshots, compacted      *obs.Counter
	recoveredRecs, tornTails  *obs.Counter
	snapshotsLoaded, badSnaps *obs.Counter
}

// Open scans the directory, removes stale temporary files, and opens a
// fresh segment after the highest existing sequence. Existing segments and
// snapshots are left for Replay.
func Open(fsys FS, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	j := &Journal{
		fsys:            fsys,
		opts:            opts,
		appends:         opts.Obs.Counter(obs.JournalAppends),
		syncs:           opts.Obs.Counter(obs.JournalSyncs),
		rotations:       opts.Obs.Counter(obs.JournalRotations),
		snapshots:       opts.Obs.Counter(obs.JournalSnapshots),
		compacted:       opts.Obs.Counter(obs.JournalCompactedFiles),
		recoveredRecs:   opts.Obs.Counter(obs.JournalRecoveredRecords),
		tornTails:       opts.Obs.Counter(obs.JournalTornTails),
		snapshotsLoaded: opts.Obs.Counter(obs.JournalSnapshotsLoaded),
		badSnaps:        opts.Obs.Counter(obs.JournalBadSnapshots),
	}
	names, err := fsys.List()
	if err != nil {
		return nil, fmt.Errorf("journal: list: %w", err)
	}
	maxSeq := uint64(0)
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// A snapshot that crashed before its rename; it was never
			// referenced, so it is garbage.
			_ = fsys.Remove(name)
			continue
		}
		if seq, _, ok := parseName(name); ok && seq > maxSeq {
			maxSeq = seq
		}
	}
	j.seq = maxSeq + 1
	if err := j.openSegmentLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// parseName decodes wal-<seq>.seg / snap-<seq>.snap names; foreign files
// report !ok and are ignored.
func parseName(name string) (seq uint64, snapshot bool, ok bool) {
	var prefix, suffix string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
		prefix, suffix = "wal-", ".seg"
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		prefix, suffix, snapshot = "snap-", ".snap", true
	default:
		return 0, false, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(body, 16, 64)
	if err != nil {
		return 0, false, false
	}
	return seq, snapshot, true
}

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016x.seg", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

func (j *Journal) openSegmentLocked() error {
	f, err := j.fsys.OpenAppend(segmentName(j.seq))
	if err != nil {
		return fmt.Errorf("journal: open segment %d: %w", j.seq, err)
	}
	j.cur = f
	j.curBytes = 0
	j.dirty = false
	j.unsynced = 0
	return nil
}

// frame renders one record: header (length, CRC) then payload.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, buf[0:4])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	copy(buf[frameHeader:], payload)
	return buf
}

// parseFrame decodes the record starting at data[off]. ok is false at a
// clean end of data or at any tear (short header, short payload, bad CRC,
// oversized length) — the caller decides whether that tear is tolerable.
func parseFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHeader > len(data) {
		return nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if n > maxRecord || off+frameHeader+n > len(data) {
		return nil, off, false
	}
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	crc := crc32.Update(0, crcTable, data[off:off+4])
	crc = crc32.Update(crc, crcTable, data[off+frameHeader:off+frameHeader+n])
	if crc != want {
		return nil, off, false
	}
	return data[off+frameHeader : off+frameHeader+n], off + frameHeader + n, true
}

// Append journals one record. The bytes are buffered in the OS until the
// next Sync (or auto-sync when Options.SyncEvery is set); a crash before
// that may lose or tear them, which replay detects and truncates. Any
// failure latches: the journal refuses further work with the same error,
// because a half-written journal must not keep absorbing state the owner
// believes durable.
func (j *Journal) Append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	j.appended = true
	buf := frame(payload)
	n, err := j.cur.Write(buf)
	j.curBytes += int64(n)
	if err != nil {
		return j.fail(fmt.Errorf("journal: append: %w", err))
	}
	j.dirty = true
	j.unsynced++
	j.appends.Inc()
	if j.opts.SyncEvery > 0 && j.unsynced >= j.opts.SyncEvery {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if j.curBytes >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync makes every appended record durable. It is a no-op when nothing was
// appended since the last Sync, so callers batch freely: append N records,
// sync once.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.cur.Sync(); err != nil {
		return j.fail(fmt.Errorf("journal: sync: %w", err))
	}
	j.dirty = false
	j.unsynced = 0
	j.syncs.Inc()
	return nil
}

// rotateLocked seals the active segment (sync + close) and opens the next
// one. Sealing before moving on is what confines torn tails to the final
// segment.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.cur.Close(); err != nil {
		return j.fail(fmt.Errorf("journal: rotate close: %w", err))
	}
	j.seq++
	if err := j.openSegmentLocked(); err != nil {
		return j.fail(err)
	}
	j.rotations.Inc()
	return nil
}

// fail latches the first error; all later operations return it.
func (j *Journal) fail(err error) error {
	if j.failed == nil {
		j.failed = err
	}
	return j.failed
}

// Err returns the latched failure, nil while the journal is healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Replay loads the persisted state: the highest intact snapshot (if any) is
// delivered first with snapshot=true, then every tail record in append
// order. It must run before the first Append. A torn tail on the final
// segment is truncated and reported in the stats; a broken frame anywhere
// else fails with ErrCorrupt.
func (j *Journal) Replay(fn func(snapshot bool, payload []byte) error) (ReplayStats, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var stats ReplayStats
	if j.failed != nil {
		return stats, j.failed
	}
	if j.appended {
		return stats, ErrReplayed
	}
	files, err := scan(j.fsys, j.seq)
	if err != nil {
		return stats, err
	}
	snapSeq, snapPayload, skipped, err := bestSnapshot(j.fsys, files.snaps)
	if err != nil {
		return stats, err
	}
	j.badSnaps.Add(int64(skipped))
	if snapPayload != nil {
		stats.Snapshot = true
		j.snapshotsLoaded.Inc()
		if err := fn(true, snapPayload); err != nil {
			return stats, err
		}
	}
	live := files.segs[:0]
	for _, seq := range files.segs {
		if seq > snapSeq {
			live = append(live, seq)
		}
	}
	parsed := make([]segParse, 0, len(live))
	for _, seq := range live {
		data, err := j.fsys.ReadFile(segmentName(seq))
		if err != nil {
			return stats, fmt.Errorf("journal: read segment %d: %w", seq, err)
		}
		ps := segParse{seq: seq, data: data}
		ps.recs, ps.valid, ps.torn = parseSegment(data)
		parsed = append(parsed, ps)
	}
	if err := checkTears(parsed); err != nil {
		return stats, err
	}
	for _, ps := range parsed {
		for _, rec := range ps.recs {
			if err := fn(false, rec); err != nil {
				return stats, err
			}
			stats.Records++
		}
		if ps.torn {
			stats.TornTail = true
			j.tornTails.Inc()
			// Rewrite the segment to its valid prefix. Without this the
			// tear would survive on disk, and the *next* restart — which
			// writes newer segments after it — would see a broken frame
			// inside a sealed segment and refuse to replay.
			if err := j.repairTornLocked(segmentName(ps.seq), ps.data[:ps.valid]); err != nil {
				return stats, err
			}
		}
	}
	j.recoveredRecs.Add(int64(stats.Records))
	return stats, nil
}

// segParse is one live segment's decoded content during replay.
type segParse struct {
	seq   uint64
	data  []byte
	recs  [][]byte
	valid int
	torn  bool
}

// checkTears enforces the corruption rule: a broken frame is a legal crash
// artifact only while no record exists beyond it. The common case is a tear
// in the final segment (the crash interrupted the last append). A tear in
// an earlier segment is still legal when every later segment holds zero
// records — that happens when a crash interrupts recovery itself, after
// Open created a fresh (empty) active segment but before Replay repaired
// the previous tear. Any complete record past a tear means data in the
// middle of the stream was lost: ErrCorrupt.
func checkTears(parsed []segParse) error {
	firstTear := -1
	for i, ps := range parsed {
		if firstTear >= 0 && len(ps.recs) > 0 {
			return fmt.Errorf("%w: segment %d holds records beyond the tear in segment %d",
				ErrCorrupt, ps.seq, parsed[firstTear].seq)
		}
		if ps.torn && firstTear < 0 {
			firstTear = i
		}
	}
	return nil
}

// repairTornLocked truncates a torn segment to its valid prefix via the
// same tmp-write + atomic-rename protocol as snapshots, so a crash during
// the repair itself leaves either the torn original (repaired again on the
// next restart) or the clean replacement.
func (j *Journal) repairTornLocked(name string, valid []byte) error {
	tmp := name + ".tmp"
	f, err := j.fsys.OpenAppend(tmp)
	if err != nil {
		return j.fail(fmt.Errorf("journal: repair open: %w", err))
	}
	if len(valid) > 0 {
		if _, err := f.Write(valid); err != nil {
			f.Close()
			return j.fail(fmt.Errorf("journal: repair write: %w", err))
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return j.fail(fmt.Errorf("journal: repair sync: %w", err))
	}
	if err := f.Close(); err != nil {
		return j.fail(fmt.Errorf("journal: repair close: %w", err))
	}
	if err := j.fsys.Rename(tmp, name); err != nil {
		return j.fail(fmt.Errorf("journal: repair rename: %w", err))
	}
	return nil
}

// parseSegment decodes a segment's frames; valid is the byte offset of the
// first broken frame (== len(data) when clean), torn reports trailing
// bytes that do not form an intact record.
func parseSegment(data []byte) (recs [][]byte, valid int, torn bool) {
	for off := 0; off < len(data); {
		payload, next, ok := parseFrame(data, off)
		if !ok {
			return recs, off, true
		}
		recs = append(recs, payload)
		off = next
	}
	return recs, len(data), false
}

// dirFiles is the parsed directory listing relevant to a journal.
type dirFiles struct {
	segs  []uint64 // ascending, excluding the active segment
	snaps []uint64 // ascending
}

func scan(fsys FS, activeSeq uint64) (dirFiles, error) {
	names, err := fsys.List()
	if err != nil {
		return dirFiles{}, fmt.Errorf("journal: list: %w", err)
	}
	var files dirFiles
	for _, name := range names {
		seq, snap, ok := parseName(name)
		if !ok {
			continue
		}
		if snap {
			files.snaps = append(files.snaps, seq)
		} else if seq != activeSeq {
			files.segs = append(files.segs, seq)
		}
	}
	sort.Slice(files.segs, func(a, b int) bool { return files.segs[a] < files.segs[b] })
	sort.Slice(files.snaps, func(a, b int) bool { return files.snaps[a] < files.snaps[b] })
	return files, nil
}

// bestSnapshot returns the payload of the highest intact snapshot and how
// many newer-but-broken snapshots were skipped on the way down. No snapshot
// at all returns seq 0 and a nil payload.
func bestSnapshot(fsys FS, snaps []uint64) (seq uint64, payload []byte, skipped int, err error) {
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := fsys.ReadFile(snapshotName(snaps[i]))
		if err != nil {
			return 0, nil, skipped, fmt.Errorf("journal: read snapshot %d: %w", snaps[i], err)
		}
		rec, _, ok := parseFrame(data, 0)
		if !ok {
			// The rename made it durable but the content is damaged —
			// fall back to the previous snapshot, whose tail segments are
			// still present until compaction confirms a newer one.
			skipped++
			continue
		}
		return snaps[i], rec, skipped, nil
	}
	return 0, nil, skipped, nil
}

// Snapshot persists a full-state snapshot and compacts: the active segment
// is sealed, the snapshot is written to a temporary file, synced, and
// renamed into place, and only then are the superseded segments and
// snapshots removed. A crash at any point leaves a recoverable directory —
// either the old snapshot plus all segments, or the new snapshot.
func (j *Journal) Snapshot(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	j.appended = true
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.cur.Close(); err != nil {
		return j.fail(fmt.Errorf("journal: snapshot close: %w", err))
	}
	sealed := j.seq
	snapSeq := j.seq + 1
	name := snapshotName(snapSeq)
	tmp := name + ".tmp"
	f, err := j.fsys.OpenAppend(tmp)
	if err != nil {
		return j.fail(fmt.Errorf("journal: snapshot open: %w", err))
	}
	if _, err := f.Write(frame(state)); err != nil {
		f.Close()
		return j.fail(fmt.Errorf("journal: snapshot write: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return j.fail(fmt.Errorf("journal: snapshot sync: %w", err))
	}
	if err := f.Close(); err != nil {
		return j.fail(fmt.Errorf("journal: snapshot close: %w", err))
	}
	if err := j.fsys.Rename(tmp, name); err != nil {
		return j.fail(fmt.Errorf("journal: snapshot rename: %w", err))
	}
	j.snapshots.Inc()
	// Compaction: everything at or below the sealed segment, and every
	// older snapshot, is now redundant. Removal failures are tolerable —
	// recovery ignores superseded files — but still latch, because an FS
	// that fails removals is an FS about to fail appends.
	files, err := scan(j.fsys, 0)
	if err != nil {
		return j.fail(err)
	}
	for _, seq := range files.segs {
		if seq <= sealed {
			if err := j.fsys.Remove(segmentName(seq)); err != nil {
				return j.fail(fmt.Errorf("journal: compact: %w", err))
			}
			j.compacted.Inc()
		}
	}
	for _, seq := range files.snaps {
		if seq < snapSeq {
			if err := j.fsys.Remove(snapshotName(seq)); err != nil {
				return j.fail(fmt.Errorf("journal: compact: %w", err))
			}
			j.compacted.Inc()
		}
	}
	j.seq = snapSeq + 1
	if err := j.openSegmentLocked(); err != nil {
		return j.fail(err)
	}
	return nil
}

// Close seals the journal: outstanding appends are synced and the active
// segment closed. The journal is unusable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	err := j.cur.Close()
	j.fail(errors.New("journal: closed"))
	return err
}

// Walk reads a journal directory without opening it for writing — the
// inspection path behind `syrep-ctl -journal-dump`. It visits the highest
// intact snapshot (snapshot=true), then every tail record in order, and
// returns the same stats as Replay.
func Walk(fsys FS, fn func(snapshot bool, payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	files, err := scan(fsys, ^uint64(0))
	if err != nil {
		return stats, err
	}
	snapSeq, snapPayload, _, err := bestSnapshot(fsys, files.snaps)
	if err != nil {
		return stats, err
	}
	if snapPayload != nil {
		stats.Snapshot = true
		if err := fn(true, snapPayload); err != nil {
			return stats, err
		}
	}
	live := files.segs[:0]
	for _, seq := range files.segs {
		if seq > snapSeq {
			live = append(live, seq)
		}
	}
	parsed := make([]segParse, 0, len(live))
	for _, seq := range live {
		data, err := fsys.ReadFile(segmentName(seq))
		if err != nil {
			return stats, fmt.Errorf("journal: read segment %d: %w", seq, err)
		}
		ps := segParse{seq: seq, data: data}
		ps.recs, ps.valid, ps.torn = parseSegment(data)
		parsed = append(parsed, ps)
	}
	if err := checkTears(parsed); err != nil {
		return stats, err
	}
	for _, ps := range parsed {
		for _, rec := range ps.recs {
			if err := fn(false, rec); err != nil {
				return stats, err
			}
			stats.Records++
		}
		if ps.torn {
			stats.TornTail = true
		}
	}
	return stats, nil
}
