package server

// POST /v1/synthesize-all: the all-destinations batch endpoint. The handler
// builds the batch-scoped shared resources (destination-independent
// reduction candidates, warm BDD manager pool) once, then funnels every
// destination through the server's normal admission path as its own
// request, so per-destination load shedding, retries, the breaker, and the
// synthesis cache all apply exactly as they would to N individual submits.
// The response is NDJSON: one line per destination the moment it settles
// (completion order), then a final summary line. A destination that fails —
// pipeline error or queue-full shedding — is its own "error"/"rejected"
// line; it never fails the batch or the stream.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/resilience"
	"syrep/internal/routing"
)

// apiBatchLine is one NDJSON line of POST /v1/synthesize-all: a
// per-destination result while Dest is set, the batch summary when Status
// is "done".
type apiBatchLine struct {
	Dest string `json:"dest,omitempty"`
	// Status is ok|partial|degraded|error|rejected per destination, "done"
	// on the final summary line.
	Status          string `json:"status"`
	Resilient       bool   `json:"resilient,omitempty"`
	Residual        int    `json:"residual,omitempty"`
	ResidualUnknown bool   `json:"residualUnknown,omitempty"`
	Retries         int    `json:"retries,omitempty"`
	Degraded        bool   `json:"degraded,omitempty"`
	Cached          bool   `json:"cached,omitempty"`
	Deduped         bool   `json:"deduped,omitempty"`
	// RetryAfterSec accompanies Status "rejected": retry this destination
	// after that many seconds (the rest of the batch proceeds).
	RetryAfterSec int    `json:"retryAfterSec,omitempty"`
	Error         string `json:"error,omitempty"`
	// Routing is included per destination only when the request set
	// "routings": true (tables dominate the payload on large topologies).
	Routing   *routing.Routing `json:"routing,omitempty"`
	ElapsedMs int64            `json:"elapsedMs,omitempty"`

	// Summary-line tallies.
	Dests     int `json:"dests,omitempty"`
	Ok        int `json:"ok,omitempty"`
	DegradedN int `json:"degradedCount,omitempty"`
	Failed    int `json:"failed,omitempty"`
	Rejected  int `json:"rejected,omitempty"`
	CacheHits int `json:"cacheHits,omitempty"`
	Dedups    int `json:"dedups,omitempty"`
}

// handleSynthesizeAll streams one synthesis per destination as NDJSON.
func (s *Server) handleSynthesizeAll(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.now()
	var api apiRequest
	if err := json.NewDecoder(r.Body).Decode(&api); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), 0)
		return
	}
	base, err := buildRequest(KindSynthesize, &api)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	dests, err := resolveDests(base.Net, api.Dests)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	shared, err := resilience.NewSharedResources(base.Net, 0, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	workers := api.Workers
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	if workers > len(dests) {
		workers = len(dests)
	}

	s.cfg.Obs.Counter(obs.BatchRuns).Inc()
	cDests := s.cfg.Obs.Counter(obs.BatchDests)
	cResilient := s.cfg.Obs.Counter(obs.BatchResilient)
	cDegraded := s.cfg.Obs.Counter(obs.BatchDegraded)
	cFailed := s.cfg.Obs.Counter(obs.BatchFailed)
	cCacheHits := s.cfg.Obs.Counter(obs.BatchCacheHits)
	cDedups := s.cfg.Obs.Counter(obs.BatchDedups)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Workers settle destinations concurrently; the handler goroutine owns
	// the stream and writes lines in completion order.
	lines := make(chan apiBatchLine)
	var wg sync.WaitGroup
	var next int
	var nextMu sync.Mutex
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				nextMu.Lock()
				i := next
				next++
				nextMu.Unlock()
				if i >= len(dests) || r.Context().Err() != nil {
					return
				}
				emitLine(r.Context(), lines, s.batchOne(r, base, shared, dests[i], api.IncludeRoutings))
			}
		}()
	}
	go func() {
		wg.Wait()
		close(lines)
	}()

	sum := apiBatchLine{Status: "done", Dests: len(dests)}
	for line := range lines {
		cDests.Inc()
		switch line.Status {
		case "rejected":
			sum.Rejected++
		case "error":
			sum.Failed++
			cFailed.Inc()
		case "degraded":
			sum.DegradedN++
			cDegraded.Inc()
		default:
			sum.Ok++
			cResilient.Inc()
		}
		if line.Cached {
			sum.CacheHits++
			cCacheHits.Inc()
		}
		if line.Deduped {
			sum.Dedups++
			cDedups.Inc()
		}
		// The stream is committed; an encode failure means the client hung
		// up and the remaining workers drain into a dead pipe harmlessly.
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum.ElapsedMs = s.cfg.now().Sub(start).Milliseconds()
	_ = enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// emitLine hands one result line to the stream owner, giving up when the
// request is canceled so a batch worker never blocks on a handler that has
// already gone away.
func emitLine(ctx context.Context, lines chan<- apiBatchLine, line apiBatchLine) {
	select {
	case lines <- line:
	case <-ctx.Done():
	}
}

// batchOne settles one destination through the server's admission path.
func (s *Server) batchOne(r *http.Request, base *Request, shared *resilience.SharedResources, dest network.NodeID, includeRouting bool) apiBatchLine {
	start := s.cfg.now()
	req := &Request{
		Kind:     KindSynthesize,
		Net:      base.Net,
		Dest:     dest,
		K:        base.K,
		Strategy: base.Strategy,
		Timeout:  base.Timeout,
		Budgets:  base.Budgets,
		Shared:   shared,
	}
	line := apiBatchLine{Dest: base.Net.NodeName(dest), Status: "ok"}
	resp, err := s.Do(r.Context(), req)
	if err != nil {
		var rej *Rejection
		if errors.As(err, &rej) {
			line.Status = "rejected"
			line.Error = err.Error()
			secs := int(rej.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			line.RetryAfterSec = secs
			return line
		}
		line.Status = "error"
		line.Error = err.Error()
		return line
	}
	line.Resilient = resp.Resilient
	line.Residual = resp.Residual
	line.ResidualUnknown = resp.ResidualUnknown
	line.Retries = resp.Retries
	line.Degraded = resp.Degraded
	line.Cached = resp.Cached
	line.Deduped = resp.Deduped
	switch {
	case resp.Degraded:
		line.Status = "degraded"
	case resp.Partial && resp.Routing != nil:
		line.Status = "partial"
		line.Error = resp.Err.Error()
	case resp.Err != nil:
		line.Status = "error"
		line.Error = resp.Err.Error()
	}
	if includeRouting && line.Status != "error" {
		line.Routing = resp.Routing
	}
	line.ElapsedMs = s.cfg.now().Sub(start).Milliseconds()
	return line
}

// resolveDests maps requested destination names onto node IDs (every node
// when names is empty).
func resolveDests(net *network.Network, names []string) ([]network.NodeID, error) {
	if len(names) == 0 {
		all := make([]network.NodeID, net.NumNodes())
		for i := range all {
			all[i] = network.NodeID(i)
		}
		return all, nil
	}
	dests := make([]network.NodeID, 0, len(names))
	for _, name := range names {
		d := net.NodeByName(name)
		if d == network.NoNode {
			return nil, fmt.Errorf("unknown destination node %q", name)
		}
		dests = append(dests, d)
	}
	return dests, nil
}
