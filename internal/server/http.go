package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"syrep/internal/network"
	"syrep/internal/resilience"
	"syrep/internal/routing"
	"syrep/internal/topozoo"
)

// apiRequest is the JSON body of POST /v1/synthesize and /v1/repair. The
// topology is either an embedded instance name or an inline link list.
type apiRequest struct {
	// Topology names an embedded instance (see GET /v1/topologies).
	Topology string `json:"topology,omitempty"`
	// Links is an inline topology: undirected node-name pairs. Nodes are
	// created on first mention.
	Links [][2]string `json:"links,omitempty"`
	// Dest is the destination node name (default: the first node).
	Dest string `json:"dest,omitempty"`
	// K is the resilience level (default 2).
	K *int `json:"k,omitempty"`
	// Strategy is baseline|heuristic|reduction|combined (default combined).
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMs bounds the request end to end (0 = server default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Routing is the table to repair (repair endpoint only), in the JSON
	// codec of the routing package. A repair request without a routing is
	// dynamic repair: the server warm-starts from the nearest cached table
	// for the submitted topology, falling back to cold synthesis.
	Routing json.RawMessage `json:"routing,omitempty"`

	// The remaining fields apply to /v1/synthesize-all only.

	// Dests selects the batch destinations by node name (default: every
	// node of the topology).
	Dests []string `json:"dests,omitempty"`
	// Workers bounds the batch's concurrently running destinations
	// (default and cap: the server's worker count).
	Workers int `json:"workers,omitempty"`
	// IncludeRoutings asks for the synthesized table on each per-
	// destination line (off by default: tables dominate the payload).
	IncludeRoutings bool `json:"routings,omitempty"`
}

// apiResponse is the JSON reply of the submit endpoints.
type apiResponse struct {
	// Status is "ok", "partial" (salvaged best-effort table), "degraded"
	// (breaker open, heuristic-only table), or "error".
	Status    string `json:"status"`
	Resilient bool   `json:"resilient"`
	// Residual counts known failing deliveries of the returned table.
	Residual        int  `json:"residual"`
	ResidualUnknown bool `json:"residualUnknown,omitempty"`
	Retries         int  `json:"retries"`
	// Degraded mirrors Status == "degraded" so clients need not string-match.
	Degraded bool `json:"degraded,omitempty"`
	// Cached: served from the synthesis cache without a pipeline run.
	Cached bool `json:"cached,omitempty"`
	// Deduped: shared the pipeline run of a concurrent identical request.
	Deduped bool `json:"deduped,omitempty"`
	// WarmStart: dynamic repair served by the warm-start fast path.
	WarmStart bool             `json:"warmStart,omitempty"`
	Error     string           `json:"error,omitempty"`
	Routing   *routing.Routing `json:"routing,omitempty"`
	ElapsedMs int64            `json:"elapsedMs"`
}

// Handler returns the service's HTTP interface:
//
//	POST /v1/synthesize      submit a synthesis request
//	POST /v1/synthesize-all  batch-synthesize every destination (NDJSON stream)
//	POST /v1/repair          submit a repair request
//	GET  /v1/topologies      list embedded topology names
//	GET  /healthz            liveness (200 while the process serves)
//	GET  /readyz             readiness (breaker closed, queue below high water)
//	GET  /metrics            Prometheus exposition of the configured observer
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmit(w, r, KindSynthesize)
	})
	mux.HandleFunc("POST /v1/synthesize-all", s.handleSynthesizeAll)
	mux.HandleFunc("POST /v1/repair", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmit(w, r, KindRepair)
	})
	mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// buildRequest translates the wire request into a server Request.
func buildRequest(kind Kind, api *apiRequest) (*Request, error) {
	var net *network.Network
	switch {
	case api.Topology != "" && len(api.Links) > 0:
		return nil, errors.New("give either topology or links, not both")
	case api.Topology != "":
		for _, inst := range topozoo.Embedded() {
			if strings.EqualFold(inst.Name, api.Topology) {
				net = inst.Net
				break
			}
		}
		if net == nil {
			return nil, fmt.Errorf("unknown topology %q", api.Topology)
		}
	case len(api.Links) > 0:
		b := network.NewBuilder("inline")
		for _, l := range api.Links {
			b.AddLink(l[0], l[1])
		}
		var err error
		net, err = b.Build()
		if err != nil {
			return nil, fmt.Errorf("inline topology: %w", err)
		}
	default:
		return nil, errors.New("missing topology (name or links)")
	}

	dest := network.NodeID(0)
	if api.Dest != "" {
		dest = net.NodeByName(api.Dest)
		if dest == network.NoNode {
			return nil, fmt.Errorf("unknown destination node %q", api.Dest)
		}
	}

	k := 2
	if api.K != nil {
		k = *api.K
	}
	if k < 0 {
		return nil, fmt.Errorf("negative resilience level %d", k)
	}

	var strategy resilience.Strategy
	switch api.Strategy {
	case "", "combined":
		strategy = resilience.Combined
	case "baseline":
		strategy = resilience.Baseline
	case "heuristic":
		strategy = resilience.HeuristicOnly
	case "reduction":
		strategy = resilience.ReductionOnly
	default:
		return nil, fmt.Errorf("unknown strategy %q", api.Strategy)
	}

	req := &Request{
		Kind:     kind,
		Net:      net,
		Dest:     dest,
		K:        k,
		Strategy: strategy,
		Timeout:  time.Duration(api.TimeoutMs) * time.Millisecond,
	}
	if kind == KindRepair && len(api.Routing) > 0 {
		rt, err := routing.Unmarshal(api.Routing, net)
		if err != nil {
			return nil, err
		}
		req.Routing = rt
	}
	return req, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, kind Kind) {
	start := s.cfg.now()
	var api apiRequest
	if err := json.NewDecoder(r.Body).Decode(&api); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), 0)
		return
	}
	req, err := buildRequest(kind, &api)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	resp, err := s.Do(r.Context(), req)
	if err != nil {
		var rej *Rejection
		if errors.As(err, &rej) {
			writeError(w, http.StatusServiceUnavailable, err, rej.RetryAfter)
			return
		}
		// The wait was abandoned (client gone): nothing useful to say.
		writeError(w, http.StatusInternalServerError, err, 0)
		return
	}
	s.writeResponse(w, resp, s.cfg.now().Sub(start))
}

// writeResponse maps a Response onto the wire: partial salvages and
// degraded tables are 200s carrying their flags (the caller got a usable
// table), transient failures are 503s with Retry-After, permanent ones 422.
func (s *Server) writeResponse(w http.ResponseWriter, resp *Response, elapsed time.Duration) {
	api := apiResponse{
		Status:          "ok",
		Resilient:       resp.Resilient,
		Residual:        resp.Residual,
		ResidualUnknown: resp.ResidualUnknown,
		Retries:         resp.Retries,
		Degraded:        resp.Degraded,
		Cached:          resp.Cached,
		Deduped:         resp.Deduped,
		WarmStart:       resp.WarmStart,
		Routing:         resp.Routing,
		ElapsedMs:       elapsed.Milliseconds(),
	}
	status := http.StatusOK
	switch {
	case resp.Degraded:
		api.Status = "degraded"
	case resp.Partial && resp.Routing != nil:
		api.Status = "partial"
		api.Error = resp.Err.Error()
	case resp.Err != nil:
		api.Status = "error"
		api.Error = resp.Err.Error()
		api.Routing = nil
		switch {
		case resilience.IsPermanent(resp.Err):
			status = http.StatusUnprocessableEntity
		case IsRetryable(resp.Err):
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfterHint))
		default:
			status = http.StatusInternalServerError
		}
	}
	writeJSON(w, status, api)
}

func (s *Server) handleTopologies(w http.ResponseWriter, _ *http.Request) {
	type topo struct {
		Name  string `json:"name"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
	}
	var out []topo
	for _, inst := range topozoo.Embedded() {
		out = append(out, topo{Name: inst.Name, Nodes: inst.Net.NumNodes(), Edges: inst.Net.NumRealEdges()})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCache reports the synthesis cache's stats — hit/miss/dedup and
// warm-start counters plus the current footprint — or 404 when the server
// runs without a cache.
func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	stats, ok := s.CacheStats()
	if !ok {
		http.Error(w, "no synthesis cache configured", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports ready only while the service can absorb new load:
// not draining, breaker closed, and the queue below its high-water mark.
// Load balancers steer traffic away on 503 before the queue hard-rejects.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	state := s.breaker.State()
	depth := s.QueueLen()
	ready := !s.isDraining() && state == BreakerClosed && depth < s.cfg.HighWater
	body := map[string]any{
		"ready":     ready,
		"breaker":   state.String(),
		"queue":     depth,
		"highWater": s.cfg.HighWater,
		"draining":  s.isDraining(),
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfterHint))
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Obs == nil {
		http.Error(w, "no observer configured", http.StatusNotFound)
		return
	}
	// Gauges are sampled at scrape time; counters tick continuously.
	s.queueDepth.Set(int64(s.QueueLen()))
	s.breakerGauge.Set(int64(s.breaker.State()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Obs.Snapshot().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// retryAfterSeconds renders a Retry-After header value, at least 1 second
// (the header has whole-second granularity).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already committed; an encode failure here means the
	// client hung up, which is not actionable.
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	}
	writeJSON(w, status, apiResponse{Status: "error", Error: err.Error()})
}
