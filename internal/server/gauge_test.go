package server

// gauge_test.go pins the queue gauges' atomic discipline. The audit behind
// it: MetricQueueDepth is an instantaneous value Set from several
// goroutines (Submit, workers, the /metrics scrape), which is safe because
// obs.Gauge is atomic throughout — but it means the peak between scrapes is
// invisible. MetricQueueHighWater closes that gap with a monotone SetMax
// mark updated at admission. These tests run under -race in CI, so a
// regression to a plain read-modify-write on either gauge surfaces as a
// detector report, not a silently shorn peak.

import (
	"context"
	"sync"
	"testing"
	"time"

	"syrep/internal/obs"
	"syrep/internal/resilience/faultinject"
)

// TestQueueHighWaterGauge holds the single worker mid-request, stacks three
// more requests, and expects the high-water mark to read exactly 3 — then
// checks it never regresses once the queue drains.
func TestQueueHighWaterGauge(t *testing.T) {
	faultinject.LeakCheck(t)
	o := obs.New(nil)
	gate := newGateHook()
	s := New(Config{
		Workers:      1,
		QueueDepth:   8,
		Obs:          o,
		Hook:         gate,
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	tickets := make([]*Ticket, 0, 4)
	tkt, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	tickets = append(tickets, tkt)
	<-gate.entered // the worker holds the first request; the queue is empty

	for i := 0; i < 3; i++ {
		tkt, err := s.Submit(synthRequest())
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tickets = append(tickets, tkt)
	}
	if hw := o.Snapshot().Gauge(MetricQueueHighWater); hw != 3 {
		t.Errorf("high water after stacking 3 = %d, want 3", hw)
	}

	close(gate.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, tkt := range tickets {
		if _, err := tkt.Wait(ctx); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}

	snap := o.Snapshot()
	if hw := snap.Gauge(MetricQueueHighWater); hw != 3 {
		t.Errorf("high water after drain = %d, want 3 (the mark must not regress)", hw)
	}
}

// TestQueueHighWaterConcurrent hammers Submit from many goroutines so the
// race detector exercises the SetMax compare-and-swap against concurrent
// Set calls; the mark must end within (0, QueueDepth] and at or above the
// last instantaneous depth.
func TestQueueHighWaterConcurrent(t *testing.T) {
	faultinject.LeakCheck(t)
	o := obs.New(nil)
	s := New(Config{
		Workers:      2,
		QueueDepth:   4,
		Obs:          o,
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	var (
		mu      sync.Mutex
		tickets []*Ticket
		wg      sync.WaitGroup
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tkt, err := s.Submit(synthRequest())
			if err != nil {
				return // queue-full shedding is expected under this load
			}
			mu.Lock()
			tickets = append(tickets, tkt)
			mu.Unlock()
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, tkt := range tickets {
		if _, err := tkt.Wait(ctx); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}

	snap := o.Snapshot()
	hw := snap.Gauge(MetricQueueHighWater)
	if hw < 1 || hw > 4 {
		t.Errorf("high water = %d, want within [1, QueueDepth=4]", hw)
	}
	if depth := snap.Gauge(MetricQueueDepth); depth > hw {
		t.Errorf("instantaneous depth %d exceeds high water %d", depth, hw)
	}
}
