package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/obs"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// swapHook is a resilience.Hook whose inner hook the test swaps between
// chaos phases (the server's Hook is fixed at construction).
type swapHook struct {
	mu    sync.Mutex
	inner resilience.Hook
}

func (h *swapHook) Set(inner resilience.Hook) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.inner = inner
}

func (h *swapHook) At(stage resilience.Stage) error {
	h.mu.Lock()
	inner := h.inner
	h.mu.Unlock()
	if inner == nil {
		return nil
	}
	return inner.At(stage)
}

// TestChaosTrichotomy drives the whole robustness story through one server,
// deterministically: a healthy soak, a transient fault retried and served,
// sustained faults tripping the breaker into degraded service, a failed
// half-open probe reopening it, and a successful probe closing it again.
// Throughout, every accepted request gets exactly one response and no
// goroutine leaks (the suite runs under -race via `make serve-test`).
func TestChaosTrichotomy(t *testing.T) {
	faultinject.LeakCheck(t)
	hook := &swapHook{}
	o := obs.New(nil)
	var responses atomic.Int64
	s := New(Config{
		Workers:      1, // serialize breaker bookkeeping for exact assertions
		QueueDepth:   16,
		Hook:         hook,
		RetryMax:     1,
		Breaker:      BreakerConfig{Threshold: 4, Cooldown: 50 * time.Millisecond, Probes: 1},
		Obs:          o,
		sleep:        func(context.Context, time.Duration) error { return nil },
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	accepted := 0
	do := func(label string) *Response {
		t.Helper()
		resp, err := s.Do(ctx, synthRequest())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		accepted++
		responses.Add(1)
		return resp
	}

	// Phase 1 — healthy soak: concurrent clean requests all succeed.
	var wg sync.WaitGroup
	var soakErr atomic.Value
	for i := 0; i < 8; i++ {
		tkt, err := s.Submit(synthRequest())
		if err != nil {
			t.Fatalf("soak submit %d: %v", i, err)
		}
		accepted++
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := tkt.Wait(ctx)
			if err != nil {
				soakErr.Store(err)
				return
			}
			responses.Add(1)
			if resp.Err != nil || !resp.Resilient {
				soakErr.Store(resp.Err)
			}
		}()
	}
	wg.Wait()
	if err := soakErr.Load(); err != nil {
		t.Fatalf("soak: %v", err)
	}
	if s.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker = %s after soak, want closed", s.Breaker().State())
	}

	// Phase 2 — transient: one memout, retried behind the scenes, served.
	hook.Set(faultinject.New(faultinject.Fault{
		Stage: resilience.StageHeuristic, Kind: faultinject.NodeLimit, Times: 1,
	}))
	resp := do("transient")
	if resp.Err != nil || resp.Retries != 1 || !resp.Resilient {
		t.Fatalf("transient phase: err=%v retries=%d resilient=%v, want a served retry",
			resp.Err, resp.Retries, resp.Resilient)
	}

	// Phase 3 — sustained faults: every attempt memouts. With RetryMax 1 each
	// request burns two attempts, so the 4-failure threshold trips inside the
	// second request; the third rides the degraded path.
	hook.Set(faultinject.New(faultinject.Fault{
		Stage: resilience.StageHeuristic, Kind: faultinject.NodeLimit,
	}))
	resp = do("sustained-1")
	if resp.Err == nil || !errors.Is(resp.Err, bdd.ErrNodeLimit) || resp.Degraded {
		t.Fatalf("sustained-1: err=%v degraded=%v, want a node-limit failure", resp.Err, resp.Degraded)
	}
	resp = do("sustained-2")
	if resp.Err == nil || resp.Degraded {
		t.Fatalf("sustained-2: err=%v degraded=%v, want the tripping failure", resp.Err, resp.Degraded)
	}
	if s.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %s after sustained faults, want open", s.Breaker().State())
	}
	resp = do("degraded")
	if !resp.Degraded || resp.Err != nil || resp.Routing == nil {
		t.Fatalf("degraded phase: degraded=%v err=%v, want a clean degraded table", resp.Degraded, resp.Err)
	}

	// Phase 4 — failed probe: the cooldown admits one half-open probe, the
	// fault is still there, and the breaker reopens; the same request then
	// falls back to the degraded path on its retry.
	time.Sleep(60 * time.Millisecond)
	resp = do("probe-fail")
	if !resp.Degraded {
		t.Fatalf("probe-fail: degraded=%v err=%v, want degraded fallback after the failed probe",
			resp.Degraded, resp.Err)
	}
	if s.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %s after failed probe, want open", s.Breaker().State())
	}

	// Phase 5 — recovery: the fault clears, the next probe succeeds, and the
	// breaker closes.
	hook.Set(nil)
	time.Sleep(60 * time.Millisecond)
	resp = do("recovery")
	if resp.Err != nil || resp.Degraded || !resp.Resilient {
		t.Fatalf("recovery: err=%v degraded=%v resilient=%v, want full service back",
			resp.Err, resp.Degraded, resp.Resilient)
	}
	if s.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker = %s after recovery, want closed", s.Breaker().State())
	}

	// The breaker walked exactly the scripted trajectory.
	want := []struct{ from, to BreakerState }{
		{BreakerClosed, BreakerOpen},     // sustained faults
		{BreakerOpen, BreakerHalfOpen},   // cooldown
		{BreakerHalfOpen, BreakerOpen},   // failed probe
		{BreakerOpen, BreakerHalfOpen},   // second cooldown
		{BreakerHalfOpen, BreakerClosed}, // successful probe
	}
	got := s.Breaker().Transitions()
	if len(got) != len(want) {
		t.Fatalf("breaker transitions = %v, want %d", got, len(want))
	}
	for i, w := range want {
		if got[i].From != w.from || got[i].To != w.to {
			t.Errorf("transition %d = %s->%s, want %s->%s", i, got[i].From, got[i].To, w.from, w.to)
		}
	}

	// Exactly one response per accepted request, and the books agree.
	if responses.Load() != int64(accepted) {
		t.Errorf("responses = %d, accepted = %d; a request was dropped or duplicated",
			responses.Load(), accepted)
	}
	if got := o.Counter(MetricResponses).Load(); got != int64(accepted) {
		t.Errorf("%s = %d, want %d", MetricResponses, got, accepted)
	}
	if got := o.Counter(MetricAccepted).Load(); got != int64(accepted) {
		t.Errorf("%s = %d, want %d", MetricAccepted, got, accepted)
	}
}

// TestChaosSeededFaultPlans soaks the server against the seeded fault-plan
// generator: whatever a plan does to the pipeline, every request gets
// exactly one response, the worker survives, and a clean follow-up request
// is served. Cancel-kind plans are remapped to hard errors (the server owns
// its request contexts; there is no external cancel to bind).
func TestChaosSeededFaultPlans(t *testing.T) {
	faultinject.LeakCheck(t)
	for seed := int64(1); seed <= 6; seed++ {
		f := faultinject.PlanFromSeed(seed)
		if f.Kind == faultinject.Cancel {
			f = faultinject.Fault{Stage: f.Stage, Kind: faultinject.Error, Times: f.Times}
		}
		hook := &swapHook{}
		hook.Set(faultinject.New(f))
		s := New(Config{
			Workers:      1,
			Hook:         hook,
			RetryMax:     1,
			sleep:        func(context.Context, time.Duration) error { return nil },
			DrainTimeout: 2 * time.Second,
		})

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		req := synthRequest()
		req.Strategy = resilience.Combined // reach every fault point
		resp, err := s.Do(ctx, req)
		if err != nil {
			t.Fatalf("seed %d: Do: %v", seed, err)
		}
		if resp.Err != nil && resp.Routing == nil && resp.Degraded {
			t.Errorf("seed %d: degraded response without a table", seed)
		}

		// The pool survived whatever the plan did: a clean request still works.
		hook.Set(nil)
		resp, err = s.Do(ctx, synthRequest())
		if err != nil || resp.Err != nil {
			t.Fatalf("seed %d: follow-up after fault: %v / %v", seed, err, resp.Err)
		}
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(sctx); err != nil {
			t.Fatalf("seed %d: shutdown: %v", seed, err)
		}
		scancel()
	}
}
