package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"syrep/internal/cache"
	"syrep/internal/obs"
	"syrep/internal/resilience/faultinject"
)

// postNDJSON posts body to url and decodes the NDJSON stream into lines.
func postNDJSON(t *testing.T, url, body string) (*http.Response, []apiBatchLine) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var lines []apiBatchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line apiBatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("decoding NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp, lines
}

// TestHTTPSynthesizeAll: the batch endpoint streams one line per
// destination plus a summary, every destination of the diamond is
// resilient, and the batch counters tick on /metrics.
func TestHTTPSynthesizeAll(t *testing.T) {
	faultinject.LeakCheck(t)
	o := obs.New(nil)
	_, ts := httpServer(t, Config{Workers: 2, Obs: o})

	body := fmt.Sprintf(`{"links":%s,"k":1,"routings":true}`, diamondLinks)
	resp, lines := postNDJSON(t, ts.URL+"/v1/synthesize-all", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if len(lines) != 5 { // 4 destinations + summary
		t.Fatalf("got %d lines, want 5: %+v", len(lines), lines)
	}
	seen := map[string]bool{}
	for _, line := range lines[:4] {
		if line.Status != "ok" || !line.Resilient {
			t.Errorf("dest %s: status=%s resilient=%v, want ok/true", line.Dest, line.Status, line.Resilient)
		}
		if line.Routing == nil {
			t.Errorf("dest %s: no routing despite routings:true", line.Dest)
		}
		seen[line.Dest] = true
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if !seen[name] {
			t.Errorf("no line for destination %q", name)
		}
	}
	sum := lines[4]
	if sum.Status != "done" || sum.Dests != 4 || sum.Ok != 4 || sum.Failed != 0 || sum.Rejected != 0 {
		t.Errorf("summary = %+v, want done/4 dests/4 ok", sum)
	}

	snap := o.Snapshot()
	if snap.Counter(obs.BatchRuns) != 1 {
		t.Errorf("%s = %d, want 1", obs.BatchRuns, snap.Counter(obs.BatchRuns))
	}
	if snap.Counter(obs.BatchDests) != 4 {
		t.Errorf("%s = %d, want 4", obs.BatchDests, snap.Counter(obs.BatchDests))
	}
}

// TestHTTPSynthesizeAllDests: an explicit destination subset, without
// routings, served through the synthesis cache — a second batch is all
// cache hits.
func TestHTTPSynthesizeAllDests(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{Workers: 2, Obs: obs.New(nil), Cache: cache.New(cache.Config{})})

	body := fmt.Sprintf(`{"links":%s,"k":1,"dests":["d","a"]}`, diamondLinks)
	_, lines := postNDJSON(t, ts.URL+"/v1/synthesize-all", body)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for _, line := range lines[:2] {
		if line.Routing != nil {
			t.Errorf("dest %s: routing included without routings:true", line.Dest)
		}
	}
	if sum := lines[2]; sum.Dests != 2 || sum.Ok != 2 {
		t.Errorf("summary = %+v, want 2 dests ok", sum)
	}

	_, warm := postNDJSON(t, ts.URL+"/v1/synthesize-all", body)
	if sum := warm[2]; sum.CacheHits != 2 {
		t.Errorf("warm summary = %+v, want 2 cache hits", sum)
	}
	for _, line := range warm[:2] {
		if !line.Cached {
			t.Errorf("warm dest %s: not served from cache", line.Dest)
		}
	}
}

// TestHTTPSynthesizeAllBadRequest pins the 400 paths: bad topology, unknown
// destination name.
func TestHTTPSynthesizeAllBadRequest(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{Workers: 1, Obs: obs.New(nil)})

	for name, body := range map[string]string{
		"missing topology": `{"k":1}`,
		"unknown dest":     fmt.Sprintf(`{"links":%s,"dests":["nope"]}`, diamondLinks),
	} {
		resp, err := http.Post(ts.URL+"/v1/synthesize-all", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestHTTPSynthesizeAllSheds: with a held worker and a tiny queue, shed
// destinations come back as per-destination "rejected" lines with a
// positive Retry-After — the batch itself still streams to its summary.
func TestHTTPSynthesizeAllSheds(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGateHook()
	s, ts := httpServer(t, Config{Workers: 1, QueueDepth: 1, Obs: obs.New(nil), Hook: gate})

	// Park the worker and fill the depth-1 queue so batch submissions shed.
	held, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-gate.entered
	queued, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	body := fmt.Sprintf(`{"links":%s,"k":1,"workers":1}`, diamondLinks)
	respCh := make(chan []apiBatchLine, 1)
	go func() {
		_, lines := postNDJSON(t, ts.URL+"/v1/synthesize-all", body)
		respCh <- lines
	}()
	lines := <-respCh
	close(gate.release)
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := held.Wait(wctx); err != nil {
		t.Fatalf("Wait(held): %v", err)
	}
	if _, err := queued.Wait(wctx); err != nil {
		t.Fatalf("Wait(queued): %v", err)
	}

	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	sum := lines[4]
	if sum.Status != "done" || sum.Rejected != 4 {
		t.Fatalf("summary = %+v, want 4 rejected", sum)
	}
	for _, line := range lines[:4] {
		if line.Status != "rejected" {
			t.Errorf("dest %s: status = %s, want rejected", line.Dest, line.Status)
		}
		if line.RetryAfterSec < 1 {
			t.Errorf("dest %s: RetryAfterSec = %d, want >= 1", line.Dest, line.RetryAfterSec)
		}
	}
}
