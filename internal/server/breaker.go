package server

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: the service is healthy; requests run the full pipeline.
	BreakerClosed BreakerState = iota
	// BreakerOpen: sustained transient failures (or memory pressure) tripped
	// the breaker; requests are served in degraded heuristic-only mode until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; a bounded number of probe
	// requests run the full pipeline. Enough successes close the breaker,
	// any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerConfig tunes the circuit breaker. Zero fields take the defaults.
type BreakerConfig struct {
	// Threshold is the number of consecutive transient failures (while
	// closed) that trips the breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes (default 5s).
	Cooldown time.Duration
	// Probes is both the number of concurrent full-pipeline probes admitted
	// while half-open and the number of successes required to close
	// (default 2).
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	return c
}

// BreakerTransition is one recorded state change, for tests and operators.
type BreakerTransition struct {
	From, To BreakerState
	At       time.Time
}

// maxTransitions bounds the retained transition history; a flapping breaker
// must not grow memory without bound.
const maxTransitions = 64

// Breaker is a deterministic three-state circuit breaker. All time is passed
// in by the caller, so tests drive it with a fake clock. It is safe for
// concurrent use.
//
// The breaker tracks *service health*, not instance solvability: only
// transient failures (resource exhaustion, budget expiry — see
// resilience.IsTransient) count as failures. A permanent error means the
// pipeline ran fine and the instance itself was the problem, so it counts
// as a success for breaker purposes.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive transient failures while closed
	openedAt  time.Time
	inflight  int // reserved half-open probe slots
	successes int // successful probes this half-open episode
	history   []BreakerTransition

	// onTransition, when non-nil, observes every state change under the
	// breaker lock; it must be fast and must not call back into the breaker.
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions returns the recorded state changes, oldest first (the history
// is truncated to the most recent maxTransitions entries).
func (b *Breaker) Transitions() []BreakerTransition {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BreakerTransition(nil), b.history...)
}

func (b *Breaker) transition(to BreakerState, now time.Time) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if len(b.history) == maxTransitions {
		b.history = append(b.history[:0], b.history[1:]...)
	}
	b.history = append(b.history, BreakerTransition{From: from, To: to, At: now})
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow reports whether a request may run the full pipeline now. While open
// it returns false (serve degraded) until the cooldown elapses, at which
// point the breaker moves to half-open and admits up to Probes concurrent
// probe requests; beyond the probe budget it again returns false. Every
// Allow(true) in half-open reserves a probe slot that the matching Record
// releases.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transition(BreakerHalfOpen, now)
		b.successes = 0
		b.inflight = 1
		return true
	default: // BreakerHalfOpen
		if b.inflight >= b.cfg.Probes {
			return false
		}
		b.inflight++
		return true
	}
}

// Record reports the outcome of a full-pipeline run admitted by Allow.
// Closed: a failure streak of Threshold trips the breaker. Half-open: any
// failure reopens it, Probes successes close it. Outcomes arriving after the
// state already moved on (a slow request finishing after a trip) are
// ignored.
func (b *Breaker) Record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.transition(BreakerOpen, now)
			b.openedAt = now
			b.failures = 0
		}
	case BreakerHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if !ok {
			b.transition(BreakerOpen, now)
			b.openedAt = now
			return
		}
		b.successes++
		if b.successes >= b.cfg.Probes {
			b.transition(BreakerClosed, now)
			b.failures = 0
		}
	case BreakerOpen:
		// Late result from before the trip; the cooldown clock rules.
	}
}

// Trip forces the breaker open regardless of state — the memory-pressure
// path. The cooldown restarts from now.
func (b *Breaker) Trip(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.transition(BreakerOpen, now)
	b.openedAt = now
	b.failures = 0
}
