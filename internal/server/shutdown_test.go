package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"syrep/internal/obs"
	"syrep/internal/resilience/faultinject"
)

// TestGracefulShutdown (satellite: graceful drain): in-flight requests run
// to completion, queued-but-unstarted requests get a clean retryable
// rejection, post-drain submissions are rejected immediately, and the
// metrics snapshot is flushed exactly once across repeated Shutdown calls.
func TestGracefulShutdown(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGateHook()
	var flushes atomic.Int64
	s := New(Config{
		Workers:      1,
		QueueDepth:   4,
		Hook:         gate,
		Obs:          obs.New(nil),
		OnFlush:      func(obs.Snapshot) { flushes.Add(1) },
		DrainTimeout: 5 * time.Second,
	})

	// A is in-flight (held at the gate); B and C queue behind it.
	tktA, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	<-gate.entered
	tktB, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}
	tktC, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit C: %v", err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	<-s.Draining()

	// New work is refused the moment the drain begins.
	if _, err := s.Submit(synthRequest()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: %v, want ErrDraining", err)
	}
	var rej *Rejection
	if _, err := s.Submit(synthRequest()); !errors.As(err, &rej) || rej.RetryAfter <= 0 {
		t.Fatalf("drain rejection %v must carry a Retry-After hint", err)
	}

	// Let the in-flight request finish normally.
	close(gate.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	respA, err := tktA.Wait(ctx)
	if err != nil {
		t.Fatalf("A: %v", err)
	}
	if respA.Err != nil || !respA.Resilient {
		t.Errorf("in-flight request A: err=%v resilient=%v, want a completed run", respA.Err, respA.Resilient)
	}
	for name, tkt := range map[string]*Ticket{"B": tktB, "C": tktC} {
		resp, err := tkt.Wait(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !errors.Is(resp.Err, ErrDraining) {
			t.Errorf("queued request %s: err=%v, want ErrDraining", name, resp.Err)
		}
		if !IsRetryable(resp.Err) {
			t.Errorf("queued request %s drained with a non-retryable error", name)
		}
		if resp.Routing != nil {
			t.Errorf("queued request %s drained with a table", name)
		}
	}

	// Repeated shutdowns are no-ops; the flush stays exactly once.
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("repeat Shutdown %d: %v", i, err)
		}
		cancel()
	}
	if got := flushes.Load(); got != 1 {
		t.Errorf("metrics flushed %d times, want exactly 1", got)
	}
}

// TestDrainDeadlineForceCancels: an in-flight request that outlives the
// drain deadline is force-cancelled with the typed ErrDraining cause — the
// caller sees "draining", not a bare context.Canceled — and the server still
// shuts down cleanly.
func TestDrainDeadlineForceCancels(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGateHook()
	var flushes atomic.Int64
	s := New(Config{
		Workers:      1,
		Hook:         gate,
		RetryMax:     -1,
		Obs:          obs.New(nil),
		OnFlush:      func(obs.Snapshot) { flushes.Add(1) },
		DrainTimeout: 50 * time.Millisecond,
	})

	tkt, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-gate.entered
	// The stage stays gated until the drain deadline force-cancels the base
	// context; the pipeline then discovers the cancellation itself.
	go func() {
		<-s.baseCtx.Done()
		close(gate.release)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	resp, err := tkt.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if resp.Err == nil {
		t.Fatal("force-cancelled request reported success")
	}
	if !errors.Is(resp.Err, context.Canceled) {
		t.Errorf("err = %v, want a cancellation", resp.Err)
	}
	if !errors.Is(resp.Err, ErrDraining) {
		t.Errorf("err = %v does not carry the ErrDraining cause", resp.Err)
	}
	if got := flushes.Load(); got != 1 {
		t.Errorf("metrics flushed %d times, want exactly 1", got)
	}
}
