package server

import (
	"context"

	"syrep/internal/cache"
	"syrep/internal/resilience"
)

// dispatch routes an accepted job through the synthesis cache when one is
// configured — lookup, singleflight dedup, and the warm-start repair fast
// path — and falls through to the plain execute loop otherwise.
func (s *Server) dispatch(j *job) *Response {
	if s.cfg.Cache == nil {
		return s.execute(j)
	}
	req := j.req
	switch {
	case req.Kind == KindSynthesize:
		return s.synthesizeCached(j)
	case req.Kind == KindRepair && req.Routing == nil:
		return s.repairWarm(j)
	default:
		// Repair of an explicit table: keyed by content we don't cache.
		return s.execute(j)
	}
}

// cacheKey derives the content-addressed cache key of a request: topology
// fingerprint, destination name, resilience level, and strategy.
func (s *Server) cacheKey(req *Request) cache.Key {
	strat := req.Strategy
	if strat == 0 {
		strat = resilience.Combined
	}
	return cache.Key{
		Topo:     req.Net.Fingerprint(),
		Dest:     req.Net.NodeName(req.Dest),
		K:        req.K,
		Strategy: strat.String(),
	}
}

// cacheable reports whether a response may be inserted: only clean, fully
// resilient pipeline results. Partial salvages, degraded tables, and
// failures must be recomputed, not replayed.
func cacheable(resp *Response) bool {
	return resp.Err == nil && resp.Resilient && !resp.Degraded && !resp.Partial && resp.Routing != nil
}

// synthesizeCached is the cached synthesis path: serve a hit without running
// the pipeline, collapse concurrent identical misses into one run via
// singleflight, and insert clean resilient results.
func (s *Server) synthesizeCached(j *job) *Response {
	c, req := s.cfg.Cache, j.req
	key := s.cacheKey(req)
	if e, ok := c.Get(key); ok {
		return &Response{Routing: e.Routing, Resilient: e.Resilient, Residual: e.Residual, Cached: true}
	}
	// The waiter's own budget still applies while it blocks on the leader.
	ctx, cancel := context.WithDeadline(s.baseCtx, j.deadline)
	defer cancel()
	v, shared, err := c.Do(ctx, key, func() (any, error) {
		return s.execute(j), nil
	})
	if err != nil {
		// Only waiters fail here (cancellation); the leader's errors travel
		// inside its Response.
		return &Response{Deduped: true, Err: err}
	}
	resp := v.(*Response)
	if shared {
		cp := *resp
		cp.Deduped = true
		if resp.Routing != nil {
			cp.Routing = resp.Routing.Clone()
		}
		return &cp
	}
	if cacheable(resp) {
		c.Put(key, &cache.Entry{Net: req.Net, Routing: resp.Routing, Resilient: true})
	}
	return resp
}

// repairWarm serves a dynamic-repair request (topology only, no table): find
// the nearest cached resilient base within the configured edge-diff, adapt
// it onto the submitted topology (entries over failed edges become holes),
// and run only the warm-start endgame — fill, repair if needed, final
// verification. Any miss or failure falls back to cold synthesis, which
// itself goes through the cached-synthesis path so the fresh result is
// stored for the next delta.
func (s *Server) repairWarm(j *job) *Response {
	c, req := s.cfg.Cache, j.req
	destName := req.Net.NodeName(req.Dest)
	if ent, _, ok := c.Nearest(req.Net, destName, req.K, s.cfg.WarmStartMaxDiff); ok {
		if resp := s.warmOnce(j, ent); resp != nil {
			c.NoteWarmHit()
			c.Put(s.cacheKey(req), &cache.Entry{Net: req.Net, Routing: resp.Routing, Resilient: true})
			return resp
		}
	}
	c.NoteWarmMiss()
	return s.synthesizeCached(j)
}

// warmOnce is one warm-start attempt; nil means "fall back to cold". The
// breaker and memory-pressure checks mirror execute's: a tripped breaker
// refuses the BDD fill the same way it refuses the full pipeline.
func (s *Server) warmOnce(j *job, ent *cache.Entry) *Response {
	req := j.req
	remaining := j.deadline.Sub(s.cfg.now())
	if remaining <= 0 {
		return nil
	}
	if s.cfg.MemoryPressure != nil && s.cfg.MemoryPressure() {
		s.breaker.Trip(s.cfg.now())
		s.cfg.Cache.Purge()
	}
	if !s.breaker.Allow(s.cfg.now()) {
		return nil
	}
	resp := s.fence(func() *Response {
		seed, err := cache.Adapt(ent, req.Net, req.K)
		if err != nil {
			return &Response{Err: err}
		}
		opts := resilience.Options{
			Strategy:      req.Strategy,
			Timeout:       remaining,
			Budgets:       req.Budgets,
			Obs:           s.cfg.Obs,
			Hook:          s.cfg.Hook,
			VerifyBackend: s.cfg.VerifyBackend,
		}
		r, rep, err := resilience.WarmStart(s.baseCtx, seed, req.K, opts)
		if err != nil {
			return &Response{Err: err}
		}
		return &Response{Routing: r, Resilient: true, Report: rep, WarmStart: true}
	})
	if resp.Err != nil || !resp.Resilient {
		// ErrUnsolvable (pinned entries admit no completion), a budget
		// expiry, or a panic: let the cold path settle the request.
		return nil
	}
	s.breaker.Record(true, s.cfg.now())
	return resp
}

// CacheStats returns the synthesis cache's stats and whether one is
// configured.
func (s *Server) CacheStats() (cache.Stats, bool) {
	if s.cfg.Cache == nil {
		return cache.Stats{}, false
	}
	return s.cfg.Cache.Stats(), true
}
