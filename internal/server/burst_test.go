package server

// burst_test.go pins Submit's load-shed accounting under a concurrent
// admission burst — the regression that motivated the pending counter. The
// old code read len(s.queue) after dropping the lock, so a worker dequeuing
// between the send and the read shore peaks off the high-water mark; with
// the queue full it could report a peak below QueueDepth even though the
// queue demonstrably filled. The pending counter makes the burst exact:
// with the single worker held, stacking cap(queue) jobs must read a peak of
// exactly cap(queue), every shed request must carry a positive Retry-After,
// and accepted + rejected must account for every submission.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"syrep/internal/obs"
	"syrep/internal/resilience/faultinject"
)

// TestSubmitBurstAccounting: 32 concurrent submitters against a held
// worker and a depth-4 queue. Exactly 4 are admitted, every rejection is a
// retryable queue-full with Retry-After > 0, and the high-water mark reads
// exactly 4 — not less (the shorn-peak bug) and not more (the counter
// never exceeds capacity).
func TestSubmitBurstAccounting(t *testing.T) {
	faultinject.LeakCheck(t)
	const depth = 4
	o := obs.New(nil)
	gate := newGateHook()
	s := New(Config{
		Workers:      1,
		QueueDepth:   depth,
		Obs:          o,
		Hook:         gate,
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	// Park the worker on a request so the burst sees a stable queue.
	held, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-gate.entered

	const burst = 32
	var (
		mu       sync.Mutex
		tickets  []*Ticket
		rejected []error
		start    = make(chan struct{})
		wg       sync.WaitGroup
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tkt, err := s.Submit(synthRequest())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rejected = append(rejected, err)
				return
			}
			tickets = append(tickets, tkt)
		}()
	}
	close(start)
	wg.Wait()

	if len(tickets) != depth {
		t.Fatalf("burst admitted %d requests, want exactly QueueDepth=%d", len(tickets), depth)
	}
	if len(rejected) != burst-depth {
		t.Fatalf("burst shed %d requests, want %d", len(rejected), burst-depth)
	}
	for _, err := range rejected {
		var rej *Rejection
		if !errors.As(err, &rej) {
			t.Fatalf("shed error %v is not a *Rejection", err)
		}
		if !errors.Is(rej.Reason, ErrQueueFull) {
			t.Errorf("rejection reason = %v, want ErrQueueFull", rej.Reason)
		}
		if rej.RetryAfter <= 0 {
			t.Errorf("rejection Retry-After = %v, want > 0", rej.RetryAfter)
		}
	}
	if hw := o.Snapshot().Gauge(MetricQueueHighWater); hw != depth {
		t.Errorf("high water after burst = %d, want exactly %d", hw, depth)
	}
	if ql := s.QueueLen(); ql != depth {
		t.Errorf("QueueLen after burst = %d, want %d", ql, depth)
	}

	snap := o.Snapshot()
	// held + the admitted burst; every submission is accounted somewhere.
	if got := snap.Counter(MetricAccepted); got != depth+1 {
		t.Errorf("accepted = %d, want %d", got, depth+1)
	}
	if got := snap.Counter(MetricRejected); got != burst-depth {
		t.Errorf("rejected = %d, want %d", got, burst-depth)
	}

	close(gate.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := held.Wait(ctx); err != nil {
		t.Fatalf("Wait(held): %v", err)
	}
	for i, tkt := range tickets {
		if _, err := tkt.Wait(ctx); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}

	snap = o.Snapshot()
	if hw := snap.Gauge(MetricQueueHighWater); hw != depth {
		t.Errorf("high water after drain = %d, want %d (the mark must not regress)", hw, depth)
	}
	if d := snap.Gauge(MetricQueueDepth); d != 0 {
		t.Errorf("queue depth after drain = %d, want 0", d)
	}
	if ql := s.QueueLen(); ql != 0 {
		t.Errorf("QueueLen after drain = %d, want 0", ql)
	}
}

// TestSubmitBurstRepeated re-runs admission bursts against live workers so
// the race detector sees Submit's increment racing worker decrements, and
// checks the admission arithmetic never drifts: at every quiescent point
// accepted - responses == pending == 0.
func TestSubmitBurstRepeated(t *testing.T) {
	faultinject.LeakCheck(t)
	o := obs.New(nil)
	s := New(Config{
		Workers:      2,
		QueueDepth:   4,
		Obs:          o,
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var admitted atomic.Int64
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		var tickets sync.Map
		for i := 0; i < 12; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tkt, err := s.Submit(synthRequest())
				if err != nil {
					var rej *Rejection
					if !errors.As(err, &rej) || rej.RetryAfter <= 0 {
						t.Errorf("bad rejection under burst: %v", err)
					}
					return
				}
				admitted.Add(1)
				tickets.Store(i, tkt)
			}(i)
		}
		wg.Wait()
		tickets.Range(func(_, v any) bool {
			_, err := v.(*Ticket).Wait(ctx)
			if err != nil {
				t.Fatalf("Wait: %v", err)
			}
			return true
		})
		if ql := s.QueueLen(); ql != 0 {
			t.Fatalf("round %d: QueueLen = %d at quiescence, want 0", round, ql)
		}
	}
	snap := o.Snapshot()
	if acc := snap.Counter(MetricAccepted); acc != admitted.Load() {
		t.Errorf("accepted counter %d != admissions observed %d", acc, admitted.Load())
	}
	if hw := snap.Gauge(MetricQueueHighWater); hw < 1 || hw > 4 {
		t.Errorf("high water = %d, want within [1, QueueDepth=4]", hw)
	}
}
