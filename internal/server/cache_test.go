package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"syrep/internal/cache"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// ringLinks is a 5-node cycle plus two chords: 2-connected, so any single
// link can fail without disconnecting it, and small enough that synthesis is
// instant.
var ringLinks = `[["a","b"],["b","c"],["c","d"],["d","e"],["e","a"],["a","c"],["b","d"]]`

// ringLinksWithout drops the one link between u and v.
func ringLinksWithout(t *testing.T, u, v string) string {
	t.Helper()
	var links [][2]string
	if err := json.Unmarshal([]byte(ringLinks), &links); err != nil {
		t.Fatal(err)
	}
	var out [][2]string
	for _, l := range links {
		if l[0] == u && l[1] == v || l[0] == v && l[1] == u {
			continue
		}
		out = append(out, l)
	}
	if len(out) != len(links)-1 {
		t.Fatalf("no %s-%s link in ringLinks", u, v)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func cachedServer(t *testing.T, cfg Config) (*Server, *cache.Cache) {
	t.Helper()
	c := cache.New(cache.Config{Obs: cfg.Obs})
	cfg.Cache = c
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	s := New(cfg)
	t.Cleanup(func() { shutdownServer(t, s) })
	return s, c
}

// TestCacheHit: the second identical synthesis is served from the cache
// without a pipeline run, and the verdict matches the first response.
func TestCacheHit(t *testing.T) {
	faultinject.LeakCheck(t)
	s, c := cachedServer(t, Config{Workers: 2})
	ctx := context.Background()
	req := func() *Request {
		r, err := buildRequest(KindSynthesize, &apiRequest{Links: mustLinks(t, ringLinks), Dest: "a"})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	first, err := s.Do(ctx, req())
	if err != nil || first.Err != nil {
		t.Fatalf("first request: %v / %v", err, first.Err)
	}
	if first.Cached || !first.Resilient {
		t.Fatalf("first response = %+v, want a cold resilient table", first)
	}
	second, err := s.Do(ctx, req())
	if err != nil || second.Err != nil {
		t.Fatalf("second request: %v / %v", err, second.Err)
	}
	if !second.Cached || !second.Resilient {
		t.Errorf("second response cached=%v resilient=%v, want a cache hit", second.Cached, second.Resilient)
	}
	if !second.Routing.Equal(first.Routing) {
		t.Error("cache served a different table than it stored")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit and 1 entry", st)
	}
}

// mustLinks parses a link-list literal.
func mustLinks(t *testing.T, s string) [][2]string {
	t.Helper()
	var links [][2]string
	if err := json.Unmarshal([]byte(s), &links); err != nil {
		t.Fatal(err)
	}
	return links
}

// TestCacheDedup: concurrent identical synthesize requests collapse into one
// pipeline run; the followers come back flagged Deduped with an equal table.
// The shared gateHook holds the leader mid-pipeline while the followers
// attach to its flight.
func TestCacheDedup(t *testing.T) {
	faultinject.LeakCheck(t)
	hook := newGateHook()
	s, c := cachedServer(t, Config{Workers: 4, Hook: hook})
	ctx := context.Background()

	build := func() *Request {
		r, err := buildRequest(KindSynthesize, &apiRequest{Links: mustLinks(t, ringLinks), Dest: "a"})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	responses := make([]*Response, 3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := s.Do(ctx, build())
		if err != nil {
			t.Error(err)
		}
		responses[0] = resp
	}()
	<-hook.entered
	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Do(ctx, build())
			if err != nil {
				t.Error(err)
			}
			responses[i] = resp
		}()
	}
	for c.Stats().Dedups < 2 {
		time.Sleep(time.Millisecond)
	}
	close(hook.release)
	wg.Wait()

	deduped := 0
	for i, resp := range responses {
		if resp == nil || resp.Err != nil {
			t.Fatalf("response %d failed: %+v", i, resp)
		}
		if !resp.Resilient {
			t.Errorf("response %d not resilient", i)
		}
		if resp.Deduped {
			deduped++
			if !resp.Routing.Equal(responses[0].Routing) {
				t.Errorf("deduped response %d differs from the leader's table", i)
			}
		}
	}
	if deduped != 2 {
		t.Errorf("%d responses deduped, want 2", deduped)
	}
	if st := c.Stats(); st.Dedups != 2 {
		t.Errorf("dedups = %d, want 2", st.Dedups)
	}
}

// TestWarmStartHTTP is the end-to-end walkthrough: synthesize a base over
// HTTP, then submit a repair for the same topology minus a link WITHOUT a
// routing table; the warm-start fast path must answer with a resilient
// table, and /v1/cache must account the warm hit.
func TestWarmStartHTTP(t *testing.T) {
	faultinject.LeakCheck(t)
	c := cache.New(cache.Config{})
	_, ts := httpServer(t, Config{Workers: 2, Cache: c})

	body := fmt.Sprintf(`{"links":%s,"dest":"a","k":1}`, ringLinks)
	resp, api := postJSON(t, ts.URL+"/v1/synthesize", body)
	if resp.StatusCode != http.StatusOK || !api.Resilient {
		t.Fatalf("base synthesis: %d %+v", resp.StatusCode, api)
	}

	body = fmt.Sprintf(`{"links":%s,"dest":"a","k":1}`, ringLinksWithout(t, "b", "c"))
	resp, api = postJSON(t, ts.URL+"/v1/repair", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dynamic repair: %d %s", resp.StatusCode, api.Error)
	}
	if !api.WarmStart || !api.Resilient || api.Routing == nil {
		t.Fatalf("dynamic repair = %+v, want a warm-start resilient table", api)
	}

	r, err := http.Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats cache.Stats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.WarmHits != 1 {
		t.Errorf("warm hits = %d, want 1", stats.WarmHits)
	}
	if stats.Entries != 2 { // the base and the warm-start result
		t.Errorf("entries = %d, want 2", stats.Entries)
	}

	// Novel topology, nothing cached near it: cold fallback, flagged as a
	// warm miss, still served.
	body = `{"links":[["x","y"],["y","z"],["z","x"]],"dest":"x","k":1}`
	resp, api = postJSON(t, ts.URL+"/v1/repair", body)
	if resp.StatusCode != http.StatusOK || api.WarmStart {
		t.Fatalf("cold fallback: %d %+v", resp.StatusCode, api)
	}
	if !api.Resilient {
		t.Error("cold fallback should still produce a resilient table")
	}
}

// TestCacheEndpointWithoutCache: /v1/cache 404s when no cache is configured.
func TestCacheEndpointWithoutCache(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{Workers: 1})
	r, err := http.Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/cache = %d without a cache, want 404", r.StatusCode)
	}
}

// TestMemoryPressurePurgesCache: a tripped memory-pressure probe flushes the
// synthesis cache along with tripping the breaker.
func TestMemoryPressurePurgesCache(t *testing.T) {
	faultinject.LeakCheck(t)
	s, c := cachedServer(t, Config{Workers: 1, MemoryPressure: func() bool { return true }})
	ctx := context.Background()

	req, err := buildRequest(KindSynthesize, &apiRequest{Links: mustLinks(t, ringLinks), Dest: "a"})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-seed an entry so the purge is observable.
	key := s.cacheKey(req)
	e, _ := buildRequest(KindSynthesize, &apiRequest{Links: mustLinks(t, ringLinks), Dest: "a"})
	warm, rep, serr := resilience.Synthesize(ctx, e.Net, e.Dest, e.K, resilience.Options{Timeout: 10 * time.Second})
	if serr != nil || rep == nil {
		t.Fatalf("seeding synthesis: %v", serr)
	}
	c.Put(key, &cache.Entry{Net: e.Net, Routing: warm, Resilient: true})

	// A different request (other dest) misses the cache and reaches the
	// pressure check, which must purge.
	req2, err := buildRequest(KindSynthesize, &apiRequest{Links: mustLinks(t, ringLinks), Dest: "b"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Errorf("response under memory pressure = %+v, want degraded", resp)
	}
	if got := c.Len(); got != 0 {
		t.Errorf("cache holds %d entries after a memory-pressure trip, want 0", got)
	}
}
