package server

import (
	"testing"
	"time"

	"syrep/internal/retry"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time                    { return c.t }
func (c *fakeClock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

func wantState(t *testing.T, b *Breaker, want BreakerState) {
	t.Helper()
	if got := b.State(); got != want {
		t.Fatalf("breaker state = %s, want %s", got, want)
	}
}

// TestBreakerTripAndRecover walks the full deterministic state machine:
// consecutive transient failures trip it, the cooldown gates half-open,
// probe successes close it.
func TestBreakerTripAndRecover(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute, Probes: 2})

	// Interleaved successes keep resetting the failure streak.
	for i := 0; i < 9; i++ {
		b.Record(i%3 == 2, clk.now()) // fail, fail, ok, fail, fail, ok, ...
	}
	wantState(t, b, BreakerClosed)

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if !b.Allow(clk.now()) {
			t.Fatal("closed breaker refused a request")
		}
		b.Record(false, clk.now())
	}
	wantState(t, b, BreakerOpen)

	// Open: refuse until the cooldown elapses.
	if b.Allow(clk.advance(59 * time.Second)) {
		t.Fatal("open breaker allowed a request before the cooldown")
	}
	// Cooldown elapsed: the first Allow moves to half-open and is a probe.
	if !b.Allow(clk.advance(2 * time.Second)) {
		t.Fatal("breaker refused the first half-open probe")
	}
	wantState(t, b, BreakerHalfOpen)
	// The probe budget is 2: one more is admitted, a third refused.
	if !b.Allow(clk.now()) {
		t.Fatal("breaker refused the second half-open probe")
	}
	if b.Allow(clk.now()) {
		t.Fatal("breaker exceeded its half-open probe budget")
	}
	// Both probes succeed: closed.
	b.Record(true, clk.now())
	b.Record(true, clk.now())
	wantState(t, b, BreakerClosed)

	want := []struct{ from, to BreakerState }{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	got := b.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %d entries", got, len(want))
	}
	for i, w := range want {
		if got[i].From != w.from || got[i].To != w.to {
			t.Errorf("transition %d = %s->%s, want %s->%s", i, got[i].From, got[i].To, w.from, w.to)
		}
	}
}

// TestBreakerHalfOpenFailureReopens: any failed probe reopens the breaker
// and restarts the cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute, Probes: 2})
	b.Record(false, clk.now())
	wantState(t, b, BreakerOpen)
	if !b.Allow(clk.advance(time.Minute)) {
		t.Fatal("breaker refused a probe after the cooldown")
	}
	b.Record(false, clk.now())
	wantState(t, b, BreakerOpen)
	// The cooldown restarted at the failed probe.
	if b.Allow(clk.advance(30 * time.Second)) {
		t.Fatal("reopened breaker allowed a request half way into the fresh cooldown")
	}
	if !b.Allow(clk.advance(31 * time.Second)) {
		t.Fatal("breaker refused a probe after the fresh cooldown")
	}
}

// TestBreakerTrip: the memory-pressure path forces open from any state.
func TestBreakerTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 100, Cooldown: time.Minute, Probes: 1})
	wantState(t, b, BreakerClosed)
	b.Trip(clk.now())
	wantState(t, b, BreakerOpen)
	// Tripping again while open restarts the cooldown.
	clk.advance(50 * time.Second)
	b.Trip(clk.now())
	if b.Allow(clk.advance(30 * time.Second)) {
		t.Fatal("re-tripped breaker allowed a request inside the restarted cooldown")
	}
}

// TestBreakerLateResultIgnored: an outcome recorded after the breaker moved
// on (a slow request finishing after a trip) must not corrupt the state.
func TestBreakerLateResultIgnored(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute, Probes: 1})
	b.Record(false, clk.now())
	wantState(t, b, BreakerOpen)
	b.Record(true, clk.now()) // late success from before the trip
	wantState(t, b, BreakerOpen)
}

// TestBreakerHistoryBounded: a flapping breaker must not grow its history
// without bound.
func TestBreakerHistoryBounded(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond, Probes: 1})
	for i := 0; i < 10*maxTransitions; i++ {
		b.Record(false, clk.now())        // trip
		b.Allow(clk.advance(time.Second)) // half-open
		b.Record(true, clk.now())         // close
	}
	if n := len(b.Transitions()); n > maxTransitions {
		t.Errorf("history length = %d, want <= %d", n, maxTransitions)
	}
}

// TestBackoffFullJitter pins the server's retry schedule to the shared
// helper's contract: delays uniform in [0, min(cap, base*2^n)) and
// reproducible from the seed (the full table test lives in internal/retry).
func TestBackoffFullJitter(t *testing.T) {
	const base, cap = 10 * time.Millisecond, 80 * time.Millisecond
	a := retry.New(base, cap, 7)
	ceil := []time.Duration{base, 2 * base, 4 * base, cap, cap, cap}
	var delays []time.Duration
	for attempt, c := range ceil {
		d := a.Delay(attempt)
		if d < 0 || d >= c {
			t.Errorf("Delay(%d) = %s, want in [0, %s)", attempt, d, c)
		}
		delays = append(delays, d)
	}
	// Same seed, same sequence.
	b := retry.New(base, cap, 7)
	for attempt, want := range delays {
		if got := b.Delay(attempt); got != want {
			t.Errorf("seeded replay diverged at attempt %d: %s != %s", attempt, got, want)
		}
	}
}
