package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"syrep/internal/resilience"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// countingBackend proves Config.VerifyBackend reaches the supervisor runs.
type countingBackend struct {
	calls atomic.Int64
}

func (c *countingBackend) Name() string { return "counting" }

func (c *countingBackend) Check(ctx context.Context, r *routing.Routing, k int, opts verify.Options) (*verify.Report, error) {
	c.calls.Add(1)
	return verify.Check(ctx, r, k, opts)
}

// TestConfigVerifyBackendThreaded: a synthesize request on a server with a
// configured backend must route at least one verification pass through it
// (strategies with a final safety-net verify always run one).
func TestConfigVerifyBackendThreaded(t *testing.T) {
	cb := &countingBackend{}
	s := New(Config{Workers: 1, VerifyBackend: cb, DrainTimeout: 2 * time.Second})
	defer shutdownServer(t, s)

	req := synthRequest()
	req.Strategy = resilience.Combined
	tkt, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := tkt.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if resp.Err != nil {
		t.Fatalf("response error: %v", resp.Err)
	}
	if !resp.Resilient {
		t.Error("synthesis did not settle resilient")
	}
	if cb.calls.Load() < 1 {
		t.Error("configured VerifyBackend was never consulted")
	}
}
