package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"syrep/internal/obs"
	"syrep/internal/papernet"
	"syrep/internal/resilience/faultinject"
)

// diamondLinks is a 4-node inline topology (two disjoint a→d paths plus a
// chord), 1-resilient for destination d.
var diamondLinks = `[["a","b"],["b","d"],["a","c"],["c","d"],["a","d"]]`

func postJSON(t *testing.T, url, body string) (*http.Response, apiResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var api apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&api); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, api
}

func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdownServer(t, s)
	})
	return s, ts
}

// TestHTTPSynthesize: the end-to-end happy path over the wire — an inline
// topology in, a resilient routing table out, liveness and readiness green,
// and the request visible on /metrics.
func TestHTTPSynthesize(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{Workers: 2, Obs: obs.New(nil)})

	body := fmt.Sprintf(`{"links":%s,"dest":"d","k":1}`, diamondLinks)
	resp, api := postJSON(t, ts.URL+"/v1/synthesize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", resp.StatusCode, api.Error)
	}
	if api.Status != "ok" || !api.Resilient || api.Routing == nil {
		t.Fatalf("response = %+v, want an ok resilient table", api)
	}
	if api.Degraded {
		t.Error("healthy request flagged degraded")
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, r.StatusCode)
		}
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(r.Body)
	r.Body.Close()
	text := buf.String()
	for _, metric := range []string{MetricAccepted, MetricResponses, MetricQueueDepth, MetricBreakerState} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
	if !strings.Contains(text, MetricAccepted+" 1") {
		t.Errorf("/metrics does not count the accepted request:\n%s", text)
	}
}

// TestHTTPRepairRoundtrip: a routing table serialized with the routing codec
// travels through /v1/repair and comes back 2-resilient.
func TestHTTPRepairRoundtrip(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{Workers: 2})

	n := papernet.Figure1()
	raw, err := json.Marshal(papernet.Figure1bRouting(n))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Figure 1's topology as inline links, nodes named as in the paper.
	links := `[["v2","d"],["v3","d"],["v4","d"],["v1","v3"],["v1","v4"],["v2","v4"],["v3","v4"]]`
	body := fmt.Sprintf(`{"links":%s,"dest":"d","k":2,"routing":%s}`, links, raw)
	resp, api := postJSON(t, ts.URL+"/v1/repair", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", resp.StatusCode, api.Error)
	}
	if api.Status != "ok" || !api.Resilient || api.Routing == nil {
		t.Fatalf("response = %+v, want a repaired 2-resilient table", api)
	}
}

// TestHTTPBadRequests: malformed bodies are 400s with a reason, before any
// queueing.
func TestHTTPBadRequests(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{Workers: 1})

	cases := []struct{ name, path, body string }{
		{"not json", "/v1/synthesize", `{"links":`},
		{"no topology", "/v1/synthesize", `{"k":1}`},
		{"both topologies", "/v1/synthesize", fmt.Sprintf(`{"topology":"x","links":%s}`, diamondLinks)},
		{"unknown embedded", "/v1/synthesize", `{"topology":"no-such-zoo"}`},
		{"unknown dest", "/v1/synthesize", fmt.Sprintf(`{"links":%s,"dest":"zz"}`, diamondLinks)},
		{"negative k", "/v1/synthesize", fmt.Sprintf(`{"links":%s,"k":-1}`, diamondLinks)},
		{"unknown strategy", "/v1/synthesize", fmt.Sprintf(`{"links":%s,"strategy":"psychic"}`, diamondLinks)},
		// Repair WITHOUT a routing is valid since the warm-start fast path
		// (dynamic repair); a malformed routing is still a 400.
		{"repair with bad routing", "/v1/repair", fmt.Sprintf(`{"links":%s,"routing":42}`, diamondLinks)},
	}
	for _, tc := range cases {
		resp, api := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		if api.Error == "" {
			t.Errorf("%s: 400 without a reason", tc.name)
		}
	}
}

// TestHTTPLoadShedding: with the only worker held and the queue full, a new
// request is shed as 503 with a Retry-After header, and /readyz goes red
// while the breaker recovers traffic routing upstream.
func TestHTTPLoadShedding(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGateHook()
	s, ts := httpServer(t, Config{
		Workers:        1,
		QueueDepth:     1,
		HighWater:      1,
		Hook:           gate,
		RetryAfterHint: 2 * time.Second,
	})

	// Hold the worker and fill the queue through the native API.
	tktA, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	<-gate.entered
	tktB, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}

	resp, api := postJSON(t, ts.URL+"/v1/synthesize",
		fmt.Sprintf(`{"links":%s,"dest":"d","k":1}`, diamondLinks))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", resp.Header.Get("Retry-After"))
	}
	if api.Status != "error" || !strings.Contains(api.Error, "queue full") {
		t.Errorf("shed body = %+v, want a queue-full error", api)
	}

	// The queue sits at its high-water mark: not ready.
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz under load = %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("/readyz 503 without Retry-After")
	}

	close(gate.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tkt := range []*Ticket{tktA, tktB} {
		if _, err := tkt.Wait(ctx); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
}

// TestHTTPReadyzBreakerOpen: an open breaker makes the service not-ready and
// reports its state in the body.
func TestHTTPReadyzBreakerOpen(t *testing.T) {
	faultinject.LeakCheck(t)
	s, ts := httpServer(t, Config{Workers: 1})

	s.Breaker().Trip(time.Now())
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with open breaker = %d, want 503", r.StatusCode)
	}
	var body struct {
		Ready   bool   `json:"ready"`
		Breaker string `json:"breaker"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		t.Fatalf("decoding /readyz: %v", err)
	}
	if body.Ready || body.Breaker != "open" {
		t.Errorf("/readyz body = %+v, want ready=false breaker=open", body)
	}
}

// TestHTTPDegradedResponse: with the breaker forced open (memory pressure),
// the wire response is a 200 explicitly marked degraded — clients get a
// usable best-effort table plus an honest flag, not an opaque failure.
func TestHTTPDegradedResponse(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{
		Workers:        1,
		MemoryPressure: func() bool { return true },
	})

	resp, api := postJSON(t, ts.URL+"/v1/synthesize",
		fmt.Sprintf(`{"links":%s,"dest":"d","k":1}`, diamondLinks))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status = %d (%s), want 200", resp.StatusCode, api.Error)
	}
	if api.Status != "degraded" || !api.Degraded {
		t.Errorf("response = %+v, want status=degraded with the flag set", api)
	}
	if api.Routing == nil {
		t.Error("degraded response without a table")
	}
}

// TestHTTPTopologies: the embedded topology catalogue is listed for clients.
func TestHTTPTopologies(t *testing.T) {
	faultinject.LeakCheck(t)
	_, ts := httpServer(t, Config{Workers: 1})

	r, err := http.Get(ts.URL + "/v1/topologies")
	if err != nil {
		t.Fatalf("GET /v1/topologies: %v", err)
	}
	defer r.Body.Close()
	var out []struct {
		Name  string `json:"name"`
		Nodes int    `json:"nodes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no embedded topologies listed")
	}
	for _, topo := range out {
		if topo.Name == "" || topo.Nodes <= 0 {
			t.Errorf("implausible catalogue entry %+v", topo)
		}
	}
}
