package server

import (
	"math/rand"
	"sync"
	"time"
)

// backoff computes retry delays with exponential growth and full jitter
// (delay = uniform[0, min(cap, base·2^attempt))), the policy that spreads
// retry storms thinnest for a loaded service. The RNG is seeded, so a
// server's delay sequence is reproducible from its configuration — the same
// property the fault-injection harness relies on everywhere else.
type backoff struct {
	base, cap time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(base, cap time.Duration, seed int64) *backoff {
	if seed == 0 {
		seed = 1
	}
	return &backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// delay returns the full-jitter delay for the given zero-based attempt.
func (b *backoff) delay(attempt int) time.Duration {
	ceil := b.base
	for i := 0; i < attempt && ceil < b.cap; i++ {
		ceil *= 2
	}
	if ceil > b.cap {
		ceil = b.cap
	}
	if ceil <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Int63n(int64(ceil)))
}
