// Package server is the long-running, concurrent synthesis/repair service
// around the anytime supervisor (internal/resilience). A one-shot CLI run
// can afford to die on the first memout; a service absorbing thousands of
// requests cannot, so the server adds the machinery the supervisor itself
// deliberately leaves to its caller:
//
//   - admission control: a bounded queue feeding a fixed worker pool, with
//     load shedding (typed, retryable rejections carrying a Retry-After
//     hint) when requests arrive faster than BDD encoding can absorb them;
//   - deadline propagation: each request's budget is fixed at admission and
//     shrinks while it queues, so the supervisor's stage budgets always
//     split the time actually remaining, and a request that expires in the
//     queue is rejected without wasting a worker;
//   - retry with exponential backoff and full jitter for failures the
//     supervisor classifies as transient (resilience.IsTransient); permanent
//     errors fail fast;
//   - a circuit breaker that, under sustained transient failures or memory
//     pressure, trips the service into a degraded heuristic-only mode (no
//     BDD repair; best-effort tables flagged as degraded) with half-open
//     probes to recover;
//   - graceful drain: shutdown stops admitting, lets in-flight work finish
//     under a drain deadline, force-cancels stragglers with a typed cause,
//     gives queued-but-unstarted requests a clean retryable rejection, and
//     flushes the observability snapshot exactly once.
//
// Every accepted request receives exactly one Response; the chaos/soak test
// drives the whole trichotomy (retry, degrade, recover) with the seeded
// fault-injection harness under the race detector.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syrep/internal/cache"
	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/resilience"
	"syrep/internal/retry"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

// Canonical server metric names, registered in the configured observer and
// exported next to the pipeline's own counters on /metrics.
const (
	MetricAccepted   = "syrep_server_accepted_total"
	MetricRejected   = "syrep_server_rejected_total"
	MetricResponses  = "syrep_server_responses_total"
	MetricRetries    = "syrep_server_retries_total"
	MetricDegraded   = "syrep_server_degraded_total"
	MetricPanics     = "syrep_server_panics_total"
	MetricQueueDepth = "syrep_server_queue_depth"
	// MetricQueueHighWater is the peak queue depth observed since start —
	// a monotone high-water mark (Gauge.SetMax), updated atomically at
	// admission so concurrent Submits never regress it. The instantaneous
	// MetricQueueDepth answers "how loaded is the queue now"; this one
	// answers "how close did the queue ever get to QueueDepth", the
	// capacity-planning signal /readyz thresholds are tuned against.
	MetricQueueHighWater = "syrep_server_queue_high_water"
	MetricBreakerState   = "syrep_server_breaker_state"
)

// ErrQueueFull rejects a request when the admission queue is at capacity.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrDraining rejects a request during graceful shutdown. It is also the
// cancellation cause installed on in-flight work force-cancelled at the
// drain deadline.
var ErrDraining = errors.New("server: draining, not admitting requests")

// Rejection is the typed admission failure: the request was not accepted
// (or was accepted but drained unstarted) and should be retried elsewhere
// or after RetryAfter. It unwraps to its Reason (ErrQueueFull or
// ErrDraining).
type Rejection struct {
	// Reason is ErrQueueFull or ErrDraining.
	Reason error
	// RetryAfter is the suggested resubmission delay.
	RetryAfter time.Duration
}

// Error describes the rejection.
func (r *Rejection) Error() string {
	return fmt.Sprintf("%v (retry after %s)", r.Reason, r.RetryAfter)
}

// Unwrap exposes the rejection reason to errors.Is.
func (r *Rejection) Unwrap() error { return r.Reason }

// IsRetryable reports whether err signals a failure worth resubmitting:
// an admission rejection or a failure the supervisor classifies as
// transient.
func IsRetryable(err error) bool {
	var rej *Rejection
	return errors.As(err, &rej) || resilience.IsTransient(err)
}

// Kind selects the operation a Request performs.
type Kind int

const (
	// KindSynthesize runs resilience.Synthesize on Net/Dest.
	KindSynthesize Kind = iota + 1
	// KindRepair runs resilience.Repair on Routing.
	KindRepair
)

func (k Kind) String() string {
	switch k {
	case KindSynthesize:
		return "synthesize"
	case KindRepair:
		return "repair"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is one unit of admitted work.
type Request struct {
	// Kind selects synthesis or repair.
	Kind Kind
	// Net and Dest are the synthesis instance (KindSynthesize).
	Net  *network.Network
	Dest network.NodeID
	// Routing is the table to fortify (KindRepair).
	Routing *routing.Routing
	// K is the resilience level.
	K int
	// Strategy defaults to Combined.
	Strategy resilience.Strategy
	// Timeout bounds the request end to end — queueing, every retry, and
	// the supervisor run inside each attempt all share it. Zero takes the
	// server's DefaultTimeout; values above MaxTimeout are clamped.
	Timeout time.Duration
	// Budgets optionally overrides the supervisor's per-stage budget split.
	Budgets resilience.Budgets
	// Shared, when non-nil, supplies batch-scoped resources (the
	// destination-independent reduction candidates and a warm BDD manager
	// pool) to this request's pipeline run. The all-destinations handler
	// sets it so N requests over one topology don't pay N full encodings.
	Shared *resilience.SharedResources
}

// Response is the single reply every accepted request receives.
type Response struct {
	// Routing is the produced table: fully resilient on success, the best
	// checkpointed table on a partial salvage, a heuristic-only table in
	// degraded mode, nil on outright failure.
	Routing *routing.Routing
	// Resilient reports that Routing is perfectly K-resilient.
	Resilient bool
	// Residual counts Routing's known failing deliveries when not
	// resilient (meaningless when ResidualUnknown).
	Residual int
	// ResidualUnknown: no verification pass over Routing completed.
	ResidualUnknown bool
	// Partial: the supervisor salvaged Routing from a checkpoint after the
	// run was cut short.
	Partial bool
	// Degraded: the breaker was open and the request was served by the
	// heuristic-only degraded path (no BDD repair).
	Degraded bool
	// Retries counts the additional full-pipeline attempts after the first.
	Retries int
	// Cached: served straight from the synthesis cache, no pipeline run.
	Cached bool
	// Deduped: a concurrent identical request was in flight; this response
	// shares its result, costing no extra pipeline run.
	Deduped bool
	// WarmStart: a dynamic-repair request served by the warm-start fast
	// path — a cached table adapted onto the submitted topology and
	// fortified, skipping the early pipeline stages.
	WarmStart bool
	// Report is the supervisor's run report of the final attempt
	// (KindSynthesize only; nil in degraded mode).
	Report *resilience.Report
	// Err is the terminal error: nil on success and in degraded mode.
	// A Partial salvage keeps the supervisor's typed error here alongside
	// the salvaged Routing.
	Err error
}

// Config tunes a Server. Zero fields take the documented defaults.
type Config struct {
	// Workers is the fixed worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers).
	QueueDepth int
	// HighWater is the queue length at and above which /readyz reports
	// not-ready, shedding load before the queue hard-rejects
	// (default QueueDepth/2, rounded up).
	HighWater int
	// DefaultTimeout applies to requests that name none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps requested timeouts (default 2m).
	MaxTimeout time.Duration
	// RetryMax is the number of retries after the first attempt for
	// transient failures (default 3; negative disables retries).
	RetryMax int
	// RetryBase and RetryCap bound the full-jitter exponential backoff
	// (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetrySeed seeds the jitter RNG so a server's delay sequence is
	// reproducible (0 means seed 1).
	RetrySeed int64
	// RetryAfterHint is the Retry-After suggestion on rejections
	// (default 1s).
	RetryAfterHint time.Duration
	// Breaker tunes the circuit breaker.
	Breaker BreakerConfig
	// DegradedBudget bounds each phase (heuristic generation, residual
	// verification) of a degraded-mode response (default 1s).
	DegradedBudget time.Duration
	// DrainTimeout bounds how long Shutdown waits for in-flight work
	// before force-cancelling it (default 10s).
	DrainTimeout time.Duration
	// MemoryPressure, when non-nil, is polled before each full-pipeline
	// attempt; returning true trips the breaker (degraded mode) until the
	// cooldown elapses, and purges the synthesis cache — it is the
	// service's largest discretionary allocation. Nil disables the check.
	MemoryPressure func() bool
	// Cache, when non-nil, is the cross-request synthesis cache
	// (internal/cache): synthesize responses are served from and inserted
	// by content fingerprint, concurrent identical requests are collapsed
	// into one pipeline run, and repair requests submitted without a
	// routing table take the warm-start fast path. Nil disables caching.
	Cache *cache.Cache
	// WarmStartMaxDiff is the largest topology edge-diff (symmetric
	// difference of canonical edge sets) the warm-start fast path bridges
	// from a cached base; larger diffs synthesize cold (default 2).
	WarmStartMaxDiff int
	// Obs observes the server and every supervisor run (nil = unobserved).
	Obs *obs.Observer
	// OnFlush receives the final metrics snapshot exactly once, during
	// Shutdown (nil = no flush).
	OnFlush func(obs.Snapshot)
	// Hook is threaded into every supervisor run — the fault-injection
	// test hook; nil in production.
	Hook resilience.Hook
	// VerifyBackend is threaded into every supervisor run and into
	// degraded-mode residual verification (typically a verify.Router with
	// the polynomial fast path). Nil means brute force everywhere.
	VerifyBackend verify.Backend

	// now and sleep are test seams; nil means real time.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.HighWater <= 0 || c.HighWater > c.QueueDepth {
		c.HighWater = (c.QueueDepth + 1) / 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryMax == 0 {
		c.RetryMax = 3
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = time.Second
	}
	if c.DegradedBudget <= 0 {
		c.DegradedBudget = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.WarmStartMaxDiff <= 0 {
		c.WarmStartMaxDiff = 2
	}
	c.Breaker = c.Breaker.withDefaults()
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = retry.Sleep
	}
	return c
}

// job is one accepted request travelling through the queue.
type job struct {
	req *Request
	// deadline is the request's end-to-end budget, fixed at admission.
	deadline time.Time
	// done receives exactly one Response (buffered, so a worker never
	// blocks on an abandoned caller).
	done chan *Response
}

// Ticket is the caller's handle on an accepted request.
type Ticket struct {
	done <-chan *Response
}

// Wait blocks for the request's single Response. A ctx expiry abandons the
// wait (the work itself continues and its response is dropped into the
// ticket's buffer) and returns the context's cause.
func (t *Ticket) Wait(ctx context.Context) (*Response, error) {
	select {
	case resp := <-t.done:
		return resp, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// Server is the resilient synthesis/repair service. Create with New, feed
// with Submit/Do, stop with Shutdown.
type Server struct {
	cfg     Config
	queue   chan *job
	wg      sync.WaitGroup
	breaker *Breaker
	backoff *retry.Backoff

	// baseCtx parents every request context; Shutdown cancels it with
	// cause ErrDraining once the drain deadline passes.
	baseCtx    context.Context
	cancelBase context.CancelCauseFunc

	mu       sync.Mutex
	draining bool
	drainCh  chan struct{}

	// pending counts admitted-but-unstarted jobs. It, not len(queue), is
	// the load-shed accounting: incremented under mu before the enqueue and
	// decremented by the worker on dequeue, so the post-increment value is
	// the exact admission peak (channel length read outside the lock can
	// miss peaks that a worker has already begun to drain). The invariant
	// pending >= channel occupancy, enforced by that ordering, also means
	// the admission check pending < cap guarantees the send cannot block.
	pending atomic.Int64

	flushOnce sync.Once

	accepted, rejected, responses, retried, degraded, panics *obs.Counter
	queueDepth, queueHighWater, breakerGauge                 *obs.Gauge
}

// New builds and starts a Server: the worker pool is running and Submit is
// accepting when it returns.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		queue:      make(chan *job, cfg.QueueDepth),
		breaker:    NewBreaker(cfg.Breaker),
		backoff:    retry.New(cfg.RetryBase, cfg.RetryCap, cfg.RetrySeed),
		baseCtx:    baseCtx,
		cancelBase: cancel,
		drainCh:    make(chan struct{}),

		accepted:       cfg.Obs.Counter(MetricAccepted),
		rejected:       cfg.Obs.Counter(MetricRejected),
		responses:      cfg.Obs.Counter(MetricResponses),
		retried:        cfg.Obs.Counter(MetricRetries),
		degraded:       cfg.Obs.Counter(MetricDegraded),
		panics:         cfg.Obs.Counter(MetricPanics),
		queueDepth:     cfg.Obs.Gauge(MetricQueueDepth),
		queueHighWater: cfg.Obs.Gauge(MetricQueueHighWater),
		breakerGauge:   cfg.Obs.Gauge(MetricBreakerState),
	}
	s.breaker.onTransition = func(_, to BreakerState) {
		s.breakerGauge.Set(int64(to))
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Breaker exposes the circuit breaker for readiness checks and tests.
func (s *Server) Breaker() *Breaker { return s.breaker }

// QueueLen returns the number of admitted-but-unstarted requests, from the
// same accounting that drives the queue gauges and load shedding.
func (s *Server) QueueLen() int { return int(s.pending.Load()) }

// Draining returns a channel closed when Shutdown begins.
func (s *Server) Draining() <-chan struct{} { return s.drainCh }

func (s *Server) isDraining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

func validate(req *Request) error {
	if req == nil {
		return errors.New("server: nil request")
	}
	switch req.Kind {
	case KindSynthesize:
		if req.Net == nil {
			return errors.New("server: synthesize request without a network")
		}
	case KindRepair:
		// A repair may name a table to fortify, or just a topology: the
		// latter is dynamic repair, served warm from the synthesis cache
		// when a near-enough base is cached and cold otherwise.
		if req.Routing == nil && req.Net == nil {
			return errors.New("server: repair request without a routing or a topology")
		}
	default:
		return fmt.Errorf("server: unknown request kind %v", req.Kind)
	}
	if req.K < 0 {
		return fmt.Errorf("server: negative resilience level %d", req.K)
	}
	return nil
}

// timeout clamps the request's end-to-end budget into (0, MaxTimeout].
func (s *Server) timeout(req *Request) time.Duration {
	d := req.Timeout
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// Submit admits a request. On success the returned Ticket delivers exactly
// one Response. On load shedding or drain the error is a *Rejection
// carrying a Retry-After hint; a malformed request fails with a plain
// (permanent) validation error.
func (s *Server) Submit(req *Request) (*Ticket, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	j := &job{
		req:      req,
		deadline: s.cfg.now().Add(s.timeout(req)),
		done:     make(chan *Response, 1),
	}
	depth, rej := s.admit()
	if rej != nil {
		s.rejected.Inc()
		return nil, rej
	}
	// admit reserved a slot: every reserved-but-unsent job (ours included)
	// is counted in pending, so occupancy <= pending - 1 < cap and this
	// send cannot block.
	s.queue <- j
	s.accepted.Inc()
	s.queueDepth.Set(depth)
	// The mark only rises at admission: workers shrink the queue.
	s.queueHighWater.SetMax(depth)
	return &Ticket{done: j.done}, nil
}

// admit checks drain state and reserves one queue slot, returning the
// post-reservation pending depth. The check and the increment share the
// mutex so concurrent submitters cannot over-admit: pending never exceeds
// cap(queue), which is exactly what keeps Submit's post-admit send
// non-blocking.
func (s *Server) admit() (int64, *Rejection) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, &Rejection{Reason: ErrDraining, RetryAfter: s.cfg.RetryAfterHint}
	}
	if s.pending.Load() >= int64(cap(s.queue)) {
		return 0, &Rejection{Reason: ErrQueueFull, RetryAfter: s.cfg.RetryAfterHint}
	}
	return s.pending.Add(1), nil
}

// Do submits req and waits for its response. The returned error is an
// admission or wait failure; pipeline failures travel in Response.Err.
func (s *Server) Do(ctx context.Context, req *Request) (*Response, error) {
	t, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}

// worker drains the admission queue until Shutdown closes it. Jobs pulled
// after the drain began are rejected, not run, so queued-but-unstarted
// requests get their retryable rejection promptly.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.queueDepth.Set(s.pending.Add(-1))
		var resp *Response
		if s.isDraining() {
			resp = &Response{Err: &Rejection{Reason: ErrDraining, RetryAfter: s.cfg.RetryAfterHint}}
		} else {
			resp = s.dispatch(j)
		}
		s.responses.Inc()
		j.done <- resp
	}
}

// execute runs one accepted request to its single response: full-pipeline
// attempts with backoff between transient failures, or the degraded path
// whenever the breaker refuses. The request's admission deadline spans all
// of it.
func (s *Server) execute(j *job) *Response {
	req := j.req
	// last is the most recent failed attempt; it may carry a partial table
	// salvaged by the anytime supervisor, which must survive a deadline
	// expiry during backoff — the caller gets the best table seen, not an
	// empty failure.
	var last *Response
	for attempt := 0; ; attempt++ {
		remaining := j.deadline.Sub(s.cfg.now())
		if remaining <= 0 {
			// Expired while queued or backing off: a clean transient
			// failure, no worker time wasted on a doomed run.
			err := fmt.Errorf("server: request deadline expired before attempt %d: %w",
				attempt+1, context.DeadlineExceeded)
			if last != nil {
				last.Err = errors.Join(err, last.Err)
				return last
			}
			return &Response{Retries: attempt, Err: err}
		}
		if s.cfg.MemoryPressure != nil && s.cfg.MemoryPressure() {
			s.breaker.Trip(s.cfg.now())
			if s.cfg.Cache != nil {
				s.cfg.Cache.Purge()
			}
		}
		if !s.breaker.Allow(s.cfg.now()) {
			s.degraded.Inc()
			resp := s.serveDegraded(req, remaining)
			resp.Retries = attempt
			return resp
		}
		resp := s.runOnce(req, remaining)
		resp.Retries = attempt
		if resp.Err == nil {
			s.breaker.Record(true, s.cfg.now())
			return resp
		}
		transient := resilience.IsTransient(resp.Err)
		// The breaker tracks service health, not instance solvability: a
		// permanent error means the pipeline itself ran fine.
		s.breaker.Record(!transient, s.cfg.now())
		if !transient || s.baseCtx.Err() != nil || attempt >= s.cfg.RetryMax {
			return resp
		}
		s.retried.Inc()
		last = resp
		if err := s.cfg.sleep(s.baseCtx, s.backoff.Delay(attempt)); err != nil {
			resp.Err = errors.Join(err, resp.Err)
			return resp
		}
	}
}

// fence converts a panic escaping f — the server's own glue, or anything
// the supervisor's boundary cannot see — into an error response, so a
// poisoned request can never take a worker down.
func (s *Server) fence(f func() *Response) (resp *Response) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Inc()
			resp = &Response{Err: fmt.Errorf("server: request panicked: %v", v)}
		}
	}()
	return f()
}

// runOnce is one full-pipeline attempt under the request's remaining budget.
func (s *Server) runOnce(req *Request, remaining time.Duration) *Response {
	return s.fence(func() *Response {
		opts := resilience.Options{
			Strategy:      req.Strategy,
			Timeout:       remaining,
			Budgets:       req.Budgets,
			Obs:           s.cfg.Obs,
			Hook:          s.cfg.Hook,
			VerifyBackend: s.cfg.VerifyBackend,
			Shared:        req.Shared,
		}
		resp := &Response{}
		switch {
		case req.Kind == KindRepair && req.Routing != nil:
			out, err := resilience.Repair(s.baseCtx, req.Routing, req.K, opts)
			if err != nil {
				return s.fillFailure(resp, err)
			}
			resp.Routing, resp.Resilient = out.Routing, true
		default:
			// KindSynthesize, and dynamic repair (KindRepair without a
			// table) that missed the warm-start fast path: synthesize cold.
			r, rep, err := resilience.Synthesize(s.baseCtx, req.Net, req.Dest, req.K, opts)
			resp.Report = rep
			if err != nil {
				return s.fillFailure(resp, err)
			}
			resp.Routing, resp.Resilient = r, true
		}
		return resp
	})
}

// fillFailure shapes a failed attempt: a *Partial keeps its salvaged table
// alongside the typed error, and a cancellation during drain gets the
// server's shutdown cause joined in (context.WithCancelCause on the base
// context) so the caller sees "draining", not a bare context.Canceled.
func (s *Server) fillFailure(resp *Response, err error) *Response {
	if errors.Is(err, context.Canceled) && !errors.Is(err, ErrDraining) {
		if cause := context.Cause(s.baseCtx); cause != nil && errors.Is(cause, ErrDraining) {
			err = errors.Join(cause, err)
		}
	}
	resp.Err = err
	if p, ok := resilience.AsPartial(err); ok {
		resp.Routing = p.Routing
		resp.Partial = true
		resp.Residual = len(p.Residual)
		resp.ResidualUnknown = p.ResidualUnknown
	}
	return resp
}

// serveDegraded is the breaker-open path: a heuristic-only best-effort
// table (no BDD repair), priced by a bounded verification pass and flagged
// as degraded. Repair requests get their input table back unimproved —
// with its residual, so the caller knows exactly what still fails.
func (s *Server) serveDegraded(req *Request, remaining time.Duration) *Response {
	return s.fence(func() *Response {
		resp := &Response{Degraded: true}
		budget := s.cfg.DegradedBudget
		if budget > remaining {
			budget = remaining
		}
		var r *routing.Routing
		if req.Kind == KindRepair && req.Routing != nil {
			r = req.Routing.Clone()
		} else {
			hctx, cancel := context.WithTimeout(s.baseCtx, budget)
			var err error
			r, err = heuristic.Generate(hctx, req.Net, req.Dest)
			cancel()
			if err != nil {
				resp.Err = err
				return resp
			}
		}
		resp.Routing = r
		vctx, cancel := context.WithTimeout(s.baseCtx, budget)
		backend := s.cfg.VerifyBackend
		if backend == nil {
			backend = verify.BruteForce{}
		}
		vrep, err := backend.Check(vctx, r, req.K, verify.Options{
			Prune:    true,
			Counters: s.cfg.Obs.Verify(),
		})
		cancel()
		if err != nil {
			// The table is still served; only its residual is unknown.
			resp.ResidualUnknown = true
			return resp
		}
		resp.Resilient = vrep.Resilient
		resp.Residual = len(vrep.Failing)
		return resp
	})
}

// Shutdown drains the server: admission stops immediately (Submit returns
// a retryable ErrDraining rejection), queued-but-unstarted requests are
// rejected the same way, and in-flight work gets DrainTimeout to finish
// before being force-cancelled with cause ErrDraining. The observability
// snapshot is flushed to Config.OnFlush exactly once, no matter how often
// Shutdown is called. ctx bounds the post-cancel wait for stuck workers;
// its expiry is returned as an error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		close(s.drainCh)
		close(s.queue)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()

	var err error
	drain := time.NewTimer(s.cfg.DrainTimeout)
	defer drain.Stop()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelBase(ErrDraining)
		err = context.Cause(ctx)
	case <-drain.C:
		// Drain deadline: force-cancel in-flight work and wait for the
		// workers to observe it.
		s.cancelBase(ErrDraining)
		select {
		case <-done:
		case <-ctx.Done():
			err = context.Cause(ctx)
		}
	}
	s.cancelBase(ErrDraining) // release the base context in every path
	s.flushOnce.Do(func() {
		if s.cfg.OnFlush != nil {
			s.cfg.OnFlush(s.cfg.Obs.Snapshot())
		}
	})
	return err
}
