package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"syrep/internal/bdd"
	"syrep/internal/obs"
	"syrep/internal/papernet"
	"syrep/internal/resilience"
	"syrep/internal/resilience/faultinject"
)

// gateHook blocks every supervisor stage until released, so tests can hold a
// worker mid-request deterministically.
type gateHook struct {
	entered chan struct{} // closed when the first stage is entered
	release chan struct{}
	once    sync.Once
}

func newGateHook() *gateHook {
	return &gateHook{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateHook) At(resilience.Stage) error {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return nil
}

func synthRequest() *Request {
	n := papernet.Figure1()
	return &Request{
		Kind:     KindSynthesize,
		Net:      n,
		Dest:     papernet.Figure1Dest(n),
		K:        2,
		Strategy: resilience.HeuristicOnly,
	}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestQueueFullRejection: with one busy worker and a depth-1 queue, the
// second waiting request is shed with a typed, retryable rejection carrying
// a Retry-After hint — the load-shedding contract.
func TestQueueFullRejection(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGateHook()
	s := New(Config{
		Workers:        1,
		QueueDepth:     1,
		Hook:           gate,
		RetryAfterHint: 3 * time.Second,
		DrainTimeout:   2 * time.Second,
	})
	defer shutdownServer(t, s)

	tktA, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	<-gate.entered // the worker holds A; the queue is empty again

	tktB, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}

	_, err = s.Submit(synthRequest())
	var rej *Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("Submit C: got %v, want *Rejection", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("rejection reason = %v, want ErrQueueFull", rej.Reason)
	}
	if rej.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %s, want 3s", rej.RetryAfter)
	}
	if !IsRetryable(err) {
		t.Error("queue-full rejection must be retryable")
	}

	close(gate.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tkt := range []*Ticket{tktA, tktB} {
		resp, err := tkt.Wait(ctx)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if resp.Err != nil {
			t.Fatalf("accepted request failed: %v", resp.Err)
		}
	}
}

// TestRetryTransientThenSuccess: a one-shot node-limit fault fails the first
// attempt; the server backs off (through the sleep seam) and the second
// attempt succeeds. Retries and the backoff call are both visible.
func TestRetryTransientThenSuccess(t *testing.T) {
	faultinject.LeakCheck(t)
	var mu sync.Mutex
	var slept []time.Duration
	s := New(Config{
		Workers: 1,
		Hook: faultinject.New(faultinject.Fault{
			Stage: resilience.StageHeuristic,
			Kind:  faultinject.NodeLimit,
			Times: 1,
		}),
		RetryBase: 10 * time.Millisecond,
		RetryCap:  40 * time.Millisecond,
		sleep: func(_ context.Context, d time.Duration) error {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
			return nil
		},
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := s.Do(ctx, synthRequest())
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Err != nil {
		t.Fatalf("request failed after retry: %v", resp.Err)
	}
	if !resp.Resilient || resp.Routing == nil {
		t.Errorf("resilient = %v, routing = %v; want a resilient table", resp.Resilient, resp.Routing)
	}
	if resp.Retries != 1 {
		t.Errorf("Retries = %d, want 1", resp.Retries)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 {
		t.Fatalf("backoff slept %d times, want 1", len(slept))
	}
	if slept[0] < 0 || slept[0] >= 10*time.Millisecond {
		t.Errorf("first backoff = %s, want full jitter in [0, 10ms)", slept[0])
	}
	if s.Breaker().State() != BreakerClosed {
		t.Errorf("breaker = %s after recovery, want closed", s.Breaker().State())
	}
}

// TestPermanentFailFast: an unsolvable-class error is not retried, does not
// back off, and does not count against the breaker (the pipeline itself ran
// fine; the instance was the problem).
func TestPermanentFailFast(t *testing.T) {
	faultinject.LeakCheck(t)
	s := New(Config{
		Workers: 1,
		Hook: faultinject.New(faultinject.Fault{
			Stage: resilience.StageHeuristic,
			Kind:  faultinject.Error,
			Err:   resilience.ErrUnsolvable,
		}),
		sleep: func(context.Context, time.Duration) error {
			t.Error("permanent failure must not back off")
			return nil
		},
		Breaker:      BreakerConfig{Threshold: 2},
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		resp, err := s.Do(ctx, synthRequest())
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if resp.Err == nil {
			t.Fatal("want a permanent error, got success")
		}
		if !resilience.IsPermanent(resp.Err) {
			t.Errorf("IsPermanent(%v) = false, want true", resp.Err)
		}
		if IsRetryable(resp.Err) {
			t.Errorf("permanent error %v must not be retryable", resp.Err)
		}
		if resp.Retries != 0 {
			t.Errorf("Retries = %d, want 0 (fail fast)", resp.Retries)
		}
	}
	// Three consecutive permanent errors with Threshold 2: still closed.
	if s.Breaker().State() != BreakerClosed {
		t.Errorf("breaker = %s after permanent errors, want closed", s.Breaker().State())
	}
}

// TestDeadlineExpiredInQueue: a request whose end-to-end budget dies while
// it waits behind a busy worker is rejected cleanly — a transient deadline
// error, no pipeline time spent on a doomed run.
func TestDeadlineExpiredInQueue(t *testing.T) {
	faultinject.LeakCheck(t)
	gate := newGateHook()
	s := New(Config{
		Workers:      1,
		QueueDepth:   2,
		Hook:         gate,
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	tktA, err := s.Submit(synthRequest())
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	<-gate.entered

	reqB := synthRequest()
	reqB.Timeout = time.Nanosecond
	tktB, err := s.Submit(reqB)
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}
	// B's budget is long dead by the time the worker frees up.
	time.Sleep(5 * time.Millisecond)
	close(gate.release)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if resp, err := tktA.Wait(ctx); err != nil || resp.Err != nil {
		t.Fatalf("A: wait err %v, resp err %v", err, resp.Err)
	}
	resp, err := tktB.Wait(ctx)
	if err != nil {
		t.Fatalf("B: %v", err)
	}
	if resp.Err == nil || !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("B err = %v, want deadline exceeded", resp.Err)
	}
	if !IsRetryable(resp.Err) {
		t.Error("queue-expired request must be retryable")
	}
	if resp.Routing != nil {
		t.Error("expired request must not carry a table")
	}
}

// TestBudgetCauseInResponse (satellite: cancellation causes): a stage-budget
// expiry inside the supervisor surfaces in the server response as a typed
// *resilience.BudgetError naming the stage — not a bare context error.
func TestBudgetCauseInResponse(t *testing.T) {
	faultinject.LeakCheck(t)
	s := New(Config{
		Workers:      1,
		RetryMax:     -1, // isolate the first attempt's error
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	req := synthRequest()
	req.Timeout = time.Minute
	req.Budgets = resilience.Budgets{Heuristic: 1e-15}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := s.Do(ctx, req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Err == nil {
		t.Fatal("want a budget failure, got success")
	}
	var be *resilience.BudgetError
	if !errors.As(resp.Err, &be) {
		t.Fatalf("response error %v does not carry a *resilience.BudgetError", resp.Err)
	}
	if be.Stage != resilience.StageHeuristic {
		t.Errorf("budget cause stage = %s, want %s", be.Stage, resilience.StageHeuristic)
	}
	if !strings.Contains(resp.Err.Error(), "heuristic stage budget exceeded") {
		t.Errorf("error text %q does not name the exhausted stage budget", resp.Err)
	}
	if !IsRetryable(resp.Err) {
		t.Error("budget expiry must be retryable")
	}
}

// TestMemoryPressureDegrades: memory pressure trips the breaker and the
// request is served on the degraded heuristic-only path, flagged as such.
func TestMemoryPressureDegrades(t *testing.T) {
	faultinject.LeakCheck(t)
	o := obs.New(nil)
	s := New(Config{
		Workers:        1,
		MemoryPressure: func() bool { return true },
		Obs:            o,
		DrainTimeout:   2 * time.Second,
	})
	defer shutdownServer(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := s.Do(ctx, synthRequest())
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("want a degraded response under memory pressure")
	}
	if resp.Err != nil {
		t.Errorf("degraded response carries error %v, want nil", resp.Err)
	}
	if resp.Routing == nil {
		t.Error("degraded response must still carry a best-effort table")
	}
	if resp.ResidualUnknown {
		t.Error("the bounded verification pass should have priced the table")
	}
	if s.Breaker().State() != BreakerOpen {
		t.Errorf("breaker = %s, want open", s.Breaker().State())
	}
	if got := o.Counter(MetricDegraded).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricDegraded, got)
	}

	// A degraded repair returns the input table unimproved, with its residual.
	n := papernet.Figure1()
	rr := &Request{Kind: KindRepair, Routing: papernet.Figure1bRouting(n), K: 2}
	resp, err = s.Do(ctx, rr)
	if err != nil {
		t.Fatalf("Do repair: %v", err)
	}
	if !resp.Degraded || resp.Routing == nil {
		t.Fatalf("degraded repair: degraded=%v routing=%v", resp.Degraded, resp.Routing)
	}
	if resp.Resilient {
		t.Error("figure 1b is not 2-resilient; a degraded repair cannot have fixed it")
	}
	if resp.Residual == 0 && !resp.ResidualUnknown {
		t.Error("degraded repair of a non-resilient table must report a residual")
	}
}

// TestValidation: malformed requests fail fast with plain (non-retryable)
// errors and never enter the queue.
func TestValidation(t *testing.T) {
	faultinject.LeakCheck(t)
	s := New(Config{Workers: 1, DrainTimeout: 2 * time.Second})
	defer shutdownServer(t, s)

	cases := []*Request{
		nil,
		{Kind: KindSynthesize}, // no network
		{Kind: KindRepair},     // no routing
		{Kind: Kind(99), Net: papernet.Figure1()},              // unknown kind
		{Kind: KindSynthesize, Net: papernet.Figure1(), K: -1}, // negative k
	}
	for i, req := range cases {
		_, err := s.Submit(req)
		if err == nil {
			t.Errorf("case %d: Submit accepted a malformed request", i)
			continue
		}
		if IsRetryable(err) {
			t.Errorf("case %d: validation error %v must not be retryable", i, err)
		}
	}
}

// TestPanicFence: a request that panics inside the server's own glue is
// converted to an error response; the worker survives and serves the next
// request.
func TestPanicFence(t *testing.T) {
	faultinject.LeakCheck(t)
	o := obs.New(nil)
	s := New(Config{Workers: 1, Obs: o, DrainTimeout: 2 * time.Second})
	defer shutdownServer(t, s)

	resp := s.fence(func() *Response { panic("poisoned request") })
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "poisoned request") {
		t.Fatalf("fenced panic yielded %v", resp.Err)
	}
	if got := o.Counter(MetricPanics).Load(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricPanics, got)
	}

	// The pool still serves.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r, err := s.Do(ctx, synthRequest())
	if err != nil || r.Err != nil {
		t.Fatalf("request after fenced panic: %v / %v", err, r.Err)
	}
}

// TestBreakerOpensOnNodeLimitFault verifies the classification boundary used
// by the breaker: a node-limit memout is transient, so sustained memouts
// trip it.
func TestBreakerOpensOnNodeLimitFault(t *testing.T) {
	faultinject.LeakCheck(t)
	s := New(Config{
		Workers: 1,
		Hook: faultinject.New(faultinject.Fault{
			Stage: resilience.StageHeuristic,
			Kind:  faultinject.NodeLimit, // Times 0: every attempt fails
		}),
		RetryMax:     -1,
		Breaker:      BreakerConfig{Threshold: 3, Cooldown: time.Hour},
		DrainTimeout: 2 * time.Second,
	})
	defer shutdownServer(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		resp, err := s.Do(ctx, synthRequest())
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if resp.Degraded {
			t.Fatalf("request %d degraded before the threshold", i)
		}
		if !errors.Is(resp.Err, bdd.ErrNodeLimit) {
			t.Fatalf("request %d err = %v, want node limit", i, resp.Err)
		}
	}
	if s.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %s after %d memouts, want open", s.Breaker().State(), 3)
	}
	// The next request rides the degraded path instead of failing.
	resp, err := s.Do(ctx, synthRequest())
	if err != nil {
		t.Fatalf("Do degraded: %v", err)
	}
	if !resp.Degraded || resp.Err != nil {
		t.Fatalf("degraded=%v err=%v, want a clean degraded response", resp.Degraded, resp.Err)
	}
}

// slewClock is a thread-safe fake clock the sleep seam can jump forward.
type slewClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *slewClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *slewClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestPartialSurvivesDeadlineExpiryInBackoff: attempt 1 fails transiently
// but salvages a partial table; the request deadline then expires during
// backoff. The response must keep the salvaged table alongside the deadline
// error — the anytime contract holds across the retry loop.
func TestPartialSurvivesDeadlineExpiryInBackoff(t *testing.T) {
	faultinject.LeakCheck(t)
	clk := &slewClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	// A persistent node-limit fault at the repair stage exhausts the
	// escalation ladder and yields a *Partial carrying the heuristic table.
	inj := faultinject.New(faultinject.Fault{
		Stage: resilience.StageRepair, Kind: faultinject.NodeLimit,
	})
	s := New(Config{
		Workers: 1, Obs: obs.New(nil), Hook: inj, RetryMax: 2,
		now: clk.now,
		sleep: func(context.Context, time.Duration) error {
			clk.advance(2 * time.Minute) // backoff overshoots the deadline
			return nil
		},
	})
	defer shutdownServer(t, s)

	req := synthRequest()
	req.Timeout = time.Minute
	resp, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to wrap context.DeadlineExceeded", resp.Err)
	}
	if !errors.Is(resp.Err, bdd.ErrNodeLimit) {
		t.Errorf("err = %v, want to keep the attempt's node-limit cause", resp.Err)
	}
	if !resp.Partial {
		t.Error("Partial flag lost across the deadline expiry")
	}
	if resp.Routing == nil {
		t.Fatal("salvaged table dropped by the deadline expiry")
	}
	if resp.Residual == 0 && !resp.ResidualUnknown {
		t.Error("partial table reports neither a residual nor unknown pricing")
	}
	if resp.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (only attempt 1 ran)", resp.Retries)
	}
	if !IsRetryable(resp.Err) {
		t.Error("deadline expiry should stay retryable")
	}
}
