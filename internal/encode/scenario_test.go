package encode_test

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"syrep/internal/bdd"
	"syrep/internal/encode"
	"syrep/internal/network"
	"syrep/internal/papernet"
	"syrep/internal/routing"
	"syrep/internal/verify"
)

var ctx = context.Background()

// punchSuspicious removes the six suspicious Figure 1b entries (paper
// Section III-B) as holes with priority-list length k+1.
func punchSuspicious(t *testing.T, n *network.Network, r *routing.Routing, k int) {
	t.Helper()
	rep, err := verify.Check(ctx, r, k, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilient {
		t.Fatal("fixture unexpectedly resilient")
	}
	for _, key := range rep.Suspicious() {
		if err := r.PunchHole(key.In, key.At, k+1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRepairRunningExample reproduces the paper's running example repair:
// removing the six suspicious entries of Figure 1b and filling them with the
// BDD engine yields a perfectly 2-resilient routing.
func TestRepairRunningExample(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	punchSuspicious(t, n, r, 2)
	if r.NumHoles() != 6 {
		t.Fatalf("holes = %d, want 6", r.NumHoles())
	}

	sol, err := encode.Solve(ctx, r, 2, encode.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Routing.NumHoles() != 0 {
		t.Errorf("solution still has %d holes", sol.Routing.NumHoles())
	}
	if !sol.Routing.Complete() {
		t.Error("solution routing incomplete")
	}
	ok, err := verify.Check(ctx, sol.Routing, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Resilient {
		t.Fatalf("repaired routing is not 2-resilient:\n%s\nfailures: %v",
			sol.Routing, ok.Failing)
	}
	if sol.NumSolutions < 1 {
		t.Errorf("NumSolutions = %v, want >= 1", sol.NumSolutions)
	}
	if sol.Scenarios != 29 { // C(7,0)+C(7,1)+C(7,2)
		t.Errorf("Scenarios = %d, want 29", sol.Scenarios)
	}
	if sol.SymbolicScenarios == 0 {
		t.Error("expected at least one symbolic scenario")
	}
}

// TestFullSynthesisFig1 punches every entry (the SyPer-style baseline) and
// synthesises a perfectly 2-resilient routing from scratch.
func TestFullSynthesisFig1(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r := routing.New(n, d)
	for _, key := range r.AllKeys() {
		if err := r.PunchHole(key.In, key.At, 3); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := encode.Solve(ctx, r, 2, encode.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	rep, err := verify.Check(ctx, sol.Routing, 2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient {
		t.Fatalf("synthesised routing is not 2-resilient:\n%s\nfailures: %v",
			sol.Routing, rep.Failing)
	}
}

// TestFigure2AllSolutions reproduces the paper's Figure 2: the two-node
// network with three parallel links has exactly the six permutations of
// (e0, e1, e2) as perfectly 2-resilient priority lists for R(lb_v1, v1).
func TestFigure2AllSolutions(t *testing.T) {
	n := papernet.Figure2()
	d := n.NodeByName("d")
	v1 := n.NodeByName("v1")
	r := routing.New(n, d)
	if err := r.PunchHole(n.Loopback(v1), v1, 3); err != nil {
		t.Fatal(err)
	}

	sol, err := encode.Solve(ctx, r, 2, encode.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.NumSolutions != 6 {
		t.Errorf("NumSolutions = %v, want 6 (all permutations)", sol.NumSolutions)
	}

	fillings, err := encode.Enumerate(ctx, r, 2, encode.Options{}, 0)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(fillings) != 6 {
		t.Fatalf("Enumerate returned %d fillings, want 6", len(fillings))
	}
	seen := make(map[string]bool)
	key := routing.Key{In: n.Loopback(v1), At: v1}
	for _, f := range fillings {
		prio := f[key]
		if len(prio) != 3 {
			t.Fatalf("filling list %v has wrong length", prio)
		}
		var names []string
		dup := make(map[network.EdgeID]bool)
		for _, e := range prio {
			if dup[e] {
				t.Errorf("filling %v repeats an edge", prio)
			}
			dup[e] = true
			names = append(names, n.EdgeName(e))
		}
		seen[strings.Join(names, ",")] = true
	}
	if len(seen) != 6 {
		t.Errorf("distinct fillings = %d, want 6: %v", len(seen), keys(seen))
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestEnumerateCap checks the max argument.
func TestEnumerateCap(t *testing.T) {
	n := papernet.Figure2()
	d := n.NodeByName("d")
	v1 := n.NodeByName("v1")
	r := routing.New(n, d)
	if err := r.PunchHole(n.Loopback(v1), v1, 3); err != nil {
		t.Fatal(err)
	}
	fillings, err := encode.Enumerate(ctx, r, 2, encode.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fillings) != 2 {
		t.Errorf("Enumerate(max=2) returned %d", len(fillings))
	}
}

// TestUnrepairable: if the entry that must route around the failure is not a
// hole (and is broken), Solve reports ErrUnrepairable.
func TestUnrepairable(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	// Punch only one of the six suspicious entries: the loop from v3 under
	// {e1, e2} traverses concrete entries that cannot change, so synthesis
	// must fail.
	v1 := n.NodeByName("v1")
	if err := r.PunchHole(n.Loopback(v1), v1, 3); err != nil {
		t.Fatal(err)
	}
	_, err := encode.Solve(ctx, r, 2, encode.Options{})
	if !errors.Is(err, encode.ErrUnrepairable) {
		t.Errorf("err = %v, want ErrUnrepairable", err)
	}
}

// TestNoHolesResilient: a routing with no holes that is already k-resilient
// solves trivially to itself.
func TestNoHolesResilient(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	sol, err := encode.Solve(ctx, r, 1, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Routing.Equal(r) {
		t.Error("solution differs from hole-free input")
	}
	if sol.NumSolutions != 1 {
		t.Errorf("NumSolutions = %v, want 1", sol.NumSolutions)
	}
}

// TestNoHolesNotResilient: a hole-free non-resilient routing cannot be
// fixed.
func TestNoHolesNotResilient(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	_, err := encode.Solve(ctx, r, 2, encode.Options{})
	if !errors.Is(err, encode.ErrUnrepairable) {
		t.Errorf("err = %v, want ErrUnrepairable", err)
	}
}

func TestNegativeK(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	if _, err := encode.Solve(ctx, r, -1, encode.Options{}); err == nil {
		t.Error("Solve(-1) succeeded")
	}
	if _, err := encode.Enumerate(ctx, r, -1, encode.Options{}, 0); err == nil {
		t.Error("Enumerate(-1) succeeded")
	}
}

func TestContextCancellation(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	punchSuspicious(t, n, r, 2)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := encode.Solve(cctx, r, 2, encode.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestNodeLimit(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r := routing.New(n, d)
	for _, key := range r.AllKeys() {
		if err := r.PunchHole(key.In, key.At, 3); err != nil {
			t.Fatal(err)
		}
	}
	_, err := encode.Solve(ctx, r, 2, encode.Options{NodeLimit: 256})
	if !errors.Is(err, bdd.ErrNodeLimit) {
		t.Errorf("err = %v, want bdd.ErrNodeLimit", err)
	}
}

// TestHoleRepairK1: repairing for k=1 also works (shorter lists).
func TestHoleRepairK1(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r := routing.New(n, d)
	for _, key := range r.AllKeys() {
		if err := r.PunchHole(key.In, key.At, 2); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := encode.Solve(ctx, r, 1, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(ctx, sol.Routing, 1, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient {
		t.Errorf("k=1 synthesis not 1-resilient: %v", rep.Failing)
	}
}

// TestListLengthClampedToDegree: holes at degree-2 nodes with requested list
// length 3 get clamped lists but still solve.
func TestListLengthClampedToDegree(t *testing.T) {
	n := papernet.Figure1()
	r := papernet.Figure1bRouting(n)
	v1 := n.NodeByName("v1") // degree 2
	if err := r.PunchHole(n.Loopback(v1), v1, 5); err != nil {
		t.Fatal(err)
	}
	sol, err := encode.Solve(ctx, r, 1, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prio, ok := sol.Routing.Get(n.Loopback(v1), v1)
	if !ok {
		t.Fatal("hole not filled")
	}
	if len(prio) > 2 {
		t.Errorf("list length %d not clamped to degree 2", len(prio))
	}
}

// TestSlot0ExcludesInEdge: the synthesised first priority never equals the
// (real) in-edge when alternatives exist — the paper's V_{v,e} constraint.
func TestSlot0ExcludesInEdge(t *testing.T) {
	n := papernet.Figure1()
	d := papernet.Figure1Dest(n)
	r := routing.New(n, d)
	for _, key := range r.AllKeys() {
		if err := r.PunchHole(key.In, key.At, 3); err != nil {
			t.Fatal(err)
		}
	}
	fillings, err := encode.Enumerate(ctx, r, 1, encode.Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(fillings) == 0 {
		t.Fatal("no fillings")
	}
	for _, f := range fillings {
		for key, prio := range f {
			if !n.IsLoopback(key.In) && len(prio) > 0 && prio[0] == key.In && n.Degree(key.At) > 1 {
				t.Fatalf("filling puts in-edge first at %v: %v", key, prio)
			}
		}
	}
}

// TestLeafBounceBackAllowed: on a path graph the middle node's entry for a
// packet arriving from the leaf side can only bounce back; the degenerate
// single-candidate exemption permits the leaf's own entry.
func TestLeafBounceBackAllowed(t *testing.T) {
	b := network.NewBuilder("path3")
	d := b.AddNode("d")
	a := b.AddNode("a")
	leaf := b.AddNode("leaf")
	e0 := b.AddEdge(d, a)
	e1 := b.AddEdge(a, leaf)
	n := b.MustBuild()

	r := routing.New(n, d)
	if err := r.PunchHole(n.Loopback(a), a, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.PunchHole(e1, a, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.PunchHole(n.Loopback(leaf), leaf, 1); err != nil {
		t.Fatal(err)
	}
	// The leaf's in-edge entry can only bounce back on e1.
	if err := r.PunchHole(e1, leaf, 1); err != nil {
		t.Fatal(err)
	}
	r.MustSet(e0, a, []network.EdgeID{e1, e0})

	sol, err := encode.Solve(ctx, r, 0, encode.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	rep, err := verify.Check(ctx, sol.Routing, 0, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resilient {
		t.Errorf("path routing not 0-resilient: %v", rep.Failing)
	}
	prio, _ := sol.Routing.Get(e1, leaf)
	if len(prio) != 1 || prio[0] != e1 {
		t.Errorf("leaf bounce-back = %v, want [e1]", prio)
	}
}
