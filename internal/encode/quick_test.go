package encode_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"syrep/internal/encode"
	"syrep/internal/heuristic"
	"syrep/internal/network"
	"syrep/internal/routing"
)

// TestQuickEnginesAgreeRandom cross-checks the scenario-expansion engine
// against the paper-literal symbolic engine on random small instances: for
// random networks, destinations, hole sets and k, both engines must accept
// exactly the same set of hole fillings (or both report unrepairability).
func TestQuickEnginesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	rounds := 0
	for rounds < 12 {
		net := randomSmallNet(rng)
		if !net.Connected() {
			continue
		}
		dest := network.NodeID(rng.Intn(net.NumNodes()))
		base, err := heuristic.Generate(context.Background(), net, dest)
		if err != nil {
			continue
		}
		k := 1 + rng.Intn(2)

		// Punch 1-2 random holes.
		keys := base.AllKeys()
		if len(keys) == 0 {
			continue
		}
		holes := 1 + rng.Intn(2)
		r := base.Clone()
		for h := 0; h < holes; h++ {
			key := keys[rng.Intn(len(keys))]
			if err := r.PunchHole(key.In, key.At, k+1); err != nil {
				t.Fatal(err)
			}
		}
		rounds++

		symFillings, symErr := symbolicFillings(r, k)
		scenFillings, scenErr := scenarioFillings(r, k)

		if (symErr == nil) != (scenErr == nil) {
			t.Fatalf("round %d (%s dest=%d k=%d): symbolic err=%v scenario err=%v",
				rounds, net.Name(), dest, k, symErr, scenErr)
		}
		if symErr != nil {
			continue // both unrepairable: agreement
		}
		if len(symFillings) != len(scenFillings) {
			t.Fatalf("round %d (%s dest=%d k=%d): %d symbolic vs %d scenario fillings",
				rounds, net.Name(), dest, k, len(symFillings), len(scenFillings))
		}
		for key := range symFillings {
			if !scenFillings[key] {
				t.Fatalf("round %d: filling only in symbolic engine: %s", rounds, key)
			}
		}
	}
}

func symbolicFillings(r *routing.Routing, k int) (map[string]bool, error) {
	sym, err := encode.BuildSymbolic(ctx, r, k, encode.Options{})
	if err != nil {
		return nil, err
	}
	fs := sym.Enumerate(0)
	if len(fs) == 0 {
		return nil, encode.ErrUnrepairable
	}
	return fillingSet(fs), nil
}

func scenarioFillings(r *routing.Routing, k int) (map[string]bool, error) {
	fs, err := encode.Enumerate(ctx, r, k, encode.Options{}, 0)
	if err != nil {
		if errors.Is(err, encode.ErrUnrepairable) {
			return nil, encode.ErrUnrepairable
		}
		return nil, err
	}
	return fillingSet(fs), nil
}

// randomSmallNet builds a network with 3-4 nodes and 3-6 edges (parallel
// edges allowed), small enough for the symbolic engine's Γ enumeration.
func randomSmallNet(rng *rand.Rand) *network.Network {
	b := network.NewBuilder("rand-small")
	nodes := 3 + rng.Intn(2)
	ids := make([]network.NodeID, nodes)
	for i := range ids {
		ids[i] = b.AddNode(string(rune('a' + i)))
	}
	// A spanning cycle keeps most samples connected.
	for i := 0; i < nodes; i++ {
		b.AddEdge(ids[i], ids[(i+1)%nodes])
	}
	extra := rng.Intn(3)
	for i := 0; i < extra; i++ {
		u := rng.Intn(nodes)
		v := rng.Intn(nodes)
		if u != v {
			b.AddEdge(ids[u], ids[v])
		}
	}
	return b.MustBuild()
}
