// Package encode implements the BDD encoding of the skipping-routing
// synthesis problem (Section III-A of the SyRep paper).
//
// Two engines are provided:
//
//   - The scenario engine (this file) computes the perfectly-k-resilient
//     formula P over the *hole parameters* of a routing by expanding the
//     paper's universal quantification over failure vectors into an explicit
//     conjunction over failure scenarios |F| <= k:
//
//     P(holes) = ⋀_{F} ⋀_{s ~ d in G∖F} D_F(lb_s, s)(holes)
//
//     where each per-scenario deliverability predicate D_F is the paper's
//     fixpoint D computed over explicit (in-edge, node) states whose values
//     are BDDs over the hole-parameter variables. This is semantically the
//     same P restricted to the holes, and it is what makes repair fast: few
//     holes mean few BDD variables. With every entry a hole it degrades into
//     full synthesis from scratch — the SyPer baseline the paper compares
//     against.
//
//   - The symbolic engine (symbolic.go) is the literal formulation with
//     symbolic failure vectors and universal quantification, faithful to the
//     paper's formulae; it reproduces the Figure 2 example and serves as a
//     cross-check oracle on small networks.
package encode

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"syrep/internal/bdd"
	"syrep/internal/bvec"
	"syrep/internal/network"
	"syrep/internal/obs"
	"syrep/internal/routing"
	"syrep/internal/trace"
)

// ErrUnrepairable is returned when no assignment of the holes makes the
// routing perfectly k-resilient. Per Section III-C the repair method is
// incomplete: a different (larger) hole set may still succeed.
var ErrUnrepairable = errors.New("encode: no hole assignment achieves k-resilience")

// DefaultNodeLimit is the node budget used when Options.NodeLimit is zero.
const DefaultNodeLimit = 4 << 20

// Options tunes the scenario engine.
type Options struct {
	// NodeLimit caps BDD nodes (0 = DefaultNodeLimit). Exceeding it aborts
	// with bdd.ErrNodeLimit.
	NodeLimit int
	// GCThreshold triggers a garbage collection between scenarios when the
	// node count exceeds it (0 = default 256k).
	GCThreshold int
	// DisableReorder switches off dynamic variable reordering (sifting).
	// By default the engine sifts, like the paper's CUDD backend, as a
	// recovery step when a scenario's conjunction exhausts the node limit,
	// then retries the scenario once. This cheap in-scenario retry is rung 0
	// of the node-limit escalation ladder; the resilience supervisor layers
	// bigger-limit and reduced-scope rungs above it.
	DisableReorder bool
	// ManagerHook, when set, observes the BDD manager of every solve right
	// after creation. It exists for tests (e.g. fault injection asserting
	// that no protected refs leak on any exit path) and must not retain the
	// manager past the solve.
	ManagerHook func(*bdd.Manager)
	// Counters, when non-nil, receives the BDD engine's counter stream for
	// the solve: the manager is attached to it right after creation (see
	// bdd.Manager.Observe). Nil means unobserved — the engine's hot paths
	// then cost one nil check per op.
	Counters *obs.BDDCounters
	// Pool, when non-nil, supplies the solve's Manager instead of a fresh
	// NewWithConfig and takes it back (Reset) when the solve ends, so batch
	// runs reuse warm arenas across destinations. A pooled Manager is
	// indistinguishable from a fresh one (see bdd.Manager.Reset), so results
	// do not depend on whether a Pool is set.
	Pool *bdd.ManagerPool
}

// manager checks a Manager out of o.Pool — or builds a throwaway one — and
// returns it with its release func. The release is safe on every exit path,
// including panics unwinding through Protect: Put resets the Manager before
// shelving it.
func (o Options) manager() (*bdd.Manager, func()) {
	if o.Pool != nil {
		m := o.Pool.Get()
		m.SetNodeLimit(o.NodeLimit)
		return m, func() { o.Pool.Put(m) }
	}
	return bdd.NewWithConfig(bdd.Config{NodeLimit: o.NodeLimit}), func() {}
}

func (o Options) withDefaults() Options {
	if o.NodeLimit == 0 {
		o.NodeLimit = DefaultNodeLimit
	}
	if o.GCThreshold == 0 {
		o.GCThreshold = 256 << 10
	}
	return o
}

// Solution is the result of a successful Solve.
type Solution struct {
	// Routing is the input routing with every hole filled.
	Routing *routing.Routing
	// NumSolutions is the number of distinct hole assignments that achieve
	// k-resilience (can be fractional-free large; float64 like SatCount).
	NumSolutions float64
	// Scenarios is the number of failure scenarios conjoined.
	Scenarios int
	// SymbolicScenarios counts scenarios that actually required symbolic
	// evaluation (some trace reached a hole).
	SymbolicScenarios int
	// PeakNodes is the maximum live BDD node count observed.
	PeakNodes int
	// Reorders counts dynamic variable reordering passes.
	Reorders int
}

// hole carries the synthesis parameters of one removed routing entry.
type hole struct {
	key routing.Key
	// cands are the candidate out-edges (real edges incident to key.At).
	cands []network.EdgeID
	// slots are the symbolic priority-list positions; slot values are
	// indices into cands.
	slots []bvec.Vec
	// domain constrains slot values to valid candidates and forbids the
	// in-edge in slot 0 (paper's V_{v,e}), unless it is the only candidate.
	domain bdd.Ref
}

// solver holds the per-instance state of the scenario engine.
type solver struct {
	m    *bdd.Manager
	net  *network.Network
	r    *routing.Routing
	k    int
	opts Options
	// ctx is checked between fixpoint sweeps so that a single expensive
	// scenario cannot outlive a timeout by much.
	ctx   context.Context
	holes []hole
	// holeAt maps a routing key to its hole, for transition lookup.
	holeAt map[routing.Key]*hole
	// stateID indexes (in-edge, node) pairs densely.
	stateID map[routing.Key]int
	states  []routing.Key
	// peak tracks the maximum live BDD node count observed.
	peak int
}

// Solve computes the perfectly-k-resilient formula over the holes of r and
// returns a routing with all holes filled. The input routing is not
// modified. It fails with ErrUnrepairable when the holes cannot be filled,
// with bdd.ErrNodeLimit when the computation exceeds the node budget, and
// with ctx.Err() on cancellation.
func Solve(ctx context.Context, r *routing.Routing, k int, opts Options) (*Solution, error) {
	if k < 0 {
		return nil, fmt.Errorf("encode: negative resilience level %d", k)
	}
	opts = opts.withDefaults()
	m, release := opts.manager()
	defer release()
	s := &solver{
		m:      m,
		net:    r.Network(),
		r:      r,
		k:      k,
		opts:   opts,
		ctx:    ctx,
		holeAt: make(map[routing.Key]*hole),
	}
	if opts.ManagerHook != nil {
		opts.ManagerHook(s.m)
	}
	s.m.Observe(opts.Counters)
	var sol *Solution
	err := s.m.Protect(func() error {
		var err error
		sol, err = s.run(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sol, nil
}

func (s *solver) run(ctx context.Context) (*Solution, error) {
	p, sol, err := s.formulaWithStats(ctx)
	if err != nil {
		return nil, err
	}
	filled, err := s.extract(p)
	if err != nil {
		return nil, err
	}
	sol.Routing = filled
	sol.NumSolutions = s.countSolutions(p)
	sol.PeakNodes = s.peak
	return sol, nil
}

// formulaWithStats computes P over the holes, garbage-collecting between
// scenarios, and reports run statistics.
func (s *solver) formulaWithStats(ctx context.Context) (bdd.Ref, *Solution, error) {
	if err := s.buildHoles(); err != nil {
		return bdd.False, nil, err
	}
	s.buildStates()

	m := s.m
	p := bdd.True
	for _, h := range s.holes {
		p = m.And(p, h.domain)
	}
	if p == bdd.False {
		return bdd.False, nil, ErrUnrepairable
	}
	m.Ref(p)

	sol := &Solution{}

	// processScenario conjoins one scenario's constraint into p. It runs
	// under a nested Protect so that a node-limit overflow inside a single
	// conjunction can be recovered: garbage-collect, sift, retry once.
	processScenario := func(F network.EdgeSet) (bool, error) {
		attempt := func() (newP bdd.Ref, falsified bool, err error) {
			err = m.Protect(func() error {
				contrib, symbolic := s.scenarioConstraint(F)
				if symbolic {
					sol.SymbolicScenarios++
				}
				if contrib == bdd.True {
					newP = p
					return nil
				}
				next := m.And(p, contrib)
				m.Ref(next)
				m.Deref(p)
				newP = next
				falsified = next == bdd.False
				return nil
			})
			return newP, falsified, err
		}
		newP, falsified, err := attempt()
		if err == bdd.ErrNodeLimit && !s.opts.DisableReorder && ctx.Err() == nil {
			// Recovery: only p is protected; reclaim everything else, find
			// a better order, and retry this scenario once. Skip when the
			// live table is itself huge — sifting it would cost more than
			// the remaining budget and a blown-up p is rarely rescued.
			m.GC()
			if m.NumNodes() <= 1<<20 {
				m.Reorder(bdd.ReorderConfig{MaxVars: 12, MaxSwaps: 1024})
				sol.Reorders++
				if ctx.Err() == nil {
					newP, falsified, err = attempt()
				}
			}
		}
		if err != nil {
			return false, err
		}
		p = newP
		s.trackPeak()
		return !falsified, nil
	}

	var loopErr error
	s.net.ForEachScenario(s.k, func(F network.EdgeSet) bool {
		if err := ctx.Err(); err != nil {
			loopErr = err
			return false
		}
		sol.Scenarios++
		keepGoing, err := processScenario(F)
		if err != nil {
			loopErr = err
			return false
		}
		if !keepGoing {
			return false
		}
		// Between scenarios only p is live, making this a safe point for
		// garbage collection. Dynamic reordering is reserved for overflow
		// recovery (processScenario): proactive sifting costs more than it
		// saves on instances that fit the node budget anyway.
		if m.NumNodes() > s.opts.GCThreshold {
			m.GC()
		}
		return true
	})
	if loopErr != nil {
		return bdd.False, nil, loopErr
	}
	if p == bdd.False {
		return bdd.False, nil, ErrUnrepairable
	}
	return p, sol, nil
}

func (s *solver) trackPeak() {
	if n := s.m.NumNodes(); n > s.peak {
		s.peak = n
	}
}

// buildHoles allocates parameter variables and domain constraints for every
// hole of the routing. Holes are ordered by hop distance of their node from
// the destination (closest first): deliverability constraints chain outward
// from the destination, and grouping interacting variables keeps the
// intermediate BDDs smaller under the fixed variable order.
func (s *solver) buildHoles() error {
	m := s.m
	_, dist := s.net.ShortestPathTree(s.r.Dest())
	holes := s.r.Holes()
	sort.SliceStable(holes, func(i, j int) bool {
		di, dj := dist[holes[i].Key.At], dist[holes[j].Key.At]
		if di != dj {
			return di < dj
		}
		if holes[i].Key.At != holes[j].Key.At {
			return holes[i].Key.At < holes[j].Key.At
		}
		return holes[i].Key.In < holes[j].Key.In
	})
	for _, h := range holes {
		at := h.Key.At
		cands := s.net.IncidentEdges(at)
		if len(cands) == 0 {
			return fmt.Errorf("encode: hole %v at isolated node", h.Key)
		}
		width := bvec.WidthFor(len(cands))
		listLen := h.ListLen
		if listLen > len(cands) {
			listLen = len(cands) // longer lists cannot add coverage
		}
		ho := hole{key: h.Key, cands: append([]network.EdgeID(nil), cands...)}
		domain := bdd.True
		for i := 0; i < listLen; i++ {
			vec := bvec.New(m, fmt.Sprintf("h_%d_%d_s%d_b", h.Key.At, h.Key.In, i), width)
			ho.slots = append(ho.slots, vec)
			domain = m.And(domain, vec.LessConst(uint(len(cands))))
		}
		// Paper's V_{v,e}: the first slot must not encode the in-edge —
		// unless it is the only candidate (degenerate leaf bounce-back).
		if !s.net.IsLoopback(h.Key.In) && len(cands) > 1 {
			if idx, ok := candIndex(ho.cands, h.Key.In); ok {
				domain = m.And(domain, m.Not(ho.slots[0].EqConst(uint(idx))))
			}
		}
		ho.domain = domain
		s.holes = append(s.holes, ho)
	}
	for i := range s.holes {
		s.holeAt[s.holes[i].key] = &s.holes[i]
	}
	return nil
}

func candIndex(cands []network.EdgeID, e network.EdgeID) (int, bool) {
	for i, c := range cands {
		if c == e {
			return i, true
		}
	}
	return -1, false
}

// buildStates enumerates the (in-edge, node) state space.
func (s *solver) buildStates() {
	s.states = s.r.AllKeys()
	s.stateID = make(map[routing.Key]int, len(s.states))
	for i, k := range s.states {
		s.stateID[k] = i
	}
}

// scenarioConstraint returns the conjunction over all sources connected to
// the destination in G∖F of the deliverability of the source under F, as a
// BDD over the hole variables. The boolean result reports whether symbolic
// evaluation was required.
func (s *solver) scenarioConstraint(F network.EdgeSet) (bdd.Ref, bool) {
	net := s.net
	dest := s.r.Dest()
	reach := net.ReachableWithout(dest, F)

	// Fast path: concrete traces. Sources whose traces never touch a hole
	// either deliver (no constraint) or fail (unsatisfiable: the holes
	// cannot influence that trace).
	var symbolicSources []network.NodeID
	for _, src := range net.Nodes() {
		if src == dest || !reach[src] {
			continue
		}
		res := trace.Run(s.r, F, src)
		switch res.Outcome {
		case trace.Delivered:
			// no constraint
		case trace.HitHole:
			symbolicSources = append(symbolicSources, src)
		default:
			// Dropped or looped without any hole involvement: no hole
			// assignment can fix this trace.
			return bdd.False, false
		}
	}
	if len(symbolicSources) == 0 {
		return bdd.True, false
	}

	d, err := s.fixpoint(F)
	if err != nil {
		// Cancellation: report an inconclusive True; the caller re-checks
		// ctx before using the result.
		return bdd.True, true
	}
	m := s.m
	out := bdd.True
	for _, src := range symbolicSources {
		key := routing.Key{In: net.Loopback(src), At: src}
		out = m.And(out, d[s.stateID[key]])
		if out == bdd.False {
			break
		}
	}
	return out, true
}

// fixpoint computes D_F for every state: the BDD over hole variables under
// which a packet in that state reaches the destination under scenario F.
func (s *solver) fixpoint(F network.EdgeSet) ([]bdd.Ref, error) {
	m := s.m
	d := make([]bdd.Ref, len(s.states))
	for i := range d {
		d[i] = bdd.False
	}

	// trans[i] enumerates the candidate transitions of state i under F:
	// (selection condition over holes, successor state id or -1 for dest).
	trans := make([][]edgeOutT, len(s.states))
	for i, key := range s.states {
		trans[i] = s.transitions(key, F)
	}

	for changed := true; changed; {
		changed = false
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		// Iterate states in reverse BFS-ish order is an optimisation; plain
		// sweeps converge in at most |states| rounds and the per-round cost
		// is dominated by BDD work, so keep it simple.
		for i := range s.states {
			cur := d[i]
			if cur == bdd.True {
				continue
			}
			acc := cur
			for _, t := range trans[i] {
				if t.cond == bdd.False {
					continue
				}
				var target bdd.Ref
				if t.succ < 0 {
					target = bdd.True
				} else {
					target = d[t.succ]
				}
				if target == bdd.False {
					continue
				}
				acc = m.Or(acc, m.And(t.cond, target))
				if acc == bdd.True {
					break
				}
			}
			if acc != cur {
				d[i] = acc
				changed = true
			}
		}
	}
	return d, nil
}

// transitions lists the possible forwarding moves from state key under F,
// with their symbolic selection conditions.
func (s *solver) transitions(key routing.Key, F network.EdgeSet) []edgeOutT {
	net := s.net
	dest := s.r.Dest()
	succOf := func(o network.EdgeID) int {
		nv := net.Other(o, key.At)
		if nv == dest {
			return -1
		}
		return s.stateID[routing.Key{In: o, At: nv}]
	}

	if h, ok := s.holeAt[key]; ok {
		var out []edgeOutT
		for idx, o := range h.cands {
			if F.Has(o) {
				continue
			}
			cond := s.holeSelects(h, idx, F)
			if cond == bdd.False {
				continue
			}
			out = append(out, edgeOutT{cond: cond, succ: succOf(o)})
		}
		return out
	}

	prio, ok := s.r.Get(key.In, key.At)
	if !ok {
		return nil // missing entry: packet dropped
	}
	for _, o := range prio {
		if !F.Has(o) {
			return []edgeOutT{{cond: bdd.True, succ: succOf(o)}}
		}
	}
	return nil // all priorities failed: dropped
}

// edgeOutT is a transition option: fire condition and successor state.
type edgeOutT struct {
	cond bdd.Ref
	succ int // -1 = destination
}

// holeSelects returns the BDD over the hole's slot variables under which the
// skipping semantics selects candidate idx under scenario F: some slot i
// equals idx while all earlier slots hold failed candidates.
func (s *solver) holeSelects(h *hole, idx int, F network.EdgeSet) bdd.Ref {
	m := s.m
	var failedIdx []uint
	for i, c := range h.cands {
		if F.Has(c) {
			failedIdx = append(failedIdx, uint(i))
		}
	}
	out := bdd.False
	prefixFailed := bdd.True
	for i, slot := range h.slots {
		here := m.And(prefixFailed, slot.EqConst(uint(idx)))
		out = m.Or(out, here)
		if i+1 < len(h.slots) {
			prefixFailed = m.And(prefixFailed, slot.MemberOf(failedIdx))
			if prefixFailed == bdd.False {
				break
			}
		}
	}
	return out
}

// extract decodes one satisfying assignment of p into concrete priority
// lists for every hole.
func (s *solver) extract(p bdd.Ref) (*routing.Routing, error) {
	m := s.m
	assign := m.AnySat(p)
	if assign == nil {
		return nil, ErrUnrepairable
	}
	filled := s.r.Clone()
	for i := range s.holes {
		h := &s.holes[i]
		prio := make([]network.EdgeID, 0, len(h.slots))
		for _, slot := range h.slots {
			idx := slot.Decode(assign)
			if int(idx) >= len(h.cands) {
				return nil, fmt.Errorf("encode: extracted slot index %d out of range (domain violated)", idx)
			}
			prio = append(prio, h.cands[idx])
		}
		if err := filled.Set(h.key.In, h.key.At, prio); err != nil {
			return nil, fmt.Errorf("encode: extracted invalid entry: %w", err)
		}
	}
	return filled, nil
}

// Filling is one synthesised assignment of priority lists to holes.
type Filling map[routing.Key][]network.EdgeID

// Enumerate returns up to max distinct hole fillings that achieve perfect
// k-resilience (all of them when max <= 0 or fewer exist). It reproduces the
// paper's Figure 2 observation that the BDD compactly stores *all* resilient
// routings.
func Enumerate(ctx context.Context, r *routing.Routing, k int, opts Options, max int) ([]Filling, error) {
	if k < 0 {
		return nil, fmt.Errorf("encode: negative resilience level %d", k)
	}
	opts = opts.withDefaults()
	m, release := opts.manager()
	defer release()
	s := &solver{
		m:      m,
		net:    r.Network(),
		r:      r,
		k:      k,
		opts:   opts,
		ctx:    ctx,
		holeAt: make(map[routing.Key]*hole),
	}
	if opts.ManagerHook != nil {
		opts.ManagerHook(s.m)
	}
	var out []Filling
	err := s.m.Protect(func() error {
		p, _, err := s.formulaWithStats(ctx)
		if err != nil {
			return err
		}
		out = s.enumerate(p, max)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// enumerate expands the satisfying assignments of p into concrete fillings.
func (s *solver) enumerate(p bdd.Ref, max int) []Filling {
	var out []Filling
	var holeVars []bdd.Var
	for _, h := range s.holes {
		for _, slot := range h.slots {
			holeVars = append(holeVars, slot.Bits()...)
		}
	}
	s.m.AllSat(p, func(a bdd.Assignment) bool {
		// Expand don't-care hole bits.
		var free []bdd.Var
		for _, v := range holeVars {
			if _, ok := a[v]; !ok {
				free = append(free, v)
			}
		}
		full := make(bdd.Assignment, len(holeVars))
		for k, v := range a {
			full[k] = v
		}
		for comb := 0; comb < 1<<len(free); comb++ {
			for i, v := range free {
				full[v] = comb&(1<<i) != 0
			}
			f := make(Filling, len(s.holes))
			for i := range s.holes {
				h := &s.holes[i]
				prio := make([]network.EdgeID, len(h.slots))
				for j, slot := range h.slots {
					prio[j] = h.cands[slot.Decode(full)]
				}
				f[h.key] = prio
			}
			out = append(out, f)
			if max > 0 && len(out) >= max {
				return false
			}
		}
		return true
	})
	return out
}

// countSolutions normalises SatCount to the hole parameter variables only
// (p does not depend on any other variable).
func (s *solver) countSolutions(p bdd.Ref) float64 {
	holeBits := 0
	for _, h := range s.holes {
		for _, slot := range h.slots {
			holeBits += slot.Width()
		}
	}
	total := s.m.SatCount(p)
	return total / math.Pow(2, float64(s.m.NumVars()-holeBits))
}
